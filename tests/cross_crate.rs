//! Cross-crate integration tests: the offline analyses, the simulator, and
//! the models must agree with each other.

use anton2::anton_analysis::deadlock::{build_unicast_dep_graph, RouteEnumeration};
use anton2::anton_analysis::load::LoadAnalysis;
use anton2::anton_analysis::weights::ArbiterWeightSet;
use anton2::anton_bench::{apply_weights, torus_capacity};
use anton2::anton_core::config::MachineConfig;
use anton2::anton_core::topology::TorusShape;
use anton2::anton_core::trace::GlobalLink;
use anton2::anton_sim::driver::BatchDriver;
use anton2::anton_sim::params::SimParams;
use anton2::anton_sim::sim::{RunOutcome, Sim};
use anton2::anton_traffic::patterns::UniformRandom;

/// The simulator's measured per-link flit counts should track the analytic
/// expected loads: same busiest-link class, high correlation.
#[test]
fn simulated_link_traffic_tracks_analytic_loads() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);

    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let batch = 400u64;
    let mut driver = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(5)
        .build();
    assert_eq!(sim.run(&mut driver, 50_000_000), RunOutcome::Completed);

    // Compare measured flits/packet against analytic load/packet per link.
    let total_packets = (batch * cfg.num_endpoints() as u64) as f64;
    let mut num = 0.0;
    let mut den_a = 0.0;
    let mut den_b = 0.0;
    let mut max_rel_err: f64 = 0.0;
    for (label, flits) in sim.wire_utilizations() {
        let expected = analysis.link_load(&label);
        let measured = flits as f64 / total_packets;
        // Expected loads are per unit time at rate 1/endpoint; per packet
        // they are load / num_endpoints.
        let expected = expected / cfg.num_endpoints() as f64;
        num += expected * measured;
        den_a += expected * expected;
        den_b += measured * measured;
        if expected > 1e-3 {
            max_rel_err = max_rel_err.max((measured - expected).abs() / expected);
        }
    }
    let correlation = num / (den_a.sqrt() * den_b.sqrt());
    assert!(correlation > 0.99, "load correlation {correlation}");
    assert!(max_rel_err < 0.25, "worst per-link deviation {max_rel_err}");
}

/// The simulator's routes (under the default policy) must stay within the
/// VC budget claimed by the deadlock analysis, and the analysis graph must
/// be acyclic for the shipped configuration.
#[test]
fn default_configuration_is_deadlock_free_end_to_end() {
    let cfg = MachineConfig::new(TorusShape::cube(3));
    let graph = build_unicast_dep_graph(
        &cfg,
        &RouteEnumeration {
            src_endpoints: vec![0],
            dst_endpoints: vec![15],
        },
    );
    assert!(
        graph.find_cycle().is_none(),
        "shipped config has a VC dependency cycle"
    );

    // And a saturating workload on the same shape drains completely. The
    // deprecated constructor must keep working for downstream callers.
    let mut sim = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
    #[allow(deprecated)]
    let mut driver = BatchDriver::uniform_pattern(&sim, Box::new(UniformRandom), 80, 9);
    assert_eq!(sim.run(&mut driver, 50_000_000), RunOutcome::Completed);
    assert_eq!(sim.live_packets(), 0);
}

/// Weights derived from the analysis must install cleanly at every
/// arbitration point of the simulator (indices consistent across crates).
#[test]
fn weight_tables_install_at_every_arbitration_point() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let weights = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
    assert!(!weights.tables.is_empty());
    assert!(!weights.chan_tables.is_empty());
    assert!(!weights.input_tables.is_empty());
    let params = SimParams {
        arbiter: anton2::anton_arbiter::ArbiterKind::InverseWeighted { m_bits: 5 },
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    apply_weights(&mut sim, &weights); // panics on any index mismatch
    let mut driver = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(50)
        .seed(3)
        .build();
    assert_eq!(sim.run(&mut driver, 50_000_000), RunOutcome::Completed);
}

/// The torus serializer's measured long-run rate matches the link layer's
/// effective bandwidth (89.6/288 of a mesh channel).
#[test]
fn torus_rate_matches_link_layer_effective_bandwidth() {
    use anton2::anton_link::channel::LinkParams;
    let sim_rate = torus_capacity();
    let link_rate = LinkParams::default().effective_gbps() / 288.0;
    assert!((sim_rate - link_rate).abs() < 1e-12);
}

/// Packaging covers every torus channel the simulator instantiates.
#[test]
fn packaging_covers_every_simulated_channel() {
    use anton2::anton_pack::Packaging;
    let shape = TorusShape::cube(8);
    let cfg = MachineConfig::new(shape);
    let pack = Packaging::new(shape);
    let sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let mut torus_channels = 0;
    for (label, _) in sim.wire_utilizations() {
        if let GlobalLink::Torus { from, dir, .. } = label {
            let medium = pack.medium(cfg.shape.coord(from), dir);
            assert!(medium.length_cm() > 0.0);
            torus_channels += 1;
        }
    }
    assert_eq!(torus_channels, 512 * 12);
}

/// The energy experiment's fit must recover the coefficients the simulator
/// charges — methodology closes end to end.
#[test]
fn energy_fit_recovers_charged_coefficients() {
    use anton2::anton_energy::experiment::measure_rate;
    use anton2::anton_energy::model::EnergyModel;
    use anton2::anton_sim::driver::PayloadKind;
    use anton2::anton_sim::params::EnergyParams;
    let p = EnergyParams::default();
    let mut ms = Vec::new();
    for rate in [(1u32, 4u32), (1, 2), (3, 4), (1, 1)] {
        for kind in [PayloadKind::Zeros, PayloadKind::Ones, PayloadKind::Random] {
            ms.push(measure_rate(rate, kind, 600, &p));
        }
    }
    let fit = EnergyModel::fit(&ms);
    assert!(
        (fit.fixed_pj - p.fixed_pj).abs() < 1.5,
        "c0 {}",
        fit.fixed_pj
    );
    assert!(
        (fit.per_flip_pj - p.per_flip_pj).abs() < 0.05,
        "c1 {}",
        fit.per_flip_pj
    );
    assert!(
        (fit.activation_pj - p.activation_pj).abs() < 2.5,
        "c2 {}",
        fit.activation_pj
    );
    assert!(
        (fit.per_set_bit_pj - p.per_set_bit_pj).abs() < 0.05,
        "c3 {}",
        fit.per_set_bit_pj
    );
}

/// The area model's VC sensitivity is consistent with the VC policies'
/// budgets from anton-core.
#[test]
fn area_ablation_tracks_vc_policy_budgets() {
    use anton2::anton_area::{AreaModel, AreaParams, Category, Component};
    use anton2::anton_core::chip::{ChipLayout, LinkGroup};
    use anton2::anton_core::vc::VcPolicy;
    let anton = AreaModel::anton();
    let baseline = AreaModel::new(
        AreaParams::default(),
        ChipLayout::new(23),
        VcPolicy::Baseline2n,
    );
    let ratio = baseline.area(Component::Channel, Category::Queues)
        / anton.area(Component::Channel, Category::Queues);
    let expected = f64::from(VcPolicy::Baseline2n.num_vcs(LinkGroup::T))
        / f64::from(VcPolicy::Anton.num_vcs(LinkGroup::T));
    assert!((ratio - expected).abs() < 1e-12);
}
