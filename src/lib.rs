//! # anton2 — facade crate
//!
//! Re-exports every crate of the Anton 2 unified-network reproduction
//! (*"Unifying on-chip and inter-node switching within the Anton 2
//! network"*, ISCA 2014) under one roof, for examples and downstream users
//! who want a single dependency:
//!
//! * [`anton_core`] — topology, routing, VC promotion, multicast, packets;
//! * [`anton_arbiter`] — the inverse-weighted arbiter and baselines;
//! * [`anton_link`] — the SerDes link layer (framing, CRC, go-back-N);
//! * [`anton_traffic`] — evaluation traffic patterns and MD workloads;
//! * [`anton_analysis`] — channel loads, worst-case search, weights,
//!   deadlock graphs;
//! * [`anton_sim`] — the cycle-driven flit-level simulator;
//! * [`anton_energy`] — the router energy model and measurement;
//! * [`anton_area`] — the silicon area model;
//! * [`anton_pack`] — machine packaging (backplanes, racks, cables);
//! * [`anton_bench`] — the experiment harness regenerating the paper's
//!   tables and figures.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use anton_analysis;
pub use anton_arbiter;
pub use anton_area;
pub use anton_bench;
pub use anton_core;
pub use anton_energy;
pub use anton_link;
pub use anton_pack;
pub use anton_sim;
pub use anton_traffic;
