//! # anton2 — facade crate
//!
//! Re-exports every crate of the Anton 2 unified-network reproduction
//! (*"Unifying on-chip and inter-node switching within the Anton 2
//! network"*, ISCA 2014) under one roof, for examples and downstream users
//! who want a single dependency:
//!
//! * [`anton_core`] — topology, routing, VC promotion, multicast, packets;
//! * [`anton_arbiter`] — the inverse-weighted arbiter and baselines;
//! * [`anton_link`] — the SerDes link layer (framing, CRC, go-back-N);
//! * [`anton_fault`] — fault injection: deterministic lossy-link schedules
//!   and the go-back-N shim embedded in the simulator's torus channels;
//! * [`anton_traffic`] — evaluation traffic patterns and MD workloads;
//! * [`anton_analysis`] — channel loads, worst-case search, weights,
//!   deadlock graphs;
//! * [`anton_sim`] — the cycle-driven flit-level simulator;
//! * [`anton_energy`] — the router energy model and measurement;
//! * [`anton_area`] — the silicon area model;
//! * [`anton_pack`] — machine packaging (backplanes, racks, cables);
//! * [`anton_bench`] — the experiment harness regenerating the paper's
//!   tables and figures.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use anton2::prelude::*;
//!
//! let cfg = MachineConfig::new(TorusShape::cube(2));
//! let mut sim = Sim::builder().config(cfg).params(SimParams::default()).build();
//! let mut driver = BatchDriver::builder(&sim)
//!     .pattern(Box::new(UniformRandom))
//!     .packets_per_endpoint(4)
//!     .seed(1)
//!     .build();
//! assert_eq!(sim.run(&mut driver, 100_000), RunOutcome::Completed);
//! assert!(sim.metrics().stats.delivered_packets > 0);
//! ```

#![warn(missing_docs)]

pub mod prelude {
    //! One-stop imports for the common experiment workflow: machine
    //! configuration, the simulator and its drivers, traffic patterns,
    //! arbiter weights, and the experiment harness.

    pub use anton_analysis::load::LoadAnalysis;
    pub use anton_analysis::weights::ArbiterWeightSet;
    pub use anton_bench::harness::{ExperimentSpec, Measurement, SweepPoint, Value};
    pub use anton_bench::{
        apply_weights, run_batch, run_batch_detailed, saturation_rate, ArbiterSetup, FlagSet,
    };
    pub use anton_core::config::MachineConfig;
    pub use anton_core::pattern::TrafficPattern;
    pub use anton_core::topology::TorusShape;
    pub use anton_fault::{FaultKind, FaultSchedule};
    pub use anton_sim::driver::{
        BatchDriver, BatchDriverBuilder, LoadDriver, PayloadKind, PingPongDriver, RateDriver,
    };
    pub use anton_sim::metrics::{LinkClass, Metrics};
    pub use anton_sim::params::{EnergyParams, LatencyParams, SimParams};
    pub use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim, SimStats};
    pub use anton_traffic::patterns::{
        BitComplement, Blend, NHopNeighbor, NodePermutation, ReverseTornado, Tornado, Transpose,
        UniformRandom,
    };
}

pub use anton_analysis;
pub use anton_arbiter;
pub use anton_area;
pub use anton_bench;
pub use anton_core;
pub use anton_energy;
pub use anton_fault;
pub use anton_link;
pub use anton_pack;
pub use anton_sim;
pub use anton_traffic;
