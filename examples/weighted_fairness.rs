//! Equality of service with inverse-weighted arbiters (Section 3).
//!
//! Derives per-arbiter inverse weights from the expected channel loads of an
//! adversarial traffic pattern, installs them in the simulator, and compares
//! the fairness of per-source completion times against plain round-robin
//! arbitration — the mechanism behind Figures 9 and 10.
//!
//! ```sh
//! cargo run --release --example weighted_fairness
//! ```

use anton2::anton_analysis::fit::jain_fairness;
use anton2::anton_arbiter::ArbiterKind;
use anton2::prelude::*;

/// Wraps the batch driver to record when each source finishes its batch.
struct PerSource {
    inner: BatchDriver,
    remaining: Vec<u64>,
    finish: Vec<u64>,
}

impl Driver for PerSource {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim);
    }
    fn on_delivery(&mut self, sim: &mut Sim, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            let idx = sim.cfg.endpoint_index(p.src);
            self.remaining[idx] -= 1;
            if self.remaining[idx] == 0 {
                self.finish[idx] = sim.now();
            }
        }
        self.inner.on_delivery(sim, d);
    }
    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

fn run(cfg: &MachineConfig, weights: Option<&ArbiterWeightSet>, batch: u64) -> (u64, f64) {
    let params = SimParams {
        arbiter: match weights {
            Some(w) => ArbiterKind::InverseWeighted { m_bits: w.m_bits },
            None => ArbiterKind::RoundRobin,
        },
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
    if let Some(w) = weights {
        apply_weights(&mut sim, w);
    }
    let n = cfg.num_endpoints();
    let mut driver = PerSource {
        inner: BatchDriver::builder(&sim)
            .pattern(Box::new(Tornado))
            .packets_per_endpoint(batch)
            .seed(7)
            .build(),
        remaining: vec![batch; n],
        finish: vec![0; n],
    };
    let outcome = sim.run(&mut driver, 100_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    // Fairness of per-source *service rates* (packets per cycle to finish).
    let rates: Vec<f64> = driver
        .finish
        .iter()
        .map(|&f| batch as f64 / f as f64)
        .collect();
    (driver.inner.finish_cycle, jain_fairness(&rates))
}

fn main() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let batch = 256;
    println!("tornado traffic on a 4x4x4 torus, {batch} packets per core\n");

    let (rr_cycles, rr_jain) = run(&cfg, None, batch);
    println!("round-robin:       completed in {rr_cycles} cycles, Jain fairness {rr_jain:.4}");

    // Offline: expected loads -> per-input inverse weights at every router
    // output arbiter and channel serializer.
    let analysis = LoadAnalysis::compute(&cfg, &Tornado);
    let weights = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
    println!(
        "derived {} router tables and {} serializer tables from the tornado loads",
        weights.tables.len(),
        weights.chan_tables.len()
    );
    let (iw_cycles, iw_jain) = run(&cfg, Some(&weights), batch);
    println!("inverse-weighted:  completed in {iw_cycles} cycles, Jain fairness {iw_jain:.4}");
    println!();
    println!(
        "equality of service: fairness {} (completion {})",
        if iw_jain >= rr_jain {
            "improved or held"
        } else {
            "regressed"
        },
        if iw_cycles <= rr_cycles {
            "no slower"
        } else {
            "slower"
        }
    );
}
