//! Designing the on-chip routing algorithm (Section 2.4).
//!
//! Shows the optimization workflow the Anton 2 designers used: treat the
//! ASIC as a switch between its twelve external channels, enumerate the
//! worst-case switching demands (permutations — the extreme points of the
//! load-maximization LP), and pick the direction-order routing algorithm
//! minimizing the worst-case mesh-channel load.
//!
//! ```sh
//! cargo run --release --example onchip_switch_design
//! ```

use anton2::anton_analysis::worstcase::{eq1_permutation, format_perm, max_mesh_load, search};
use anton2::anton_core::chip::ChipLayout;
use anton2::anton_core::onchip::DirOrder;
use anton2::anton_sim::params::{MESH_GBPS, TORUS_EFFECTIVE_GBPS};

fn main() {
    let chip = ChipLayout::default();
    let results = search(&chip);

    println!("direction-order algorithms ranked by worst-case mesh load:");
    for (i, r) in results.iter().enumerate().take(4) {
        println!(
            "  {}. {}  -> {:.1} torus channels",
            i + 1,
            r.order,
            r.worst_load
        );
    }
    let best = &results[0];
    println!(
        "  ... ({} orders total; worst performers reach {:.1})",
        results.len(),
        results.last().unwrap().worst_load
    );

    // The paper's equation (1) is one of the worst-case demands.
    let eq1 = eq1_permutation();
    println!();
    println!("eq. (1): {}", format_perm(&eq1));
    println!(
        "load under the selected order: {:.1} (its worst case: {:.1})",
        max_mesh_load(&chip, DirOrder::ANTON, &eq1),
        best.worst_load
    );

    // Bandwidth check: a mesh channel can carry the worst case with room
    // for endpoint traffic (Section 2.4's closing argument).
    let needed = best.worst_load * TORUS_EFFECTIVE_GBPS;
    println!();
    println!(
        "mesh channel: {MESH_GBPS:.0} Gb/s vs worst-case through-demand {needed:.1} Gb/s \
         -> {:.0} Gb/s headroom for endpoint traffic",
        MESH_GBPS - needed
    );
    assert!(
        MESH_GBPS > needed,
        "the mesh must never bottleneck the torus channels"
    );
}
