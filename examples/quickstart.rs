//! Quickstart: build an Anton 2 machine, drive it with uniform random
//! traffic, and read back throughput and utilization.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anton2::prelude::*;

fn main() {
    // A 4x4x4 torus of Anton 2 ASICs: each node carries a 4x4 on-chip mesh,
    // 16 compute endpoints, and 12 external torus channels.
    let cfg = MachineConfig::new(TorusShape::cube(4));
    println!(
        "machine: {} nodes, {} endpoints, VC policy {}",
        cfg.shape.num_nodes(),
        cfg.num_endpoints(),
        cfg.vc_policy
    );

    // The analytic saturation rate: the injection rate at which the busiest
    // torus channel reaches its effective 89.6 Gb/s.
    let sat = saturation_rate(&cfg, &UniformRandom);
    println!("uniform-traffic saturation: {sat:.4} packets/cycle/endpoint");

    // Every core sends a batch of 64 packets as fast as the network accepts.
    let point = run_batch(
        &cfg,
        vec![(Box::new(UniformRandom), 1.0)],
        64,
        &ArbiterSetup::RoundRobin,
        sat,
        1,
    );
    println!(
        "batch of {} pkts/core delivered in {} cycles ({:.0} ns)",
        point.batch,
        point.cycles,
        point.cycles as f64 / 1.5
    );
    println!(
        "normalized throughput {:.2} (1.0 = torus channels fully utilized), peak channel utilization {:.2}",
        point.normalized, point.peak_utilization
    );
}
