//! MD halo exchange: the communication pattern that motivates the Anton 2
//! multicast support (Section 2.3, Figure 3).
//!
//! Every node broadcasts a particle position to all 26 neighboring nodes
//! through the table-based multicast trees, alternating between two
//! dimension orders to balance torus-channel load. The example measures the
//! inter-node bandwidth saved versus unicast and the exchange latency.
//!
//! ```sh
//! cargo run --release --example md_halo_exchange
//! ```

use anton2::anton_core::chip::LocalEndpointId;
use anton2::anton_core::config::{GlobalEndpoint, MachineConfig};
use anton2::anton_core::multicast::McGroupId;
use anton2::anton_core::packet::{Destination, Packet, Payload};
use anton2::anton_core::topology::TorusShape;
use anton2::anton_sim::params::SimParams;
use anton2::anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton2::anton_traffic::md::{alternating_variants, build_halo_groups, HaloSpec};

/// Counts deliveries until every halo copy has landed.
struct HaloDriver {
    expected: u64,
    received: u64,
}

impl Driver for HaloDriver {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, delivery: &Delivery) {
        if matches!(delivery, Delivery::Packet(_)) {
            self.received += 1;
        }
    }
    fn done(&self, _sim: &Sim) -> bool {
        self.received >= self.expected
    }
}

fn main() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    // One halo destination set per node, with two alternating trees each,
    // loaded into the multicast tables at initialization — exactly how an
    // MD run programs the network.
    let spec = HaloSpec {
        radius: 1,
        plane_normal: None,
        endpoints_per_node: 2,
    };
    let groups = build_halo_groups(&cfg, spec, &alternating_variants());
    let copies = groups[0].dests.num_endpoints() as u64;
    let unicast_hops = groups[0].dests.unicast_torus_hops(
        &cfg.shape,
        cfg.shape.coord(anton2::anton_core::topology::NodeId(0)),
    );
    let tree_hops = groups[0].trees[0].torus_hops();
    println!(
        "halo: 26 neighbor nodes x {} endpoint copies; unicast would need {} torus hops, the tree uses {}",
        spec.endpoints_per_node, unicast_hops, tree_hops
    );

    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let nodes = cfg.shape.num_nodes() as u64;
    for g in groups {
        sim.add_multicast_group(g);
    }
    // Each node broadcasts one particle per tree variant.
    for node in cfg.shape.nodes() {
        let id = cfg.shape.id(node);
        let src = GlobalEndpoint {
            node: id,
            ep: LocalEndpointId(0),
        };
        for tree in [0u8, 1] {
            let mut pkt = Packet::write(src, src, Payload::zeros(16));
            pkt.dst = Destination::Multicast {
                group: McGroupId(id.0),
                tree,
            };
            sim.inject(src, pkt);
        }
    }
    let mut driver = HaloDriver {
        expected: 2 * nodes * copies,
        received: 0,
    };
    let outcome = sim.run(&mut driver, 10_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    let stats = sim.stats();
    println!(
        "{} broadcasts -> {} deliveries in {} cycles ({:.1} us)",
        2 * nodes,
        driver.received,
        sim.now(),
        sim.now() as f64 / 1500.0
    );
    println!(
        "torus flits used: {} ({:.1} per broadcast vs {} for unicast) — {:.0}% inter-node bandwidth saved",
        stats.torus_flits,
        stats.torus_flits as f64 / (2.0 * nodes as f64),
        unicast_hops,
        100.0 * (1.0 - stats.torus_flits as f64 / (2.0 * nodes as f64 * unicast_hops as f64))
    );
}
