//! Link-layer framing.
//!
//! Each external torus channel carries 24-byte flits inside 30-byte frames:
//! a 4-byte header (sync, kind, sequence number, cumulative ack), the 24-byte
//! flit, and a 2-byte CRC. The 24/30 framing efficiency is exactly the 80%
//! derate the paper reports: 112 Gb/s raw → 89.6 Gb/s effective per
//! direction.

use crate::crc::{crc16, verify};

/// Flit payload bytes per frame.
pub const FLIT_BYTES: usize = 24;
/// Total frame bytes on the wire.
pub const FRAME_BYTES: usize = 30;
/// Framing efficiency: payload fraction of each frame.
pub const EFFICIENCY: f64 = FLIT_BYTES as f64 / FRAME_BYTES as f64;

/// Sync byte marking a frame start.
const SYNC: u8 = 0x7E;

/// Frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Carries one flit of payload.
    Data,
    /// Pure acknowledgement (idle filler in the reverse direction).
    Ack,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0xD1,
            FrameKind::Ack => 0xA0,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0xD1 => Some(FrameKind::Data),
            0xA0 => Some(FrameKind::Ack),
            _ => None,
        }
    }
}

/// A decoded link frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Sequence number of this frame (data frames; echoed on acks).
    pub seq: u8,
    /// Cumulative acknowledgement: the next sequence number the sender of
    /// this frame expects to receive.
    pub ack: u8,
    /// Flit payload (meaningful for data frames).
    pub payload: [u8; FLIT_BYTES],
}

impl Frame {
    /// Builds a data frame.
    pub fn data(seq: u8, ack: u8, payload: [u8; FLIT_BYTES]) -> Frame {
        Frame {
            kind: FrameKind::Data,
            seq,
            ack,
            payload,
        }
    }

    /// Builds a pure acknowledgement frame.
    pub fn ack(ack: u8) -> Frame {
        Frame {
            kind: FrameKind::Ack,
            seq: 0,
            ack,
            payload: [0; FLIT_BYTES],
        }
    }

    /// Encodes the frame to its 30-byte wire image.
    pub fn encode(&self) -> [u8; FRAME_BYTES] {
        let mut out = [0u8; FRAME_BYTES];
        out[0] = SYNC;
        out[1] = self.kind.to_byte();
        out[2] = self.seq;
        out[3] = self.ack;
        out[4..4 + FLIT_BYTES].copy_from_slice(&self.payload);
        let crc = crc16(&out[..FRAME_BYTES - 2]);
        out[FRAME_BYTES - 2..].copy_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes a wire image, returning `None` for any corruption (bad sync,
    /// unknown kind, or CRC mismatch) — corrupted frames are simply dropped,
    /// and go-back-N recovers them.
    pub fn decode(wire: &[u8; FRAME_BYTES]) -> Option<Frame> {
        let crc = u16::from_be_bytes([wire[FRAME_BYTES - 2], wire[FRAME_BYTES - 1]]);
        if wire[0] != SYNC || !verify(&wire[..FRAME_BYTES - 2], crc) {
            return None;
        }
        let kind = FrameKind::from_byte(wire[1])?;
        let mut payload = [0u8; FLIT_BYTES];
        payload.copy_from_slice(&wire[4..4 + FLIT_BYTES]);
        Some(Frame {
            kind,
            seq: wire[2],
            ack: wire[3],
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn efficiency_matches_paper_derate() {
        // 112 Gb/s raw * 24/30 = 89.6 Gb/s effective.
        assert!((112.0 * EFFICIENCY - 89.6).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(seq in any::<u8>(), ack in any::<u8>(),
                                   payload in any::<[u8; 24]>()) {
            let f = Frame::data(seq, ack, payload);
            prop_assert_eq!(Frame::decode(&f.encode()), Some(f));
            let a = Frame::ack(ack);
            prop_assert_eq!(Frame::decode(&a.encode()), Some(a));
        }

        #[test]
        fn any_single_corruption_detected(seq in any::<u8>(), payload in any::<[u8; 24]>(),
                                          bit in 0usize..(30 * 8)) {
            let mut wire = Frame::data(seq, 7, payload).encode();
            wire[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(Frame::decode(&wire), None);
        }
    }
}
