//! End-to-end link simulation: a full-duplex lossy channel running the
//! go-back-N protocol, used to validate the 112 → 89.6 Gb/s effective
//! bandwidth derate and the protocol's behaviour under injected bit errors.

use std::collections::VecDeque;

use rand::Rng;

use crate::frame::{Frame, EFFICIENCY, FLIT_BYTES, FRAME_BYTES};
use crate::gobackn::{GoBackNConfig, Receiver, Sender};

/// Physical parameters of one torus channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// SerDes lanes per channel (Anton 2: 8).
    pub lanes: u32,
    /// Line rate per lane in Gb/s (Anton 2: 14).
    pub lane_gbps: f64,
    /// One-way propagation delay in frame slots.
    pub prop_delay: u64,
    /// Independent probability that any single wire bit flips.
    pub bit_error_rate: f64,
}

impl Default for LinkParams {
    fn default() -> LinkParams {
        LinkParams {
            lanes: 8,
            lane_gbps: 14.0,
            prop_delay: 4,
            bit_error_rate: 0.0,
        }
    }
}

impl LinkParams {
    /// Raw channel bandwidth in Gb/s per direction (Anton 2: 112).
    pub fn raw_gbps(&self) -> f64 {
        f64::from(self.lanes) * self.lane_gbps
    }

    /// Effective bandwidth after framing, in Gb/s per direction, assuming an
    /// error-free channel (Anton 2: 89.6).
    pub fn effective_gbps(&self) -> f64 {
        self.raw_gbps() * EFFICIENCY
    }
}

/// Results of an end-to-end link simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Flits handed to the sender.
    pub offered: u64,
    /// Flits delivered in order at the receiver.
    pub delivered: u64,
    /// Data frames put on the wire.
    pub frames_sent: u64,
    /// Data frames that were retransmissions.
    pub retransmissions: u64,
    /// Wire frames dropped by CRC.
    pub corrupted: u64,
    /// Frame slots elapsed.
    pub slots: u64,
}

impl LinkStats {
    /// Goodput as a fraction of the raw channel bandwidth
    /// (≤ [`EFFICIENCY`] = 0.8; equality on an error-free saturated link).
    pub fn goodput_fraction(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        (self.delivered as f64 * FLIT_BYTES as f64) / (self.slots as f64 * FRAME_BYTES as f64)
    }

    /// Delivered bandwidth in Gb/s for the given physical parameters.
    pub fn goodput_gbps(&self, params: &LinkParams) -> f64 {
        self.goodput_fraction() * params.raw_gbps()
    }
}

/// A full-duplex link running go-back-N over a lossy channel.
#[derive(Debug)]
pub struct LinkSim<R: Rng> {
    params: LinkParams,
    sender: Sender,
    receiver: Receiver,
    /// Data frames in flight: (arrival slot, wire bytes).
    forward: VecDeque<(u64, [u8; FRAME_BYTES])>,
    /// Ack frames in flight.
    reverse: VecDeque<(u64, [u8; FRAME_BYTES])>,
    rng: R,
    now: u64,
    stats: LinkStats,
    next_payload: u64,
}

impl<R: Rng> LinkSim<R> {
    /// Creates a link simulation.
    pub fn new(params: LinkParams, gbn: GoBackNConfig, rng: R) -> LinkSim<R> {
        LinkSim {
            params,
            sender: Sender::new(gbn),
            receiver: Receiver::new(),
            forward: VecDeque::new(),
            reverse: VecDeque::new(),
            rng,
            now: 0,
            stats: LinkStats::default(),
            next_payload: 0,
        }
    }

    fn corrupt(&mut self, wire: &mut [u8; FRAME_BYTES]) {
        let ber = self.params.bit_error_rate;
        if ber <= 0.0 {
            return;
        }
        for byte in wire.iter_mut() {
            for bit in 0..8 {
                if self.rng.gen_bool(ber) {
                    *byte ^= 1 << bit;
                }
            }
        }
    }

    /// Runs `slots` frame slots with the sender saturated (a fresh flit is
    /// offered whenever the window has room), returning the statistics.
    pub fn run_saturated(&mut self, slots: u64) -> LinkStats {
        for _ in 0..slots {
            self.step(true);
        }
        self.stats.slots = self.now;
        self.stats.frames_sent = self.sender.frames_sent;
        self.stats.retransmissions = self.sender.retransmissions;
        self.stats.delivered = self.receiver.delivered.len() as u64;
        self.stats
    }

    /// Advances one frame slot. When `saturate` is set, new flits are
    /// offered whenever the window allows.
    fn step(&mut self, saturate: bool) {
        // Offer fresh payloads.
        if saturate && self.sender.can_accept() {
            let mut payload = [0u8; FLIT_BYTES];
            payload[..8].copy_from_slice(&self.next_payload.to_le_bytes());
            self.sender.offer(payload);
            self.next_payload += 1;
            self.stats.offered += 1;
        }
        // Deliver the reverse (ack) frame arriving this slot.
        while let Some(&(t, wire)) = self.reverse.front() {
            if t > self.now {
                break;
            }
            self.reverse.pop_front();
            if let Some(f) = Frame::decode(&wire) {
                self.sender.on_ack(f.ack, self.now);
            } else {
                self.stats.corrupted += 1;
            }
        }
        // Deliver the forward (data) frame arriving this slot; emit an ack.
        while let Some(&(t, wire)) = self.forward.front() {
            if t > self.now {
                break;
            }
            self.forward.pop_front();
            if let Some(f) = Frame::decode(&wire) {
                let ack = self.receiver.on_frame(&f);
                let mut ack_wire = Frame::ack(ack).encode();
                self.corrupt(&mut ack_wire);
                self.reverse
                    .push_back((self.now + self.params.prop_delay, ack_wire));
            } else {
                self.stats.corrupted += 1;
            }
        }
        // Transmit this slot's data frame.
        if let Some(f) = self.sender.next_frame(self.now, self.receiver.expected()) {
            let mut wire = f.encode();
            self.corrupt(&mut wire);
            self.forward
                .push_back((self.now + self.params.prop_delay, wire));
        }
        self.now += 1;
    }

    /// The in-order flits delivered so far.
    pub fn delivered(&self) -> &[[u8; FLIT_BYTES]] {
        &self.receiver.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_match_paper_bandwidths() {
        let p = LinkParams::default();
        assert!((p.raw_gbps() - 112.0).abs() < 1e-9);
        assert!((p.effective_gbps() - 89.6).abs() < 1e-9);
    }

    #[test]
    fn error_free_link_reaches_full_framing_efficiency() {
        let mut sim = LinkSim::new(
            LinkParams::default(),
            GoBackNConfig {
                window: 32,
                timeout: 64,
            },
            StdRng::seed_from_u64(1),
        );
        let stats = sim.run_saturated(10_000);
        assert_eq!(stats.retransmissions, 0);
        assert!(
            stats.goodput_fraction() > 0.79,
            "goodput {} below framing efficiency",
            stats.goodput_fraction()
        );
        assert!((stats.goodput_gbps(&LinkParams::default()) - 89.6).abs() < 1.0);
    }

    #[test]
    fn window_smaller_than_rtt_throttles() {
        // Window 2 with prop delay 8 (RTT 16 slots): bandwidth-delay product
        // unmet, so goodput falls well below the framing efficiency.
        let params = LinkParams {
            prop_delay: 8,
            ..LinkParams::default()
        };
        let mut sim = LinkSim::new(
            params,
            GoBackNConfig {
                window: 2,
                timeout: 64,
            },
            StdRng::seed_from_u64(1),
        );
        let stats = sim.run_saturated(10_000);
        assert!(
            stats.goodput_fraction() < 0.2,
            "goodput {}",
            stats.goodput_fraction()
        );
    }

    #[test]
    fn delivery_is_in_order_exactly_once_under_errors() {
        let params = LinkParams {
            bit_error_rate: 1e-3,
            ..LinkParams::default()
        };
        let mut sim = LinkSim::new(
            params,
            GoBackNConfig {
                window: 16,
                timeout: 48,
            },
            StdRng::seed_from_u64(42),
        );
        let stats = sim.run_saturated(20_000);
        assert!(
            stats.retransmissions > 0,
            "errors must force retransmission"
        );
        assert!(stats.delivered > 0);
        for (i, flit) in sim.delivered().iter().enumerate() {
            let mut id = [0u8; 8];
            id.copy_from_slice(&flit[..8]);
            assert_eq!(
                u64::from_le_bytes(id),
                i as u64,
                "delivery out of order at {i}"
            );
        }
    }

    #[test]
    fn goodput_degrades_with_error_rate() {
        let mut last = f64::MAX;
        for ber in [0.0, 5e-4, 5e-3] {
            let params = LinkParams {
                bit_error_rate: ber,
                ..LinkParams::default()
            };
            let mut sim = LinkSim::new(
                params,
                GoBackNConfig {
                    window: 16,
                    timeout: 48,
                },
                StdRng::seed_from_u64(7),
            );
            let stats = sim.run_saturated(20_000);
            let g = stats.goodput_fraction();
            assert!(
                g < last + 1e-9,
                "goodput should fall with BER ({g} after {last})"
            );
            last = g;
        }
        assert!(last < 0.5, "heavy BER should crush goodput, got {last}");
    }
}
