//! CRC-16/CCITT-FALSE error detection for link frames.

/// Polynomial for CRC-16/CCITT (x^16 + x^12 + x^5 + 1).
const POLY: u16 = 0x1021;
/// Initial register value (CCITT-FALSE variant).
const INIT: u16 = 0xFFFF;

/// Computes the CRC-16/CCITT-FALSE checksum of `data`.
///
/// # Examples
///
/// ```
/// // The standard check value for "123456789".
/// assert_eq!(anton_link::crc::crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = INIT;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Whether `data` followed by its transmitted CRC verifies cleanly.
pub fn verify(data: &[u8], transmitted_crc: u16) -> bool {
    crc16(data) == transmitted_crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02];
        let crc = crc16(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data;
                corrupted[byte] ^= 1 << bit;
                assert!(!verify(&corrupted, crc), "missed flip at {byte}:{bit}");
            }
        }
    }

    proptest! {
        #[test]
        fn detects_any_double_bit_flip(data in proptest::collection::vec(any::<u8>(), 1..32),
                                       a in 0usize..256, b in 0usize..256) {
            let bits = data.len() * 8;
            let (a, b) = (a % bits, b % bits);
            prop_assume!(a != b);
            let crc = crc16(&data);
            let mut corrupted = data.clone();
            corrupted[a / 8] ^= 1 << (a % 8);
            corrupted[b / 8] ^= 1 << (b % 8);
            prop_assert!(!verify(&corrupted, crc));
        }

        #[test]
        fn clean_data_verifies(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert!(verify(&data, crc16(&data)));
        }
    }
}
