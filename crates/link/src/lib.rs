//! # anton-link
//!
//! Link layer of the Anton 2 external torus channels (Section 2.2 of
//! *"Unifying on-chip and inter-node switching within the Anton 2 network"*).
//!
//! Each of a node's twelve torus channels comprises eight 14 Gb/s SerDes
//! (112 Gb/s raw per direction). The physical and link layers provide
//! framing, CRC error checking, and go-back-N retransmission, leaving
//! 89.6 Gb/s of effective bandwidth per direction. This crate implements
//! that stack:
//!
//! * [`crc`] — CRC-16/CCITT error detection;
//! * [`frame`] — 30-byte frames carrying 24-byte flits (the 80% derate);
//! * [`gobackn`] — the go-back-N sender/receiver state machines;
//! * [`channel`] — an end-to-end lossy-channel simulation used by the
//!   Section 2.2 experiment runner.
//!
//! # Examples
//!
//! ```
//! use anton_link::channel::{LinkParams, LinkSim};
//! use anton_link::gobackn::GoBackNConfig;
//! use rand::SeedableRng;
//!
//! let mut sim = LinkSim::new(
//!     LinkParams::default(),
//!     GoBackNConfig::default(),
//!     rand::rngs::StdRng::seed_from_u64(0),
//! );
//! let stats = sim.run_saturated(5_000);
//! // An error-free saturated link delivers the paper's 89.6 Gb/s.
//! assert!((stats.goodput_gbps(&LinkParams::default()) - 89.6).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod crc;
pub mod frame;
pub mod gobackn;

pub use channel::{LinkParams, LinkSim, LinkStats};
pub use frame::{Frame, FrameKind, EFFICIENCY, FLIT_BYTES, FRAME_BYTES};
pub use gobackn::{GoBackNConfig, Receiver, Sender};
