//! Go-back-N retransmission (Section 2.2).
//!
//! The physical and link layers of each torus channel provide framing, error
//! checking, and go-back-N retransmission. The sender keeps a window of
//! unacknowledged data frames; the receiver only accepts the next in-order
//! sequence number and acknowledges cumulatively. Corrupted frames are
//! dropped by CRC and recovered by timeout-driven rewind.

use std::collections::VecDeque;

use crate::frame::{Frame, FrameKind, FLIT_BYTES};

/// Go-back-N protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoBackNConfig {
    /// Sender window in frames (must be < 128 so sequence-number halves
    /// disambiguate).
    pub window: u8,
    /// Retransmission timeout in frame slots.
    pub timeout: u64,
}

impl Default for GoBackNConfig {
    fn default() -> GoBackNConfig {
        GoBackNConfig {
            window: 16,
            timeout: 64,
        }
    }
}

/// Signed distance from sequence number `a` to `b` (mod 256), in `-128..128`.
fn seq_dist(a: u8, b: u8) -> i16 {
    let d = b.wrapping_sub(a);
    if d < 128 {
        i16::from(d)
    } else {
        i16::from(d) - 256
    }
}

/// Go-back-N sender state machine.
#[derive(Debug, Clone)]
pub struct Sender {
    cfg: GoBackNConfig,
    /// Oldest unacknowledged sequence number.
    base: u8,
    /// Unacknowledged payloads, `buffer[0]` has sequence `base`.
    buffer: VecDeque<[u8; FLIT_BYTES]>,
    /// Index into `buffer` of the next frame to (re)transmit.
    cursor: usize,
    /// Slot at which the current base frame was last sent.
    base_sent_at: u64,
    /// High-water mark of the transmit cursor, for retransmission
    /// accounting (frames below it have been sent at least once).
    high_water: usize,
    /// Total data frames put on the wire.
    pub frames_sent: u64,
    /// Data frames that were retransmissions.
    pub retransmissions: u64,
}

impl Sender {
    /// Creates a sender.
    ///
    /// # Panics
    ///
    /// Panics if the window is 0 or ≥ 128.
    pub fn new(cfg: GoBackNConfig) -> Sender {
        assert!(
            cfg.window > 0 && cfg.window < 128,
            "window must be in 1..128"
        );
        Sender {
            cfg,
            base: 0,
            buffer: VecDeque::new(),
            cursor: 0,
            base_sent_at: 0,
            high_water: 0,
            frames_sent: 0,
            retransmissions: 0,
        }
    }

    /// Whether the window has room for a new flit.
    pub fn can_accept(&self) -> bool {
        self.buffer.len() < self.cfg.window as usize
    }

    /// Queues a new flit for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the window is full; check [`Sender::can_accept`] first.
    pub fn offer(&mut self, payload: [u8; FLIT_BYTES]) {
        assert!(self.can_accept(), "go-back-N window full");
        self.buffer.push_back(payload);
    }

    /// Processes a (possibly stale) cumulative acknowledgement: `ack` is the
    /// next sequence number the receiver expects.
    pub fn on_ack(&mut self, ack: u8, now: u64) {
        let advance = seq_dist(self.base, ack);
        // An ack can only cover frames that have been sent at least once —
        // i.e. at most `high_water` ahead of the base. Anything further is
        // an aliased sequence number: with 8-bit sequence numbers, an ack
        // from ≥ 128 frames ago (or one whose corruption slipped past the
        // CRC) can land in the valid-looking half of the space after a
        // wrap. Accepting it would silently discard unacknowledged
        // payloads, which go-back-N can never recover.
        if advance <= 0 || advance as usize > self.high_water {
            return; // Stale, aliased, or out-of-window ack.
        }
        for _ in 0..advance {
            self.buffer.pop_front();
        }
        self.base = ack;
        self.cursor = self.cursor.saturating_sub(advance as usize);
        self.high_water = self.high_water.saturating_sub(advance as usize);
        self.base_sent_at = now;
    }

    /// Produces the data frame for this slot, if any: the next unsent frame,
    /// or — after a timeout — a rewind to the window base.
    pub fn next_frame(&mut self, now: u64, ack_for_peer: u8) -> Option<Frame> {
        if !self.buffer.is_empty()
            && self.cursor > 0
            && now.saturating_sub(self.base_sent_at) >= self.cfg.timeout
        {
            // Timeout: go back N — resend everything from the base.
            self.cursor = 0;
        }
        if self.cursor >= self.buffer.len() {
            return None;
        }
        let seq = self.base.wrapping_add(self.cursor as u8);
        let payload = self.buffer[self.cursor];
        if self.cursor == 0 {
            self.base_sent_at = now;
        }
        if self.cursor < self.high_water {
            self.retransmissions += 1;
        }
        self.cursor += 1;
        self.frames_sent += 1;
        self.high_water = self.high_water.max(self.cursor);
        Some(Frame::data(seq, ack_for_peer, payload))
    }

    /// Unacknowledged frames currently buffered.
    pub fn in_flight(&self) -> usize {
        self.buffer.len()
    }
}

/// Go-back-N receiver state machine.
#[derive(Debug, Clone)]
pub struct Receiver {
    expected: u8,
    /// In-order flits delivered to the network layer.
    pub delivered: Vec<[u8; FLIT_BYTES]>,
}

impl Receiver {
    /// Creates a receiver expecting sequence number 0.
    pub fn new() -> Receiver {
        Receiver {
            expected: 0,
            delivered: Vec::new(),
        }
    }

    /// Processes an arriving (already CRC-verified) frame. Returns the
    /// cumulative ack to send back.
    pub fn on_frame(&mut self, frame: &Frame) -> u8 {
        if frame.kind == FrameKind::Data && frame.seq == self.expected {
            self.delivered.push(frame.payload);
            self.expected = self.expected.wrapping_add(1);
        }
        self.expected
    }

    /// The next expected sequence number (the cumulative ack value).
    pub fn expected(&self) -> u8 {
        self.expected
    }
}

impl Default for Receiver {
    fn default() -> Receiver {
        Receiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_distance_wraps() {
        assert_eq!(seq_dist(250, 2), 8);
        assert_eq!(seq_dist(2, 250), -8);
        assert_eq!(seq_dist(7, 7), 0);
    }

    #[test]
    fn lossless_in_order_delivery() {
        let mut tx = Sender::new(GoBackNConfig::default());
        let mut rx = Receiver::new();
        let payloads: Vec<[u8; 24]> = (0..40u8).map(|i| [i; 24]).collect();
        let mut offered = 0;
        for now in 0..200u64 {
            while offered < payloads.len() && tx.can_accept() {
                tx.offer(payloads[offered]);
                offered += 1;
            }
            if let Some(f) = tx.next_frame(now, 0) {
                let ack = rx.on_frame(&f);
                tx.on_ack(ack, now);
            }
        }
        assert_eq!(rx.delivered, payloads);
        assert_eq!(tx.retransmissions, 0);
    }

    #[test]
    fn lost_frame_triggers_rewind() {
        let cfg = GoBackNConfig {
            window: 4,
            timeout: 8,
        };
        let mut tx = Sender::new(cfg);
        let mut rx = Receiver::new();
        for i in 0..4u8 {
            tx.offer([i; 24]);
        }
        let mut now = 0u64;
        // Send frame 0, drop it.
        let f0 = tx.next_frame(now, 0).unwrap();
        assert_eq!(f0.seq, 0);
        // Frames 1..3 arrive but are out of order at the receiver: ignored.
        for _ in 1..4 {
            now += 1;
            let f = tx.next_frame(now, 0).unwrap();
            let ack = rx.on_frame(&f);
            assert_eq!(ack, 0, "receiver must hold its cumulative ack");
            tx.on_ack(ack, now);
        }
        // Nothing new to send until the timeout rewinds the cursor.
        now += 1;
        assert_eq!(tx.next_frame(now, 0), None);
        now += cfg.timeout;
        let resent = tx.next_frame(now, 0).unwrap();
        assert_eq!(resent.seq, 0, "rewind must restart at the window base");
        assert!(tx.retransmissions >= 1);
        let ack = rx.on_frame(&resent);
        assert_eq!(ack, 1);
    }

    #[test]
    fn stale_acks_ignored() {
        let mut tx = Sender::new(GoBackNConfig::default());
        tx.offer([1; 24]);
        let _ = tx.next_frame(0, 0);
        tx.on_ack(1, 1);
        assert_eq!(tx.in_flight(), 0);
        // A duplicate of the old ack must not corrupt state.
        tx.on_ack(1, 2);
        tx.on_ack(0, 3);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn ack_for_unsent_frames_is_rejected() {
        // Four flits queued, only two put on the wire. An ack claiming all
        // four (an aliased sequence number from a pre-wrap ack, or a
        // corrupted ack that slipped past the CRC) must be ignored: frames
        // 2 and 3 were never sent, so no receiver can have acked them.
        let mut tx = Sender::new(GoBackNConfig::default());
        for i in 0..4u8 {
            tx.offer([i; 24]);
        }
        let _ = tx.next_frame(0, 0);
        let _ = tx.next_frame(1, 0);
        tx.on_ack(4, 2);
        assert_eq!(tx.in_flight(), 4, "aliased ack must not discard payloads");
        // A legitimate ack for the frames actually sent still advances.
        tx.on_ack(2, 3);
        assert_eq!(tx.in_flight(), 2);
    }

    #[test]
    fn aliased_ack_near_wrap_is_rejected() {
        // Walk the window up to the 8-bit wrap boundary, then replay an ack
        // whose sequence number aliases into the "ahead of base" half.
        let cfg = GoBackNConfig {
            window: 8,
            timeout: 16,
        };
        let mut tx = Sender::new(cfg);
        let mut rx = Receiver::new();
        let mut sent = 0u64;
        let mut now = 0u64;
        while sent < 300 {
            while tx.can_accept() {
                tx.offer([sent as u8; 24]);
            }
            now += 1;
            if let Some(f) = tx.next_frame(now, 0) {
                sent += 1;
                let ack = rx.on_frame(&f);
                tx.on_ack(ack, now);
            }
        }
        // Base has wrapped past 255. One frame outstanding at most; an ack
        // 100 ahead of base aliases to "future" — must be ignored.
        let outstanding = tx.in_flight();
        tx.on_ack(tx_base_plus(&tx, 100), now);
        assert_eq!(tx.in_flight(), outstanding);
    }

    /// Test helper: sequence number `delta` frames ahead of the sender base.
    fn tx_base_plus(tx: &Sender, delta: u8) -> u8 {
        tx.base.wrapping_add(delta)
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn window_overflow_rejected() {
        let mut tx = Sender::new(GoBackNConfig {
            window: 2,
            timeout: 8,
        });
        tx.offer([0; 24]);
        tx.offer([1; 24]);
        tx.offer([2; 24]);
    }
}
