//! Property tests for the go-back-N link layer.
//!
//! An adversarial channel drops frames and flips bits in patterns the
//! CRC is guaranteed to catch (CRC-16/CCITT has Hamming distance 4 at this
//! frame length, so every ≤3-bit error and every ≤16-bit burst is
//! detected). Under any such pattern the protocol must deliver flits
//! in order, exactly once, and — once the channel heals — completely,
//! while the sender never holds more than `window` unacknowledged frames.

use std::collections::VecDeque;

use anton_link::channel::{LinkParams, LinkSim};
use anton_link::frame::{Frame, FLIT_BYTES, FRAME_BYTES};
use anton_link::gobackn::{GoBackNConfig, Receiver, Sender};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-way propagation delay of the test channel, in frame slots.
const PROP_DELAY: u64 = 4;

/// How the adversary corrupts a frame it does not drop.
#[derive(Clone, Copy)]
enum Corruption {
    /// Flip 1–3 independent bits (weight below the CRC's Hamming distance).
    Flips,
    /// Flip bits within one contiguous run of ≤16 bits (within the CRC's
    /// guaranteed burst-detection length).
    Burst,
}

/// A lossy channel direction: drops frames and corrupts survivors.
struct Adversary {
    rng: StdRng,
    drop_p: f64,
    corrupt_p: f64,
    mode: Corruption,
}

impl Adversary {
    fn transmit(
        &mut self,
        mut wire: [u8; FRAME_BYTES],
        queue: &mut VecDeque<(u64, [u8; FRAME_BYTES])>,
        now: u64,
    ) {
        if self.drop_p > 0.0 && self.rng.gen_bool(self.drop_p) {
            return;
        }
        if self.corrupt_p > 0.0 && self.rng.gen_bool(self.corrupt_p) {
            match self.mode {
                Corruption::Flips => {
                    for _ in 0..self.rng.gen_range(1usize..=3) {
                        let bit = self.rng.gen_range(0..FRAME_BYTES * 8);
                        wire[bit / 8] ^= 1 << (bit % 8);
                    }
                }
                Corruption::Burst => {
                    let len = self.rng.gen_range(1usize..=16);
                    let start = self.rng.gen_range(0..FRAME_BYTES * 8 - len + 1);
                    for (i, bit) in (start..start + len).enumerate() {
                        // Always flip the first bit so the burst is nonempty.
                        if i == 0 || self.rng.gen_bool(0.5) {
                            wire[bit / 8] ^= 1 << (bit % 8);
                        }
                    }
                }
            }
        }
        queue.push_back((now + PROP_DELAY, wire));
    }

    fn heal(&mut self) {
        self.drop_p = 0.0;
        self.corrupt_p = 0.0;
    }
}

/// Drives `total` serial-numbered flits through an adversarial full-duplex
/// channel, asserting in-order exactly-once delivery and the window bound
/// every slot; then heals the channel and asserts complete delivery.
fn exercise(
    seed: u64,
    window: u8,
    timeout: u64,
    total: u64,
    drop_p: f64,
    corrupt_p: f64,
    mode: Corruption,
) -> Result<(), TestCaseError> {
    let mut tx = Sender::new(GoBackNConfig { window, timeout });
    let mut rx = Receiver::new();
    let mut forward: VecDeque<(u64, [u8; FRAME_BYTES])> = VecDeque::new();
    let mut reverse: VecDeque<(u64, [u8; FRAME_BYTES])> = VecDeque::new();
    let mut adversary = Adversary {
        rng: StdRng::seed_from_u64(seed),
        drop_p,
        corrupt_p,
        mode,
    };
    let mut offered = 0u64;
    let mut checked = 0usize;
    let lossy_slots = 4 * total;
    let deadline = lossy_slots + 20 * total + 8 * timeout + 1_000;
    let mut now = 0u64;
    while now < deadline {
        if now == lossy_slots {
            adversary.heal();
        }
        if offered < total && tx.can_accept() {
            let mut payload = [0u8; FLIT_BYTES];
            payload[..8].copy_from_slice(&offered.to_le_bytes());
            tx.offer(payload);
            offered += 1;
        }
        while let Some(&(t, wire)) = reverse.front() {
            if t > now {
                break;
            }
            reverse.pop_front();
            if let Some(f) = Frame::decode(&wire) {
                tx.on_ack(f.ack, now);
            }
        }
        while let Some(&(t, wire)) = forward.front() {
            if t > now {
                break;
            }
            forward.pop_front();
            if let Some(f) = Frame::decode(&wire) {
                let ack = rx.on_frame(&f);
                adversary.transmit(Frame::ack(ack).encode(), &mut reverse, now);
            }
        }
        if let Some(f) = tx.next_frame(now, rx.expected()) {
            adversary.transmit(f.encode(), &mut forward, now);
        }
        prop_assert!(
            tx.in_flight() <= window as usize,
            "sender exceeded its window at slot {now}: {} > {window}",
            tx.in_flight()
        );
        while checked < rx.delivered.len() {
            let mut id = [0u8; 8];
            id.copy_from_slice(&rx.delivered[checked][..8]);
            prop_assert_eq!(
                u64::from_le_bytes(id),
                checked as u64,
                "delivery out of order or duplicated at index {}",
                checked
            );
            checked += 1;
        }
        if rx.delivered.len() as u64 == total && tx.in_flight() == 0 {
            break;
        }
        now += 1;
    }
    prop_assert_eq!(
        rx.delivered.len() as u64,
        total,
        "healed channel must deliver everything (offered {}, window {window}, timeout {timeout})",
        offered
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_flips_and_drops_never_reorder_or_corrupt(
        seed in any::<u64>(),
        window in 1u8..=64,
        timeout in 12u64..64,
        total in 300u64..700,
        drop_p in 0.0f64..0.4,
        corrupt_p in 0.0f64..0.4,
    ) {
        exercise(seed, window, timeout, total, drop_p, corrupt_p, Corruption::Flips)?;
    }

    #[test]
    fn burst_corruption_never_reorders_or_corrupts(
        seed in any::<u64>(),
        window in 1u8..=64,
        timeout in 12u64..64,
        total in 300u64..700,
        drop_p in 0.0f64..0.3,
        corrupt_p in 0.0f64..0.5,
    ) {
        exercise(seed, window, timeout, total, drop_p, corrupt_p, Corruption::Burst)?;
    }
}

/// Regression for the sequence-number wraparound defect: push well over two
/// full 8-bit sequence wraps (> 2 × 256 frames) through a lossy saturated
/// link and require in-order, no-duplicate delivery throughout. Before the
/// `on_ack` high-water guard, an aliased ack near the wrap could silently
/// discard unacknowledged frames, which shows up here as a serial-number
/// gap.
#[test]
fn lossy_link_stays_in_order_across_sequence_wraps() {
    let params = LinkParams {
        bit_error_rate: 1e-3,
        ..LinkParams::default()
    };
    let mut sim = LinkSim::new(
        params,
        GoBackNConfig {
            window: 64,
            timeout: 48,
        },
        StdRng::seed_from_u64(0xA2701),
    );
    let stats = sim.run_saturated(30_000);
    assert!(
        stats.delivered > 2 * 256,
        "need more than two sequence wraps, delivered {}",
        stats.delivered
    );
    assert!(
        stats.retransmissions > 0,
        "errors must force retransmission"
    );
    for (i, flit) in sim.delivered().iter().enumerate() {
        let mut id = [0u8; 8];
        id.copy_from_slice(&flit[..8]);
        assert_eq!(
            u64::from_le_bytes(id),
            i as u64,
            "delivery out of order at {i}"
        );
    }
}
