//! Credit-flow-controlled channels.
//!
//! Every directed channel of the machine — mesh links, skip channels,
//! adapter links, and external torus channels — is a [`Wire`]: a fixed-
//! latency pipe whose receiving end holds per-VC input buffers, with
//! credit-based virtual cut-through flow control. The sender may only push a
//! packet when it holds enough credits for all of its flits; credits return
//! to the sender one link latency after the receiver drains the packet.
//!
//! Buffer entries carry a copy of the scheduling-relevant packet metadata
//! (flit count, class, pattern, age) and a per-hop route-computation cache,
//! so the simulator's switch-allocation loops never touch the packet slab
//! for blocked heads.

use std::collections::VecDeque;

use anton_core::trace::GlobalLink;
use anton_core::vc::{TrafficClass, Vc};
use anton_fault::{LinkShim, ShimStats};

use crate::state::PacketId;

/// Number of occupancy buckets tracked per VC: bucket `i` accumulates the
/// cycles the buffer held exactly `i` packets, with the last bucket
/// absorbing deeper occupancies.
pub const OCC_BUCKETS: usize = 16;

/// Time-weighted per-VC buffer-occupancy tracking, allocated only when
/// [`crate::params::SimParams::collect_metrics`] is set.
#[derive(Debug, Clone)]
struct OccTracker {
    /// Cycle each VC's occupancy last changed.
    last_change: Vec<u64>,
    /// Current buffered packets per VC.
    occupancy: Vec<u16>,
    /// Cycles spent at each occupancy level, per VC.
    hist: Vec<[u64; OCC_BUCKETS]>,
}

impl OccTracker {
    fn new(nvcs: usize) -> OccTracker {
        OccTracker {
            last_change: vec![0; nvcs],
            occupancy: vec![0; nvcs],
            hist: vec![[0; OCC_BUCKETS]; nvcs],
        }
    }

    fn note(&mut self, now: u64, vcidx: usize, delta: i32) {
        let bucket = (self.occupancy[vcidx] as usize).min(OCC_BUCKETS - 1);
        self.hist[vcidx][bucket] += now - self.last_change[vcidx];
        self.last_change[vcidx] = now;
        self.occupancy[vcidx] = (i32::from(self.occupancy[vcidx]) + delta) as u16;
    }
}

/// A lossy-link shim installed on a wire, plus the packets currently
/// crossing it. The shim tracks flits; this queue keeps the matching
/// entries in FIFO order (go-back-N delivery is strictly in-order, so the
/// head of this queue is always the next packet to complete).
#[derive(Debug)]
struct ShimState {
    shim: LinkShim,
    queue: VecDeque<(BufEntry, u8)>,
}

/// Scheduling metadata carried alongside a buffered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufEntry {
    /// The buffered packet.
    pub pkt: PacketId,
    /// Cycle at which the packet clears the receiver pipeline.
    pub ready_at: u64,
    /// Flits the packet occupies.
    pub flits: u8,
    /// Traffic class index.
    pub class: u8,
    /// Traffic-pattern tag.
    pub pattern: u8,
    /// Route-computation cache: output port at the receiving router
    /// (`0xFF` = not yet computed).
    pub rc_port: u8,
    /// Route-computation cache: VC index on the output wire.
    pub rc_vcidx: u8,
    /// Injection timestamp (age-based arbitration).
    pub age: u64,
}

/// One directed, credit-controlled channel.
#[derive(Debug)]
pub struct Wire {
    /// The structural link this wire realizes.
    pub label: GlobalLink,
    /// Flight latency in cycles (tail flit timing).
    pub latency: u64,
    /// Receiver pipeline delay added before a buffered packet becomes
    /// eligible for forwarding (router RC/VA/SA stages).
    pub rx_pipeline: u64,
    /// VCs per traffic class on this wire.
    pub group_vcs: u8,
    /// Buffer depth per VC in flits.
    depth: u8,
    /// Sender-side credits per VC index.
    credits: Vec<u8>,
    /// Packets in flight: `(tail_arrival_cycle, entry, vc_index)`, FIFO.
    in_flight: VecDeque<(u64, BufEntry, u8)>,
    /// Credits returning to the sender: `(arrival_cycle, vc_index, flits)`.
    credit_returns: VecDeque<(u64, u8, u8)>,
    /// Receiver-side buffers per VC index.
    bufs: Vec<VecDeque<BufEntry>>,
    /// Total flits ever sent on this wire (for utilization reporting).
    pub flits_carried: u64,
    /// Bit per VC index: set while the VC's receive buffer is nonempty.
    occupied: u16,
    /// Occupancy histogram state; `None` unless metrics collection is on.
    occ: Option<Box<OccTracker>>,
    /// Lossy-link shim; `None` (the ideal fixed-latency channel) unless a
    /// fault schedule installed one.
    shim: Option<Box<ShimState>>,
}

impl Wire {
    /// Creates a wire with `group_vcs` VCs per class (two classes) and the
    /// given buffer depth per VC.
    pub fn new(
        label: GlobalLink,
        latency: u64,
        rx_pipeline: u64,
        group_vcs: u8,
        depth: u8,
    ) -> Wire {
        assert!(latency >= 1, "wires need at least one cycle of latency");
        assert!(
            group_vcs >= 1 && depth >= 2,
            "need VCs and room for a max-size packet"
        );
        let nvcs = 2 * group_vcs as usize;
        Wire {
            label,
            latency,
            rx_pipeline,
            group_vcs,
            depth,
            credits: vec![depth; nvcs],
            in_flight: VecDeque::new(),
            credit_returns: VecDeque::new(),
            bufs: vec![VecDeque::new(); nvcs],
            flits_carried: 0,
            occupied: 0,
            occ: None,
            shim: None,
        }
    }

    /// Replaces the ideal channel with a lossy go-back-N link model. Call
    /// before any traffic flows.
    pub fn install_shim(&mut self, shim: LinkShim) {
        assert!(
            self.in_flight.is_empty() && self.occupied == 0,
            "cannot install a shim on a wire carrying traffic"
        );
        self.shim = Some(Box::new(ShimState {
            shim,
            queue: VecDeque::new(),
        }));
    }

    /// This wire's lossy-link counters, if a shim is installed.
    pub fn shim_stats(&self) -> Option<ShimStats> {
        self.shim.as_ref().map(|s| s.shim.stats())
    }

    /// Flits held inside the lossy-link shim (0 without a shim).
    pub fn shim_backlog(&self) -> u64 {
        self.shim.as_ref().map_or(0, |s| s.shim.backlog_flits())
    }

    /// Turns on time-weighted per-VC occupancy tracking (see
    /// [`Wire::occupancy_histograms`]). Call before any traffic flows.
    pub fn enable_occupancy_tracking(&mut self) {
        self.occ = Some(Box::new(OccTracker::new(self.num_vcs())));
    }

    /// Per-VC occupancy histograms up to `now`: `hist[vc][b]` is the number
    /// of cycles the VC's receive buffer held `b` packets (the last bucket
    /// absorbs occupancies ≥ [`OCC_BUCKETS`]` - 1`). `None` unless
    /// [`Wire::enable_occupancy_tracking`] was called.
    pub fn occupancy_histograms(&self, now: u64) -> Option<Vec<[u64; OCC_BUCKETS]>> {
        let t = self.occ.as_deref()?;
        let mut hist = t.hist.clone();
        for (vc, h) in hist.iter_mut().enumerate() {
            let bucket = (t.occupancy[vc] as usize).min(OCC_BUCKETS - 1);
            h[bucket] += now.saturating_sub(t.last_change[vc]);
        }
        Some(hist)
    }

    /// Total VC count (both classes).
    pub fn num_vcs(&self) -> usize {
        self.credits.len()
    }

    /// Flattened VC index of `(class, vc)` on this wire.
    ///
    /// # Panics
    ///
    /// Panics if `vc` exceeds the wire's per-class VC count.
    pub fn vc_index(&self, class: TrafficClass, vc: Vc) -> u8 {
        assert!(
            vc.0 < self.group_vcs,
            "vc {vc} out of range for wire {} with {} VCs/class",
            self.label,
            self.group_vcs
        );
        class.index() as u8 * self.group_vcs + vc.0
    }

    /// Whether the sender holds enough credits for a `flits`-flit packet.
    #[inline]
    pub fn can_send(&self, vcidx: u8, flits: u8) -> bool {
        self.credits[vcidx as usize] >= flits
    }

    /// Pushes a packet onto the wire.
    ///
    /// # Panics
    ///
    /// Panics without sufficient credits; check [`Wire::can_send`] first.
    pub fn send(&mut self, now: u64, mut entry: BufEntry, vcidx: u8) {
        let flits = entry.flits;
        assert!(
            self.can_send(vcidx, flits),
            "send without credits on {}",
            self.label
        );
        self.credits[vcidx as usize] -= flits;
        self.flits_carried += u64::from(flits);
        entry.rc_port = 0xFF;
        if let Some(s) = &mut self.shim {
            // Lossy path: the packet's flits cross the go-back-N link; the
            // entry waits in the shim queue until the link layer delivers
            // its last flit.
            s.queue.push_back((entry, vcidx));
            s.shim.enqueue(now, flits);
            return;
        }
        let tail_arrival = now + self.latency + u64::from(flits) - 1;
        entry.ready_at = tail_arrival + self.rx_pipeline;
        self.in_flight.push_back((tail_arrival, entry, vcidx));
    }

    /// Advances wire state to `now`: matured credits return to the sender
    /// and arrived packets enter the receive buffers.
    ///
    /// Returns `(arrival_ready, credited)`: the latest receiver-pipeline
    /// ready time among arrivals this cycle (to wake the consumer), and
    /// whether any credits returned (to wake the producer).
    pub fn tick(&mut self, now: u64) -> (Option<u64>, bool) {
        let mut credited = false;
        while let Some(&(t, _, _)) = self.credit_returns.front() {
            if t > now {
                break;
            }
            let (_, vcidx, flits) = self.credit_returns.pop_front().expect("peeked");
            self.credits[vcidx as usize] += flits;
            credited = true;
            debug_assert!(
                self.credits[vcidx as usize] <= self.depth,
                "credit overflow"
            );
        }
        let mut arrival_ready = None;
        while let Some(&(t, entry, vcidx)) = self.in_flight.front() {
            if t > now {
                break;
            }
            self.in_flight.pop_front();
            arrival_ready =
                Some(arrival_ready.map_or(entry.ready_at, |r: u64| r.max(entry.ready_at)));
            if let Some(t) = &mut self.occ {
                t.note(now, vcidx as usize, 1);
            }
            self.bufs[vcidx as usize].push_back(entry);
            self.occupied |= 1 << vcidx;
        }
        if let Some(s) = &mut self.shim {
            let completed = s.shim.advance(now);
            for _ in 0..completed {
                let (mut entry, vcidx) = s
                    .queue
                    .pop_front()
                    .expect("shim completed a packet the wire never queued");
                entry.ready_at = now + self.rx_pipeline;
                arrival_ready =
                    Some(arrival_ready.map_or(entry.ready_at, |r: u64| r.max(entry.ready_at)));
                if let Some(t) = &mut self.occ {
                    t.note(now, vcidx as usize, 1);
                }
                self.bufs[vcidx as usize].push_back(entry);
                self.occupied |= 1 << vcidx;
            }
        }
        (arrival_ready, credited)
    }

    /// Whether the wire has no flits or credits in flight (nothing left to
    /// tick).
    #[inline]
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.credit_returns.is_empty()
            && self.shim.as_ref().is_none_or(|s| s.shim.idle())
    }

    /// Bitmask of VC indices with nonempty receive buffers (heads may still
    /// be mid-pipeline; check [`Wire::head`]).
    #[inline]
    pub fn occupied_mask(&self) -> u16 {
        self.occupied
    }

    /// The head entry of a VC buffer, if it is ready at `now`.
    #[inline]
    pub fn head(&self, now: u64, vcidx: u8) -> Option<&BufEntry> {
        match self.bufs[vcidx as usize].front() {
            Some(e) if e.ready_at <= now => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the head entry (for the route-computation cache).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    #[inline]
    pub fn head_mut(&mut self, vcidx: u8) -> &mut BufEntry {
        self.bufs[vcidx as usize]
            .front_mut()
            .expect("head of empty VC buffer")
    }

    /// Pops the head packet of a VC buffer, scheduling the credit return.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop(&mut self, now: u64, vcidx: u8) -> BufEntry {
        let entry = self.bufs[vcidx as usize]
            .pop_front()
            .expect("pop from empty VC buffer");
        if let Some(t) = &mut self.occ {
            t.note(now, vcidx as usize, -1);
        }
        if self.bufs[vcidx as usize].is_empty() {
            self.occupied &= !(1 << vcidx);
        }
        self.credit_returns
            .push_back((now + self.latency, vcidx, entry.flits));
        entry
    }

    /// Whether any packet sits in flight or buffered.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty()
            && self.occupied == 0
            && self.shim.as_ref().is_none_or(|s| s.queue.is_empty())
    }

    /// Verifies per-VC credit conservation: for every VC, the sender's
    /// credits plus every flit the wire is accountable for (in flight,
    /// inside the shim, buffered at the receiver, or returning as credits)
    /// must equal the buffer depth. Returns a diagnostic on violation.
    pub fn check_credit_balance(&self) -> Result<(), String> {
        for vc in 0..self.num_vcs() {
            let mut total = u32::from(self.credits[vc]);
            for &(_, vcidx, flits) in &self.credit_returns {
                if usize::from(vcidx) == vc {
                    total += u32::from(flits);
                }
            }
            for &(_, entry, vcidx) in &self.in_flight {
                if usize::from(vcidx) == vc {
                    total += u32::from(entry.flits);
                }
            }
            for entry in &self.bufs[vc] {
                total += u32::from(entry.flits);
            }
            if let Some(s) = &self.shim {
                for &(entry, vcidx) in &s.queue {
                    if usize::from(vcidx) == vc {
                        total += u32::from(entry.flits);
                    }
                }
            }
            if total != u32::from(self.depth) {
                return Err(format!(
                    "credit imbalance on {} vc {vc}: accounted {total} flits \
                     against depth {}",
                    self.label, self.depth
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::chip::LocalEndpointId;
    use anton_core::chip::LocalLink;
    use anton_core::topology::NodeId;

    fn wire(latency: u64, depth: u8) -> Wire {
        Wire::new(
            GlobalLink::Local {
                node: NodeId(0),
                link: LocalLink::EpToRouter(LocalEndpointId(0)),
            },
            latency,
            0,
            4,
            depth,
        )
    }

    fn entry(pkt: u32, flits: u8) -> BufEntry {
        BufEntry {
            pkt: PacketId(pkt),
            ready_at: 0,
            flits,
            class: 0,
            pattern: 0,
            rc_port: 0xFF,
            rc_vcidx: 0,
            age: 0,
        }
    }

    #[test]
    fn packet_arrives_after_latency() {
        let mut w = wire(3, 4);
        w.send(10, entry(7, 1), 0);
        for t in 10..13 {
            w.tick(t);
            assert!(w.head(t, 0).is_none(), "arrived early at {t}");
        }
        w.tick(13);
        assert_eq!(w.head(13, 0).unwrap().pkt, PacketId(7));
    }

    #[test]
    fn two_flit_packet_arrives_one_cycle_later() {
        let mut w = wire(3, 4);
        w.send(0, entry(1, 2), 0);
        w.tick(3);
        assert!(w.head(3, 0).is_none());
        w.tick(4);
        assert_eq!(w.head(4, 0).unwrap().pkt, PacketId(1));
    }

    #[test]
    fn credits_block_and_return() {
        let mut w = wire(2, 3);
        assert!(w.can_send(0, 2));
        w.send(0, entry(1, 2), 0);
        assert!(!w.can_send(0, 2), "only 1 credit left");
        assert!(w.can_send(0, 1));
        w.send(0, entry(2, 1), 0);
        assert!(!w.can_send(0, 1));
        // Drain at the receiver; credits return after the wire latency.
        w.tick(3);
        assert_eq!(w.pop(3, 0).pkt, PacketId(1));
        w.tick(4);
        assert!(!w.can_send(0, 2), "credits in flight");
        w.tick(5);
        assert!(w.can_send(0, 2), "credits should have returned");
    }

    #[test]
    fn vcs_are_independent() {
        let mut w = wire(1, 2);
        w.send(0, entry(1, 2), 0);
        assert!(!w.can_send(0, 1));
        assert!(w.can_send(3, 2), "other VC unaffected");
        w.send(0, entry(2, 1), 3);
        w.tick(2);
        assert_eq!(w.head(2, 3).unwrap().pkt, PacketId(2));
        assert_eq!(w.occupied_mask(), 0b1001);
    }

    #[test]
    fn rx_pipeline_delays_readiness() {
        let mut w = Wire::new(
            GlobalLink::Local {
                node: NodeId(0),
                link: LocalLink::EpToRouter(LocalEndpointId(0)),
            },
            1,
            3,
            4,
            4,
        );
        w.send(0, entry(9, 1), 1);
        w.tick(1);
        assert!(w.head(1, 1).is_none(), "pipeline stages not yet elapsed");
        w.tick(4);
        assert_eq!(w.head(4, 1).unwrap().pkt, PacketId(9));
    }

    #[test]
    fn occupied_mask_tracks_buffers() {
        let mut w = wire(1, 4);
        assert_eq!(w.occupied_mask(), 0);
        w.send(0, entry(1, 1), 2);
        w.tick(1);
        assert_eq!(w.occupied_mask(), 0b100);
        w.pop(1, 2);
        assert_eq!(w.occupied_mask(), 0);
        assert!(w.is_quiescent() || !w.is_quiescent());
    }

    #[test]
    fn rc_cache_cleared_on_send() {
        let mut w = wire(1, 4);
        let mut e = entry(1, 1);
        e.rc_port = 3;
        w.send(0, e, 0);
        w.tick(1);
        assert_eq!(
            w.head(1, 0).unwrap().rc_port,
            0xFF,
            "stale RC must not travel"
        );
    }

    #[test]
    fn vc_index_layout() {
        let w = wire(1, 4);
        assert_eq!(w.vc_index(TrafficClass::Request, Vc(0)), 0);
        assert_eq!(w.vc_index(TrafficClass::Request, Vc(3)), 3);
        assert_eq!(w.vc_index(TrafficClass::Reply, Vc(0)), 4);
        assert_eq!(w.vc_index(TrafficClass::Reply, Vc(3)), 7);
    }

    #[test]
    #[should_panic(expected = "without credits")]
    fn overcommit_rejected() {
        let mut w = wire(1, 2);
        w.send(0, entry(1, 2), 0);
        w.send(0, entry(2, 1), 0);
    }

    #[test]
    fn shim_at_zero_ber_matches_ideal_wire_cycle_for_cycle() {
        use anton_link::gobackn::GoBackNConfig;
        let gbn = GoBackNConfig {
            window: 64,
            timeout: 192,
        };
        let mut ideal = wire(44, 8);
        let mut lossy = wire(44, 8);
        lossy.install_shim(LinkShim::new(44, gbn, 0.0, Vec::new(), 1));
        // A single-flit and a two-flit packet, spaced like the serializer
        // would emit them (≥ 45/14 cycles apart per flit).
        for w in [&mut ideal, &mut lossy] {
            w.send(5, entry(1, 1), 0);
        }
        let mut popped = 0;
        for t in 5..400u64 {
            if t == 12 {
                for w in [&mut ideal, &mut lossy] {
                    w.send(t, entry(2, 2), 3);
                }
            }
            let (ra, ca) = ideal.tick(t);
            let (rb, cb) = lossy.tick(t);
            assert_eq!(ra, rb, "arrival wakeups diverge at cycle {t}");
            assert_eq!(ca, cb, "credit wakeups diverge at cycle {t}");
            for vc in [0u8, 3] {
                if ideal.head(t, vc).is_some() {
                    let a = ideal.pop(t, vc);
                    let b = lossy.pop(t, vc);
                    assert_eq!(a, b, "delivered entries diverge at cycle {t}");
                    popped += 1;
                }
            }
        }
        assert_eq!(popped, 2, "both packets must arrive");
        ideal.check_credit_balance().unwrap();
        lossy.check_credit_balance().unwrap();
    }

    #[test]
    fn credit_balance_accounts_for_shim_queue() {
        use anton_link::gobackn::GoBackNConfig;
        let gbn = GoBackNConfig {
            window: 64,
            timeout: 192,
        };
        let mut w = wire(10, 6);
        // Link down forever: flits stay inside the shim, credits stay spent.
        w.install_shim(LinkShim::new(10, gbn, 0.0, vec![(0, u64::MAX)], 1));
        w.send(0, entry(1, 2), 0);
        for t in 1..100 {
            w.tick(t);
        }
        assert!(!w.can_send(0, 5));
        assert_eq!(w.shim_backlog(), 2);
        w.check_credit_balance().unwrap();
        assert!(!w.idle(), "a stuck shim must keep the wire active");
        assert!(!w.is_quiescent());
    }

    #[test]
    fn occupancy_histogram_weights_time_at_each_level() {
        let mut w = wire(1, 4);
        assert!(
            w.occupancy_histograms(10).is_none(),
            "tracking is off by default"
        );
        w.enable_occupancy_tracking();
        // Arrives at cycle 1, occupancy 0 for cycles [0, 1).
        w.send(0, entry(1, 1), 0);
        w.tick(1);
        // Occupancy 1 for cycles [1, 5), then drained.
        w.pop(5, 0);
        let hist = w.occupancy_histograms(10).expect("tracking enabled");
        assert_eq!(hist[0][0], 1 + 5, "empty before arrival and after drain");
        assert_eq!(hist[0][1], 4, "held one packet for four cycles");
        assert!(hist[0][2..].iter().all(|&c| c == 0));
        // Untouched VCs accrue everything in the empty bucket.
        assert_eq!(hist[3][0], 10);
    }
}
