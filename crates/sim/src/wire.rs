//! Credit-flow-controlled channels.
//!
//! Every directed channel of the machine — mesh links, skip channels,
//! adapter links, and external torus channels — is a [`Wire`]: a fixed-
//! latency pipe whose receiving end holds per-VC input buffers, with
//! credit-based virtual cut-through flow control. The sender may only push a
//! packet when it holds enough credits for all of its flits; credits return
//! to the sender one link latency after the receiver drains the packet.
//!
//! Buffer entries carry a copy of the scheduling-relevant packet metadata
//! (flit count, class, pattern, age) and a per-hop route-computation cache,
//! so the simulator's switch-allocation loops never touch the packet slab
//! for blocked heads.

use std::collections::VecDeque;

use anton_core::trace::GlobalLink;
use anton_core::vc::{TrafficClass, Vc};
use anton_fault::{LinkShim, ShimStats};

use crate::state::PacketId;
use crate::wake::HORIZON;

/// Number of occupancy buckets tracked per VC: bucket `i` accumulates the
/// cycles the buffer held exactly `i` packets, with the last bucket
/// absorbing deeper occupancies.
pub const OCC_BUCKETS: usize = 16;

/// Upper bound on flattened VC indices per wire (two classes of at most
/// eight VCs), sizing the dense per-wire credit arrays the simulator keeps
/// outside the [`Wire`] structs for cache-friendly hot-path access.
pub const MAX_WIRE_VCS: usize = 16;

/// Dense sender-side credit counters of one wire, owned by the simulator
/// (see [`Sim`](crate::sim::Sim)) so switch-allocation credit checks scan a
/// compact array instead of chasing into scattered `Wire` structs.
pub type WireCredits = [u8; MAX_WIRE_VCS];

/// Dense head-of-buffer slots of one wire, also simulator-owned: the head
/// entry of VC `v` lives in slot `v` whenever the wire's occupied bit `v`
/// is set (the `Wire`'s own queues hold only the entries *behind* the
/// head). Switch allocation peeks blocked heads every cycle, so this is the
/// hottest state in the simulator — one dense load instead of a pointer
/// chase through per-VC deques.
pub type WireHeads = [BufEntry; MAX_WIRE_VCS];

/// Compact gating record of one VC head: the ready cycle plus everything the
/// per-cycle switch-allocation scans need to decide whether a head can move
/// (cached route, flit count for the credit check, pattern for weighted
/// arbitration). Packed to 8 bytes so one load fetches the whole gate and a
/// full 16-VC row spans two cache lines (one for the common 8-VC wires); the
/// full [`BufEntry`] is only loaded for heads that pass every gate.
///
/// Ready cycles are clamped to `u32` (simulated runs sit far below 2³²
/// cycles; the clamp is debug-asserted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateEntry {
    /// Head ready cycle.
    pub ready: u32,
    /// Route-computation cache: output port (`0xFF` = not yet computed).
    /// Receiving channel adapters reuse this slot as an arrival-kind cache
    /// (see the adapter steps in [`Sim`](crate::sim::Sim)).
    pub rc_port: u8,
    /// Route-computation cache: VC index on the output wire.
    pub rc_vcidx: u8,
    /// Flits the head packet occupies.
    pub flits: u8,
    /// Traffic-pattern tag.
    pub pattern: u8,
}

impl GateEntry {
    /// Placeholder for unoccupied head slots.
    pub const EMPTY: GateEntry = GateEntry {
        ready: 0,
        rc_port: 0xFF,
        rc_vcidx: 0,
        flits: 0,
        pattern: 0,
    };

    pub(crate) fn of(entry: &BufEntry) -> GateEntry {
        debug_assert!(entry.ready_at <= u64::from(u32::MAX), "cycle overflow");
        GateEntry {
            ready: entry.ready_at as u32,
            rc_port: entry.rc_port,
            rc_vcidx: entry.rc_vcidx,
            flits: entry.flits,
            pattern: entry.pattern,
        }
    }
}

/// Dense per-VC gating records of one wire (see [`GateEntry`]).
pub type WireGate = [GateEntry; MAX_WIRE_VCS];

/// The simulator-owned receive-side state of one wire, borrowed together
/// for the maintenance points ([`Wire::tick`], [`Wire::pop`]) that file and
/// promote head entries.
#[derive(Debug)]
pub struct WireRx<'a> {
    /// Bitmask of VCs holding at least one packet.
    pub occupied: &'a mut u16,
    /// Full head entry per VC (valid where `occupied` is set).
    pub heads: &'a mut [BufEntry],
    /// Head gating record per VC.
    pub gate: &'a mut [GateEntry],
    /// Bitmask of VCs holding at least one packet *behind* the head (the
    /// wire's internal queue is non-empty): when clear, a pop needs no
    /// promotion and the simulator's fast path can skip the wire entirely.
    pub queued: &'a mut u16,
}

impl WireRx<'_> {
    /// Files `entry` as VC `vcidx`'s head, refreshing the dense mirrors.
    #[inline]
    fn set_head(&mut self, entry: BufEntry, vcidx: u8) {
        self.gate[vcidx as usize] = GateEntry::of(&entry);
        self.heads[vcidx as usize] = entry;
        *self.occupied |= 1 << vcidx;
    }
}

/// Time-weighted per-VC buffer-occupancy tracking, allocated only when
/// [`crate::params::SimParams::collect_metrics`] is set.
#[derive(Debug, Clone)]
struct OccTracker {
    /// Cycle each VC's occupancy last changed.
    last_change: Vec<u64>,
    /// Current buffered packets per VC.
    occupancy: Vec<u16>,
    /// Cycles spent at each occupancy level, per VC.
    hist: Vec<[u64; OCC_BUCKETS]>,
}

impl OccTracker {
    fn new(nvcs: usize) -> OccTracker {
        OccTracker {
            last_change: vec![0; nvcs],
            occupancy: vec![0; nvcs],
            hist: vec![[0; OCC_BUCKETS]; nvcs],
        }
    }

    fn note(&mut self, now: u64, vcidx: usize, delta: i32) {
        let bucket = (self.occupancy[vcidx] as usize).min(OCC_BUCKETS - 1);
        self.hist[vcidx][bucket] += now - self.last_change[vcidx];
        self.last_change[vcidx] = now;
        self.occupancy[vcidx] = (i32::from(self.occupancy[vcidx]) + delta) as u16;
    }
}

/// A lossy-link shim installed on a wire, plus the packets currently
/// crossing it. The shim tracks flits; this queue keeps the matching
/// entries in FIFO order (go-back-N delivery is strictly in-order, so the
/// head of this queue is always the next packet to complete).
#[derive(Debug)]
struct ShimState {
    shim: LinkShim,
    queue: VecDeque<(BufEntry, u8)>,
}

/// A wire's relationship to a shard boundary in the sharded kernel.
///
/// Every shard of a sharded run holds a structurally complete machine; a
/// torus wire whose two endpoints are owned by different shards exists in
/// both, with complementary roles. The producing shard's copy carries the
/// sender state (credits, serializer, lossy-link shim) and diverts matured
/// packets into an outbox instead of its local receive buffers; the
/// consuming shard's copy carries the receive buffers and diverts credit
/// returns back toward the producer. Outboxes drain at window barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryRole {
    /// Not a boundary wire: both endpoints in the same shard (or a serial
    /// run). All traffic stays local.
    #[default]
    Interior,
    /// This shard owns the sender; matured packets go to the outbox.
    Export,
    /// This shard owns the receiver; credit returns go to the outbox.
    Import,
}

/// Scheduling metadata carried alongside a buffered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufEntry {
    /// The buffered packet.
    pub pkt: PacketId,
    /// Cycle at which the packet clears the receiver pipeline.
    pub ready_at: u64,
    /// Flits the packet occupies.
    pub flits: u8,
    /// Traffic class index.
    pub class: u8,
    /// Traffic-pattern tag.
    pub pattern: u8,
    /// Route-computation cache: output port at the receiving router
    /// (`0xFF` = not yet computed).
    pub rc_port: u8,
    /// Route-computation cache: VC index on the output wire.
    pub rc_vcidx: u8,
    /// Stamped chip-traversal route context: dense [`LocalAttach`] code of
    /// the packet's target adapter on the current chip (`0xFF` = unstamped;
    /// routers fall back to the packet slab). Stamped where the packet
    /// enters the mesh (injection or channel adapter), where its slab line
    /// is already hot; stable until the packet leaves the chip.
    ///
    /// [`LocalAttach`]: anton_core::chip::LocalAttach
    pub target: u8,
    /// Stamped VC/arrival context read together with [`BufEntry::target`]:
    /// bits 0–2 the M-group VC, bits 3–5 the T-group VC, bit 6 set when the
    /// packet arrived on an X-dimension torus link (skip-channel
    /// eligibility).
    pub meta: u8,
    /// Injection timestamp (age-based arbitration).
    pub age: u64,
}

impl BufEntry {
    /// Placeholder for unoccupied head slots and scratch arrays.
    pub const EMPTY: BufEntry = BufEntry {
        pkt: PacketId(0),
        ready_at: 0,
        flits: 0,
        class: 0,
        pattern: 0,
        rc_port: 0xFF,
        rc_vcidx: 0,
        target: 0xFF,
        meta: 0,
        age: 0,
    };
}

/// One directed, credit-controlled channel.
#[derive(Debug)]
pub struct Wire {
    /// The structural link this wire realizes.
    pub label: GlobalLink,
    /// Flight latency in cycles (tail flit timing).
    pub latency: u64,
    /// Receiver pipeline delay added before a buffered packet becomes
    /// eligible for forwarding (router RC/VA/SA stages).
    pub rx_pipeline: u64,
    /// VCs per traffic class on this wire.
    pub group_vcs: u8,
    /// Buffer depth per VC in flits.
    depth: u8,
    /// Packets in flight: `(tail_arrival_cycle, entry, vc_index)`, FIFO.
    in_flight: VecDeque<(u64, BufEntry, u8)>,
    /// Credits returning to the sender: `(arrival_cycle, vc_index, flits)`.
    credit_returns: VecDeque<(u64, u8, u8)>,
    /// Receiver-side buffers per VC index, holding only the entries behind
    /// the head (the head itself lives in the simulator-owned
    /// [`WireHeads`] slot, flagged by the occupied bit).
    bufs: Vec<VecDeque<BufEntry>>,
    /// Total flits ever sent on this wire (for utilization reporting).
    pub flits_carried: u64,
    /// Occupancy histogram state; `None` unless metrics collection is on.
    occ: Option<Box<OccTracker>>,
    /// Lossy-link shim; `None` (the ideal fixed-latency channel) unless a
    /// fault schedule installed one.
    shim: Option<Box<ShimState>>,
    /// Shard-boundary role (see [`BoundaryRole`]); `Interior` in serial
    /// runs.
    role: BoundaryRole,
    /// Matured packets awaiting transfer to the consuming shard
    /// (`Export` role only): `(maturity_cycle, entry, vc_index)`, in send
    /// order (ascending maturity per VC and globally, since sends are).
    outbox: Vec<(u64, BufEntry, u8)>,
    /// Credit returns awaiting transfer to the producing shard (`Import`
    /// role only): `(arrival_cycle, vc_index, flits)`, in pop order.
    outbox_credits: Vec<(u64, u8, u8)>,
}

impl Wire {
    /// Creates a wire with `group_vcs` VCs per class (two classes) and the
    /// given buffer depth per VC.
    pub fn new(
        label: GlobalLink,
        latency: u64,
        rx_pipeline: u64,
        group_vcs: u8,
        depth: u8,
    ) -> Wire {
        assert!(latency >= 1, "wires need at least one cycle of latency");
        assert!(
            group_vcs >= 1 && depth >= 2,
            "need VCs and room for a max-size packet"
        );
        let nvcs = 2 * group_vcs as usize;
        assert!(nvcs <= MAX_WIRE_VCS, "too many VCs for the credit arrays");
        Wire {
            label,
            latency,
            rx_pipeline,
            group_vcs,
            depth,
            in_flight: VecDeque::new(),
            credit_returns: VecDeque::new(),
            bufs: vec![VecDeque::new(); nvcs],
            flits_carried: 0,
            occ: None,
            shim: None,
            role: BoundaryRole::Interior,
            outbox: Vec::new(),
            outbox_credits: Vec::new(),
        }
    }

    /// Marks this wire's shard-boundary role. Call before any traffic flows.
    pub fn set_boundary_role(&mut self, role: BoundaryRole) {
        assert!(
            self.in_flight.is_empty() && self.bufs.iter().all(VecDeque::is_empty),
            "cannot change the boundary role of a wire carrying traffic"
        );
        self.role = role;
    }

    /// This wire's shard-boundary role.
    pub fn boundary_role(&self) -> BoundaryRole {
        self.role
    }

    /// The sender-side credit state a fresh wire starts with: every VC holds
    /// a full buffer's worth of credits.
    pub fn initial_credits(&self) -> WireCredits {
        let mut credits = [0u8; MAX_WIRE_VCS];
        for c in credits.iter_mut().take(self.num_vcs()) {
            *c = self.depth;
        }
        credits
    }

    /// Replaces the ideal channel with a lossy go-back-N link model. Call
    /// before any traffic flows.
    pub fn install_shim(&mut self, shim: LinkShim) {
        assert!(
            self.in_flight.is_empty() && self.bufs.iter().all(VecDeque::is_empty),
            "cannot install a shim on a wire carrying traffic"
        );
        self.shim = Some(Box::new(ShimState {
            shim,
            queue: VecDeque::new(),
        }));
    }

    /// Tears down an installed shim's go-back-N session (see
    /// `LinkShim::drain_reset`) and hands back every buffered entry the
    /// link layer had not yet delivered, restoring the sender-side credits
    /// their flits held. The caller re-routes the packets; the wire is
    /// left clean for the link's next up-window. Returns the drained
    /// entries in their original send order (empty without a shim, or
    /// when the shim is idle).
    pub fn drain_shim_undelivered(
        &mut self,
        now: u64,
        credits: &mut WireCredits,
    ) -> Vec<(BufEntry, u8)> {
        let Some(s) = &mut self.shim else {
            return Vec::new();
        };
        let pending = s.shim.drain_reset(now);
        debug_assert_eq!(
            pending,
            s.queue.len(),
            "shim pending packets out of sync with the wire's entry queue"
        );
        let _ = pending;
        let drained: Vec<(BufEntry, u8)> = s.queue.drain(..).collect();
        for &(entry, vcidx) in &drained {
            credits[vcidx as usize] += entry.flits;
            debug_assert!(
                credits[vcidx as usize] <= self.depth,
                "drain restored more credits than the buffer depth"
            );
        }
        drained
    }

    /// This wire's lossy-link counters, if a shim is installed.
    pub fn shim_stats(&self) -> Option<ShimStats> {
        self.shim.as_ref().map(|s| s.shim.stats())
    }

    /// Flits held inside the lossy-link shim (0 without a shim).
    pub fn shim_backlog(&self) -> u64 {
        self.shim.as_ref().map_or(0, |s| s.shim.backlog_flits())
    }

    /// Turns link-layer event logging (retransmissions, frame drops) on or
    /// off on the installed shim; a no-op without one. The flight recorder
    /// drains the log each tick via [`Wire::take_shim_events`].
    pub fn set_shim_event_recording(&mut self, on: bool) {
        if let Some(s) = &mut self.shim {
            s.shim.set_event_recording(on);
        }
    }

    /// Drains the shim's event log (empty, and allocation-free, when
    /// recording is off or no shim is installed).
    pub fn take_shim_events(&mut self) -> Vec<(u64, anton_fault::ShimEvent)> {
        self.shim
            .as_mut()
            .map_or_else(Vec::new, |s| s.shim.take_events())
    }

    /// Turns on time-weighted per-VC occupancy tracking (see
    /// [`Wire::occupancy_histograms`]). Call before any traffic flows.
    pub fn enable_occupancy_tracking(&mut self) {
        self.occ = Some(Box::new(OccTracker::new(self.num_vcs())));
    }

    /// Per-VC occupancy histograms up to `now`: `hist[vc][b]` is the number
    /// of cycles the VC's receive buffer held `b` packets (the last bucket
    /// absorbs occupancies ≥ [`OCC_BUCKETS`]` - 1`). `None` unless
    /// [`Wire::enable_occupancy_tracking`] was called.
    pub fn occupancy_histograms(&self, now: u64) -> Option<Vec<[u64; OCC_BUCKETS]>> {
        let t = self.occ.as_deref()?;
        let mut hist = t.hist.clone();
        for (vc, h) in hist.iter_mut().enumerate() {
            let bucket = (t.occupancy[vc] as usize).min(OCC_BUCKETS - 1);
            h[bucket] += now.saturating_sub(t.last_change[vc]);
        }
        Some(hist)
    }

    /// Total VC count (both classes).
    pub fn num_vcs(&self) -> usize {
        self.bufs.len()
    }

    /// Flattened VC index of `(class, vc)` on this wire.
    ///
    /// # Panics
    ///
    /// Panics if `vc` exceeds the wire's per-class VC count.
    pub fn vc_index(&self, class: TrafficClass, vc: Vc) -> u8 {
        assert!(
            vc.0 < self.group_vcs,
            "vc {vc} out of range for wire {} with {} VCs/class",
            self.label,
            self.group_vcs
        );
        class.index() as u8 * self.group_vcs + vc.0
    }

    /// Pushes a packet onto the wire, spending the sender's credits.
    ///
    /// On an ideal interior wire (no shim, no occupancy tracking) whose
    /// arrival fits inside the scheduler horizon, the entry is filed
    /// straight into the receive-side buffers — its `ready_at` stamp alone
    /// gates visibility, so no in-flight queue walk or per-arrival wire
    /// tick is needed. The returned cycle is when the consumer must be
    /// woken; `None` means arrival is handled by [`Wire::tick`] (or a
    /// window barrier, for boundary wires).
    ///
    /// # Panics
    ///
    /// Panics without sufficient credits; check the credit array first.
    pub fn send(
        &mut self,
        now: u64,
        mut entry: BufEntry,
        vcidx: u8,
        credits: &mut WireCredits,
        rx: &mut WireRx,
    ) -> Option<u64> {
        let flits = entry.flits;
        assert!(
            credits[vcidx as usize] >= flits,
            "send without credits on {}",
            self.label
        );
        credits[vcidx as usize] -= flits;
        self.flits_carried += u64::from(flits);
        entry.rc_port = 0xFF;
        if let Some(s) = &mut self.shim {
            // Lossy path: the packet's flits cross the go-back-N link; the
            // entry waits in the shim queue until the link layer delivers
            // its last flit.
            s.queue.push_back((entry, vcidx));
            s.shim.enqueue(now, flits);
            return None;
        }
        let tail_arrival = now + self.latency + u64::from(flits) - 1;
        entry.ready_at = tail_arrival + self.rx_pipeline;
        if self.role == BoundaryRole::Export {
            // The receiver lives in another shard: the matured entry ships
            // at the next window barrier instead of entering local buffers.
            self.outbox.push((tail_arrival, entry, vcidx));
            return None;
        }
        // Direct-file fast path. Timing is identical to the in-flight path
        // (`ready_at` gates the consumer either way); the gates keep the
        // slow cases exact: occupancy histograms must see arrivals on their
        // arrival cycle, per-VC FIFO order must not let a direct-filed
        // entry overtake one still in flight, and the consumer wake must
        // fit the wake wheel's horizon.
        if self.role == BoundaryRole::Interior
            && self.occ.is_none()
            && self.in_flight.is_empty()
            && entry.ready_at - now < HORIZON
        {
            let ready = entry.ready_at;
            if *rx.occupied & (1 << vcidx) == 0 {
                rx.set_head(entry, vcidx);
            } else {
                self.bufs[vcidx as usize].push_back(entry);
                *rx.queued |= 1 << vcidx;
            }
            return Some(ready);
        }
        self.in_flight.push_back((tail_arrival, entry, vcidx));
        None
    }

    /// Advances wire state to `now`: matured credits return to the sender
    /// and arrived packets enter the receive buffers.
    ///
    /// Returns `(arrival_ready, credited)`: the latest receiver-pipeline
    /// ready time among arrivals this cycle (to wake the consumer), and
    /// whether any credits returned (to wake the producer).
    pub fn tick(
        &mut self,
        now: u64,
        credits: &mut WireCredits,
        rx: &mut WireRx,
    ) -> (Option<u64>, bool) {
        let mut credited = false;
        while let Some(&(t, _, _)) = self.credit_returns.front() {
            if t > now {
                break;
            }
            let (_, vcidx, flits) = self.credit_returns.pop_front().expect("peeked");
            credits[vcidx as usize] += flits;
            credited = true;
            debug_assert!(credits[vcidx as usize] <= self.depth, "credit overflow");
        }
        let mut arrival_ready = None;
        while let Some(&(t, entry, vcidx)) = self.in_flight.front() {
            if t > now {
                break;
            }
            self.in_flight.pop_front();
            arrival_ready =
                Some(arrival_ready.map_or(entry.ready_at, |r: u64| r.max(entry.ready_at)));
            if let Some(t) = &mut self.occ {
                t.note(now, vcidx as usize, 1);
            }
            if *rx.occupied & (1 << vcidx) == 0 {
                rx.set_head(entry, vcidx);
            } else {
                self.bufs[vcidx as usize].push_back(entry);
                *rx.queued |= 1 << vcidx;
            }
        }
        if let Some(s) = &mut self.shim {
            let completed = s.shim.advance(now);
            for _ in 0..completed {
                let (mut entry, vcidx) = s
                    .queue
                    .pop_front()
                    .expect("shim completed a packet the wire never queued");
                entry.ready_at = now + self.rx_pipeline;
                if self.role == BoundaryRole::Export {
                    // Link-layer delivery completed toward a foreign shard:
                    // ship the entry at the barrier, tagged with the cycle
                    // it cleared the link.
                    self.outbox.push((now, entry, vcidx));
                    continue;
                }
                arrival_ready =
                    Some(arrival_ready.map_or(entry.ready_at, |r: u64| r.max(entry.ready_at)));
                if let Some(t) = &mut self.occ {
                    t.note(now, vcidx as usize, 1);
                }
                if *rx.occupied & (1 << vcidx) == 0 {
                    rx.set_head(entry, vcidx);
                } else {
                    self.bufs[vcidx as usize].push_back(entry);
                    *rx.queued |= 1 << vcidx;
                }
            }
        }
        (arrival_ready, credited)
    }

    /// Drains the export outbox (`(maturity_cycle, entry, vc_index)` in
    /// send order). Called at window barriers by the sharded kernel.
    pub fn take_outbox(&mut self, out: &mut Vec<(u64, BufEntry, u8)>) {
        out.append(&mut self.outbox);
    }

    /// Drains the credit-return outbox (`(arrival_cycle, vc_index, flits)`
    /// in pop order). Called at window barriers by the sharded kernel.
    pub fn take_outbox_credits(&mut self, out: &mut Vec<(u64, u8, u8)>) {
        out.append(&mut self.outbox_credits);
    }

    /// Files a packet arriving from the producing shard's copy of this wire
    /// (`Import` role). `window_start` is the first cycle of the window
    /// about to run.
    ///
    /// Two timing regimes, both exactly matching the serial kernel:
    ///
    /// * `mature >= window_start` (every ideal boundary wire — the flight
    ///   latency exceeds the window length): the entry joins `in_flight`
    ///   and the normal [`Wire::tick`] matures it on its exact cycle.
    /// * `mature < window_start` (lossy-link completions under the
    ///   one-cycle fault horizon): the entry is filed retroactively — the
    ///   occupancy clock is back-dated to `mature`, and the entry's
    ///   `ready_at` (`mature + rx_pipeline`) is already at or past
    ///   `window_start`, so no consumer could have observed it earlier.
    ///
    /// Returns the cycle the consumer must be woken at, if filing bypassed
    /// the in-flight queue.
    pub fn apply_import(
        &mut self,
        window_start: u64,
        mature: u64,
        entry: BufEntry,
        vcidx: u8,
        rx: &mut WireRx,
    ) -> Option<u64> {
        debug_assert_eq!(self.role, BoundaryRole::Import);
        if mature >= window_start {
            debug_assert!(self.in_flight.back().is_none_or(|&(t, _, _)| t <= mature));
            self.in_flight.push_back((mature, entry, vcidx));
            return None;
        }
        debug_assert!(entry.ready_at >= window_start, "import observable early");
        if let Some(t) = &mut self.occ {
            t.note(mature, vcidx as usize, 1);
        }
        let ready = entry.ready_at;
        if *rx.occupied & (1 << vcidx) == 0 {
            rx.set_head(entry, vcidx);
        } else {
            self.bufs[vcidx as usize].push_back(entry);
            *rx.queued |= 1 << vcidx;
        }
        Some(ready)
    }

    /// Files a credit return arriving from the consuming shard's copy of
    /// this wire (`Export` role). Credit arrival cycles are in pop order
    /// and at least one full link latency ahead of the window that popped
    /// them, so appending preserves the queue's maturity order.
    pub fn apply_credit_return(&mut self, at: u64, vcidx: u8, flits: u8) {
        debug_assert_eq!(self.role, BoundaryRole::Export);
        debug_assert!(self.credit_returns.back().is_none_or(|&(t, _, _)| t <= at));
        self.credit_returns.push_back((at, vcidx, flits));
    }

    /// Files a credit return onto the wire's own return queue: the
    /// simulator's fallback for [`Wire::pop_deferred`] returns maturing
    /// beyond its credit calendar's horizon. A wire's pops all take the
    /// same path (the maturity offset is its fixed latency), so queue
    /// order stays monotonic.
    pub fn file_credit_return(&mut self, at: u64, vcidx: u8, flits: u8) {
        debug_assert!(self.credit_returns.back().is_none_or(|&(t, _, _)| t <= at));
        self.credit_returns.push_back((at, vcidx, flits));
    }

    /// The earliest future cycle at which ticking this wire can do anything:
    /// the front of the in-flight and credit-return queues (both FIFO in
    /// maturity order), or `u64::MAX` when nothing is pending. Wires with a
    /// lossy-link shim installed report `0` while the shim holds traffic —
    /// the go-back-N layer keeps internal timers and must tick every cycle.
    #[inline]
    pub fn next_event(&self) -> u64 {
        if let Some(s) = &self.shim {
            if !s.shim.idle() {
                return 0;
            }
        }
        let arrival = self.in_flight.front().map_or(u64::MAX, |&(t, _, _)| t);
        let credit = self.credit_returns.front().map_or(u64::MAX, |&(t, _, _)| t);
        arrival.min(credit)
    }

    /// Whether the wire has no flits or credits in flight (nothing left to
    /// tick).
    #[inline]
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.credit_returns.is_empty()
            && self.shim.as_ref().is_none_or(|s| s.shim.idle())
    }

    /// Pops the head packet of a VC buffer, scheduling the credit return
    /// and promoting the next queued entry (if any) into the head slot.
    ///
    /// # Panics
    ///
    /// Panics if the VC's occupied bit is clear.
    pub fn pop(&mut self, now: u64, vcidx: u8, rx: &mut WireRx) -> BufEntry {
        let (entry, credit) = self.pop_deferred(now, vcidx, rx);
        if let Some((at, vcidx, flits)) = credit {
            self.credit_returns.push_back((at, vcidx, flits));
        }
        entry
    }

    /// [`Wire::pop`], but the credit return is handed back to the caller as
    /// `(maturity_cycle, vc_index, flits)` instead of entering this wire's
    /// own return queue — the simulator files it into its global credit
    /// calendar so draining it never touches the wire again. Import-role
    /// wires still route the return through their boundary outbox and hand
    /// back `None`.
    ///
    /// # Panics
    ///
    /// Panics if the VC's occupied bit is clear.
    pub fn pop_deferred(
        &mut self,
        now: u64,
        vcidx: u8,
        rx: &mut WireRx,
    ) -> (BufEntry, Option<(u64, u8, u8)>) {
        let bit = 1u16 << vcidx;
        assert!(*rx.occupied & bit != 0, "pop from empty VC buffer");
        let entry = rx.heads[vcidx as usize];
        if let Some(next) = self.bufs[vcidx as usize].pop_front() {
            rx.set_head(next, vcidx);
            if self.bufs[vcidx as usize].is_empty() {
                *rx.queued &= !bit;
            }
        } else {
            *rx.occupied &= !bit;
        }
        if let Some(t) = &mut self.occ {
            t.note(now, vcidx as usize, -1);
        }
        if self.role == BoundaryRole::Import {
            // The sender's credit pool lives in the producing shard: the
            // return ships at the next window barrier.
            self.outbox_credits
                .push((now + self.latency, vcidx, entry.flits));
            return (entry, None);
        }
        (entry, Some((now + self.latency, vcidx, entry.flits)))
    }

    /// Queues an entry behind an occupied head slot without going through
    /// [`Wire::send`]: the simulator's direct-file fast path spends credits
    /// and stamps `ready_at` itself and only needs the wire for the
    /// behind-the-head queue. The caller owns the dense `queued` mask and
    /// must set this VC's bit.
    #[inline]
    pub fn queue_behind_head(&mut self, entry: BufEntry, vcidx: u8) {
        self.bufs[vcidx as usize].push_back(entry);
    }

    /// Whether this wire is an ideal interior channel: no lossy-link shim,
    /// no occupancy tracking, not a shard boundary. Together with a flight
    /// time short enough for the wake wheel, this is what licenses the
    /// simulator's wire-bypassing send/pop fast paths.
    #[inline]
    pub fn is_ideal_interior(&self) -> bool {
        self.role == BoundaryRole::Interior && self.shim.is_none() && self.occ.is_none()
    }

    /// Whether any packet sits in flight or buffered. `occupied` is the
    /// wire's simulator-owned occupancy mask (head slots are not visible to
    /// the wire itself).
    pub fn is_quiescent(&self, occupied: u16) -> bool {
        occupied == 0
            && self.in_flight.is_empty()
            && self.shim.as_ref().is_none_or(|s| s.queue.is_empty())
            && self.outbox.is_empty()
    }

    /// Flits this wire copy is accountable for on VC `vc`, excluding the
    /// sender's credit pool: in flight, inside the shim, buffered at the
    /// receiver, returning as credits, or parked in a boundary outbox.
    ///
    /// For an interior wire, `credits[vc] + accounted_flits(vc)` equals the
    /// buffer depth. For a boundary wire the depth is accounted jointly by
    /// the producing copy's credits plus both copies' accounted flits.
    pub fn accounted_flits(&self, vc: usize, occupied: u16, heads: &[BufEntry]) -> u32 {
        let mut total = 0u32;
        for &(_, vcidx, flits) in &self.credit_returns {
            if usize::from(vcidx) == vc {
                total += u32::from(flits);
            }
        }
        for &(_, entry, vcidx) in &self.in_flight {
            if usize::from(vcidx) == vc {
                total += u32::from(entry.flits);
            }
        }
        if occupied & (1 << vc) != 0 {
            total += u32::from(heads[vc].flits);
        }
        for entry in &self.bufs[vc] {
            total += u32::from(entry.flits);
        }
        if let Some(s) = &self.shim {
            for &(entry, vcidx) in &s.queue {
                if usize::from(vcidx) == vc {
                    total += u32::from(entry.flits);
                }
            }
        }
        for &(_, entry, vcidx) in &self.outbox {
            if usize::from(vcidx) == vc {
                total += u32::from(entry.flits);
            }
        }
        for &(_, vcidx, flits) in &self.outbox_credits {
            if usize::from(vcidx) == vc {
                total += u32::from(flits);
            }
        }
        total
    }

    /// Buffer depth per VC in flits.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Verifies per-VC credit conservation: for every VC, the sender's
    /// credits plus every flit the wire is accountable for (in flight,
    /// inside the shim, buffered at the receiver, or returning as credits)
    /// must equal the buffer depth. Returns a diagnostic on violation.
    pub fn check_credit_balance(
        &self,
        credits: &WireCredits,
        occupied: u16,
        heads: &[BufEntry],
    ) -> Result<(), String> {
        for (vc, &credit) in credits.iter().enumerate().take(self.num_vcs()) {
            let total = u32::from(credit) + self.accounted_flits(vc, occupied, heads);
            if total != u32::from(self.depth) {
                return Err(format!(
                    "credit imbalance on {} vc {vc}: accounted {total} flits \
                     against depth {}",
                    self.label, self.depth
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::chip::LocalEndpointId;
    use anton_core::chip::LocalLink;
    use anton_core::topology::NodeId;

    /// A wire plus the dense flow-control state the simulator owns for it.
    struct Harness {
        w: Wire,
        credits: WireCredits,
        occupied: u16,
        heads: WireHeads,
        gate: WireGate,
        queued: u16,
    }

    impl Harness {
        fn new(latency: u64, depth: u8) -> Harness {
            Harness::with_pipeline(latency, 0, depth)
        }

        fn with_pipeline(latency: u64, rx_pipeline: u64, depth: u8) -> Harness {
            let w = Wire::new(
                GlobalLink::Local {
                    node: NodeId(0),
                    link: LocalLink::EpToRouter(LocalEndpointId(0)),
                },
                latency,
                rx_pipeline,
                4,
                depth,
            );
            let credits = w.initial_credits();
            Harness {
                w,
                credits,
                occupied: 0,
                heads: [BufEntry::EMPTY; MAX_WIRE_VCS],
                gate: [GateEntry::EMPTY; MAX_WIRE_VCS],
                queued: 0,
            }
        }

        fn can_send(&self, vcidx: u8, flits: u8) -> bool {
            self.credits[vcidx as usize] >= flits
        }

        fn send(&mut self, now: u64, entry: BufEntry, vcidx: u8) -> Option<u64> {
            let mut rx = WireRx {
                occupied: &mut self.occupied,
                heads: &mut self.heads,
                gate: &mut self.gate,
                queued: &mut self.queued,
            };
            self.w.send(now, entry, vcidx, &mut self.credits, &mut rx)
        }

        fn tick(&mut self, now: u64) -> (Option<u64>, bool) {
            let mut rx = WireRx {
                occupied: &mut self.occupied,
                heads: &mut self.heads,
                gate: &mut self.gate,
                queued: &mut self.queued,
            };
            self.w.tick(now, &mut self.credits, &mut rx)
        }

        fn pop(&mut self, now: u64, vcidx: u8) -> BufEntry {
            let mut rx = WireRx {
                occupied: &mut self.occupied,
                heads: &mut self.heads,
                gate: &mut self.gate,
                queued: &mut self.queued,
            };
            self.w.pop(now, vcidx, &mut rx)
        }

        /// The head entry of a VC, if present and ready at `now` — the
        /// simulator-side peek against the dense head slots.
        fn head(&self, now: u64, vcidx: u8) -> Option<&BufEntry> {
            let e = &self.heads[vcidx as usize];
            (self.occupied & (1 << vcidx) != 0 && e.ready_at <= now).then_some(e)
        }

        fn check_credit_balance(&self) -> Result<(), String> {
            self.w
                .check_credit_balance(&self.credits, self.occupied, &self.heads)
        }
    }

    fn entry(pkt: u32, flits: u8) -> BufEntry {
        BufEntry {
            pkt: PacketId(pkt),
            ready_at: 0,
            flits,
            class: 0,
            pattern: 0,
            rc_port: 0xFF,
            rc_vcidx: 0,
            target: 0xFF,
            meta: 0,
            age: 0,
        }
    }

    #[test]
    fn packet_arrives_after_latency() {
        let mut h = Harness::new(3, 4);
        h.send(10, entry(7, 1), 0);
        for t in 10..13 {
            h.tick(t);
            assert!(h.head(t, 0).is_none(), "arrived early at {t}");
        }
        h.tick(13);
        assert_eq!(h.head(13, 0).unwrap().pkt, PacketId(7));
    }

    #[test]
    fn two_flit_packet_arrives_one_cycle_later() {
        let mut h = Harness::new(3, 4);
        h.send(0, entry(1, 2), 0);
        h.tick(3);
        assert!(h.head(3, 0).is_none());
        h.tick(4);
        assert_eq!(h.head(4, 0).unwrap().pkt, PacketId(1));
    }

    #[test]
    fn credits_block_and_return() {
        let mut h = Harness::new(2, 3);
        assert!(h.can_send(0, 2));
        h.send(0, entry(1, 2), 0);
        assert!(!h.can_send(0, 2), "only 1 credit left");
        assert!(h.can_send(0, 1));
        h.send(0, entry(2, 1), 0);
        assert!(!h.can_send(0, 1));
        // Drain at the receiver; credits return after the wire latency.
        h.tick(3);
        assert_eq!(h.pop(3, 0).pkt, PacketId(1));
        h.tick(4);
        assert!(!h.can_send(0, 2), "credits in flight");
        h.tick(5);
        assert!(h.can_send(0, 2), "credits should have returned");
    }

    #[test]
    fn vcs_are_independent() {
        let mut h = Harness::new(1, 2);
        h.send(0, entry(1, 2), 0);
        assert!(!h.can_send(0, 1));
        assert!(h.can_send(3, 2), "other VC unaffected");
        h.send(0, entry(2, 1), 3);
        h.tick(2);
        assert_eq!(h.head(2, 3).unwrap().pkt, PacketId(2));
        assert_eq!(h.occupied, 0b1001);
    }

    #[test]
    fn rx_pipeline_delays_readiness() {
        let mut h = Harness::with_pipeline(1, 3, 4);
        h.send(0, entry(9, 1), 1);
        h.tick(1);
        assert!(h.head(1, 1).is_none(), "pipeline stages not yet elapsed");
        h.tick(4);
        assert_eq!(h.head(4, 1).unwrap().pkt, PacketId(9));
    }

    #[test]
    fn occupied_mask_tracks_buffers() {
        let mut h = Harness::new(1, 4);
        assert_eq!(h.occupied, 0);
        h.send(0, entry(1, 1), 2);
        h.tick(1);
        assert_eq!(h.occupied, 0b100);
        h.pop(1, 2);
        assert_eq!(h.occupied, 0);
    }

    #[test]
    fn next_event_tracks_pending_maturities() {
        let mut h = Harness::new(3, 4);
        assert_eq!(h.w.next_event(), u64::MAX, "idle wire has no events");
        let ready = h.send(10, entry(7, 1), 0);
        assert_eq!(ready, Some(13), "direct-filed arrival wakes the consumer");
        assert_eq!(
            h.w.next_event(),
            u64::MAX,
            "direct-filed entries need no wire tick"
        );
        h.pop(13, 0);
        assert_eq!(h.w.next_event(), 16, "credit return in flight");
        h.tick(16);
        assert_eq!(h.w.next_event(), u64::MAX);
    }

    #[test]
    fn far_arrivals_and_tracked_wires_take_the_in_flight_path() {
        // Latency so long the consumer wake cannot fit the wake wheel:
        // the send must queue in flight and mature through `tick`.
        let mut h = Harness::new(100, 4);
        assert_eq!(h.send(0, entry(1, 1), 0), None);
        assert_eq!(h.w.next_event(), 100, "tail flit arrival queued");
        h.tick(100);
        assert_eq!(h.head(100, 0).unwrap().pkt, PacketId(1));
        // Occupancy tracking must observe arrivals on their arrival cycle,
        // so it also forces the in-flight path.
        let mut h = Harness::new(2, 4);
        h.w.enable_occupancy_tracking();
        assert_eq!(h.send(0, entry(2, 1), 0), None);
        assert_eq!(h.w.next_event(), 2);
        // A direct-filed send behind an in-flight entry would overtake it;
        // the fast path must wait until the queue drains.
        let mut h = Harness::new(60, 8);
        // Latency 60 + 2 flits - 1 = ready 61 < HORIZON: direct-filed.
        assert_eq!(h.send(0, entry(3, 2), 0), Some(61), "61-cycle ready fits");
        let mut h = Harness::new(63, 8);
        assert_eq!(h.send(0, entry(4, 2), 0), None, "64-cycle ready does not");
        assert_eq!(h.send(10, entry(5, 1), 0), None, "queued behind in-flight");
        h.tick(64);
        assert_eq!(h.pop(64, 0).pkt, PacketId(4), "FIFO order preserved");
        h.tick(73);
        assert_eq!(h.pop(73, 0).pkt, PacketId(5));
    }

    #[test]
    fn rc_cache_cleared_on_send() {
        let mut h = Harness::new(1, 4);
        let mut e = entry(1, 1);
        e.rc_port = 3;
        h.send(0, e, 0);
        h.tick(1);
        assert_eq!(
            h.head(1, 0).unwrap().rc_port,
            0xFF,
            "stale RC must not travel"
        );
    }

    #[test]
    fn vc_index_layout() {
        let h = Harness::new(1, 4);
        assert_eq!(h.w.vc_index(TrafficClass::Request, Vc(0)), 0);
        assert_eq!(h.w.vc_index(TrafficClass::Request, Vc(3)), 3);
        assert_eq!(h.w.vc_index(TrafficClass::Reply, Vc(0)), 4);
        assert_eq!(h.w.vc_index(TrafficClass::Reply, Vc(3)), 7);
    }

    #[test]
    #[should_panic(expected = "without credits")]
    fn overcommit_rejected() {
        let mut h = Harness::new(1, 2);
        h.send(0, entry(1, 2), 0);
        h.send(0, entry(2, 1), 0);
    }

    #[test]
    fn shim_at_zero_ber_matches_ideal_wire_cycle_for_cycle() {
        use anton_link::gobackn::GoBackNConfig;
        let gbn = GoBackNConfig {
            window: 64,
            timeout: 192,
        };
        let mut ideal = Harness::new(44, 8);
        let mut lossy = Harness::new(44, 8);
        lossy
            .w
            .install_shim(LinkShim::new(44, gbn, 0.0, Vec::new(), 1));
        // A single-flit and a two-flit packet, spaced like the serializer
        // would emit them (≥ 45/14 cycles apart per flit). The ideal wire
        // direct-files its sends (consumer wake returned from `send`); the
        // shim reports arrivals through `tick` — collect both streams of
        // consumer-wake cycles and compare them at the end.
        let mut wakes_ideal = Vec::new();
        let mut wakes_lossy = Vec::new();
        wakes_ideal.extend(ideal.send(5, entry(1, 1), 0));
        lossy.send(5, entry(1, 1), 0);
        assert_eq!(lossy.w.next_event(), 0, "an active shim ticks every cycle");
        let mut popped = 0;
        for t in 5..400u64 {
            if t == 12 {
                wakes_ideal.extend(ideal.send(t, entry(2, 2), 3));
                lossy.send(t, entry(2, 2), 3);
            }
            let (ra, ca) = ideal.tick(t);
            let (rb, cb) = lossy.tick(t);
            wakes_ideal.extend(ra);
            wakes_lossy.extend(rb);
            assert_eq!(ca, cb, "credit wakeups diverge at cycle {t}");
            for vc in [0u8, 3] {
                if ideal.head(t, vc).is_some() {
                    let a = ideal.pop(t, vc);
                    let b = lossy.pop(t, vc);
                    assert_eq!(a, b, "delivered entries diverge at cycle {t}");
                    popped += 1;
                }
            }
        }
        assert_eq!(popped, 2, "both packets must arrive");
        assert_eq!(wakes_ideal, wakes_lossy, "consumer wake cycles diverge");
        ideal.check_credit_balance().unwrap();
        lossy.check_credit_balance().unwrap();
    }

    #[test]
    fn credit_balance_accounts_for_shim_queue() {
        use anton_link::gobackn::GoBackNConfig;
        let gbn = GoBackNConfig {
            window: 64,
            timeout: 192,
        };
        let mut h = Harness::new(10, 6);
        // Link down forever: flits stay inside the shim, credits stay spent.
        h.w.install_shim(LinkShim::new(10, gbn, 0.0, vec![(0, u64::MAX)], 1));
        h.send(0, entry(1, 2), 0);
        for t in 1..100 {
            h.tick(t);
        }
        assert!(!h.can_send(0, 5));
        assert_eq!(h.w.shim_backlog(), 2);
        h.check_credit_balance().unwrap();
        assert!(!h.w.idle(), "a stuck shim must keep the wire active");
        assert!(!h.w.is_quiescent(h.occupied));
    }

    #[test]
    fn occupancy_histogram_weights_time_at_each_level() {
        let mut h = Harness::new(1, 4);
        assert!(
            h.w.occupancy_histograms(10).is_none(),
            "tracking is off by default"
        );
        h.w.enable_occupancy_tracking();
        // Arrives at cycle 1, occupancy 0 for cycles [0, 1).
        h.send(0, entry(1, 1), 0);
        h.tick(1);
        // Occupancy 1 for cycles [1, 5), then drained.
        h.pop(5, 0);
        let hist = h.w.occupancy_histograms(10).expect("tracking enabled");
        assert_eq!(hist[0][0], 1 + 5, "empty before arrival and after drain");
        assert_eq!(hist[0][1], 4, "held one packet for four cycles");
        assert!(hist[0][2..].iter().all(|&c| c == 0));
        // Untouched VCs accrue everything in the empty bucket.
        assert_eq!(hist[3][0], 10);
    }
}
