//! Workload drivers: the measurement procedures of Section 4.
//!
//! * [`BatchDriver`] — every core sends a batch of packets drawn from a
//!   (possibly blended) traffic pattern; throughput is the batch size over
//!   the time to receive the last packet (Figures 9 and 10).
//! * [`PingPongDriver`] — the software-to-software ping-pong latency test,
//!   including injection and handler-dispatch overheads (Figures 11 and 12).
//! * [`RateDriver`] — a single core streams single-flit packets at a
//!   controlled injection and activation rate for the router-energy
//!   measurements (Figure 13).
//! * [`LoadDriver`] — open-loop Bernoulli injection at a fixed offered
//!   rate, with per-packet latency samples and percentile reporting (the
//!   fault-sweep workload).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::packet::{CounterId, Destination, Packet, PatternId, Payload};
use anton_core::pattern::TrafficPattern;
use anton_core::seed::derive_stream_seed;
use anton_core::vc::TrafficClass;

use crate::params::CYCLE_NS;
use crate::shard::ShardableDriver;
use crate::sim::{Delivery, Driver, Sim};

/// Keep this many packets queued at each endpoint adapter so injection is
/// never starved by the driver.
const LOW_WATER: usize = 2;

/// Per-endpoint RNG streams derived from one base seed: endpoint `i` draws
/// from stream `i` regardless of how many other endpoints draw, so a
/// shard simulating only a sub-range of endpoints reproduces exactly the
/// draws a serial run would make for them.
fn endpoint_streams(seed: u64, n_eps: usize) -> Vec<StdRng> {
    (0..n_eps)
        .map(|i| StdRng::seed_from_u64(derive_stream_seed(seed, i as u64)))
        .collect()
}

/// A batch workload: each endpoint sends `packets_per_endpoint` packets,
/// each drawn from one of the weighted pattern components and labeled with
/// that component's [`PatternId`].
pub struct BatchDriver {
    components: Vec<(Arc<dyn TrafficPattern>, f64)>,
    packets_per_endpoint: u64,
    payload_bytes: usize,
    remaining: Vec<u64>,
    expected: u64,
    delivered: u64,
    /// One independent RNG stream per endpoint (see [`endpoint_streams`]).
    rngs: Vec<StdRng>,
    /// Cycle of the final delivery (valid once done).
    pub finish_cycle: u64,
}

impl std::fmt::Debug for BatchDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchDriver")
            .field("expected", &self.expected)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl BatchDriver {
    /// Starts configuring a batch driver. This is the front door; terminal
    /// call is [`BatchDriverBuilder::build`].
    ///
    /// ```
    /// use anton_core::{MachineConfig, TorusShape};
    /// use anton_sim::driver::BatchDriver;
    /// use anton_sim::params::SimParams;
    /// use anton_sim::sim::Sim;
    /// use anton_traffic::UniformRandom;
    ///
    /// let sim = Sim::builder().config(MachineConfig::new(TorusShape::cube(2))).params(SimParams::default()).build();
    /// let driver = BatchDriver::builder(&sim)
    ///     .pattern(Box::new(UniformRandom))
    ///     .packets_per_endpoint(4)
    ///     .seed(1)
    ///     .build();
    /// ```
    pub fn builder(sim: &Sim) -> BatchDriverBuilder {
        BatchDriver::builder_for(&sim.cfg)
    }

    /// Starts configuring a batch driver from a machine configuration alone
    /// (no simulator needed — the entry point sharded runs use).
    pub fn builder_for(cfg: &MachineConfig) -> BatchDriverBuilder {
        BatchDriverBuilder {
            n_eps: cfg.num_endpoints(),
            components: Vec::new(),
            packets_per_endpoint: 1,
            payload_bytes: 16,
            seed: 0,
        }
    }

    /// Creates a batch driver over one pattern.
    #[deprecated(
        since = "0.2.0",
        note = "use `BatchDriver::builder(sim).pattern(..)` instead"
    )]
    pub fn uniform_pattern(
        sim: &Sim,
        pattern: Box<dyn TrafficPattern>,
        packets_per_endpoint: u64,
        seed: u64,
    ) -> BatchDriver {
        BatchDriver::builder(sim)
            .pattern(pattern)
            .packets_per_endpoint(packets_per_endpoint)
            .seed(seed)
            .build()
    }

    /// Creates a batch driver over a weighted blend of patterns.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or weights are non-positive in total.
    #[deprecated(
        since = "0.2.0",
        note = "use `BatchDriver::builder(sim).components(..)` instead"
    )]
    pub fn blended(
        sim: &Sim,
        components: Vec<(Box<dyn TrafficPattern>, f64)>,
        packets_per_endpoint: u64,
        seed: u64,
    ) -> BatchDriver {
        BatchDriver::builder(sim)
            .components(components)
            .packets_per_endpoint(packets_per_endpoint)
            .seed(seed)
            .build()
    }

    /// Throughput in packets per cycle per endpoint, measured as the batch
    /// size over the time to receive the last packet.
    ///
    /// # Panics
    ///
    /// Panics if called before the run completed.
    pub fn throughput(&self) -> f64 {
        assert!(self.delivered >= self.expected, "run not complete");
        assert!(self.finish_cycle > 0, "no deliveries recorded");
        self.packets_per_endpoint as f64 / self.finish_cycle as f64
    }

    fn from_builder(b: BatchDriverBuilder) -> BatchDriver {
        assert!(!b.components.is_empty(), "need at least one pattern");
        let total: f64 = b.components.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "weights must be positive");
        let components = b
            .components
            .into_iter()
            .map(|(p, w)| (p, w / total))
            .collect::<Vec<_>>();
        let n_eps = b.n_eps;
        BatchDriver {
            components,
            packets_per_endpoint: b.packets_per_endpoint,
            payload_bytes: b.payload_bytes,
            remaining: vec![b.packets_per_endpoint; n_eps],
            expected: b.packets_per_endpoint * n_eps as u64,
            delivered: 0,
            rngs: endpoint_streams(b.seed, n_eps),
            finish_cycle: 0,
        }
    }

    fn sample_component(components: &[(Arc<dyn TrafficPattern>, f64)], rng: &mut StdRng) -> usize {
        let mut x: f64 = rng.gen();
        for (i, (_, w)) in components.iter().enumerate() {
            if x < *w || i == components.len() - 1 {
                return i;
            }
            x -= *w;
        }
        unreachable!("normalized weights")
    }
}

/// Configures a [`BatchDriver`]; obtained from [`BatchDriver::builder`] or
/// [`BatchDriver::builder_for`].
///
/// Defaults: one packet per endpoint, 16-byte payloads, seed 0. At least
/// one pattern component must be added before [`build`](Self::build).
pub struct BatchDriverBuilder {
    n_eps: usize,
    components: Vec<(Arc<dyn TrafficPattern>, f64)>,
    packets_per_endpoint: u64,
    payload_bytes: usize,
    seed: u64,
}

impl std::fmt::Debug for BatchDriverBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchDriverBuilder")
            .field("components", &self.components.len())
            .field("packets_per_endpoint", &self.packets_per_endpoint)
            .field("payload_bytes", &self.payload_bytes)
            .field("seed", &self.seed)
            .finish()
    }
}

impl BatchDriverBuilder {
    /// Adds a pattern component with weight 1.
    pub fn pattern(self, pattern: Box<dyn TrafficPattern>) -> BatchDriverBuilder {
        self.component(pattern, 1.0)
    }

    /// Adds one weighted pattern component. Weights are normalized at
    /// [`build`](Self::build); each packet is tagged with its component
    /// index as its [`PatternId`].
    pub fn component(
        mut self,
        pattern: Box<dyn TrafficPattern>,
        weight: f64,
    ) -> BatchDriverBuilder {
        self.components.push((Arc::from(pattern), weight));
        self
    }

    /// Adds several weighted pattern components at once.
    pub fn components(
        mut self,
        components: Vec<(Box<dyn TrafficPattern>, f64)>,
    ) -> BatchDriverBuilder {
        self.components
            .extend(components.into_iter().map(|(p, w)| (Arc::from(p), w)));
        self
    }

    /// Sets the number of packets each endpoint sends (default 1).
    pub fn packets_per_endpoint(mut self, n: u64) -> BatchDriverBuilder {
        self.packets_per_endpoint = n;
        self
    }

    /// Sets the payload size in bytes (default 16, as in the paper).
    pub fn payload_bytes(mut self, bytes: usize) -> BatchDriverBuilder {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the driver RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> BatchDriverBuilder {
        self.seed = seed;
        self
    }

    /// Finishes configuration.
    ///
    /// # Panics
    ///
    /// Panics if no components were added or weights are non-positive in
    /// total.
    pub fn build(self) -> BatchDriver {
        BatchDriver::from_builder(self)
    }
}

impl Driver for BatchDriver {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        for idx in 0..self.remaining.len() {
            if self.remaining[idx] == 0 {
                continue;
            }
            let src = sim.cfg.endpoint_at(idx);
            while self.remaining[idx] > 0 && sim.inject_queue_len(src) < LOW_WATER {
                let rng = &mut self.rngs[idx];
                let comp = BatchDriver::sample_component(&self.components, rng);
                let dst = self.components[comp].0.sample_dst(&sim.cfg, src, rng);
                let mut pkt = Packet::write(src, dst, Payload::zeros(self.payload_bytes));
                pkt.pattern = PatternId(comp as u8);
                sim.inject(src, pkt);
                self.remaining[idx] -= 1;
            }
        }
    }

    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery) {
        if matches!(delivery, Delivery::Packet(_)) {
            self.delivered += 1;
            if self.delivered == self.expected {
                self.finish_cycle = sim.now();
            }
        }
    }

    fn done(&self, _sim: &Sim) -> bool {
        self.delivered >= self.expected
    }
}

impl ShardableDriver for BatchDriver {
    /// Each sub-driver keeps the full per-endpoint stream table (streams
    /// are independent, so carrying unused ones is free) but only retains
    /// injection budget for its own endpoint range.
    fn split(
        &self,
        _cfg: &MachineConfig,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<Box<dyn Driver + Send>> {
        ranges
            .iter()
            .map(|r| {
                let mut remaining = vec![0u64; self.remaining.len()];
                remaining[r.clone()].copy_from_slice(&self.remaining[r.clone()]);
                Box::new(BatchDriver {
                    components: self.components.clone(),
                    packets_per_endpoint: self.packets_per_endpoint,
                    payload_bytes: self.payload_bytes,
                    remaining,
                    expected: u64::MAX,
                    delivered: 0,
                    rngs: self.rngs.clone(),
                    finish_cycle: 0,
                }) as Box<dyn Driver + Send>
            })
            .collect()
    }

    /// Closed loop: the batch completes exactly when its last packet is
    /// delivered, so the network is drained at `done`.
    fn done_implies_quiescent(&self) -> bool {
        true
    }
}

/// One ping-pong pair's state.
#[derive(Debug, Clone, Copy)]
struct Pair {
    a: GlobalEndpoint,
    b: GlobalEndpoint,
    remaining_legs: u32,
    /// Cycle software decided to send the current leg.
    decision_at: u64,
    /// Cycle the current leg's packet should be injected (after software
    /// overhead); `None` while waiting for the far handler.
    inject_at: Option<u64>,
    /// Which side sends the current leg.
    a_sends: bool,
    latency_sum_cycles: u64,
    legs_done: u32,
}

/// The standard ping-pong latency test (Section 4.3): remote writes with
/// counted-write handler dispatch, alternating between two cores.
#[derive(Debug)]
pub struct PingPongDriver {
    pairs: Vec<Pair>,
    payload_bytes: usize,
}

impl PingPongDriver {
    /// Creates a driver running `legs` one-way messages per pair
    /// (16-byte payloads, as in the paper).
    pub fn new(pairs: Vec<(GlobalEndpoint, GlobalEndpoint)>, legs: u32) -> PingPongDriver {
        assert!(legs > 0, "need at least one leg");
        let pairs = pairs
            .into_iter()
            .map(|(a, b)| Pair {
                a,
                b,
                remaining_legs: legs,
                decision_at: 0,
                inject_at: Some(0),
                a_sends: true,
                latency_sum_cycles: 0,
                legs_done: 0,
            })
            .collect();
        PingPongDriver {
            pairs,
            payload_bytes: 16,
        }
    }

    /// Mean one-way latency of pair `i` in nanoseconds, including software
    /// injection and handler-dispatch overheads.
    ///
    /// # Panics
    ///
    /// Panics if the pair has not completed any legs.
    pub fn mean_one_way_ns(&self, i: usize) -> f64 {
        let p = &self.pairs[i];
        assert!(p.legs_done > 0, "pair {i} has no completed legs");
        (p.latency_sum_cycles as f64 / f64::from(p.legs_done)) * CYCLE_NS
    }

    /// Number of pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }
}

impl Driver for PingPongDriver {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        let now = sim.now();
        let sw = sim.params.latency.sw_inject_cycles();
        for (i, p) in self.pairs.iter_mut().enumerate() {
            if p.remaining_legs == 0 {
                continue;
            }
            if let Some(at) = p.inject_at {
                // The injection becomes visible to hardware after the
                // software send overhead.
                if now >= at + sw {
                    let (src, dst) = if p.a_sends { (p.a, p.b) } else { (p.b, p.a) };
                    let counter = CounterId(i as u16);
                    sim.set_counter(dst, counter, 1);
                    let mut pkt = Packet::write(src, dst, Payload::zeros(self.payload_bytes));
                    pkt.counter = Some(counter);
                    sim.inject(src, pkt);
                    p.inject_at = None;
                }
            }
        }
    }

    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery) {
        let Delivery::Handler { counter, .. } = delivery else {
            return;
        };
        let i = counter.0 as usize;
        let now = sim.now();
        let p = &mut self.pairs[i];
        p.latency_sum_cycles += now - p.decision_at;
        p.legs_done += 1;
        p.remaining_legs -= 1;
        p.a_sends = !p.a_sends;
        p.decision_at = now;
        p.inject_at = Some(now);
    }

    fn done(&self, _sim: &Sim) -> bool {
        self.pairs.iter().all(|p| p.remaining_legs == 0)
    }
}

/// Payload bit pattern for the energy experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// All payload bits zero.
    Zeros,
    /// All payload bits one.
    Ones,
    /// Each bit i.i.d. uniform.
    Random,
}

/// Streams single-flit packets from one core at injection rate `p/q` with
/// the activation rate maximized (`a = min(r, 1−r)`, Section 4.5): for
/// `r ≤ 1/2` flits are spread evenly; for `r > 1/2` they form bursts of
/// `p` with `q−p` idle cycles.
#[derive(Debug)]
pub struct RateDriver {
    src: GlobalEndpoint,
    dst: GlobalEndpoint,
    rate_num: u32,
    rate_den: u32,
    payload: PayloadKind,
    total: u64,
    sent: u64,
    delivered: u64,
    rng: StdRng,
}

impl RateDriver {
    /// Creates a rate driver sending `total` 16-byte packets at rate
    /// `rate_num/rate_den` flits per cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate_num <= rate_den`.
    pub fn new(
        src: GlobalEndpoint,
        dst: GlobalEndpoint,
        rate_num: u32,
        rate_den: u32,
        payload: PayloadKind,
        total: u64,
        seed: u64,
    ) -> RateDriver {
        assert!(
            rate_num > 0 && rate_num <= rate_den,
            "rate must be in (0, 1]"
        );
        RateDriver {
            src,
            dst,
            rate_num,
            rate_den,
            payload,
            total,
            sent: 0,
            delivered: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether a flit is emitted at cycle `t` under the activation-
    /// maximizing schedule: for `r ≤ 1/2` the valid cycles are spread
    /// evenly (every gap is an idle run, so `a = r`); for `r > 1/2` the
    /// *idle* cycles are spread evenly (every idle cycle is isolated, so
    /// each one starts a new valid run and `a = 1 − r`). Both achieve
    /// `a = min(r, 1−r)`.
    fn slot_active(&self, t: u64) -> bool {
        let (p, q) = (u64::from(self.rate_num), u64::from(self.rate_den));
        let phase = t % q;
        let spread = |count: u64| (phase * count) / q != ((phase + 1) * count) / q;
        if 2 * p <= q {
            spread(p)
        } else {
            !spread(q - p)
        }
    }
}

impl Driver for RateDriver {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        if self.sent >= self.total || !self.slot_active(sim.now()) {
            return;
        }
        let payload = match self.payload {
            PayloadKind::Zeros => Payload::zeros(16),
            PayloadKind::Ones => Payload::ones(16),
            PayloadKind::Random => Payload::random(16, &mut self.rng),
        };
        let mut pkt = Packet::write(self.src, self.dst, payload);
        pkt.class = TrafficClass::Request;
        debug_assert!(matches!(pkt.dst, Destination::Unicast(_)));
        sim.inject(self.src, pkt);
        self.sent += 1;
    }

    fn on_delivery(&mut self, _sim: &mut Sim, delivery: &Delivery) {
        if matches!(delivery, Delivery::Packet(_)) {
            self.delivered += 1;
        }
    }

    fn done(&self, _sim: &Sim) -> bool {
        self.delivered >= self.total
    }
}

/// Open-loop load workload: every endpoint flips a Bernoulli coin each
/// cycle and injects a fresh packet with probability `rate`, up to a fixed
/// per-endpoint budget, recording the in-network latency of every delivered
/// packet. Unlike [`BatchDriver`] (which backpressures injection to keep
/// queues short), offered load here is independent of network state, so
/// latency inflation under faults is directly visible.
pub struct LoadDriver {
    pattern: Arc<dyn TrafficPattern>,
    rate: f64,
    payload_bytes: usize,
    remaining: Vec<u64>,
    expected: u64,
    delivered: u64,
    /// One independent RNG stream per endpoint (see [`endpoint_streams`]).
    rngs: Vec<StdRng>,
    latencies: Vec<u64>,
    /// Latencies of the subset of deliveries that were rerouted over a
    /// degraded table after ejection from a failed link.
    rerouted_latencies: Vec<u64>,
    /// Cycle of the final delivery (valid once done).
    pub finish_cycle: u64,
}

impl std::fmt::Debug for LoadDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadDriver")
            .field("rate", &self.rate)
            .field("expected", &self.expected)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl LoadDriver {
    /// Creates a load driver: each endpoint injects `packets_per_endpoint`
    /// packets drawn from `pattern`, offered at `rate` packets per cycle
    /// per endpoint (16-byte payloads).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn new(
        sim: &Sim,
        pattern: Box<dyn TrafficPattern>,
        rate: f64,
        packets_per_endpoint: u64,
        seed: u64,
    ) -> LoadDriver {
        LoadDriver::for_config(&sim.cfg, pattern, rate, packets_per_endpoint, seed)
    }

    /// Creates a load driver from a machine configuration alone (the entry
    /// point sharded runs use); see [`LoadDriver::new`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn for_config(
        cfg: &MachineConfig,
        pattern: Box<dyn TrafficPattern>,
        rate: f64,
        packets_per_endpoint: u64,
        seed: u64,
    ) -> LoadDriver {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        let n_eps = cfg.num_endpoints();
        let expected = packets_per_endpoint * n_eps as u64;
        LoadDriver {
            pattern: Arc::from(pattern),
            rate,
            payload_bytes: 16,
            remaining: vec![packets_per_endpoint; n_eps],
            expected,
            delivered: 0,
            rngs: endpoint_streams(seed, n_eps),
            latencies: Vec::with_capacity(expected as usize),
            rerouted_latencies: Vec::new(),
            finish_cycle: 0,
        }
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Mean in-network latency (injection to last-flit delivery) in cycles.
    ///
    /// # Panics
    ///
    /// Panics before the first delivery.
    pub fn mean_latency(&self) -> f64 {
        assert!(!self.latencies.is_empty(), "no deliveries recorded");
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// Latency percentile in cycles (`q` in `[0, 1]`, e.g. 0.99 for p99),
    /// by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics before the first delivery or for `q` outside `[0, 1]`.
    pub fn latency_percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        assert!(!self.latencies.is_empty(), "no deliveries recorded");
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean latency of rerouted deliveries relative to the mean latency of
    /// deliveries that stayed on their original route, within the same run.
    /// Returns 1.0 (no inflation) when no packet was rerouted; the
    /// remaining journeys of rerouted packets price the detour directly.
    ///
    /// # Panics
    ///
    /// Panics if *every* delivery was rerouted (no baseline to compare
    /// against).
    pub fn reroute_latency_inflation(&self) -> f64 {
        if self.rerouted_latencies.is_empty() {
            return 1.0;
        }
        let n_base = self.latencies.len() - self.rerouted_latencies.len();
        assert!(n_base > 0, "every delivery rerouted: no baseline latency");
        let rerouted_sum: u64 = self.rerouted_latencies.iter().sum();
        let base_sum = self.latencies.iter().sum::<u64>() - rerouted_sum;
        let rerouted_mean = rerouted_sum as f64 / self.rerouted_latencies.len() as f64;
        let base_mean = base_sum as f64 / n_base as f64;
        rerouted_mean / base_mean
    }

    /// Delivered throughput in packets per cycle per endpoint over the full
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if called before the run completed.
    pub fn throughput(&self) -> f64 {
        assert!(self.delivered >= self.expected, "run not complete");
        assert!(self.finish_cycle > 0, "no deliveries recorded");
        self.expected as f64 / self.remaining.len() as f64 / self.finish_cycle as f64
    }
}

impl Driver for LoadDriver {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        for idx in 0..self.remaining.len() {
            if self.remaining[idx] == 0 || !self.rngs[idx].gen_bool(self.rate) {
                continue;
            }
            let src = sim.cfg.endpoint_at(idx);
            let dst = self.pattern.sample_dst(&sim.cfg, src, &mut self.rngs[idx]);
            let pkt = Packet::write(src, dst, Payload::zeros(self.payload_bytes));
            sim.inject(src, pkt);
            self.remaining[idx] -= 1;
        }
    }

    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery) {
        if let Delivery::Packet(p) = delivery {
            self.latencies.push(p.delivered_at - p.injected_at);
            if p.rerouted {
                self.rerouted_latencies.push(p.delivered_at - p.injected_at);
            }
            self.delivered += 1;
            if self.delivered == self.expected {
                self.finish_cycle = sim.now();
            }
        }
    }

    fn done(&self, _sim: &Sim) -> bool {
        self.delivered >= self.expected
    }
}

impl ShardableDriver for LoadDriver {
    fn split(
        &self,
        _cfg: &MachineConfig,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<Box<dyn Driver + Send>> {
        ranges
            .iter()
            .map(|r| {
                let mut remaining = vec![0u64; self.remaining.len()];
                remaining[r.clone()].copy_from_slice(&self.remaining[r.clone()]);
                Box::new(LoadDriver {
                    pattern: Arc::clone(&self.pattern),
                    rate: self.rate,
                    payload_bytes: self.payload_bytes,
                    remaining,
                    expected: u64::MAX,
                    delivered: 0,
                    rngs: self.rngs.clone(),
                    latencies: Vec::new(),
                    rerouted_latencies: Vec::new(),
                    finish_cycle: 0,
                }) as Box<dyn Driver + Send>
            })
            .collect()
    }

    /// The injection budget is bounded and every unicast packet delivers
    /// once, so the last expected delivery drains the network.
    fn done_implies_quiescent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal pattern for driver unit tests: every packet targets its own
    /// source endpoint.
    #[derive(Debug)]
    struct SelfPattern;

    impl TrafficPattern for SelfPattern {
        fn name(&self) -> String {
            "self".into()
        }

        fn flows_from(
            &self,
            _cfg: &anton_core::config::MachineConfig,
            src: GlobalEndpoint,
        ) -> Vec<anton_core::pattern::Flow> {
            vec![anton_core::pattern::Flow {
                dst: src,
                rate: 1.0,
            }]
        }

        fn sample_dst(
            &self,
            _cfg: &anton_core::config::MachineConfig,
            src: GlobalEndpoint,
            _rng: &mut dyn rand::RngCore,
        ) -> GlobalEndpoint {
            src
        }
    }

    #[test]
    fn load_driver_percentiles_use_nearest_rank() {
        let mut d = LoadDriver {
            pattern: Arc::new(SelfPattern),
            rate: 0.5,
            payload_bytes: 16,
            remaining: vec![0],
            expected: 0,
            delivered: 0,
            rngs: endpoint_streams(0, 1),
            latencies: vec![50, 10, 40, 20, 30],
            rerouted_latencies: Vec::new(),
            finish_cycle: 0,
        };
        assert_eq!(d.latency_percentile(0.5), 30);
        assert_eq!(d.latency_percentile(0.0), 10);
        assert_eq!(d.latency_percentile(1.0), 50);
        assert!((d.mean_latency() - 30.0).abs() < 1e-12);
        d.latencies = vec![7];
        assert_eq!(d.latency_percentile(0.99), 7);
    }

    #[test]
    fn rate_driver_schedule_matches_rates() {
        let ep = GlobalEndpoint {
            node: anton_core::topology::NodeId(0),
            ep: anton_core::chip::LocalEndpointId(0),
        };
        for (p, q) in [(1u32, 4u32), (1, 2), (3, 4), (7, 8), (1, 1)] {
            let d = RateDriver::new(ep, ep, p, q, PayloadKind::Zeros, 1, 0);
            let horizon = u64::from(q) * 100;
            let mut valid = 0u64;
            let mut activations = 0u64;
            let mut prev = false;
            for t in 0..horizon {
                let v = d.slot_active(t);
                if v {
                    valid += 1;
                    if !prev {
                        activations += 1;
                    }
                }
                prev = v;
            }
            let r = valid as f64 / horizon as f64;
            let a = activations as f64 / horizon as f64;
            let want_r = f64::from(p) / f64::from(q);
            let want_a = if p == q {
                0.0
            } else {
                want_r.min(1.0 - want_r)
            };
            assert!((r - want_r).abs() < 1e-9, "rate {p}/{q}: r={r}");
            assert!(
                (a - want_a).abs() < 0.02,
                "rate {p}/{q}: activation {a} want {want_a}"
            );
        }
    }
}
