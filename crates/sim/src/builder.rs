//! Fluent construction of simulators.
//!
//! [`Sim::builder`] is the one supported way to stand up a simulator. The
//! builder gathers the machine shape, parameter overrides, and optional
//! traffic patterns, then validates the whole configuration through the
//! `anton-verify` lint engine at [`build`](SimBuilder::build) time — every
//! rejection carries a stable `AVnnn` diagnostic code instead of a panic
//! deep inside construction.
//!
//! ```
//! use anton_core::topology::TorusShape;
//! use anton_sim::Sim;
//!
//! let sim = Sim::builder()
//!     .shape(TorusShape::cube(2))
//!     .seed(7)
//!     .metrics(true)
//!     .build();
//! assert_eq!(sim.now(), 0);
//! ```
//!
//! When the arbiter is [`ArbiterKind::InverseWeighted`], supplying the
//! expected traffic via [`traffic`](SimBuilder::traffic) makes `build()`
//! run the offline load analysis, lint the resulting weight tables
//! (AV016), and program every arbitration point — the boilerplate the
//! experiment binaries used to repeat by hand.

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_core::topology::TorusShape;
use anton_fault::FaultSchedule;

use crate::params::{PreflightMode, SimParams, TraceConfig};
use crate::shard::ShardedSim;
use crate::sim::Sim;

/// Fluent builder for [`Sim`] and [`ShardedSim`]; see the
/// [module docs](self).
pub struct SimBuilder {
    cfg: MachineConfig,
    params: SimParams,
    traffic: Vec<Box<dyn TrafficPattern>>,
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("shape", &self.cfg.shape)
            .field("params", &self.params)
            .field("traffic_patterns", &self.traffic.len())
            .finish()
    }
}

impl Sim {
    /// Starts a builder with the paper-default parameters on a 2×2×2
    /// machine; set the real shape with [`SimBuilder::shape`].
    pub fn builder() -> SimBuilder {
        SimBuilder {
            cfg: MachineConfig::new(TorusShape::cube(2)),
            params: SimParams::default(),
            traffic: Vec::new(),
        }
    }
}

impl SimBuilder {
    /// Machine shape (replaces the configuration with the defaults for
    /// this shape; call before other configuration overrides).
    pub fn shape(mut self, shape: TorusShape) -> SimBuilder {
        self.cfg = MachineConfig::new(shape);
        self
    }

    /// Full machine configuration, for non-default VC policies or routing
    /// tables.
    pub fn config(mut self, cfg: MachineConfig) -> SimBuilder {
        self.cfg = cfg;
        self
    }

    /// Wholesale parameter replacement; later fluent overrides still
    /// apply on top.
    pub fn params(mut self, params: SimParams) -> SimBuilder {
        self.params = params;
        self
    }

    /// Arbitration policy at every on-chip arbitration point.
    pub fn arbiter(mut self, arbiter: ArbiterKind) -> SimBuilder {
        self.params.arbiter = arbiter;
        self
    }

    /// Expected traffic pattern. With an
    /// [`InverseWeighted`](ArbiterKind::InverseWeighted) arbiter,
    /// `build()` computes the pattern's channel loads and programs the
    /// inverse-weight tables (call repeatedly for multi-pattern weights);
    /// with other arbiters the patterns are unused.
    pub fn traffic(mut self, pattern: Box<dyn TrafficPattern>) -> SimBuilder {
        self.traffic.push(pattern);
        self
    }

    /// Base seed of the derived per-endpoint route-randomization streams.
    pub fn seed(mut self, seed: u64) -> SimBuilder {
        self.params.seed = seed;
        self
    }

    /// Router input buffer depth per VC (flits).
    pub fn buffer_depth(mut self, flits: u8) -> SimBuilder {
        self.params.buffer_depth = flits;
        self
    }

    /// Collect per-link-class utilization and VC occupancy histograms.
    pub fn metrics(mut self, on: bool) -> SimBuilder {
        self.params.collect_metrics = on;
        self
    }

    /// Track per-router energy counters.
    pub fn energy(mut self, on: bool) -> SimBuilder {
        self.params.track_energy = on;
        self
    }

    /// Count arbitration grants per site class.
    pub fn grants(mut self, on: bool) -> SimBuilder {
        self.params.collect_grants = on;
        self
    }

    /// Idle cycles before the deadlock watchdog trips.
    pub fn watchdog(mut self, cycles: u64) -> SimBuilder {
        self.params.watchdog_cycles = cycles;
        self
    }

    /// Install a link-fault schedule (lossy go-back-N shims on every torus
    /// wire).
    pub fn fault(mut self, schedule: FaultSchedule) -> SimBuilder {
        self.params.fault = Some(schedule);
        self
    }

    /// Observability configuration: flight recorder, time-series sampler,
    /// profiler.
    pub fn trace(mut self, trace: TraceConfig) -> SimBuilder {
        self.params.trace = trace;
        self
    }

    /// Static pre-flight verification policy.
    pub fn preflight(mut self, mode: PreflightMode) -> SimBuilder {
        self.params.preflight = mode;
        self
    }

    /// Worker shards of the parallel kernel. Honored by
    /// [`build_sharded`](SimBuilder::build_sharded); [`build`]
    /// (SimBuilder::build) always constructs the serial kernel.
    pub fn shards(mut self, shards: usize) -> SimBuilder {
        self.params.shards = shards;
        self
    }

    /// Builds the serial simulator.
    ///
    /// # Panics
    ///
    /// With the default [`PreflightMode::Enforce`], panics if the lint
    /// engine reports any error-severity diagnostic (`AV001`–`AV019`)
    /// against the configuration, parameters, or computed arbiter
    /// weights.
    pub fn build(self) -> Sim {
        let SimBuilder {
            cfg,
            params,
            traffic,
        } = self;
        let weights = computed_weights(&cfg, &params, &traffic);
        let mut sim = Sim::construct(cfg, params, None);
        if let Some(set) = &weights {
            install_weights(&mut sim, set);
        }
        sim
    }

    /// Builds the sharded parallel simulator with the configured
    /// [`shards`](SimBuilder::shards) count (`1` reproduces the serial
    /// kernel byte for byte).
    ///
    /// # Panics
    ///
    /// As [`build`](SimBuilder::build); additionally if the shard count
    /// exceeds the node count (also lint `AV019`).
    pub fn build_sharded(self) -> ShardedSim {
        let SimBuilder {
            cfg,
            params,
            traffic,
        } = self;
        let weights = computed_weights(&cfg, &params, &traffic);
        let mut sim = ShardedSim::new(cfg, params);
        if let Some(set) = weights {
            sim.configure(|s| install_weights(s, &set));
        }
        sim
    }
}

/// Computes and lints inverse-arbitration weights when the configuration
/// calls for them.
fn computed_weights(
    cfg: &MachineConfig,
    params: &SimParams,
    traffic: &[Box<dyn TrafficPattern>],
) -> Option<ArbiterWeightSet> {
    let ArbiterKind::InverseWeighted { m_bits } = params.arbiter else {
        return None;
    };
    if traffic.is_empty() {
        return None;
    }
    let analyses: Vec<LoadAnalysis> = traffic
        .iter()
        .map(|p| LoadAnalysis::compute(cfg, p.as_ref()))
        .collect();
    let refs: Vec<&LoadAnalysis> = analyses.iter().collect();
    let set = ArbiterWeightSet::compute(cfg, &refs, m_bits);
    if params.preflight != PreflightMode::Off {
        let diags = anton_verify::lint_weights(&set);
        let errors = diags
            .iter()
            .filter(|d| d.severity == anton_verify::Severity::Error)
            .count();
        for d in &diags {
            eprintln!("anton-sim pre-flight: {d}");
        }
        if errors > 0 && params.preflight == PreflightMode::Enforce {
            panic!(
                "computed arbiter weight set failed lint with {errors} error(s); \
                 set preflight to PreflightMode::WarnOnly to run it anyway"
            );
        }
    }
    Some(set)
}

/// Programs a computed weight set at every arbitration point.
fn install_weights(sim: &mut Sim, set: &ArbiterWeightSet) {
    for ((node, router, out), table) in &set.tables {
        sim.set_arbiter_weights(*node, *router, *out, table.clone(), set.m_bits);
    }
    for ((node, chan), table) in &set.chan_tables {
        sim.set_chan_arbiter_weights(*node, *chan, table.clone(), set.m_bits);
    }
    for ((node, router, port), table) in &set.input_tables {
        sim.set_input_arbiter_weights(*node, *router, *port, table.clone(), set.m_bits);
    }
}
