//! Exact-cycle wake scheduling for simulator components.
//!
//! The kernel's hot loop must not rescan every router, channel adapter, and
//! endpoint adapter each cycle: on a 4×4×4 machine that is thousands of
//! components, most of which have nothing to do on most cycles. Instead,
//! every state change that could enable a component to act schedules a wake
//! for it at the exact cycle the opportunity opens (a flit clearing the
//! receiver pipeline, a credit returning, a busy window or token bucket
//! expiring), and [`Sim::step`](crate::sim::Sim::step) processes only the
//! woken components.
//!
//! A [`Scheduler`] is a small calendar wheel of per-cycle bitsets. Waking is
//! an O(1) bit set; draining a cycle is an ascending-index bit scan, which
//! preserves the strict component ordering the simulator's determinism
//! (shared RNG draws, packet-slab id allocation, delivery order) depends on.
//! Wakes are bounded to [`HORIZON`] cycles out — every wake source in the
//! simulator is a short structural delay (pipeline depths, packet flit
//! counts, serializer token refill), far below the bound.

/// Calendar depth in cycles (power of two). Wakes must target a cycle less
/// than this far in the future.
pub const HORIZON: u64 = 64;

/// A calendar wheel of component wake-ups with exact-cycle semantics.
#[derive(Debug)]
pub struct Scheduler {
    /// `u64` words per bitset (components / 64, rounded up).
    words: usize,
    /// `HORIZON` bucket bitsets, flattened bucket-major.
    buckets: Vec<u64>,
    /// Components woken for the cycle currently being processed.
    cur: Vec<u64>,
}

impl Scheduler {
    /// Creates a scheduler for `n` components, all of them woken for
    /// cycle 0 (every component must get one bootstrap look).
    pub fn new(n: usize) -> Scheduler {
        let words = n.div_ceil(64);
        let mut buckets = vec![0u64; words * HORIZON as usize];
        for (i, w) in buckets.iter_mut().take(words).enumerate() {
            let bits = n - i * 64;
            *w = if bits >= 64 { !0 } else { (1u64 << bits) - 1 };
        }
        Scheduler {
            words,
            buckets,
            cur: vec![0; words],
        }
    }

    /// Schedules component `i` for processing at cycle `at` (`at == now`
    /// wakes it for the cycle in progress; its phase must not have been
    /// drained yet).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `HORIZON` or more cycles ahead.
    #[inline]
    pub fn schedule(&mut self, i: usize, at: u64, now: u64) {
        if at == now {
            self.cur[i / 64] |= 1 << (i % 64);
            return;
        }
        assert!(
            at > now && at - now < HORIZON,
            "wake for component {i} at cycle {at} outside ({now}, {now}+{HORIZON})"
        );
        let base = (at % HORIZON) as usize * self.words;
        self.buckets[base + i / 64] |= 1 << (i % 64);
    }

    /// Starts a cycle: moves the cycle's bucket into the current set.
    pub fn begin_cycle(&mut self, now: u64) {
        let base = (now % HORIZON) as usize * self.words;
        for k in 0..self.words {
            self.cur[k] |= self.buckets[base + k];
            self.buckets[base + k] = 0;
        }
    }

    /// Appends the current set's component indices to `out` in ascending
    /// order (the order every processing phase must use).
    pub fn snapshot_into(&self, out: &mut Vec<u32>) {
        for (k, &word) in self.cur.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push((k * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    /// Ends a cycle: clears the current set.
    pub fn end_cycle(&mut self) {
        self.cur.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &Scheduler) -> Vec<u32> {
        let mut v = Vec::new();
        s.snapshot_into(&mut v);
        v
    }

    #[test]
    fn all_components_wake_at_cycle_zero() {
        let mut s = Scheduler::new(130);
        s.begin_cycle(0);
        let got = drain(&s);
        assert_eq!(got.len(), 130);
        assert_eq!(got[0], 0);
        assert_eq!(got[129], 129);
        s.end_cycle();
        s.begin_cycle(1);
        assert!(drain(&s).is_empty(), "no wakes scheduled for cycle 1");
    }

    #[test]
    fn wakes_fire_at_their_exact_cycle_in_ascending_order() {
        let mut s = Scheduler::new(200);
        s.begin_cycle(0);
        s.end_cycle();
        s.schedule(150, 3, 1);
        s.schedule(7, 3, 1);
        s.schedule(64, 3, 1);
        s.schedule(9, 2, 1);
        s.begin_cycle(2);
        assert_eq!(drain(&s), vec![9]);
        s.end_cycle();
        s.begin_cycle(3);
        assert_eq!(drain(&s), vec![7, 64, 150]);
        s.end_cycle();
        s.begin_cycle(4);
        assert!(drain(&s).is_empty());
    }

    #[test]
    fn same_cycle_wake_joins_current_set() {
        let mut s = Scheduler::new(10);
        s.begin_cycle(0);
        s.end_cycle();
        s.begin_cycle(5);
        s.schedule(3, 5, 5);
        assert_eq!(drain(&s), vec![3]);
    }

    #[test]
    fn duplicate_wakes_coalesce() {
        let mut s = Scheduler::new(10);
        s.begin_cycle(0);
        s.end_cycle();
        s.schedule(4, 2, 0);
        s.schedule(4, 2, 1);
        s.begin_cycle(2);
        assert_eq!(drain(&s), vec![4]);
    }

    #[test]
    fn wheel_wraps_around_the_horizon() {
        let mut s = Scheduler::new(3);
        s.begin_cycle(0);
        s.end_cycle();
        for t in 1..(3 * HORIZON) {
            s.schedule(1, t, t - 1);
            s.begin_cycle(t);
            assert_eq!(drain(&s), vec![1], "cycle {t}");
            s.end_cycle();
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn wake_beyond_horizon_is_rejected() {
        let mut s = Scheduler::new(4);
        s.schedule(0, HORIZON, 0);
    }
}
