//! # anton-sim
//!
//! Cycle-driven, flit-level simulator of the Anton 2 unified network
//! (*"Unifying on-chip and inter-node switching within the Anton 2
//! network"*, ISCA 2014).
//!
//! The simulator instantiates every structural element of a configured
//! machine — 16 on-chip routers per node with the four-stage RC/VA/SA1/SA2
//! pipeline, skip channels, endpoint adapters with counted-write
//! synchronization, channel adapters with multicast replication tables, and
//! rate-limited external torus channels — and advances them cycle by cycle
//! under credit-based virtual cut-through flow control.
//!
//! * [`sim`] — the simulator core ([`Sim`]);
//! * [`builder`] — fluent, lint-validated construction
//!   ([`Sim::builder`]);
//! * [`driver`] — measurement workloads (batch throughput, ping-pong
//!   latency, rate-controlled energy streams, open-loop load);
//! * [`metrics`] — typed metrics records: per-link-class utilization, VC
//!   occupancy histograms, arbiter grant counts, link-fault counters;
//! * [`wire`] — credit-controlled channels, optionally wrapped in lossy
//!   go-back-N link shims when a fault schedule is installed;
//! * [`params`] — physical constants and calibration parameters;
//! * [`shard`] — the sharded parallel kernel ([`ShardedSim`]): bounded-lag
//!   windows across one worker thread per contiguous torus sub-brick,
//!   byte-identical to serial execution for every shard count;
//! * [`state`] — in-flight packet state.
//!
//! # Self-checking invariants
//!
//! Every [`Sim::run`](sim::Sim::run) exit passes through an invariant audit:
//! packet conservation (`created == terminated + live` at quiesce) and
//! per-VC credit balance on every wire. A forward-progress watchdog turns
//! silent deadlocks into a [`RunOutcome::Deadlock`](sim::RunOutcome) with a
//! structured [`DeadlockReport`](sim::DeadlockReport) naming the stalled
//! VCs, their head packets, and any link-shim backlogs.
//!
//! # Examples
//!
//! ```
//! use anton_core::TorusShape;
//! use anton_sim::driver::BatchDriver;
//! use anton_sim::sim::{RunOutcome, Sim};
//! use anton_traffic::UniformRandom;
//!
//! let mut sim = Sim::builder().shape(TorusShape::cube(2)).build();
//! let mut driver = BatchDriver::builder(&sim)
//!     .pattern(Box::new(UniformRandom))
//!     .packets_per_endpoint(4)
//!     .seed(1)
//!     .build();
//! assert_eq!(sim.run(&mut driver, 100_000), RunOutcome::Completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod driver;
pub mod metrics;
pub mod params;
pub mod shard;
pub mod sim;
pub mod state;
pub mod wake;
pub mod wire;

pub use builder::SimBuilder;
pub use driver::{
    BatchDriver, BatchDriverBuilder, LoadDriver, PayloadKind, PingPongDriver, RateDriver,
};
pub use metrics::{
    ArbiterGrantCounts, FaultMetrics, LinkClass, LinkClassMetrics, Metrics, VcOccupancyHistogram,
};
pub use params::{EnergyParams, LatencyParams, PreflightMode, SimParams, TraceConfig};
pub use shard::{ShardPlan, ShardableDriver, ShardedSim};
pub use sim::{
    DeadlockReport, Delivery, Driver, EnergyCounters, PacketDelivery, RunOutcome, Sim, SimStats,
    StalledVc, StaticVerdict,
};
