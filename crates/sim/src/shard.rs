//! Sharded parallel execution of the simulation kernel.
//!
//! [`ShardedSim`] partitions the torus into contiguous sub-bricks of nodes
//! (one shard per worker thread) and runs each shard's event-driven wake
//! wheel independently up to a conservative lookahead horizon — the
//! bounded-lag scheme classically built from null messages, except that the
//! lookahead here is *static*: the minimum latency of any torus link
//! crossing a shard boundary (44 cycles at default calibration), so no null
//! messages are needed. At each horizon barrier the shards exchange
//! boundary traffic through mutex-striped mailboxes: departed packets
//! travel producer → consumer with their full slab state, and credit
//! returns travel consumer → producer.
//!
//! # Replicas and boundary roles
//!
//! Every shard holds a *full-machine* [`Sim`] replica (identical wire and
//! component arrays, global endpoint indexing); components outside the
//! shard's node range simply stay dormant because only the shard's own
//! sub-driver injects. A torus wire whose producer and consumer nodes land
//! in different shards exists in both replicas with complementary
//! [`BoundaryRole`](crate::wire::BoundaryRole)s: the producer-side copy
//! owns the credits, serialization, and link-layer shim and diverts
//! departed flits into an outbox; the consumer-side copy owns the receive
//! buffers and diverts credit returns back. The per-VC credit balance of
//! such a wire therefore only holds *across* the two replicas, which
//! [`ShardedSim::check_invariants`] verifies.
//!
//! # Determinism
//!
//! Sharded execution is byte-identical to the serial kernel for every
//! shard count. Three mechanisms make that hold:
//!
//! * every endpoint draws route randomization from its own counter-derived
//!   RNG stream ([`anton_core::seed::derive_stream_seed`]), so a draw
//!   depends only on that endpoint's locally-deterministic state;
//! * shards own *contiguous ascending* node ranges, so concatenating
//!   per-cycle delivery logs in shard order reproduces the exact serial
//!   delivery order (the serial kernel emits handler dispatches, then
//!   endpoint receives, both in ascending endpoint order);
//! * global control decisions (driver completion, the deadlock watchdog,
//!   the cycle budget) are replayed cycle-by-cycle on a *control replica*
//!   by the coordinator after each window, in serial order, so a run stops
//!   at exactly the serial cycle.
//!
//! A driver whose [`done`](Driver::done) can trip while packets are still
//! in flight (open-loop load) forces a one-cycle window so the replayed
//! stop decision never lags the workers; closed-loop drivers declare
//! [`ShardableDriver::done_implies_quiescent`] and keep the full horizon,
//! because overrunning a drained network has no observable effect.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::McGroup;
use anton_core::packet::{CounterId, Packet};
use anton_core::topology::NodeId;
use anton_core::trace::GlobalLink;
use anton_fault::ShimStats;

use crate::metrics::{
    ArbiterGrantCounts, FaultMetrics, LinkClass, LinkClassMetrics, Metrics, VcOccupancyHistogram,
};
use crate::params::{SimParams, TraceConfig};
use crate::sim::{
    DeadlockReport, Delivery, Driver, EnergyCounters, RunOutcome, Sim, SimStats, StaticVerdict,
};
use crate::state::PacketState;
use crate::wire::{BufEntry, OCC_BUCKETS};

/// Window length used when only one shard exists (no boundary wires limit
/// the lookahead; the window only bounds control-decision latency).
const SOLO_WINDOW: u64 = 1024;

/// Serial cap on stalled-VC entries in a deadlock report, mirrored when
/// merging per-shard reports.
const REPORT_CAP: usize = 64;

/// A driver that can be decomposed into per-shard sub-drivers.
///
/// [`ShardedSim::run`] splits the driver once at the start of the run: each
/// worker thread drives its shard replica with the returned sub-driver,
/// while the *original* driver only ever observes the control replica — it
/// receives every delivery, in exact serial order, through
/// [`on_delivery`](Driver::on_delivery), and its [`done`](Driver::done)
/// predicate decides completion. Its [`pre_cycle`](Driver::pre_cycle) is
/// never called in sharded mode.
///
/// Contract for implementations:
///
/// * sub-driver `i` must inject **only** from endpoints inside `ranges[i]`
///   (dense endpoint indices), and must inject exactly the packets the
///   undivided driver would inject from those endpoints — per-endpoint RNG
///   streams make this natural;
/// * the original driver's `on_delivery` runs against the control replica,
///   which never simulates: it must not inject or otherwise drive traffic
///   (drivers that inject in response to deliveries, like ping-pong, are
///   not shardable);
/// * `done` may read the delivery stream and [`Sim::stats`], but not
///   live-packet or wire state (the control replica carries none).
pub trait ShardableDriver: Driver {
    /// Splits the driver into one sub-driver per endpoint range.
    fn split(&self, cfg: &MachineConfig, ranges: &[Range<usize>]) -> Vec<Box<dyn Driver + Send>>;

    /// Whether [`done`](Driver::done) returning `true` implies the network
    /// has fully drained (closed-loop workloads). When `false` (the safe
    /// default, right for open-loop load), the sharded kernel shrinks its
    /// sync window to one cycle so the run stops at exactly the serial
    /// cycle with no overrun.
    fn done_implies_quiescent(&self) -> bool {
        false
    }
}

/// How the machine's nodes are partitioned into shards: one contiguous
/// range of node ids per shard, covering all nodes in ascending order.
///
/// Contiguity in *node id* order is what makes the sharded delivery merge
/// trivially deterministic: concatenating per-shard logs in shard order is
/// already ascending endpoint order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    node_ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Partitions `nodes` into `shards` contiguous ranges, as even as
    /// possible (the first `nodes % shards` ranges get one extra node).
    pub fn contiguous(nodes: usize, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "shard plan needs at least one shard");
        assert!(
            shards <= nodes,
            "cannot split {nodes} nodes into {shards} shards"
        );
        let base = nodes / shards;
        let rem = nodes % shards;
        let mut node_ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            node_ranges.push(start..start + len);
            start += len;
        }
        ShardPlan { node_ranges }
    }

    /// Builds a plan from explicit ranges, which must be non-empty,
    /// contiguous, and start at node 0.
    pub fn from_node_ranges(node_ranges: Vec<Range<usize>>) -> ShardPlan {
        assert!(
            !node_ranges.is_empty(),
            "shard plan needs at least one range"
        );
        let mut next = 0;
        for r in &node_ranges {
            assert_eq!(r.start, next, "shard ranges must be contiguous");
            assert!(r.end > r.start, "shard ranges must be non-empty");
            next = r.end;
        }
        ShardPlan { node_ranges }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.node_ranges.len()
    }

    /// The node-id range of each shard.
    pub fn node_ranges(&self) -> &[Range<usize>] {
        &self.node_ranges
    }

    /// Total nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.node_ranges.last().map_or(0, |r| r.end)
    }

    /// The dense-endpoint-index range of each shard.
    pub fn endpoint_ranges(&self, eps_per_node: usize) -> Vec<Range<usize>> {
        self.node_ranges
            .iter()
            .map(|r| r.start * eps_per_node..r.end * eps_per_node)
            .collect()
    }

    fn owner_of_node(&self, n: usize) -> usize {
        self.node_ranges
            .iter()
            .position(|r| r.contains(&n))
            .expect("node outside shard plan")
    }
}

/// One shard's view of the plan, passed to `Sim::construct` so boundary
/// wires get their roles marked.
pub(crate) struct ShardAssignment<'a> {
    pub(crate) plan: &'a ShardPlan,
    pub(crate) me: usize,
}

impl ShardAssignment<'_> {
    pub(crate) fn owner(&self, node: NodeId) -> usize {
        self.plan.owner_of_node(node.0 as usize)
    }
}

/// A packet crossing a shard boundary: the buffer entry departing an export
/// wire plus the packet's full slab state, which moves producer → consumer
/// with it.
pub(crate) struct PacketTransfer {
    pub(crate) wire: u32,
    pub(crate) mature: u64,
    pub(crate) entry: BufEntry,
    pub(crate) vcidx: u8,
    pub(crate) state: PacketState,
}

/// A credit return crossing a shard boundary (consumer → producer).
pub(crate) struct CreditTransfer {
    pub(crate) wire: u32,
    pub(crate) at: u64,
    pub(crate) vcidx: u8,
    pub(crate) flits: u8,
}

/// Everything one shard ships to one other shard at a horizon barrier.
#[derive(Default)]
pub(crate) struct ShardMail {
    pub(crate) packets: Vec<PacketTransfer>,
    pub(crate) credits: Vec<CreditTransfer>,
}

/// Per-cycle worker log replayed by the coordinator: the cycle's delivery
/// stream (handlers first, mirroring serial emission order) plus the
/// watchdog inputs.
struct CycleLog {
    dels: Vec<Delivery>,
    /// Number of leading `Delivery::Handler` entries in `dels`.
    handlers: usize,
    moved: bool,
    live: u64,
}

/// One shard's log of a whole sync window.
#[derive(Default)]
struct WindowLog {
    cycles: Vec<CycleLog>,
}

/// The sharded simulation: N full-machine shard replicas stepped by worker
/// threads in bounded-lag sync windows, plus a control replica the
/// coordinator replays global decisions on. See the [module
/// docs](self) for the protocol.
///
/// The driver-facing surface mirrors [`Sim`]: build it (normally through
/// [`Sim::builder`](crate::sim::Sim) with a shard count), optionally
/// [`configure`](ShardedSim::configure) / [`inject`](ShardedSim::inject) /
/// [`set_counter`](ShardedSim::set_counter), then [`run`](ShardedSim::run)
/// with a [`ShardableDriver`] and read the merged statistics and metrics.
#[derive(Debug)]
pub struct ShardedSim {
    plan: ShardPlan,
    shards: Vec<Sim>,
    control: Sim,
    /// Shard owning each wire's producing side (intra-node wires: the
    /// node's owner on both sides).
    wire_tx_owner: Vec<u32>,
    /// Shard owning each wire's consuming side.
    wire_rx_owner: Vec<u32>,
    /// Boundary lookahead: the minimum latency of a shard-crossing link.
    link_window: u64,
    fault_present: bool,
    end_cycle: u64,
    idle_cycles: u64,
    deadlocked: bool,
    deadlock_report: Option<Box<DeadlockReport>>,
    /// Per-shard wall-clock nanoseconds split by worker phase
    /// ([`anton_obs::phase`]), accumulated across [`ShardedSim::run`] calls.
    /// Empty unless the phase profiler is on.
    phase_ns: Vec<[u64; anton_obs::NUM_SHARD_PHASES]>,
}

impl ShardedSim {
    /// Builds a sharded simulation with `params.shards` contiguous shards.
    ///
    /// The static pre-flight verification runs once (on the control
    /// replica) under the caller's [`PreflightMode`]; shard replicas skip
    /// it.
    pub fn new(cfg: MachineConfig, params: SimParams) -> ShardedSim {
        let shards = params.shards.max(1);
        let plan = ShardPlan::contiguous(cfg.shape.num_nodes(), shards);
        ShardedSim::with_plan(cfg, params, plan)
    }

    /// Builds a sharded simulation over an explicit [`ShardPlan`].
    pub fn with_plan(cfg: MachineConfig, params: SimParams, plan: ShardPlan) -> ShardedSim {
        assert_eq!(
            plan.num_nodes(),
            cfg.shape.num_nodes(),
            "shard plan does not cover the machine"
        );
        let fault_present = params.fault.is_some();
        let link_window = params.latency.torus_link_cycles().max(1);
        // The control replica never steps: it exists for preflight (run
        // once, under the caller's policy), for driver callbacks during
        // replay, and as the keeper of the merged delivery statistics.
        // Tracing and metric trackers on it would only waste memory.
        let mut control_params = params.clone();
        control_params.trace = TraceConfig::default();
        control_params.collect_metrics = false;
        control_params.track_energy = false;
        let control = Sim::construct(cfg.clone(), control_params, None);
        // Replicas keep the caller's preflight mode: `Sim::construct` skips
        // the static pre-flight for them (the control replica above ran it
        // once), but the mode still governs whether degraded route tables
        // are built — every replica must reach the serial run's
        // install-or-reject decision.
        let shard_params = params;
        let shards: Vec<Sim> = (0..plan.num_shards())
            .map(|me| {
                Sim::construct(
                    cfg.clone(),
                    shard_params.clone(),
                    Some(&ShardAssignment { plan: &plan, me }),
                )
            })
            .collect();
        let mut wire_tx_owner = Vec::with_capacity(control.wires().len());
        let mut wire_rx_owner = Vec::with_capacity(control.wires().len());
        for wire in control.wires() {
            let (tx, rx) = match wire.label {
                GlobalLink::Torus { from, dir, .. } => {
                    let to = cfg.shape.id(cfg.shape.neighbor(cfg.shape.coord(from), dir));
                    (
                        plan.owner_of_node(from.0 as usize),
                        plan.owner_of_node(to.0 as usize),
                    )
                }
                GlobalLink::Local { node, .. } => {
                    let o = plan.owner_of_node(node.0 as usize);
                    (o, o)
                }
                GlobalLink::Direct { from, to } => (
                    plan.owner_of_node(from.0 as usize),
                    plan.owner_of_node(to.0 as usize),
                ),
            };
            wire_tx_owner.push(tx as u32);
            wire_rx_owner.push(rx as u32);
        }
        ShardedSim {
            plan,
            shards,
            control,
            wire_tx_owner,
            wire_rx_owner,
            link_window,
            fault_present,
            end_cycle: 0,
            idle_cycles: 0,
            deadlocked: false,
            deadlock_report: None,
            phase_ns: Vec::new(),
        }
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.control.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The per-shard replicas, in shard order — read-only access for
    /// diagnostics and for merging per-shard observability state (flight
    /// recorders, time series).
    pub fn shards(&self) -> &[Sim] {
        &self.shards
    }

    /// Applies a configuration closure to every shard replica (arbiter
    /// weight installation and similar pre-run setup; the closure must be
    /// deterministic and is applied to each replica in shard order).
    pub fn configure(&mut self, mut f: impl FnMut(&mut Sim)) {
        for sh in &mut self.shards {
            f(sh);
        }
    }

    /// Registers a multicast group on every shard replica.
    pub fn add_multicast_group(&mut self, group: McGroup) {
        for sh in &mut self.shards {
            sh.add_multicast_group(group.clone());
        }
    }

    /// Arms a counted-write counter at `ep` (routed to the owning shard).
    pub fn set_counter(&mut self, ep: GlobalEndpoint, counter: CounterId, count: u32) {
        let s = self.plan.owner_of_node(ep.node.0 as usize);
        self.shards[s].set_counter(ep, counter, count);
    }

    /// Queues a packet for injection at `src` (routed to the owning shard).
    pub fn inject(&mut self, src: GlobalEndpoint, packet: Packet) {
        let s = self.plan.owner_of_node(src.node.0 as usize);
        self.shards[s].inject(src, packet);
    }

    /// The cycle the last run ended on (the exact serial end cycle, even
    /// when worker replicas legally overran a drained network by a partial
    /// window).
    pub fn now(&self) -> u64 {
        self.end_cycle
    }

    /// Packets currently live across all shards.
    pub fn live_packets(&self) -> usize {
        self.shards.iter().map(Sim::live_packets).sum()
    }

    /// Whether the (globally evaluated) deadlock watchdog has fired.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// The merged deadlock diagnostic, when the watchdog fired.
    pub fn deadlock_report(&self) -> Option<&DeadlockReport> {
        self.deadlock_report.as_deref()
    }

    /// What the static pre-flight verifier concluded (run once, on the
    /// control replica).
    pub fn static_verdict(&self) -> StaticVerdict {
        self.control.static_verdict()
    }

    /// The per-shard flight-recorder rings merged into one canonical event
    /// stream, when [`TraceConfig::events`] tracing was on.
    ///
    /// Each wire's track is taken from its producing-side owner alone — the
    /// same authority rule the merged statistics use — so boundary wires
    /// contribute each event exactly once. Events a worker recorded while
    /// legally overrunning a drained network past the run's end cycle are
    /// dropped, and the stream is ordered by `(cycle, track)` with
    /// reassigned sequence numbers: a deterministic, schedule-independent
    /// export (see [`anton_obs::merged_events`] for the order's rationale).
    ///
    /// [`TraceConfig::events`]: crate::params::TraceConfig::events
    pub fn merged_events(&self) -> Vec<anton_obs::TraceEvent> {
        let mut out: Vec<anton_obs::TraceEvent> = Vec::new();
        for (i, sh) in self.shards.iter().enumerate() {
            let Some(rec) = sh.recorder() else { continue };
            for t in 0..rec.num_tracks() as u32 {
                if self.wire_tx_owner[t as usize] != i as u32 {
                    continue;
                }
                out.extend(
                    rec.track_events(t)
                        .filter(|e| e.cycle <= self.end_cycle)
                        .copied(),
                );
            }
        }
        out.sort_by_key(|e| (e.cycle, e.track, e.seq));
        for (seq, e) in out.iter_mut().enumerate() {
            e.seq = seq as u64;
        }
        out
    }

    /// The per-shard kernel-counter time series summed into the
    /// machine-wide view, when
    /// [`TraceConfig::sample_every`](crate::params::TraceConfig::sample_every)
    /// was non-zero. Windows a worker sampled while overrunning a drained
    /// network past the end cycle are truncated away.
    pub fn merged_timeseries(&self) -> Option<anton_obs::TimeSeries> {
        let parts: Vec<&anton_obs::TimeSeries> =
            self.shards.iter().filter_map(Sim::timeseries).collect();
        (!parts.is_empty()).then(|| {
            let mut ts = anton_obs::TimeSeries::merged(&parts);
            ts.truncate_after(self.end_cycle);
            ts
        })
    }

    /// Per-shard wall-clock nanoseconds split by worker phase
    /// (`compute` / `barrier_wait` / `mailbox` / `merge`, indexed by
    /// [`anton_obs::ShardPhase`]), accumulated across [`run`] calls.
    /// `None` unless the phase profiler was on
    /// ([`TraceConfig::profile`](crate::params::TraceConfig::profile) or
    /// `ANTON_SIM_PROFILE`).
    ///
    /// [`run`]: ShardedSim::run
    pub fn phase_ns(&self) -> Option<&[[u64; anton_obs::NUM_SHARD_PHASES]]> {
        (!self.phase_ns.is_empty()).then_some(self.phase_ns.as_slice())
    }

    /// The per-shard stall-attribution tables summed into one machine-wide
    /// table, when [`TraceConfig::stalls`](crate::params::TraceConfig::stalls)
    /// was on. Each (wire, VC) slot is only ever observed by the one shard
    /// that owns its consuming component, so summation counts every stall
    /// segment exactly once and the result is byte-identical to a serial
    /// run of the same workload.
    pub fn merged_stalls(&self) -> Option<anton_obs::StallTable> {
        let mut parts = self.shards.iter().filter_map(Sim::stall_table);
        let mut merged = parts.next()?.clone();
        for p in parts {
            merged.merge(p);
        }
        Some(merged)
    }

    /// Congestion analysis over [`merged_stalls`](ShardedSim::merged_stalls):
    /// ranked hotspots, per-cause totals, and root-blocker trees.
    pub fn congestion_report(&self) -> Option<anton_obs::CongestionReport> {
        let merged = self.merged_stalls()?;
        Some(self.shards[0].congestion_report_from(&merged))
    }

    /// Merged statistics: delivery-side counters come from the control
    /// replica's serial-order replay, injection- and flit-side counters sum
    /// over the shards (each event is counted by exactly one replica).
    pub fn stats(&self) -> SimStats {
        let mut s = self.control.stats().clone();
        for sh in &self.shards {
            let st = sh.stats();
            s.injected_packets += st.injected_packets;
            s.rerouted_packets += st.rerouted_packets;
            s.flit_hops += st.flit_hops;
            s.torus_flits += st.torus_flits;
        }
        s
    }

    /// Merged arbiter grant counts (only a wire's owning shard ever
    /// arbitrates it, so the sum counts every grant once).
    pub fn grant_counts(&self) -> ArbiterGrantCounts {
        let mut g = ArbiterGrantCounts::default();
        for sh in &self.shards {
            let c = sh.grant_counts();
            g.sa1 += c.sa1;
            g.output += c.output;
            g.serializer += c.serializer;
        }
        g
    }

    /// Merged per-router energy counters.
    pub fn router_energy(&self) -> EnergyCounters {
        let mut total = EnergyCounters::default();
        for sh in &self.shards {
            total.add(&sh.router_energy());
        }
        total
    }

    /// Raw flit counts per wire, labeled — each wire read from its
    /// producing-side owner (the replica that counted its traffic).
    pub fn wire_utilizations(&self) -> Vec<(GlobalLink, u64)> {
        self.control
            .wires()
            .iter()
            .enumerate()
            .map(|(w, cw)| {
                let owner = &self.shards[self.wire_tx_owner[w] as usize];
                (cw.label, owner.wire_flits_carried(w))
            })
            .collect()
    }

    /// Utilization of every external torus channel, as in
    /// [`Sim::torus_utilizations`], over the serial end cycle.
    pub fn torus_utilizations(
        &self,
    ) -> Vec<(
        NodeId,
        anton_core::topology::TorusDir,
        anton_core::topology::Slice,
        f64,
    )> {
        let cycles = self.end_cycle.max(1) as f64;
        self.control
            .wires()
            .iter()
            .enumerate()
            .filter_map(|(w, cw)| match cw.label {
                GlobalLink::Torus { from, dir, slice } => {
                    let owner = &self.shards[self.wire_tx_owner[w] as usize];
                    Some((
                        from,
                        dir,
                        slice,
                        owner.wire_flits_carried(w) as f64 / cycles,
                    ))
                }
                _ => None,
            })
            .collect()
    }

    /// Peak torus-channel utilization as a fraction of effective channel
    /// bandwidth, as in [`Sim::max_torus_utilization`].
    pub fn max_torus_utilization(&self) -> f64 {
        let cap =
            f64::from(crate::params::TORUS_TOKEN_GAIN) / f64::from(crate::params::TORUS_TOKEN_COST);
        self.torus_utilizations()
            .iter()
            .map(|(_, _, _, u)| u / cap)
            .fold(0.0, f64::max)
    }

    /// Collects the merged typed metrics record. Per boundary wire, the
    /// producing-side replica is authoritative for flits carried and
    /// link-layer shim counters (it runs the send path and the shim), the
    /// consuming-side replica for queue-occupancy histograms (it runs the
    /// receive buffers); interior wires live wholly in their owning shard.
    pub fn metrics(&self) -> Metrics {
        let now = self.end_cycle;
        let cycles = now.max(1);
        let mut per_class: Vec<(usize, u64, u64)> = vec![(0, 0, 0); LinkClass::ALL.len()];
        let mut occ: Vec<Vec<[u64; OCC_BUCKETS]>> = vec![Vec::new(); LinkClass::ALL.len()];
        let mut shimmed_links = 0usize;
        let mut shim_totals = ShimStats::default();
        for (w, cw) in self.control.wires().iter().enumerate() {
            let tx_owner = &self.shards[self.wire_tx_owner[w] as usize];
            let txw = &tx_owner.wires()[w];
            let rxw = &self.shards[self.wire_rx_owner[w] as usize].wires()[w];
            if let Some(stats) = txw.shim_stats() {
                shimmed_links += 1;
                shim_totals.merge(&stats);
            }
            let carried = tx_owner.wire_flits_carried(w);
            let ci = LinkClass::of(&cw.label) as usize;
            let (wires, flits, peak) = &mut per_class[ci];
            *wires += 1;
            *flits += carried;
            *peak = (*peak).max(carried);
            if let Some(hists) = rxw.occupancy_histograms(now) {
                let agg = &mut occ[ci];
                if agg.len() < hists.len() {
                    agg.resize(hists.len(), [0; OCC_BUCKETS]);
                }
                for (vc, h) in hists.iter().enumerate() {
                    for (b, c) in h.iter().enumerate() {
                        agg[vc][b] += c;
                    }
                }
            }
        }
        let link_classes = LinkClass::ALL
            .iter()
            .zip(&per_class)
            .map(|(&class, &(wires, flits, peak))| LinkClassMetrics {
                class,
                wires,
                flits,
                mean_util: flits as f64 / cycles as f64 / (wires.max(1)) as f64,
                peak_util: peak as f64 / cycles as f64,
            })
            .collect();
        let vc_occupancy = LinkClass::ALL
            .iter()
            .zip(occ)
            .flat_map(|(&class, agg)| {
                agg.into_iter()
                    .enumerate()
                    .map(move |(vc, buckets)| VcOccupancyHistogram {
                        class,
                        vc_index: vc as u8,
                        buckets,
                    })
            })
            .collect();
        Metrics {
            cycles: now,
            stats: self.stats(),
            link_classes,
            vc_occupancy,
            grants: self.grant_counts(),
            fault: (shimmed_links > 0).then_some(FaultMetrics {
                shimmed_links,
                totals: shim_totals,
            }),
        }
    }

    /// Self-checks across the whole sharded machine:
    ///
    /// - every shard's own invariants (packet conservation per slab,
    ///   credit balance on its interior wires, quiescence consistency);
    /// - the **combined** credit balance of every boundary wire: producer
    ///   credits plus producer-accounted flits plus consumer-accounted
    ///   flits must equal the buffer depth on each VC;
    /// - agreement between the control replica's replayed delivery count
    ///   and the sum of per-shard delivery counts.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (s, sh) in self.shards.iter().enumerate() {
            sh.check_invariants()
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        for (s, sh) in self.shards.iter().enumerate() {
            for &(w, dest) in sh.export_wire_ids() {
                let wid = w as usize;
                let cons = &self.shards[dest as usize];
                let wire = &sh.wires()[wid];
                let depth = u32::from(wire.depth());
                for vc in 0..wire.num_vcs() {
                    let total = u32::from(sh.wire_credit_count(wid, vc))
                        + sh.wire_accounted_flits(wid, vc)
                        + cons.wire_accounted_flits(wid, vc);
                    if total != depth {
                        return Err(format!(
                            "boundary credit balance violated on wire {wid} ({:?}) vc {vc} \
                             between shards {s} and {dest}: accounted {total} != depth {depth}",
                            wire.label
                        ));
                    }
                }
            }
        }
        let per_shard: u64 = self
            .shards
            .iter()
            .map(|s| s.stats().delivered_packets)
            .sum();
        let replayed = self.control.stats().delivered_packets;
        if per_shard != replayed {
            return Err(format!(
                "delivery replay diverged: shards delivered {per_shard}, \
                 control replayed {replayed}"
            ));
        }
        Ok(())
    }

    /// Runs until the driver completes, deadlock, or the cycle budget, in
    /// bounded-lag sync windows across one worker thread per shard.
    ///
    /// The result — outcome, end cycle, delivery stream seen by `driver`,
    /// statistics, metrics — is byte-identical to
    /// [`Sim::run`] with the undivided driver, for every shard count.
    /// Every exit path audits the sharded invariants and panics with a
    /// diagnostic on violation.
    pub fn run<D: ShardableDriver + ?Sized>(
        &mut self,
        driver: &mut D,
        max_cycles: u64,
    ) -> RunOutcome {
        let nshards = self.plan.num_shards();
        let eps_per_node = self.control.cfg.endpoints_per_node();
        let subs = driver.split(&self.control.cfg, &self.plan.endpoint_ranges(eps_per_node));
        assert_eq!(
            subs.len(),
            nshards,
            "ShardableDriver::split returned {} sub-drivers for {} shards",
            subs.len(),
            nshards
        );
        // Conservative lookahead: one cycle under a fault schedule (the
        // link-layer shim can complete a flit visible to the consumer on
        // the next cycle) or for drivers whose completion can preempt
        // in-flight traffic; otherwise the full boundary link latency.
        let horizon = if !driver.done_implies_quiescent() {
            1
        } else if nshards == 1 {
            SOLO_WINDOW
        } else if self.fault_present {
            1
        } else {
            self.link_window
        };
        let watchdog = self.control.params.watchdog_cycles;
        // The phase profiler honors the same switches as the serial one:
        // `TraceConfig::profile` or the legacy environment variable. Read
        // the flag from a worker replica — the control replica's trace
        // config is deliberately blanked.
        let profile =
            self.shards[0].params.trace.profile || std::env::var_os("ANTON_SIM_PROFILE").is_some();
        let t0 = self.shards[0].now();
        let deadline = t0 + max_cycles;

        let sims = std::mem::take(&mut self.shards);
        let barrier = Barrier::new(nshards + 1);
        let stop = AtomicBool::new(false);
        let window_end = AtomicU64::new(t0);
        let inboxes: Vec<Mutex<ShardMail>> = (0..nshards)
            .map(|_| Mutex::new(ShardMail::default()))
            .collect();
        let logs: Vec<Mutex<WindowLog>> = (0..nshards)
            .map(|_| Mutex::new(WindowLog::default()))
            .collect();

        let mut pending_deadlock: Option<(u64, u64)> = None;
        let (collected, phases, outcome, end) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nshards);
            for (me, (mut sim, mut sub)) in sims.into_iter().zip(subs).enumerate() {
                let barrier = &barrier;
                let stop = &stop;
                let window_end = &window_end;
                let inboxes = &inboxes;
                let logs = &logs;
                handles.push(scope.spawn(move || {
                    // Lock-free phase accounting: the clock lives on this
                    // worker's stack and is only merged after join.
                    let mut clock = anton_obs::PhaseClock::new(profile);
                    loop {
                        barrier.wait();
                        clock.lap(anton_obs::ShardPhase::BarrierWait);
                        if stop.load(Ordering::Acquire) {
                            return (sim, clock.into_ns());
                        }
                        let t_end = window_end.load(Ordering::Acquire);
                        let mut log = WindowLog {
                            cycles: Vec::with_capacity((t_end - sim.now()) as usize),
                        };
                        while sim.now() < t_end {
                            sub.pre_cycle(&mut sim);
                            sim.step();
                            let mut dels = Vec::new();
                            sim.drain_deliveries(&mut dels);
                            for d in &dels {
                                sub.on_delivery(&mut sim, d);
                            }
                            let handlers = dels
                                .iter()
                                .take_while(|d| matches!(d, Delivery::Handler { .. }))
                                .count();
                            log.cycles.push(CycleLog {
                                dels,
                                handlers,
                                moved: sim.moved(),
                                live: sim.live_packets() as u64,
                            });
                        }
                        clock.lap(anton_obs::ShardPhase::Compute);
                        let mut mail: Vec<ShardMail> =
                            (0..inboxes.len()).map(|_| ShardMail::default()).collect();
                        sim.drain_boundary_exports(&mut mail);
                        for (dest, m) in mail.into_iter().enumerate() {
                            if m.packets.is_empty() && m.credits.is_empty() {
                                continue;
                            }
                            let mut inbox = inboxes[dest].lock().unwrap();
                            inbox.packets.extend(m.packets);
                            inbox.credits.extend(m.credits);
                        }
                        *logs[me].lock().unwrap() = log;
                        clock.lap(anton_obs::ShardPhase::Mailbox);
                        barrier.wait();
                        clock.lap(anton_obs::ShardPhase::BarrierWait);
                        // All producers have published; apply this shard's
                        // imports while the coordinator replays the logs.
                        // Stable-sorting by wire id makes the slab insertion
                        // order independent of producer-thread arrival order
                        // (per-wire order is already deterministic).
                        let mut mine = std::mem::take(&mut *inboxes[me].lock().unwrap());
                        mine.packets.sort_by_key(|p| p.wire);
                        mine.credits.sort_by_key(|c| c.wire);
                        for p in mine.packets {
                            sim.apply_packet_import(t_end, p);
                        }
                        for c in mine.credits {
                            sim.apply_credit_import(c);
                        }
                        clock.lap(anton_obs::ShardPhase::Merge);
                    }
                }));
            }

            let mut result: Option<(RunOutcome, u64)> = None;
            self.control.set_now(t0);
            if driver.done(&self.control) {
                result = Some((RunOutcome::Completed, t0));
            } else if self.deadlocked {
                result = Some((RunOutcome::Deadlocked, t0));
            } else if t0 >= deadline {
                result = Some((RunOutcome::TimedOut, t0));
            }
            let mut t = t0;
            while result.is_none() {
                // Cap the window so no worker can step past a decision the
                // replay will make: the deadline, and the earliest cycle
                // the global watchdog could possibly trip.
                let t_end = (t + horizon)
                    .min(deadline)
                    .min(t + (watchdog - self.idle_cycles));
                window_end.store(t_end, Ordering::Release);
                barrier.wait();
                barrier.wait();
                let guards: Vec<_> = logs.iter().map(|l| l.lock().unwrap()).collect();
                for (i, v) in (t..t_end).enumerate() {
                    // Replay cycle `v` exactly as the serial kernel emits
                    // it: handler dispatches of every shard in ascending
                    // shard (= endpoint) order, then packet receives
                    // likewise; driver callbacks observe now == v + 1.
                    self.control.set_now(v + 1);
                    for g in &guards {
                        let c = &g.cycles[i];
                        for d in &c.dels[..c.handlers] {
                            self.control.replay_delivery(d);
                            driver.on_delivery(&mut self.control, d);
                        }
                    }
                    for g in &guards {
                        let c = &g.cycles[i];
                        for d in &c.dels[c.handlers..] {
                            self.control.replay_delivery(d);
                            driver.on_delivery(&mut self.control, d);
                        }
                    }
                    if driver.done(&self.control) {
                        result = Some((RunOutcome::Completed, v + 1));
                        break;
                    }
                    let live: u64 = guards.iter().map(|g| g.cycles[i].live).sum();
                    let moved = guards.iter().any(|g| g.cycles[i].moved);
                    if live > 0 && !moved {
                        self.idle_cycles += 1;
                        if self.idle_cycles >= watchdog {
                            pending_deadlock = Some((v, self.idle_cycles));
                            result = Some((RunOutcome::Deadlocked, v + 1));
                            break;
                        }
                    } else {
                        self.idle_cycles = 0;
                    }
                    if v + 1 >= deadline {
                        result = Some((RunOutcome::TimedOut, deadline));
                        break;
                    }
                }
                drop(guards);
                t = t_end;
            }
            stop.store(true, Ordering::Release);
            barrier.wait();
            let (collected, phases): (Vec<Sim>, Vec<[u64; anton_obs::NUM_SHARD_PHASES]>) = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .unzip();
            let (outcome, end) = result.unwrap();
            (collected, phases, outcome, end)
        });
        self.shards = collected;
        self.end_cycle = end;
        if profile {
            if self.phase_ns.is_empty() {
                self.phase_ns = vec![[0; anton_obs::NUM_SHARD_PHASES]; nshards];
            }
            for (acc, run) in self.phase_ns.iter_mut().zip(&phases) {
                for (a, r) in acc.iter_mut().zip(run) {
                    *a += r;
                }
            }
        }
        // Close each replica's open sample window so merged_timeseries()
        // keeps the tail of the run (a no-op when sampling is off), and
        // settle any stall segments still open at the final cycle.
        for sh in &mut self.shards {
            sh.flush_samples();
            sh.flush_stalls();
        }
        if let Some((cycle, idle)) = pending_deadlock {
            self.deadlocked = true;
            let report = self.synthesize_deadlock_report(cycle, idle);
            self.deadlock_report = Some(Box::new(report));
        }
        if let Err(msg) = self.check_invariants() {
            panic!("sharded simulation failed self-check at {outcome:?}: {msg}");
        }
        outcome
    }

    /// Merges per-shard stalled-state diagnostics into one report, as if
    /// the serial watchdog had tripped at `cycle`.
    fn synthesize_deadlock_report(&mut self, cycle: u64, idle_cycles: u64) -> DeadlockReport {
        let static_verdict = self.control.static_verdict();
        let mut merged = DeadlockReport {
            cycle,
            live_packets: 0,
            idle_cycles,
            stalled: Vec::new(),
            truncated: 0,
            shim_backlogs: Vec::new(),
            static_verdict,
            down_links: Vec::new(),
        };
        for sh in &mut self.shards {
            let r = sh.forced_deadlock_report(cycle, idle_cycles);
            merged.live_packets += r.live_packets;
            merged.truncated += r.truncated;
            merged.stalled.extend(r.stalled);
            merged.shim_backlogs.extend(r.shim_backlogs);
            for link in r.down_links {
                if !merged.down_links.contains(&link) {
                    merged.down_links.push(link);
                }
            }
        }
        if merged.stalled.len() > REPORT_CAP {
            merged.truncated += merged.stalled.len() - REPORT_CAP;
            merged.stalled.truncate(REPORT_CAP);
        }
        merged
    }
}
