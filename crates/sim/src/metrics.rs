//! Structured metrics collected from a finished (or running) simulation.
//!
//! [`SimStats`](crate::sim::SimStats) counts the headline events; this
//! module aggregates the instrumentation underneath them into a typed
//! [`Metrics`] record: per-[link-class](LinkClass) utilization, per-VC
//! queue-occupancy histograms, and grant counts at each arbitration-site
//! class. The experiment harness in `anton-bench` serializes these records
//! into `results/<name>.json`.
//!
//! Occupancy histograms cost memory and per-event bookkeeping, so they are
//! gated behind [`SimParams::collect_metrics`](crate::params::SimParams::collect_metrics);
//! utilization and grant counts are derived from counters the simulator
//! maintains anyway and are always available.

use anton_core::chip::LocalLink;
use anton_core::trace::GlobalLink;
use anton_fault::ShimStats;

use crate::sim::{Sim, SimStats};
use crate::wire::OCC_BUCKETS;

/// Structural classes of wires, the granularity of utilization reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// On-chip mesh links between routers.
    Mesh,
    /// On-chip skip channels bypassing the two middle routers of a row.
    Skip,
    /// Router → channel-adapter links.
    RouterToChan,
    /// Channel-adapter → router links.
    ChanToRouter,
    /// Router → endpoint-adapter links.
    RouterToEp,
    /// Endpoint-adapter → router links.
    EpToRouter,
    /// External torus channels between nodes.
    Torus,
}

impl LinkClass {
    /// Every class, in reporting order.
    pub const ALL: [LinkClass; 7] = [
        LinkClass::Mesh,
        LinkClass::Skip,
        LinkClass::RouterToChan,
        LinkClass::ChanToRouter,
        LinkClass::RouterToEp,
        LinkClass::EpToRouter,
        LinkClass::Torus,
    ];

    /// The class of a structural link.
    pub fn of(link: &GlobalLink) -> LinkClass {
        match link {
            // Direct inter-node channels (non-torus topologies) report under
            // the torus class; the simulator only instantiates torus wires.
            GlobalLink::Torus { .. } | GlobalLink::Direct { .. } => LinkClass::Torus,
            GlobalLink::Local { link, .. } => match link {
                LocalLink::Mesh { .. } => LinkClass::Mesh,
                LocalLink::Skip { .. } => LinkClass::Skip,
                LocalLink::RouterToChan(_) => LinkClass::RouterToChan,
                LocalLink::ChanToRouter(_) => LinkClass::ChanToRouter,
                LocalLink::RouterToEp(_) => LinkClass::RouterToEp,
                LocalLink::EpToRouter(_) => LinkClass::EpToRouter,
            },
        }
    }

    /// Stable lowercase identifier (JSON keys, table rows).
    pub fn name(&self) -> &'static str {
        match self {
            LinkClass::Mesh => "mesh",
            LinkClass::Skip => "skip",
            LinkClass::RouterToChan => "router_to_chan",
            LinkClass::ChanToRouter => "chan_to_router",
            LinkClass::RouterToEp => "router_to_ep",
            LinkClass::EpToRouter => "ep_to_router",
            LinkClass::Torus => "torus",
        }
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Aggregate utilization of every wire in one [`LinkClass`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkClassMetrics {
    /// The class these numbers describe.
    pub class: LinkClass,
    /// Wires of this class in the machine.
    pub wires: usize,
    /// Total flits carried across all wires of the class.
    pub flits: u64,
    /// Mean flits per cycle per wire.
    pub mean_util: f64,
    /// Flits per cycle of the busiest single wire.
    pub peak_util: f64,
}

/// Time-weighted queue-occupancy histogram of one VC index across every
/// tracked wire of a link class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcOccupancyHistogram {
    /// Link class the histogram aggregates over.
    pub class: LinkClass,
    /// Flattened VC index (class-major, see
    /// [`Wire::vc_index`](crate::wire::Wire::vc_index)).
    pub vc_index: u8,
    /// `buckets[b]` = wire·cycles spent holding exactly `b` packets; the
    /// last bucket absorbs deeper occupancies.
    pub buckets: [u64; OCC_BUCKETS],
}

impl VcOccupancyHistogram {
    /// Mean occupancy in packets (last bucket counted at its floor value).
    pub fn mean(&self) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(b, &c)| b as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of wire·cycles with at least one packet buffered.
    pub fn busy_fraction(&self) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (total - self.buckets[0]) as f64 / total as f64
    }
}

/// Grants issued at each of the simulator's arbitration-site classes
/// (every site the paper's Section 3 makes inverse-weightable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterGrantCounts {
    /// Router SA1 grants: an input port selecting among its VCs.
    pub sa1: u64,
    /// Router SA2 grants: an output port selecting among input ports.
    pub output: u64,
    /// Channel-adapter serializer grants onto the torus link.
    pub serializer: u64,
}

/// Aggregate link-layer fault counters across every lossy-link shim,
/// present only when the simulation ran under a fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Torus links carrying a lossy-link shim.
    pub shimmed_links: usize,
    /// Summed go-back-N counters across all shims.
    pub totals: ShimStats,
}

impl FaultMetrics {
    /// Fraction of data frames that were retransmissions (the link-layer
    /// bandwidth overhead paid to recover from corruption).
    pub fn retransmission_overhead(&self) -> f64 {
        self.totals.retransmission_overhead()
    }
}

/// A complete typed metrics record for one simulation.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Cycles elapsed when the record was collected.
    pub cycles: u64,
    /// The headline event counters.
    pub stats: SimStats,
    /// Utilization per link class, in [`LinkClass::ALL`] order.
    pub link_classes: Vec<LinkClassMetrics>,
    /// Occupancy histograms per (link class, VC index); empty unless
    /// [`SimParams::collect_metrics`](crate::params::SimParams::collect_metrics)
    /// was set when the simulator was built.
    pub vc_occupancy: Vec<VcOccupancyHistogram>,
    /// Arbiter grant counts.
    pub grants: ArbiterGrantCounts,
    /// Link-layer fault counters; `None` when no fault schedule was
    /// installed (ideal channels have no link-layer events to count).
    pub fault: Option<FaultMetrics>,
}

impl Metrics {
    /// Collects a metrics record from a simulator.
    pub fn collect(sim: &Sim) -> Metrics {
        let now = sim.now();
        let cycles = now.max(1);
        let mut per_class: Vec<(usize, u64, u64)> = vec![(0, 0, 0); LinkClass::ALL.len()];
        let mut occ: Vec<Vec<[u64; OCC_BUCKETS]>> = vec![Vec::new(); LinkClass::ALL.len()];
        let mut shimmed_links = 0usize;
        let mut shim_totals = ShimStats::default();
        for (w, wire) in sim.wires().iter().enumerate() {
            if let Some(stats) = wire.shim_stats() {
                shimmed_links += 1;
                shim_totals.merge(&stats);
            }
            let carried = sim.wire_flits_carried(w);
            let ci = LinkClass::of(&wire.label) as usize;
            let (wires, flits, peak) = &mut per_class[ci];
            *wires += 1;
            *flits += carried;
            *peak = (*peak).max(carried);
            if let Some(hists) = wire.occupancy_histograms(now) {
                let agg = &mut occ[ci];
                if agg.len() < hists.len() {
                    agg.resize(hists.len(), [0; OCC_BUCKETS]);
                }
                for (vc, h) in hists.iter().enumerate() {
                    for (b, c) in h.iter().enumerate() {
                        agg[vc][b] += c;
                    }
                }
            }
        }
        let link_classes = LinkClass::ALL
            .iter()
            .zip(&per_class)
            .map(|(&class, &(wires, flits, peak))| LinkClassMetrics {
                class,
                wires,
                flits,
                mean_util: flits as f64 / cycles as f64 / (wires.max(1)) as f64,
                peak_util: peak as f64 / cycles as f64,
            })
            .collect();
        let vc_occupancy = LinkClass::ALL
            .iter()
            .zip(occ)
            .flat_map(|(&class, agg)| {
                agg.into_iter()
                    .enumerate()
                    .map(move |(vc, buckets)| VcOccupancyHistogram {
                        class,
                        vc_index: vc as u8,
                        buckets,
                    })
            })
            .collect();
        Metrics {
            cycles: now,
            stats: sim.stats().clone(),
            link_classes,
            vc_occupancy,
            grants: sim.grant_counts(),
            fault: (shimmed_links > 0).then_some(FaultMetrics {
                shimmed_links,
                totals: shim_totals,
            }),
        }
    }

    /// The metrics of one link class.
    pub fn link_class(&self, class: LinkClass) -> &LinkClassMetrics {
        &self.link_classes[class as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summaries() {
        let mut h = VcOccupancyHistogram {
            class: LinkClass::Mesh,
            vc_index: 0,
            buckets: [0; OCC_BUCKETS],
        };
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.busy_fraction(), 0.0);
        h.buckets[0] = 6;
        h.buckets[2] = 2;
        // (0·6 + 2·2) / 8 = 0.5 mean; 2/8 busy.
        assert!((h.mean() - 0.5).abs() < 1e-12);
        assert!((h.busy_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn class_of_every_link_kind() {
        use anton_core::chip::{ChanId, LocalEndpointId, MeshCoord, MeshDir};
        use anton_core::topology::{NodeId, Slice, TorusDir};
        let node = NodeId(0);
        let torus = GlobalLink::Torus {
            from: node,
            dir: TorusDir::from_index(0),
            slice: Slice(0),
        };
        assert_eq!(LinkClass::of(&torus), LinkClass::Torus);
        let mesh = GlobalLink::Local {
            node,
            link: LocalLink::Mesh {
                from: MeshCoord::new(0, 0),
                dir: MeshDir::UPlus,
            },
        };
        assert_eq!(LinkClass::of(&mesh), LinkClass::Mesh);
        let ep = GlobalLink::Local {
            node,
            link: LocalLink::EpToRouter(LocalEndpointId(3)),
        };
        assert_eq!(LinkClass::of(&ep), LinkClass::EpToRouter);
        let chan = GlobalLink::Local {
            node,
            link: LocalLink::RouterToChan(ChanId {
                dir: TorusDir::from_index(0),
                slice: Slice(0),
            }),
        };
        assert_eq!(LinkClass::of(&chan), LinkClass::RouterToChan);
    }
}
