//! Per-packet simulation state and the packet slab.

use anton_core::chip::LocalEndpointId;
use anton_core::config::GlobalEndpoint;
use anton_core::multicast::McGroupId;
use anton_core::packet::Packet;
use anton_core::routing::RouteSpec;
use anton_core::topology::{NodeId, Slice, TorusDir};
use anton_core::trace::GlobalLink;
use anton_core::vc::{Vc, VcState};

/// Dense id of an in-flight packet (slab index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

/// Where an in-flight packet (or multicast copy) is headed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteProgress {
    /// A unicast packet following its route spec to `dst`.
    Unicast {
        /// Remaining inter-node route.
        spec: RouteSpec,
        /// Final destination endpoint.
        dst: GlobalEndpoint,
    },
    /// A unicast packet following an installed degraded route table —
    /// per-node next-hop lookup instead of a precomputed spec. The packet
    /// is pinned to the table set of the degradation epoch that (re)injected
    /// it; the install gate certifies the union of every epoch's tables, so
    /// mixed-set traffic in flight together stays deadlock-free.
    Table {
        /// Index into the simulator's installed table sets.
        set: u8,
        /// Slice whose table routes this packet.
        slice: Slice,
        /// Node the packet currently sits at (advanced at the serializer,
        /// like a spec's `take_hop`).
        cur: NodeId,
        /// Final destination endpoint.
        dst: GlobalEndpoint,
    },
    /// A multicast copy heading for a departure channel adapter on the
    /// current node; the next node's table continues the route.
    McExit {
        /// Multicast group for table lookups downstream.
        group: McGroupId,
        /// Tree index within the group.
        tree: u8,
        /// Torus direction of the next hop.
        dir: TorusDir,
        /// Slice of the tree.
        slice: Slice,
    },
    /// A multicast copy delivering to an endpoint of the current node.
    McDeliver {
        /// Multicast group (for accounting).
        group: McGroupId,
        /// Destination endpoint on the current node.
        ep: LocalEndpointId,
    },
}

/// Full state of one in-flight packet.
#[derive(Debug, Clone)]
pub struct PacketState {
    /// The packet header and payload.
    pub packet: Packet,
    /// Routing progress.
    pub route: RouteProgress,
    /// VC promotion state.
    pub vc: VcState,
    /// VC state to adopt after traversing the node-entry (adapter→router)
    /// link: entry links use the arriving dimension's T-phase VC, while the
    /// promoted state applies from the router onward.
    pub pending_vc: Option<VcState>,
    /// The torus direction this packet most recently arrived on (`None`
    /// after injection or local turns) — gates the skip-channel shortcut.
    pub arrived_via: Option<TorusDir>,
    /// Cycle the original packet entered the network.
    pub injected_at: u64,
    /// Inter-node hops taken so far.
    pub torus_hops: u16,
    /// Whether the packet was ever ejected from a failed link and
    /// re-entered over a degraded route table.
    pub rerouted: bool,
    /// Flits occupied on channels.
    pub flits: u8,
    /// Link-level route log (only when `SimParams::record_routes`).
    pub route_log: Option<Vec<(GlobalLink, Vc)>>,
}

/// Slab of in-flight packets with id reuse.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Option<PacketState>>,
    free: Vec<u32>,
    live: usize,
    /// Packets ever inserted (multicast copies count individually).
    created: u64,
    /// Packets ever removed (delivered or absorbed into copies).
    terminated: u64,
}

impl PacketSlab {
    /// Creates an empty slab.
    pub fn new() -> PacketSlab {
        PacketSlab::default()
    }

    /// Inserts a packet, returning its id.
    pub fn insert(&mut self, state: PacketState) -> PacketId {
        self.live += 1;
        self.created += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(state);
            PacketId(idx)
        } else {
            self.slots.push(Some(state));
            PacketId((self.slots.len() - 1) as u32)
        }
    }

    /// Removes and returns a packet.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn remove(&mut self, id: PacketId) -> PacketState {
        let state = self.slots[id.0 as usize].take().expect("stale packet id");
        self.free.push(id.0);
        self.live -= 1;
        self.terminated += 1;
        state
    }

    /// Borrows a packet.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get(&self, id: PacketId) -> &PacketState {
        self.slots[id.0 as usize].as_ref().expect("stale packet id")
    }

    /// Mutably borrows a packet.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn get_mut(&mut self, id: PacketId) -> &mut PacketState {
        self.slots[id.0 as usize].as_mut().expect("stale packet id")
    }

    /// Number of live packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Packets ever inserted into the slab.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Packets ever removed from the slab.
    pub fn terminated(&self) -> u64 {
        self.terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::packet::Payload;
    use anton_core::routing::DimOrder;
    use anton_core::topology::NodeCoord;
    use anton_core::topology::{NodeId, TorusShape};
    use anton_core::vc::VcPolicy;

    fn dummy_state() -> PacketState {
        let shape = TorusShape::cube(4);
        let src = GlobalEndpoint {
            node: NodeId(0),
            ep: LocalEndpointId(0),
        };
        let dst = GlobalEndpoint {
            node: NodeId(1),
            ep: LocalEndpointId(0),
        };
        let spec = RouteSpec::deterministic(
            &shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(1, 0, 0),
            DimOrder::XYZ,
            Slice(0),
        );
        PacketState {
            packet: Packet::write(src, dst, Payload::zeros(16)),
            route: RouteProgress::Unicast { spec, dst },
            vc: VcPolicy::Anton.start(),
            pending_vc: None,
            arrived_via: None,
            injected_at: 0,
            torus_hops: 0,
            rerouted: false,
            flits: 1,
            route_log: None,
        }
    }

    #[test]
    fn slab_reuses_slots() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy_state());
        let b = slab.insert(dummy_state());
        assert_eq!(slab.live(), 2);
        slab.remove(a);
        let c = slab.insert(dummy_state());
        assert_eq!(c, a, "freed slot should be reused");
        assert_ne!(b, c);
        assert_eq!(slab.live(), 2);
    }

    #[test]
    #[should_panic(expected = "stale packet id")]
    fn stale_id_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy_state());
        slab.remove(a);
        slab.get(a);
    }
}
