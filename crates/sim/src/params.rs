//! Simulation parameters and physical constants.

use anton_arbiter::ArbiterKind;

/// Core clock frequency (GHz): the on-chip network runs at 1.5 GHz.
pub const CLOCK_GHZ: f64 = 1.5;
/// Nanoseconds per core clock cycle.
pub const CYCLE_NS: f64 = 1.0 / CLOCK_GHZ;
/// Mesh channel bandwidth: 192 bits per cycle at 1.5 GHz = 288 Gb/s.
pub const MESH_GBPS: f64 = 288.0;
/// Effective torus channel bandwidth per direction (after the link layer).
pub const TORUS_EFFECTIVE_GBPS: f64 = 89.6;

/// Torus serializer cost accounting: a flit costs [`TORUS_TOKEN_COST`] tokens
/// and every cycle earns [`TORUS_TOKEN_GAIN`]; the long-run rate is
/// `14/45 = 89.6/288` flits per cycle, exactly the effective bandwidth.
pub const TORUS_TOKEN_COST: u32 = 45;
/// Tokens earned per cycle by a torus serializer.
pub const TORUS_TOKEN_GAIN: u32 = 14;

/// Router pipeline depth in cycles: RC, VA, SA1, SA2 (Figure 12).
pub const ROUTER_PIPELINE: u64 = 4;
/// Adapter forwarding pipeline depth in cycles.
pub const ADAPTER_PIPELINE: u64 = 2;

/// Latency calibration parameters, in nanoseconds where noted.
///
/// Defaults land the minimum software-to-software one-way latency near the
/// paper's 99 ns and the per-hop cost near 39 ns (Figures 11–12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyParams {
    /// Software send overhead: from the decision to send until the packet
    /// enters the endpoint adapter (ns).
    pub sw_inject_ns: f64,
    /// Hardware synchronization + software handler dispatch overhead at the
    /// receiver (ns).
    pub handler_dispatch_ns: f64,
    /// SerDes (TX + RX) plus wire flight time per torus hop (ns).
    pub serdes_wire_ns: f64,
}

impl Default for LatencyParams {
    fn default() -> LatencyParams {
        LatencyParams {
            sw_inject_ns: 26.0,
            handler_dispatch_ns: 23.0,
            serdes_wire_ns: 29.0,
        }
    }
}

impl LatencyParams {
    /// Converts cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * CYCLE_NS
    }

    /// Torus link latency in whole cycles (SerDes + wire).
    pub fn torus_link_cycles(&self) -> u64 {
        (self.serdes_wire_ns / CYCLE_NS).round() as u64
    }

    /// Handler dispatch overhead in whole cycles.
    pub fn handler_dispatch_cycles(&self) -> u64 {
        (self.handler_dispatch_ns / CYCLE_NS).round() as u64
    }

    /// Software injection overhead in whole cycles.
    pub fn sw_inject_cycles(&self) -> u64 {
        (self.sw_inject_ns / CYCLE_NS).round() as u64
    }
}

/// Per-flit energy coefficients (pJ), the model of Section 4.5:
///
/// `E = fixed + per_flip·h + (activation + per_set_bit·n)(a/r)`
///
/// The simulator charges energy per event with these coefficients; the
/// Figure 13 experiment re-fits the model to the simulated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Data-independent energy per flit traversal (arbitration, control).
    pub fixed_pj: f64,
    /// Energy per datapath bit flip between successive flits.
    pub per_flip_pj: f64,
    /// Energy per idle→valid activation event (valid signals, clock gates).
    pub activation_pj: f64,
    /// Additional activation energy per set payload bit.
    pub per_set_bit_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        // The paper's fitted coefficients (Section 4.5).
        EnergyParams {
            fixed_pj: 42.7,
            per_flip_pj: 0.837,
            activation_pj: 34.4,
            per_set_bit_pj: 0.250,
        }
    }
}

/// Observability configuration: the flight recorder, the time-series
/// sampler, and the phase profiler.
///
/// Everything here is off by default and the simulator checks a single
/// `Option` per hook site, so a default-configured run pays one predictable
/// branch per site and allocates nothing. The legacy `ANTON_SIM_PROFILE`
/// environment variable is folded into [`TraceConfig::profile`] at
/// construction time (`Sim::builder().build()`): setting either turns the
/// phase profiler on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record typed events (inject/hop/VC-promotion/grant/retransmit/
    /// deliver/stall) into per-wire flight-recorder ring buffers.
    pub events: bool,
    /// Capacity of each per-wire ring buffer, in events (min 1).
    pub ring_capacity: usize,
    /// Snapshot the dense kernel counters into a time-series window every
    /// this many cycles; `0` disables sampling.
    pub sample_every: u64,
    /// Accumulate per-phase wall-clock nanoseconds (the profiler previously
    /// enabled only by the `ANTON_SIM_PROFILE` environment variable).
    pub profile: bool,
    /// Attribute stall cycles: whenever a buffered head fails to advance,
    /// classify the cause (no credit, lost SA1/SA2, output or serializer
    /// busy, retransmit backlog, dead-link drain) into dense per-link/
    /// per-VC counters (see [`anton_obs::stall`]). Off by default; the
    /// counters never influence simulation behavior.
    pub stalls: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            events: false,
            ring_capacity: 256,
            sample_every: 0,
            profile: false,
            stalls: false,
        }
    }
}

impl TraceConfig {
    /// A config with event recording on at the given ring capacity.
    pub fn events(ring_capacity: usize) -> TraceConfig {
        TraceConfig {
            events: true,
            ring_capacity,
            ..TraceConfig::default()
        }
    }

    /// A config with time-series sampling on at the given period.
    pub fn sampled(every: u64) -> TraceConfig {
        TraceConfig {
            sample_every: every,
            ..TraceConfig::default()
        }
    }

    /// A config with stall attribution on.
    pub fn stalls() -> TraceConfig {
        TraceConfig {
            stalls: true,
            ..TraceConfig::default()
        }
    }

    /// `true` when any tracing, sampling, or stall attribution is enabled.
    pub fn any(&self) -> bool {
        self.events || self.sample_every > 0 || self.stalls
    }
}

/// What simulator construction (`Sim::builder().build()`) does with the result of the
/// static pre-flight verification (`anton-verify` lints plus symbolic
/// deadlock certification of the configured VC policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreflightMode {
    /// Run the verifier and panic on any error-severity diagnostic before
    /// the simulation starts. Warnings go to stderr. This is the default:
    /// a config the verifier rejects would deadlock or misbehave anyway,
    /// and the static report is far more actionable than a watchdog trip.
    #[default]
    Enforce,
    /// Run the verifier, print every diagnostic to stderr, and continue.
    /// For experiments that *intend* to run a broken configuration (e.g.
    /// demonstrating that a single-VC torus deadlocks).
    WarnOnly,
    /// Skip verification entirely; the static verdict stays `Unknown`.
    Off,
}

/// Top-level simulation parameters.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Input buffer depth per VC on on-chip wires, in flits.
    pub buffer_depth: u8,
    /// Input buffer depth per VC at torus-channel receivers, in flits.
    /// Must cover the round-trip bandwidth-delay product of the external
    /// link (≈ 2 × 36 cycles × 14/45 flits/cycle ≈ 23 flits) for a single
    /// VC to sustain full channel bandwidth.
    pub torus_buffer_depth: u8,
    /// Which arbiter sits at each router output port.
    pub arbiter: ArbiterKind,
    /// Latency calibration.
    pub latency: LatencyParams,
    /// Energy coefficients.
    pub energy: EnergyParams,
    /// Collect energy/activity counters (small per-transfer cost).
    pub track_energy: bool,
    /// Collect per-VC queue-occupancy histograms for
    /// [`Metrics`](crate::metrics::Metrics) (allocates tracker state on
    /// every wire and adds per-push/pop bookkeeping; off by default so the
    /// plain throughput path stays untouched).
    pub collect_metrics: bool,
    /// Count arbiter grants per arbitration-site class for
    /// [`Metrics`](crate::metrics::Metrics). On by default; benchmark mode
    /// turns it off to measure the bare kernel. Toggling it never changes
    /// routing decisions or delivered packets — only whether the counters
    /// accumulate.
    pub collect_grants: bool,
    /// RNG seed for routing randomization.
    pub seed: u64,
    /// Cycles without any flit movement (while packets are in flight) after
    /// which the watchdog declares deadlock.
    pub watchdog_cycles: u64,
    /// Fault schedule for the external torus links. `None` (the default)
    /// keeps every torus channel an ideal fixed-latency wire — the
    /// simulator's behavior is bit-for-bit unchanged. `Some` installs a
    /// lossy go-back-N link shim on every torus wire, driven by the
    /// schedule's per-link BER and outage windows.
    pub fault: Option<anton_fault::FaultSchedule>,
    /// Observability: flight recorder, time-series sampler, profiler.
    /// All off by default; see [`TraceConfig`].
    pub trace: TraceConfig,
    /// Static pre-flight verification policy (see [`PreflightMode`]).
    pub preflight: PreflightMode,
    /// Worker shards for the parallel kernel: `1` (the default) runs the
    /// serial kernel; `N > 1` partitions the torus into `N` contiguous
    /// sub-bricks stepped by one worker thread each (see
    /// [`ShardedSim`](crate::shard::ShardedSim)). Output is byte-identical
    /// for every value.
    pub shards: usize,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            buffer_depth: 8,
            torus_buffer_depth: 32,
            arbiter: ArbiterKind::RoundRobin,
            latency: LatencyParams::default(),
            energy: EnergyParams::default(),
            track_energy: false,
            collect_metrics: false,
            collect_grants: true,
            seed: 0xA2701,
            watchdog_cycles: 50_000,
            fault: None,
            trace: TraceConfig::default(),
            preflight: PreflightMode::default(),
            shards: 1,
        }
    }
}

impl SimParams {
    /// Projects these parameters into the lint engine's view
    /// ([`anton_verify::ParamsView`]); `anton-verify` cannot depend on this
    /// crate, so the mapping lives here. [`ParamsView::reference`] mirrors
    /// [`SimParams::default`]; a test below pins the two in sync.
    ///
    /// [`ParamsView::reference`]: anton_verify::ParamsView::reference
    pub fn verify_view(&self) -> anton_verify::ParamsView<'_> {
        anton_verify::ParamsView {
            buffer_depth: self.buffer_depth,
            torus_buffer_depth: self.torus_buffer_depth,
            sw_inject_ns: self.latency.sw_inject_ns,
            handler_dispatch_ns: self.latency.handler_dispatch_ns,
            serdes_wire_ns: self.latency.serdes_wire_ns,
            torus_link_cycles: self.latency.torus_link_cycles(),
            arbiter_m_bits: match self.arbiter {
                ArbiterKind::InverseWeighted { m_bits } => Some(m_bits),
                _ => None,
            },
            watchdog_cycles: self.watchdog_cycles,
            fault: self.fault.as_ref(),
            trace_events: self.trace.events,
            trace_ring_capacity: self.trace.ring_capacity,
            energy_fixed_pj: self.energy.fixed_pj,
            energy_per_flip_pj: self.energy.per_flip_pj,
            energy_activation_pj: self.energy.activation_pj,
            energy_per_set_bit_pj: self.energy.per_set_bit_pj,
            shards: self.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_rate_matches_effective_bandwidth() {
        let rate = f64::from(TORUS_TOKEN_GAIN) / f64::from(TORUS_TOKEN_COST);
        let gbps = rate * MESH_GBPS;
        assert!((gbps - TORUS_EFFECTIVE_GBPS).abs() < 1e-9);
    }

    #[test]
    fn latency_conversions_round_trip() {
        let lp = LatencyParams::default();
        assert_eq!(lp.torus_link_cycles(), 44);
        assert!((lp.cycles_to_ns(3) - 2.0).abs() < 1e-12);
    }

    /// `ParamsView::reference` (used by `verify_config` without a
    /// simulator) must stay identical to the default parameters' view.
    #[test]
    fn verify_view_matches_reference() {
        let params = SimParams::default();
        let view = params.verify_view();
        let r = anton_verify::ParamsView::reference();
        assert_eq!(view.buffer_depth, r.buffer_depth);
        assert_eq!(view.torus_buffer_depth, r.torus_buffer_depth);
        assert_eq!(view.sw_inject_ns, r.sw_inject_ns);
        assert_eq!(view.handler_dispatch_ns, r.handler_dispatch_ns);
        assert_eq!(view.serdes_wire_ns, r.serdes_wire_ns);
        assert_eq!(view.torus_link_cycles, r.torus_link_cycles);
        assert_eq!(view.arbiter_m_bits, r.arbiter_m_bits);
        assert_eq!(view.watchdog_cycles, r.watchdog_cycles);
        assert!(view.fault.is_none() && r.fault.is_none());
        assert_eq!(view.trace_events, r.trace_events);
        assert_eq!(view.trace_ring_capacity, r.trace_ring_capacity);
        assert_eq!(view.energy_fixed_pj, r.energy_fixed_pj);
        assert_eq!(view.energy_per_flip_pj, r.energy_per_flip_pj);
        assert_eq!(view.energy_activation_pj, r.energy_activation_pj);
        assert_eq!(view.energy_per_set_bit_pj, r.energy_per_set_bit_pj);
        assert_eq!(view.shards, r.shards);
    }
}
