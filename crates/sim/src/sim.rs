//! The cycle-driven simulator core.
//!
//! Builds the full unified network — every router, endpoint adapter, channel
//! adapter, on-chip wire, and external torus channel of the configured
//! machine — and advances it cycle by cycle. Routers implement the four-stage
//! pipeline (RC, VA, SA1, SA2) with virtual cut-through flow control and
//! pluggable output arbiters; channel adapters serialize flits onto the
//! torus at the effective link bandwidth and host the multicast replication
//! tables; endpoint adapters implement counted-write synchronization.
//!
//! Modelling notes (see DESIGN.md): packets are at most two flits and are
//! switched whole (store-and-forward for the rare two-flit packet), and the
//! incremental route computation is cross-checked against the reference
//! tracer of `anton-core` in tests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use anton_arbiter::{BitsetArbiter, GrantSite};
use anton_core::chip::{
    ChanId, LinkGroup, LocalAttach, LocalEndpointId, LocalLink, MeshCoord, MeshDir,
    ATTACH_CODE_BASE, MAX_ROUTER_PORTS, NUM_CHAN_ADAPTERS, NUM_ROUTERS,
};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{McGroup, McGroupId};
use anton_core::packet::{CounterId, Destination, Packet};
use anton_core::route_table::{DownLinkSet, RouteTable};
use anton_core::routing::{DimOrder, RouteSpec};
use anton_core::topology::{Dim, NodeId, Slice, TorusDir};
use anton_core::trace::GlobalLink;
use anton_core::vc::{Vc, VcState};
use anton_fault::{FaultKind, ShimEvent};
use anton_obs::json::Json;
use anton_obs::link_json;
use anton_obs::{
    ChannelKind, CongestionReport, FlightRecorder, LinkStat, StallCause, StallTable, TimeSeries,
    TraceEvent, TraceEventKind,
};

use crate::params::{
    PreflightMode, SimParams, ADAPTER_PIPELINE, ROUTER_PIPELINE, TORUS_TOKEN_COST, TORUS_TOKEN_GAIN,
};
use crate::state::{PacketId, PacketSlab, PacketState, RouteProgress};
use crate::wake::Scheduler;
use crate::wire::{BoundaryRole, BufEntry, GateEntry, Wire, WireCredits, WireRx};

/// Maximum multicast copies queued at one replication point.
const REPL_CAP: usize = 32;

/// Per-phase nanosecond accumulators, active when the `ANTON_SIM_PROFILE`
/// environment variable is set: wires, endpoints-inject, adapters, routers,
/// endpoints-recv.
pub static PHASE_NS: [std::sync::atomic::AtomicU64; 5] = [
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
];

type WireId = usize;

/// Dense per-wire timing and classification (see `Sim::wire_timing`).
#[derive(Debug, Clone, Copy)]
struct WireTiming {
    /// Flight latency in cycles (saturated to `u16::MAX` on wires too slow
    /// for the fast path, which never reads it).
    lat: u16,
    /// Receiver pipeline delay in cycles.
    rxp: u8,
    /// `FAST_WIRE` / `TORUS_WIRE` flag bits.
    flags: u8,
}

/// The wire is an ideal interior channel whose worst-case arrival fits the
/// wake wheel: sends and pops may bypass the `Wire` struct entirely.
const FAST_WIRE: u8 = 1;
/// The wire realizes an external torus channel (dense mirror of the label
/// for the send path's statistics).
const TORUS_WIRE: u8 = 2;

#[derive(Debug)]
struct RouterPort {
    in_wire: WireId,
    out_wire: WireId,
}

/// Activity counters for the energy model (Section 4.5), per router.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounters {
    /// Flits traversed.
    pub flits: u64,
    /// Datapath bit flips between successive valid flits.
    pub flips: u64,
    /// Idle→valid activation events.
    pub activations: u64,
    /// Set payload bits of activating flits (the model's per-set-bit term
    /// is activation energy).
    pub set_bits: u64,
}

impl EnergyCounters {
    /// Adds another counter set.
    pub fn add(&mut self, other: &EnergyCounters) {
        self.flits += other.flits;
        self.flips += other.flips;
        self.activations += other.activations;
        self.set_bits += other.set_bits;
    }

    /// Energy in picojoules under the given coefficients.
    pub fn energy_pj(&self, p: &crate::params::EnergyParams) -> f64 {
        self.flits as f64 * p.fixed_pj
            + self.flips as f64 * p.per_flip_pj
            + self.activations as f64 * p.activation_pj
            + self.set_bits as f64 * p.per_set_bit_pj
    }
}

#[derive(Debug, Clone, Copy)]
struct PortEnergy {
    last_words: [u64; 3],
    /// First cycle at which the port is idle after its last transfer.
    idle_from: u64,
}

struct RouterState {
    node: NodeId,
    mesh: MeshCoord,
    ports: Vec<RouterPort>,
    port_energy: Vec<PortEnergy>,
    energy: EnergyCounters,
}

impl std::fmt::Debug for RouterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterState")
            .field("node", &self.node)
            .field("mesh", &self.mesh)
            .field("ports", &self.ports.len())
            .finish()
    }
}

struct ChanState {
    node: NodeId,
    chan: ChanId,
    /// Wire from the router into this adapter (outbound direction).
    from_router: WireId,
    /// Wire from this adapter into the router (inbound direction).
    to_router: WireId,
    /// Torus wire this adapter transmits on.
    torus_out: WireId,
    /// Torus wire this adapter receives on.
    torus_in: WireId,
    /// Serializer token bucket (gains [`TORUS_TOKEN_GAIN`]/cycle, a flit
    /// costs [`TORUS_TOKEN_COST`]); accrued lazily since `tokens_at`.
    tokens: i64,
    /// Cycle at which `tokens` was last brought up to date.
    tokens_at: u64,
    /// Whether the outgoing torus hop crosses its dimension's dateline — a
    /// static property of the link (Section 2.5).
    crosses_dateline: bool,
    /// Multicast copies awaiting on-chip injection.
    repl: VecDeque<PacketId>,
    /// VC arbiter of the outbound serializer (per Section 3, every
    /// arbitration point can be inverse-weighted).
    out_arbiter: BitsetArbiter,
    rr_vc_in: u8,
    to_router_busy_until: u64,
}

impl std::fmt::Debug for ChanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChanState")
            .field("node", &self.node)
            .field("chan", &self.chan)
            .finish()
    }
}

#[derive(Debug)]
struct EpState {
    node: NodeId,
    ep: LocalEndpointId,
    to_router: WireId,
    from_router: WireId,
    inject: VecDeque<InjectCmd>,
    repl: VecDeque<PacketId>,
    /// Armed counted-write counters, keyed by counter id. Endpoints hold a
    /// handful at a time, so a linear scan beats hashing.
    counters: Vec<(u16, u32)>,
    busy_until: u64,
    /// Route-randomization stream of this endpoint, derived from the base
    /// seed and the endpoint's dense index
    /// ([`anton_core::seed::derive_stream_seed`]). Per-endpoint streams make
    /// the draw sequence independent of which other endpoints inject, so a
    /// sharded run reproduces the serial draws exactly.
    rng: StdRng,
}

/// A queued injection: routing is either randomized (the normal oblivious
/// policy), fixed to an explicit route spec (tests and controlled
/// experiments), or a fault-time re-entry over the installed degraded
/// tables.
#[derive(Debug, Clone, Copy)]
enum InjectCmd {
    Auto(Packet),
    WithSpec(Packet, RouteSpec),
    /// A unicast packet pulled off a failed link and re-entered at its
    /// stranding node: routed over the current epoch's certified table,
    /// keeping its original injection cycle (so latency accounting spans
    /// the whole journey) and the hops already taken.
    Reroute {
        packet: Packet,
        slice: Slice,
        injected_at: u64,
        torus_hops: u16,
    },
}

impl InjectCmd {
    fn packet(&self) -> &Packet {
        match self {
            InjectCmd::Auto(p)
            | InjectCmd::WithSpec(p, _)
            | InjectCmd::Reroute { packet: p, .. } => p,
        }
    }
}

/// One epoch of the degradation timeline: a maximal interval over which the
/// set of down links is constant.
#[derive(Debug)]
struct DegradedEpoch {
    /// First cycle of the epoch.
    start: u64,
    /// Links down throughout the epoch.
    downs: DownLinkSet,
    /// Installed table set while this epoch is current (`None` when no
    /// links are down: healthy randomized spec routing applies).
    set: Option<u8>,
}

/// Runtime state of fault-aware degraded routing, built at construction
/// from the fault schedule's `Down` windows and only present when at least
/// one exists. Every table set referenced here passed the explicit
/// certification gate ([`anton_verify::certify_tables`] over the union of
/// all sets) before install — the simulator refuses to route over
/// uncertified tables.
#[derive(Debug)]
struct DegradedState {
    /// Unique certified table sets (one [`RouteTable`] per slice, in slice
    /// order); epochs with identical down-link sets share a set.
    table_sets: Vec<Vec<RouteTable>>,
    /// Epochs in ascending `start` order; `epochs[0].start == 0`.
    epochs: Vec<DegradedEpoch>,
    /// Index of the epoch covering the current cycle.
    cur: usize,
}

/// A completed network-level event reported to the driver.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// A packet (or multicast copy) arrived at an endpoint.
    Packet(PacketDelivery),
    /// A counted-write counter hit zero and the software handler fired.
    Handler {
        /// Endpoint whose handler fired.
        ep: GlobalEndpoint,
        /// The counter that completed.
        counter: CounterId,
    },
}

/// Details of one delivered packet.
#[derive(Debug, Clone)]
pub struct PacketDelivery {
    /// Injecting endpoint.
    pub src: GlobalEndpoint,
    /// Receiving endpoint.
    pub dst: GlobalEndpoint,
    /// Traffic-pattern tag.
    pub pattern: u8,
    /// Counter the packet decremented, if any.
    pub counter: Option<CounterId>,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Cycle the last flit reached the endpoint adapter.
    pub delivered_at: u64,
    /// Inter-node hops taken.
    pub torus_hops: u16,
    /// Whether the packet was rerouted over a degraded table after being
    /// ejected from a failed link.
    pub rerouted: bool,
    /// Link-level route (when route recording is enabled).
    pub route_log: Option<Vec<(GlobalLink, Vc)>>,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets injected into the network (multicast counts once).
    pub injected_packets: u64,
    /// Packet deliveries (multicast copies count individually).
    pub delivered_packets: u64,
    /// Per-endpoint delivery counts (indexed by dense endpoint index).
    pub recv_per_endpoint: Vec<u64>,
    /// Total flit·link traversals.
    pub flit_hops: u64,
    /// Flits that crossed external torus channels.
    pub torus_flits: u64,
    /// Cycle of the most recent delivery.
    pub last_delivery_cycle: u64,
    /// Packets that travelled on a certified degraded route table instead
    /// of their natural oblivious route: ejected from a failed link (or
    /// its feeding serializer) and re-entered, or steered onto the table
    /// at injection because the drawn route crossed a link that was down.
    pub rerouted_packets: u64,
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The driver reported completion.
    Completed,
    /// The watchdog detected a deadlock (no movement with packets live).
    Deadlocked,
    /// The cycle budget expired first.
    TimedOut,
}

/// One stalled head packet in a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StalledVc {
    /// Wire whose receive buffer holds the packet.
    pub link: GlobalLink,
    /// Flattened VC index on that wire.
    pub vc_index: u8,
    /// Slab id of the stalled head packet.
    pub packet: PacketId,
    /// Flits the packet occupies.
    pub flits: u8,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Human-readable routing progress ("where was this packet going").
    pub route: String,
    /// Last flight-recorder events touching this packet or this wire
    /// (newest last; empty unless event recording was enabled).
    pub recent_events: Vec<TraceEvent>,
}

/// What the static pre-flight verifier concluded about the configuration
/// before the run started (see
/// [`PreflightMode`](crate::params::PreflightMode)).
///
/// Embedded in [`DeadlockReport`] so a watchdog trip is immediately
/// classifiable: a trip on a `PredictedDeadlock` config is the static
/// analysis coming true; a trip on a `CertifiedAcyclic` config means the
/// simulator diverged from the verified model — a model or simulator bug.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StaticVerdict {
    /// Verification did not run (`PreflightMode::Off`), or the report was
    /// read from JSON written before this field existed.
    #[default]
    Unknown,
    /// The symbolic channel-dependency graph was certified acyclic.
    CertifiedAcyclic,
    /// The verifier found a dependency cycle in the configuration.
    PredictedDeadlock,
}

impl StaticVerdict {
    fn as_str(&self) -> &'static str {
        match self {
            StaticVerdict::Unknown => "unknown",
            StaticVerdict::CertifiedAcyclic => "certified",
            StaticVerdict::PredictedDeadlock => "predicted",
        }
    }

    fn from_str(s: &str) -> StaticVerdict {
        match s {
            "certified" => StaticVerdict::CertifiedAcyclic,
            "predicted" => StaticVerdict::PredictedDeadlock,
            _ => StaticVerdict::Unknown,
        }
    }
}

/// Structured diagnostic captured when the forward-progress watchdog trips:
/// instead of hanging, the simulator records which VCs hold stalled head
/// packets, where each was headed, and what the lossy link layer is still
/// holding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Packets still live in the network.
    pub live_packets: usize,
    /// Consecutive cycles without flit movement before the trip.
    pub idle_cycles: u64,
    /// Head packets of occupied VC buffers (capped; see `truncated`).
    pub stalled: Vec<StalledVc>,
    /// Occupied VC buffers beyond the report cap.
    pub truncated: usize,
    /// Flits stuck inside lossy-link shims, per torus wire.
    pub shim_backlogs: Vec<(GlobalLink, u64)>,
    /// What the static verifier predicted for this configuration.
    pub static_verdict: StaticVerdict,
    /// External torus links that were Down (outage window covering the trip
    /// cycle) or Degraded per the fault schedule, so a report can be
    /// interpreted without re-deriving the schedule.
    pub down_links: Vec<GlobalLink>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock watchdog tripped at cycle {}: {} packets live after \
             {} cycles without movement",
            self.cycle, self.live_packets, self.idle_cycles
        )?;
        match self.static_verdict {
            StaticVerdict::Unknown => {}
            StaticVerdict::PredictedDeadlock => writeln!(
                f,
                "  statically predicted: the pre-flight verifier found a \
                 channel-dependency cycle in this configuration"
            )?,
            StaticVerdict::CertifiedAcyclic => writeln!(
                f,
                "  model bug: this configuration was statically certified \
                 deadlock-free — the simulator diverged from the verified model"
            )?,
        }
        for s in &self.stalled {
            writeln!(
                f,
                "  stalled {} vc{}: pkt{} ({} flits, injected @{}) {}",
                s.link, s.vc_index, s.packet.0, s.flits, s.injected_at, s.route
            )?;
            for ev in &s.recent_events {
                match ev.packet {
                    Some(p) => writeln!(
                        f,
                        "    @{} {} pkt{} (track {})",
                        ev.cycle,
                        ev.kind.name(),
                        p,
                        ev.track
                    )?,
                    None => writeln!(
                        f,
                        "    @{} {} (track {})",
                        ev.cycle,
                        ev.kind.name(),
                        ev.track
                    )?,
                }
            }
        }
        if self.truncated > 0 {
            writeln!(f, "  ... and {} more occupied VCs", self.truncated)?;
        }
        for (link, flits) in &self.shim_backlogs {
            writeln!(f, "  link layer {link}: {flits} flits undelivered")?;
        }
        for link in &self.down_links {
            writeln!(f, "  faulty at trip time: {link}")?;
        }
        Ok(())
    }
}

impl StalledVc {
    fn to_json(&self) -> Json {
        Json::obj([
            ("link", link_json::link_to_json(&self.link)),
            ("vc_index", Json::from(u64::from(self.vc_index))),
            ("packet", Json::from(u64::from(self.packet.0))),
            ("flits", Json::from(u64::from(self.flits))),
            ("injected_at", Json::from(self.injected_at)),
            ("route", Json::from(self.route.as_str())),
            (
                "recent_events",
                Json::arr(self.recent_events.iter().map(TraceEvent::to_json)),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<StalledVc, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("stalled vc: missing `{k}`"));
        let uint = |k: &str| {
            field(k).and_then(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("stalled vc: `{k}` not a uint"))
            })
        };
        Ok(StalledVc {
            link: link_json::link_from_json(field("link")?)?,
            vc_index: u8::try_from(uint("vc_index")?).map_err(|_| "vc_index out of range")?,
            packet: PacketId(u32::try_from(uint("packet")?).map_err(|_| "packet out of range")?),
            flits: u8::try_from(uint("flits")?).map_err(|_| "flits out of range")?,
            injected_at: uint("injected_at")?,
            route: field("route")?
                .as_str()
                .ok_or("stalled vc: `route` not a string")?
                .to_string(),
            recent_events: field("recent_events")?
                .as_arr()
                .ok_or("stalled vc: `recent_events` not an array")?
                .iter()
                .map(TraceEvent::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl DeadlockReport {
    /// Serializes the report for `results/<name>.json` attachments.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", Json::from(self.cycle)),
            ("live_packets", Json::from(self.live_packets as u64)),
            ("idle_cycles", Json::from(self.idle_cycles)),
            (
                "stalled",
                Json::arr(self.stalled.iter().map(StalledVc::to_json)),
            ),
            ("truncated", Json::from(self.truncated as u64)),
            (
                "shim_backlogs",
                Json::arr(self.shim_backlogs.iter().map(|(link, flits)| {
                    Json::obj([
                        ("link", link_json::link_to_json(link)),
                        ("flits", Json::from(*flits)),
                    ])
                })),
            ),
            ("static_verdict", Json::from(self.static_verdict.as_str())),
            (
                "down_links",
                Json::arr(self.down_links.iter().map(link_json::link_to_json)),
            ),
        ])
    }

    /// Inverse of [`DeadlockReport::to_json`].
    pub fn from_json(j: &Json) -> Result<DeadlockReport, String> {
        let field = |k: &str| {
            j.get(k)
                .ok_or_else(|| format!("deadlock report: missing `{k}`"))
        };
        let uint = |k: &str| {
            field(k).and_then(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("deadlock report: `{k}` not a uint"))
            })
        };
        Ok(DeadlockReport {
            cycle: uint("cycle")?,
            live_packets: uint("live_packets")? as usize,
            idle_cycles: uint("idle_cycles")?,
            stalled: field("stalled")?
                .as_arr()
                .ok_or("deadlock report: `stalled` not an array")?
                .iter()
                .map(StalledVc::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            truncated: uint("truncated")? as usize,
            shim_backlogs: field("shim_backlogs")?
                .as_arr()
                .ok_or("deadlock report: `shim_backlogs` not an array")?
                .iter()
                .map(|b| {
                    let link = b
                        .get("link")
                        .ok_or("deadlock report: backlog missing `link`")
                        .and_then(|l| {
                            link_json::link_from_json(l).map_err(|_| "bad backlog link")
                        })?;
                    let flits = b
                        .get("flits")
                        .and_then(Json::as_u64)
                        .ok_or("deadlock report: backlog missing `flits`")?;
                    Ok::<_, String>((link, flits))
                })
                .collect::<Result<Vec<_>, _>>()?,
            // Tolerant of reports written before this field existed.
            static_verdict: j
                .get("static_verdict")
                .and_then(Json::as_str)
                .map(StaticVerdict::from_str)
                .unwrap_or_default(),
            // Likewise tolerant: absent (or partially unreadable) in old
            // reports, which simply carry no fault-state annotation.
            down_links: j
                .get("down_links")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|l| link_json::link_from_json(l).ok())
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// A workload driving the simulator: injects packets and consumes
/// deliveries.
pub trait Driver {
    /// Called before each cycle; inject here.
    fn pre_cycle(&mut self, sim: &mut Sim);

    /// Called for every delivery of the elapsed cycle.
    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery);

    /// Whether the workload is complete.
    fn done(&self, sim: &Sim) -> bool;
}

/// What sits at the end of a wire, for event wakeups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompRef {
    Router(u32),
    Chan(u32),
    Ep(u32),
}

/// The cycle-driven simulator of one Anton 2 machine.
pub struct Sim {
    /// Machine configuration the simulator was built from.
    pub cfg: MachineConfig,
    /// Simulation parameters.
    pub params: SimParams,
    /// Record per-packet link-level routes into deliveries.
    pub record_routes: bool,
    now: u64,
    wires: Vec<Wire>,
    /// Sender-side credit counters per wire — dense and simulator-owned so
    /// the allocation loops' credit checks stay in a few cache lines instead
    /// of chasing into the scattered `Wire` structs.
    wire_credits: Vec<WireCredits>,
    /// Bitmask of VCs with buffered packets, per wire (dense mirror of the
    /// receive-buffer state, maintained by `Wire::tick`/`Wire::pop`).
    wire_occupied: Vec<u16>,
    /// Head-of-buffer slot per wire and VC: valid whenever the matching
    /// `wire_occupied` bit is set. Switch allocation re-peeks blocked heads
    /// every cycle, so they live here — one dense load — rather than behind
    /// the per-VC deques inside `Wire`. Flat, `1 << vc_shift` slots per
    /// wire.
    wire_heads: Vec<BufEntry>,
    /// Head gating record per wire and VC (ready cycle, cached route, flits,
    /// pattern): everything the allocation scan's gates consult, packed to
    /// 8 bytes per head so one load answers every gate and the scan's
    /// working set stays L2-resident. Flat, `1 << vc_shift` slots per wire.
    wire_gate: Vec<GateEntry>,
    /// log2 row stride of `wire_heads`/`wire_gate`: the machine's widest
    /// wire VC count rounded up to a power of two. Sizing rows to the
    /// machine instead of [`MAX_WIRE_VCS`](crate::wire::MAX_WIRE_VCS)
    /// halves the allocation scan's footprint on the common 8-index
    /// configurations.
    vc_shift: u32,
    /// Per-wire timing and classification (flight latency, receiver
    /// pipeline, `FAST_WIRE`/`TORUS_WIRE` flags), packed to 4 bytes: the
    /// send/pop fast paths read this instead of the `Wire` struct.
    wire_timing: Vec<WireTiming>,
    /// Bitmask of VCs with packets queued *behind* the head, per wire —
    /// maintained by the wire's filing/promotion points through
    /// [`WireRx::queued`] and by the fast send path. A clear bit means a
    /// pop needs no promotion, so [`Sim::pop_wire`] can skip the wire.
    wire_queued: Vec<u16>,
    /// Flits sent on each wire by the fast path, which never touches the
    /// `Wire` struct; readers go through [`Sim::wire_flits_carried`],
    /// which adds this mirror to the wire's own counter.
    wire_flits: Vec<u64>,
    /// `group_vcs` per wire (dense mirror for VC-index math).
    wire_gvcs: Vec<u8>,
    /// Total VC count per wire.
    wire_nvcs: Vec<u8>,
    /// Component consuming each wire's arrivals.
    wire_consumer: Vec<CompRef>,
    /// Component receiving each wire's credit returns.
    wire_producer: Vec<CompRef>,
    /// Exact-cycle wake calendars, one per component kind: a component is
    /// processed only on cycles somebody scheduled it for (see
    /// [`crate::wake`]).
    sched_router: Scheduler,
    sched_chan: Scheduler,
    sched_ep: Scheduler,
    /// Wake calendar for the wires themselves: a wire is ticked only on
    /// cycles an event (arrival or credit maturity, or a shim needing its
    /// every-cycle tick) was scheduled for, replacing the per-cycle scan of
    /// an active-wire list. Events past the wheel's horizon chain forward
    /// through clamped re-schedules.
    sched_wire: Scheduler,
    /// Calendar of interior-wire credit returns: slot `c % HORIZON` holds
    /// the `(wire, vc index, flits)` returns maturing at cycle `c`. Pops
    /// file here instead of into per-wire return queues, so the wires phase
    /// applies a cycle's returns in one dense drain and most wires never
    /// need a tick at all; returns beyond the horizon fall back to the
    /// wire's own queue (see [`Sim::pop_wire`]).
    credit_wheel: Vec<Vec<(u32, u8, u8)>>,
    /// Reused per-cycle wake-list buffers (drained scheduler snapshots).
    scratch_router: Vec<u32>,
    scratch_chan: Vec<u32>,
    scratch_ep: Vec<u32>,
    scratch_wire: Vec<u32>,
    routers: Vec<RouterState>,
    chans: Vec<ChanState>,
    eps: Vec<EpState>,
    packets: PacketSlab,
    /// Multicast groups, indexed by `McGroupId.0`.
    mc_groups: Vec<Option<McGroup>>,
    handler_heap: BinaryHeap<Reverse<(u64, u32, u16)>>,
    deliveries: Vec<Delivery>,
    stats: SimStats,
    grants: crate::metrics::ArbiterGrantCounts,
    /// Per-router output-port lookup: `attach.code()` → port index (0xFF =
    /// no such port), replacing a linear port scan in route computation.
    router_port_of: Vec<u8>,
    /// Input wire per router port, strided by [`MAX_ROUTER_PORTS`]
    /// (`u32::MAX` past a router's port count) — the allocation loop's view
    /// of `RouterState::ports`, dense instead of per-router heap `Vec`s.
    router_in_wire: Vec<u32>,
    /// Output wire per router port (same layout).
    router_out_wire: Vec<u32>,
    /// Cycle each router output port is busy until (same layout).
    router_out_busy: Vec<u64>,
    /// SA2/output arbiter per router output port (same strided layout,
    /// placeholder single-lane arbiters past a router's port count):
    /// monomorphic bitset state instead of boxed `dyn PortArbiter`, so the
    /// allocation loop's grants are direct calls over dense memory.
    router_out_arb: Vec<BitsetArbiter>,
    /// SA1 VC arbiter per router input port (same layout; lanes = the
    /// feeding wire's VC indices).
    router_in_arb: Vec<BitsetArbiter>,
    /// Stride of `router_port_of` (attach codes per router).
    attach_codes: usize,
    /// Decode of stamped chip-target codes (see [`BufEntry::target`]): the
    /// adapter attach plus the mesh router it hangs off. Only chan and
    /// endpoint attaches are ever stamped; mesh/skip rows hold placeholders
    /// routing never reads.
    target_of_code: Vec<(LocalAttach, MeshCoord)>,
    /// Cached `ANTON_SIM_PROFILE` (checked once at construction): gates all
    /// per-phase `Instant` reads in [`Sim::step`].
    profile: bool,
    moved: bool,
    idle_cycles: u64,
    deadlocked: bool,
    deadlock_report: Option<Box<DeadlockReport>>,
    /// What the pre-flight verifier concluded (stamped into any
    /// [`DeadlockReport`] the watchdog produces).
    static_verdict: StaticVerdict,
    /// Fault-aware degraded routing: the epoch timeline and certified
    /// table sets built from the schedule's `Down` windows. `None` without
    /// Down windows (or with preflight off).
    degraded: Option<Box<DegradedState>>,
    /// Flight recorder: per-wire typed-event rings. `None` (one predictable
    /// branch per hook site) unless [`TraceConfig::events`] is set.
    ///
    /// [`TraceConfig::events`]: crate::params::TraceConfig::events
    recorder: Option<Box<FlightRecorder>>,
    /// Time-series sampler. `None` unless
    /// [`TraceConfig::sample_every`](crate::params::TraceConfig::sample_every)
    /// is non-zero.
    sampler: Option<Box<SamplerState>>,
    /// Stall attribution table. `None` (one predictable branch per hook
    /// site) unless [`TraceConfig::stalls`] is set.
    ///
    /// [`TraceConfig::stalls`]: crate::params::TraceConfig::stalls
    stall: Option<Box<StallTable>>,
    /// Boundary torus wires this shard replica exports on, with the shard
    /// that consumes each (empty in serial runs; see [`crate::shard`]).
    export_wires: Vec<(u32, u32)>,
    /// Boundary torus wires this shard replica imports on, with the shard
    /// that produces each (empty in serial runs).
    import_wires: Vec<(u32, u32)>,
    /// True when a [`crate::shard::ShardedSim`] drives this replica: the
    /// run-loop control (watchdog, completion, deadline) lives on the
    /// coordinator, which replays the merged delivery order.
    external_control: bool,
}

/// Last-K flight-recorder events attached to each stalled VC of a
/// [`DeadlockReport`].
const DEADLOCK_RECENT_EVENTS: usize = 8;

/// Time-series sampler state: the typed window store plus the next sample
/// cycle, boxed behind one `Option` so the disabled path costs one branch
/// per [`Sim::step`].
struct SamplerState {
    ts: TimeSeries,
    every: u64,
    next_at: u64,
    scratch: Vec<u64>,
}

impl SamplerState {
    /// Fixed channels, in registration order; [`Sim::take_sample`] must push
    /// raw readings in exactly this order, followed by one
    /// `flits_<class>` counter per [`LinkClass`](crate::metrics::LinkClass)
    /// in `LinkClass::ALL` order.
    const CHANNELS: [(&'static str, ChannelKind); 8] = [
        ("injected_packets", ChannelKind::Counter),
        ("delivered_packets", ChannelKind::Counter),
        ("in_flight_packets", ChannelKind::Gauge),
        ("occupied_vcs", ChannelKind::Gauge),
        ("shim_backlog_flits", ChannelKind::Gauge),
        ("grants_sa1", ChannelKind::Counter),
        ("grants_output", ChannelKind::Counter),
        ("grants_serializer", ChannelKind::Counter),
    ];

    fn new(every: u64) -> SamplerState {
        let mut ts = TimeSeries::new(every);
        for (name, kind) in SamplerState::CHANNELS {
            ts.channel(name, kind);
        }
        for class in crate::metrics::LinkClass::ALL {
            ts.channel(format!("flits_{}", class.name()), ChannelKind::Counter);
        }
        let n = ts.num_channels();
        // Every dense counter is zero at construction, so priming with zeros
        // at cycle 0 makes the first emitted window cover [0, every).
        ts.record(0, &vec![0; n]);
        SamplerState {
            ts,
            every,
            next_at: every,
            scratch: Vec::with_capacity(n),
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("shape", &self.cfg.shape)
            .field("now", &self.now)
            .field("live_packets", &self.packets.live())
            .finish()
    }
}

impl Sim {
    /// Builds the simulator, optionally as one shard replica of a
    /// [`crate::shard::ShardedSim`]: a full-machine instance whose boundary
    /// torus wires divert traffic through the inter-shard mailboxes and
    /// whose run-loop control lives on the coordinator.
    pub(crate) fn construct(
        cfg: MachineConfig,
        params: SimParams,
        shard: Option<&crate::shard::ShardAssignment<'_>>,
    ) -> Sim {
        // Shard replicas skip the static pre-flight (the coordinator's
        // control replica ran it once) but must still build the degraded
        // tables — the construction is deterministic, so every replica
        // reaches the same install-or-reject decision the control replica
        // (and a serial run) did. `quiet` keeps the rejection warnings from
        // repeating once per shard.
        let is_replica = shard.is_some();
        let static_verdict = if is_replica {
            StaticVerdict::Unknown
        } else {
            Self::run_preflight(&cfg, &params)
        };
        let degraded = Self::build_degraded(&cfg, &params, is_replica);
        let nodes = cfg.shape.num_nodes();
        let eps_per_node = cfg.endpoints_per_node();
        let policy = cfg.vc_policy;
        let depth = params.buffer_depth;
        let torus_latency = params.latency.torus_link_cycles().max(1);
        let mut wires: Vec<Wire> = Vec::new();
        let mut routers: Vec<RouterState> = Vec::new();
        let mut chans: Vec<ChanState> = Vec::with_capacity(nodes * NUM_CHAN_ADAPTERS);
        let mut eps: Vec<EpState> = Vec::with_capacity(nodes * eps_per_node);

        // Wire lookup tables filled in the first pass (dense, index-keyed).
        const NONE: WireId = usize::MAX;
        let nrouters_total = nodes * NUM_ROUTERS;
        let midx = |n: u32, r: MeshCoord, d: MeshDir| {
            (n as usize * NUM_ROUTERS + r.index()) * MeshDir::ALL.len() + d.index()
        };
        let mut mesh_wire: Vec<WireId> = vec![NONE; nrouters_total * MeshDir::ALL.len()];
        let mut skip_wire: Vec<WireId> = vec![NONE; nrouters_total];
        // (to adapter, to router) per channel adapter.
        let mut chan_wires: Vec<(WireId, WireId)> = vec![(NONE, NONE); nodes * NUM_CHAN_ADAPTERS];
        let mut ep_wires: Vec<(WireId, WireId)> = vec![(NONE, NONE); nodes * eps_per_node];

        let torus_depth = params.torus_buffer_depth;
        let add_wire = move |wires: &mut Vec<Wire>, label: GlobalLink, latency, rx, group| {
            let vcs = policy.num_vcs(group);
            let d = if matches!(label, GlobalLink::Torus { .. }) {
                torus_depth
            } else {
                depth
            };
            wires.push(Wire::new(label, latency, rx, vcs, d));
            wires.len() - 1
        };

        // Pass 1: create all wires, grouped by *consumer*: every wire has
        // exactly one consuming component, so visiting components in their
        // processing order (per node: routers, channel adapters, endpoint
        // adapters) enumerates each wire exactly once, and each component's
        // input gate/head/credit rows land contiguous in the dense mirrors
        // — the per-cycle allocation scans walk adjacent cache lines
        // instead of scattered ones. Renumbering is behavior-neutral:
        // nothing keys off wire ids except dense storage (fault-shim RNG
        // streams and shard boundaries are derived from structural indices).
        let mut torus_wire: Vec<WireId> = vec![NONE; nodes * NUM_CHAN_ADAPTERS]; // keyed by departing adapter
        for n in 0..nodes as u32 {
            let node = NodeId(n);
            let node_coord = cfg.shape.coord(node);
            for r in MeshCoord::all() {
                for attach in cfg.chip.router_ports(r) {
                    match attach {
                        LocalAttach::Mesh(d) => {
                            // This port's input: the mesh wire leaving the
                            // neighbor toward us.
                            let nbr = r.step(d).expect("mesh port has neighbor");
                            let from_dir = d.opposite();
                            let label = GlobalLink::Local {
                                node,
                                link: LocalLink::Mesh {
                                    from: nbr,
                                    dir: from_dir,
                                },
                            };
                            let w =
                                add_wire(&mut wires, label, 1, ROUTER_PIPELINE - 1, LinkGroup::M);
                            mesh_wire[midx(n, nbr, from_dir)] = w;
                        }
                        LocalAttach::Skip => {
                            let partner = cfg.chip.skip_partner(r).expect("skip port has partner");
                            let label = GlobalLink::Local {
                                node,
                                link: LocalLink::Skip { from: partner },
                            };
                            let w =
                                add_wire(&mut wires, label, 1, ROUTER_PIPELINE - 1, LinkGroup::T);
                            skip_wire[n as usize * NUM_ROUTERS + partner.index()] = w;
                        }
                        LocalAttach::Chan(c) => {
                            let w = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::ChanToRouter(c),
                                },
                                1,
                                ROUTER_PIPELINE - 1,
                                LinkGroup::T,
                            );
                            chan_wires[n as usize * NUM_CHAN_ADAPTERS + c.index()].1 = w;
                        }
                        LocalAttach::Endpoint(e) => {
                            let w = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::EpToRouter(e),
                                },
                                1,
                                ROUTER_PIPELINE - 1,
                                LinkGroup::M,
                            );
                            ep_wires[n as usize * eps_per_node + e.0 as usize].1 = w;
                        }
                    }
                }
            }
            for c in ChanId::all() {
                // The adapter's router-side input.
                let w = add_wire(
                    &mut wires,
                    GlobalLink::Local {
                        node,
                        link: LocalLink::RouterToChan(c),
                    },
                    1,
                    ADAPTER_PIPELINE - 1,
                    LinkGroup::T,
                );
                chan_wires[n as usize * NUM_CHAN_ADAPTERS + c.index()].0 = w;
                // The adapter's torus input: the external channel departing
                // our neighbor in this adapter's direction, labeled with
                // the opposite direction.
                let nbr = cfg.shape.id(cfg.shape.neighbor(node_coord, c.dir));
                let from_chan = ChanId {
                    dir: c.dir.opposite(),
                    slice: c.slice,
                };
                let label = GlobalLink::Torus {
                    from: nbr,
                    dir: from_chan.dir,
                    slice: from_chan.slice,
                };
                let w = add_wire(
                    &mut wires,
                    label,
                    torus_latency,
                    ADAPTER_PIPELINE - 1,
                    LinkGroup::T,
                );
                torus_wire[nbr.0 as usize * NUM_CHAN_ADAPTERS + from_chan.index()] = w;
            }
            for e in cfg.chip.endpoints() {
                let w = add_wire(
                    &mut wires,
                    GlobalLink::Local {
                        node,
                        link: LocalLink::RouterToEp(e),
                    },
                    1,
                    0,
                    LinkGroup::M,
                );
                ep_wires[n as usize * eps_per_node + e.0 as usize].0 = w;
            }
        }
        // With a fault schedule, every external torus channel routes its
        // flits through a lossy go-back-N link shim. Each link gets an
        // independent RNG stream derived from the schedule seed and the
        // link's dense index, so fault decisions are reproducible and
        // independent of wire construction order.
        if let Some(schedule) = &params.fault {
            for (ti, &w) in torus_wire.iter().enumerate() {
                let node = NodeId((ti / NUM_CHAN_ADAPTERS) as u32);
                let chan = ChanId::from_index(ti % NUM_CHAN_ADAPTERS);
                let profile = schedule.profile(node, chan);
                let seed = schedule.link_seed(cfg.torus_link_index(node, chan));
                wires[w].install_shim(anton_fault::LinkShim::new(
                    torus_latency,
                    schedule.gbn,
                    profile.ber,
                    profile.downs,
                    seed,
                ));
            }
        }
        // Sharded execution: mark the torus wires crossing a shard boundary
        // so their traffic diverts through the inter-shard mailboxes (see
        // `crate::shard`). A wire departing an owned node toward a foreign
        // one exports; the mirror direction imports. Wires between two
        // foreign nodes stay inert — nothing ever injects on them.
        let mut export_wires: Vec<(u32, u32)> = Vec::new();
        let mut import_wires: Vec<(u32, u32)> = Vec::new();
        if let Some(assign) = shard {
            for n in 0..nodes as u32 {
                let node = NodeId(n);
                let node_coord = cfg.shape.coord(node);
                let from_shard = assign.owner(node);
                for c in ChanId::all() {
                    let w = torus_wire[n as usize * NUM_CHAN_ADAPTERS + c.index()];
                    let to = cfg.shape.id(cfg.shape.neighbor(node_coord, c.dir));
                    let to_shard = assign.owner(to);
                    if from_shard == assign.me && to_shard != assign.me {
                        wires[w].set_boundary_role(BoundaryRole::Export);
                        export_wires.push((w as u32, to_shard as u32));
                    } else if from_shard != assign.me && to_shard == assign.me {
                        wires[w].set_boundary_role(BoundaryRole::Import);
                        import_wires.push((w as u32, from_shard as u32));
                    }
                }
            }
        }

        // Pass 2: create components.
        let attach_codes = ATTACH_CODE_BASE + eps_per_node;
        let mut router_port_of = vec![0xFFu8; nrouters_total * attach_codes];
        // Chip-target decode for entry-stamped route computation: every
        // adapter attach is owned by exactly one mesh router, and the chip
        // layout is identical on every node, so one table serves them all.
        let mut target_of_code: Vec<(LocalAttach, MeshCoord)> =
            vec![(LocalAttach::Skip, MeshCoord::new(0, 0)); attach_codes];
        for r in MeshCoord::all() {
            for attach in cfg.chip.router_ports(r) {
                if matches!(attach, LocalAttach::Chan(_) | LocalAttach::Endpoint(_)) {
                    target_of_code[attach.code()] = (attach, r);
                }
            }
        }
        for n in 0..nodes as u32 {
            let node = NodeId(n);
            let node_coord = cfg.shape.coord(node);
            for r in MeshCoord::all() {
                let attaches = cfg.chip.router_ports(r);
                let mut ports = Vec::with_capacity(attaches.len());
                let router_index = routers.len();
                for attach in &attaches {
                    let (in_wire, out_wire) = match *attach {
                        LocalAttach::Mesh(d) => {
                            let nbr = r.step(d).expect("mesh port has neighbor");
                            (
                                mesh_wire[midx(n, nbr, d.opposite())],
                                mesh_wire[midx(n, r, d)],
                            )
                        }
                        LocalAttach::Skip => {
                            let partner = cfg.chip.skip_partner(r).expect("skip port has partner");
                            (
                                skip_wire[n as usize * NUM_ROUTERS + partner.index()],
                                skip_wire[n as usize * NUM_ROUTERS + r.index()],
                            )
                        }
                        LocalAttach::Chan(c) => {
                            let (to_adapter, to_router) =
                                chan_wires[n as usize * NUM_CHAN_ADAPTERS + c.index()];
                            (to_router, to_adapter)
                        }
                        LocalAttach::Endpoint(e) => {
                            let (to_ep, to_router) =
                                ep_wires[n as usize * eps_per_node + e.0 as usize];
                            (to_router, to_ep)
                        }
                    };
                    router_port_of[router_index * attach_codes + attach.code()] = ports.len() as u8;
                    ports.push(RouterPort { in_wire, out_wire });
                }
                let nports = ports.len();
                routers.push(RouterState {
                    node,
                    mesh: r,
                    ports,
                    port_energy: vec![
                        PortEnergy {
                            last_words: [0; 3],
                            idle_from: 0
                        };
                        nports
                    ],
                    energy: EnergyCounters::default(),
                });
            }
            for c in ChanId::all() {
                let (from_router, to_router) =
                    chan_wires[n as usize * NUM_CHAN_ADAPTERS + c.index()];
                // The wire we receive on departs from our neighbor in
                // direction c.dir, labeled with the opposite direction.
                let nbr = cfg.shape.neighbor(node_coord, c.dir);
                let nbr_id = cfg.shape.id(nbr);
                let arriving_from = torus_wire[nbr_id.0 as usize * NUM_CHAN_ADAPTERS
                    + ChanId {
                        dir: c.dir.opposite(),
                        slice: c.slice,
                    }
                    .index()];
                chans.push(ChanState {
                    node,
                    chan: c,
                    from_router,
                    to_router,
                    torus_out: torus_wire[n as usize * NUM_CHAN_ADAPTERS + c.index()],
                    torus_in: arriving_from,
                    tokens: i64::from(TORUS_TOKEN_COST),
                    tokens_at: 0,
                    crosses_dateline: cfg.shape.hop_crosses_dateline(node_coord, c.dir),
                    repl: VecDeque::new(),
                    out_arbiter: BitsetArbiter::round_robin(
                        2 * policy.num_vcs(LinkGroup::T) as usize,
                    ),
                    rr_vc_in: 0,
                    to_router_busy_until: 0,
                });
            }
            for e in cfg.chip.endpoints() {
                let (from_router, to_router) = ep_wires[n as usize * eps_per_node + e.0 as usize];
                let stream = anton_core::seed::derive_stream_seed(params.seed, eps.len() as u64);
                eps.push(EpState {
                    node,
                    ep: e,
                    to_router,
                    from_router,
                    inject: VecDeque::new(),
                    repl: VecDeque::new(),
                    counters: Vec::new(),
                    busy_until: 0,
                    rng: StdRng::seed_from_u64(stream),
                });
            }
        }

        let num_eps = eps.len();
        if params.collect_metrics {
            for w in &mut wires {
                w.enable_occupancy_tracking();
            }
        }
        // Wire endpoint tables for event wakeups.
        let mut wire_consumer = vec![CompRef::Ep(0); wires.len()];
        let mut wire_producer = vec![CompRef::Ep(0); wires.len()];
        for (ridx, r) in routers.iter().enumerate() {
            for p in &r.ports {
                wire_consumer[p.in_wire] = CompRef::Router(ridx as u32);
                wire_producer[p.out_wire] = CompRef::Router(ridx as u32);
            }
        }
        for (cidx, c) in chans.iter().enumerate() {
            wire_consumer[c.from_router] = CompRef::Chan(cidx as u32);
            wire_producer[c.to_router] = CompRef::Chan(cidx as u32);
            wire_consumer[c.torus_in] = CompRef::Chan(cidx as u32);
            wire_producer[c.torus_out] = CompRef::Chan(cidx as u32);
        }
        for (eidx, e) in eps.iter().enumerate() {
            wire_consumer[e.from_router] = CompRef::Ep(eidx as u32);
            wire_producer[e.to_router] = CompRef::Ep(eidx as u32);
        }
        let nwires = wires.len();
        let nrouters = routers.len();
        let nchans = chans.len();
        let wire_credits: Vec<WireCredits> = wires.iter().map(Wire::initial_credits).collect();
        let wire_gvcs: Vec<u8> = wires.iter().map(|w| w.group_vcs).collect();
        let wire_nvcs: Vec<u8> = wires.iter().map(|w| w.num_vcs() as u8).collect();
        // Row stride of the flat head/gate mirrors: the machine's widest
        // wire, not the static MAX_WIRE_VCS bound, so the allocation scan's
        // working set carries no padding on the common 8-index configs.
        let vc_shift = wire_nvcs
            .iter()
            .copied()
            .max()
            .map_or(1, |n| (n as usize).next_power_of_two())
            .trailing_zeros();
        // All wire configuration (shims, occupancy tracking, boundary
        // roles) happened above, so the fast-path classification is final
        // for the life of the run. A packet is at most two flits
        // (`Packet::num_flits`), which bounds the consumer-wake offset.
        const MAX_PACKET_FLITS: u64 = 2;
        let wire_timing: Vec<WireTiming> = wires
            .iter()
            .map(|w| {
                let worst = w.latency + MAX_PACKET_FLITS - 1 + w.rx_pipeline;
                let fast = w.is_ideal_interior() && worst < crate::wake::HORIZON;
                let torus = matches!(w.label, GlobalLink::Torus { .. });
                WireTiming {
                    lat: w.latency.min(u64::from(u16::MAX)) as u16,
                    rxp: w.rx_pipeline.min(u64::from(u8::MAX)) as u8,
                    flags: u8::from(fast) * FAST_WIRE + u8::from(torus) * TORUS_WIRE,
                }
            })
            .collect();
        let mut router_in_wire = vec![u32::MAX; nrouters * MAX_ROUTER_PORTS];
        let mut router_out_wire = vec![u32::MAX; nrouters * MAX_ROUTER_PORTS];
        for (ridx, r) in routers.iter().enumerate() {
            for (p, port) in r.ports.iter().enumerate() {
                router_in_wire[ridx * MAX_ROUTER_PORTS + p] = port.in_wire as u32;
                router_out_wire[ridx * MAX_ROUTER_PORTS + p] = port.out_wire as u32;
            }
        }
        // Dense arbiter state over the same strided port layout. Slots past
        // a router's port count hold inert single-lane placeholders so the
        // stride stays uniform.
        let mut router_out_arb = Vec::with_capacity(nrouters * MAX_ROUTER_PORTS);
        let mut router_in_arb = Vec::with_capacity(nrouters * MAX_ROUTER_PORTS);
        for r in &routers {
            let nports = r.ports.len();
            for p in 0..MAX_ROUTER_PORTS {
                if p < nports {
                    router_out_arb.push(BitsetArbiter::from_kind(&params.arbiter, nports));
                    router_in_arb.push(BitsetArbiter::round_robin(
                        wires[r.ports[p].in_wire].num_vcs(),
                    ));
                } else {
                    router_out_arb.push(BitsetArbiter::round_robin(1));
                    router_in_arb.push(BitsetArbiter::round_robin(1));
                }
            }
        }
        let recorder = if params.trace.events {
            let mut rec = FlightRecorder::new(params.trace.ring_capacity);
            for w in &wires {
                rec.add_track(w.label.to_string());
            }
            // Lossy-link shims (if any) log retransmissions and frame drops
            // only while a recorder is attached to drain them.
            for w in &mut wires {
                w.set_shim_event_recording(true);
            }
            Some(Box::new(rec))
        } else {
            None
        };
        let sampler = (params.trace.sample_every > 0)
            .then(|| Box::new(SamplerState::new(params.trace.sample_every)));
        let stall = params
            .trace
            .stalls
            .then(|| Box::new(StallTable::new(nwires, vc_shift)));
        Sim {
            cfg,
            // The legacy environment variable still works; `TraceConfig`
            // subsumes it.
            profile: params.trace.profile || std::env::var_os("ANTON_SIM_PROFILE").is_some(),
            params,
            record_routes: false,
            now: 0,
            wires,
            wire_credits,
            wire_occupied: vec![0; nwires],
            wire_heads: vec![BufEntry::EMPTY; nwires << vc_shift],
            wire_gate: vec![crate::wire::GateEntry::EMPTY; nwires << vc_shift],
            vc_shift,
            wire_timing,
            wire_queued: vec![0; nwires],
            wire_flits: vec![0; nwires],
            wire_gvcs,
            wire_nvcs,
            router_in_wire,
            router_out_wire,
            router_out_busy: vec![0; nrouters * MAX_ROUTER_PORTS],
            router_out_arb,
            router_in_arb,
            wire_consumer,
            wire_producer,
            sched_router: Scheduler::new(nrouters),
            sched_chan: Scheduler::new(nchans),
            sched_ep: Scheduler::new(num_eps),
            sched_wire: Scheduler::new(nwires),
            credit_wheel: vec![Vec::new(); crate::wake::HORIZON as usize],
            scratch_router: Vec::with_capacity(nrouters),
            scratch_chan: Vec::with_capacity(nchans),
            scratch_ep: Vec::with_capacity(num_eps),
            scratch_wire: Vec::with_capacity(nwires),
            routers,
            chans,
            eps,
            packets: PacketSlab::new(),
            mc_groups: Vec::new(),
            handler_heap: BinaryHeap::new(),
            deliveries: Vec::new(),
            stats: SimStats {
                recv_per_endpoint: vec![0; num_eps],
                ..SimStats::default()
            },
            grants: crate::metrics::ArbiterGrantCounts::default(),
            router_port_of,
            attach_codes,
            target_of_code,
            moved: false,
            idle_cycles: 0,
            deadlocked: false,
            deadlock_report: None,
            static_verdict,
            degraded,
            recorder,
            sampler,
            stall,
            export_wires,
            import_wires,
            external_control: shard.is_some(),
        }
    }

    /// Schedules a component for processing at exactly cycle `at` (see
    /// [`crate::wake`] for why exact-cycle wakes are equivalent to the old
    /// processed-until-deadline semantics).
    #[inline]
    fn wake(&mut self, c: CompRef, at: u64) {
        match c {
            CompRef::Router(i) => self.sched_router.schedule(i as usize, at, self.now),
            CompRef::Chan(i) => self.sched_chan.schedule(i as usize, at, self.now),
            CompRef::Ep(i) => self.sched_ep.schedule(i as usize, at, self.now),
        }
    }

    /// (Re)schedules wire `w` on the wire wheel for its next pending event
    /// ([`Wire::next_event`]). Events past the wheel's horizon are clamped
    /// to its edge and chain forward through spurious wakes (each wake
    /// re-schedules); an active shim's `next_event` of 0 clamps up to
    /// `min_at`, giving it the every-cycle tick it needs. `min_at` is the
    /// earliest cycle the caller may still tick the wire: `now` from
    /// contexts that run before this cycle's wire phase (window barriers,
    /// the degradation-epoch tick), `now + 1` once the phase has drained.
    #[inline]
    fn schedule_wire(&mut self, w: WireId, min_at: u64) {
        let next = self.wires[w].next_event();
        if next == u64::MAX {
            return;
        }
        let at = next.clamp(min_at, self.now + (crate::wake::HORIZON - 1));
        self.sched_wire.schedule(w, at, self.now);
    }

    /// Installs inverse weights at one router output arbiter.
    ///
    /// `weights[input_port][pattern]` must be indexed consistently with
    /// [`anton_core::chip::ChipLayout::router_ports`].
    ///
    /// # Panics
    ///
    /// Panics if the router or port index is out of range.
    pub fn set_arbiter_weights(
        &mut self,
        node: NodeId,
        router_idx: usize,
        out_port: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let ridx = node.0 as usize * NUM_ROUTERS + router_idx;
        let r = &self.routers[ridx];
        assert!(out_port < r.ports.len(), "output port out of range");
        self.router_out_arb[ridx * MAX_ROUTER_PORTS + out_port] =
            BitsetArbiter::inverse_weighted(weights, m_bits);
    }

    /// Installs inverse weights at one router input port's SA1 VC arbiter.
    /// `weights[vc_index][pattern]` spans both traffic classes of the link
    /// feeding the port.
    ///
    /// # Panics
    ///
    /// Panics if the router or port index is out of range.
    pub fn set_input_arbiter_weights(
        &mut self,
        node: NodeId,
        router_idx: usize,
        in_port: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let ridx = node.0 as usize * NUM_ROUTERS + router_idx;
        let r = &self.routers[ridx];
        assert!(in_port < r.ports.len(), "input port out of range");
        self.router_in_arb[ridx * MAX_ROUTER_PORTS + in_port] =
            BitsetArbiter::inverse_weighted(weights, m_bits);
    }

    /// Installs inverse weights at one channel adapter's serializer VC
    /// arbiter. `weights[vc_index][pattern]` spans both traffic classes.
    ///
    /// # Panics
    ///
    /// Panics if the adapter index is out of range.
    pub fn set_chan_arbiter_weights(
        &mut self,
        node: NodeId,
        chan_idx: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let c = &mut self.chans[node.0 as usize * NUM_CHAN_ADAPTERS + chan_idx];
        c.out_arbiter = BitsetArbiter::inverse_weighted(weights, m_bits);
    }

    /// Registers a multicast group's tables.
    ///
    /// # Panics
    ///
    /// Panics if the group id is already registered.
    pub fn add_multicast_group(&mut self, group: McGroup) {
        let idx = group.id.0 as usize;
        if idx >= self.mc_groups.len() {
            self.mc_groups.resize_with(idx + 1, || None);
        }
        assert!(
            self.mc_groups[idx].is_none(),
            "duplicate multicast group id"
        );
        self.mc_groups[idx] = Some(group);
    }

    /// Arms a counted-write counter at an endpoint (Section 2.1): after
    /// `count` packets naming `counter` arrive, the endpoint's software
    /// handler fires (reported as [`Delivery::Handler`]).
    pub fn set_counter(&mut self, ep: GlobalEndpoint, counter: CounterId, count: u32) {
        let idx = self.cfg.endpoint_index(ep);
        let counters = &mut self.eps[idx].counters;
        match counters.iter_mut().find(|(c, _)| *c == counter.0) {
            Some(slot) => slot.1 = count,
            None => counters.push((counter.0, count)),
        }
    }

    /// Queues a packet for injection at `src` (unbounded software queue).
    pub fn inject(&mut self, src: GlobalEndpoint, packet: Packet) {
        let idx = self.cfg.endpoint_index(src);
        self.eps[idx].inject.push_back(InjectCmd::Auto(packet));
        self.wake(CompRef::Ep(idx as u32), self.now);
    }

    /// Queues a unicast packet with an explicit route spec instead of the
    /// randomized oblivious route — used by controlled experiments and the
    /// route cross-check tests.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is not unicast or `spec` does not route from
    /// `src`'s node to the destination node.
    pub fn inject_with_spec(&mut self, src: GlobalEndpoint, packet: Packet, spec: RouteSpec) {
        let Destination::Unicast(dst) = packet.dst else {
            panic!("explicit route specs apply to unicast packets only");
        };
        let mut cur = self.cfg.shape.coord(src.node);
        for hop in spec.hops() {
            cur = self.cfg.shape.neighbor(cur, hop);
        }
        assert_eq!(
            cur,
            self.cfg.shape.coord(dst.node),
            "spec does not reach destination"
        );
        let idx = self.cfg.endpoint_index(src);
        self.eps[idx]
            .inject
            .push_back(InjectCmd::WithSpec(packet, spec));
        self.wake(CompRef::Ep(idx as u32), self.now);
    }

    /// Number of packets still queued in an endpoint's software queue.
    pub fn inject_queue_len(&self, src: GlobalEndpoint) -> usize {
        self.eps[self.cfg.endpoint_index(src)].inject.len()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Grants issued so far at each arbitration-site class.
    pub fn grant_counts(&self) -> crate::metrics::ArbiterGrantCounts {
        self.grants
    }

    /// Every wire of the machine (read-only, for metrics aggregation).
    pub(crate) fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// Collects the full typed metrics record (see
    /// [`Metrics`](crate::metrics::Metrics)); occupancy histograms are
    /// present only when the simulator was built with
    /// [`SimParams::collect_metrics`](crate::params::SimParams::collect_metrics).
    pub fn metrics(&self) -> crate::metrics::Metrics {
        crate::metrics::Metrics::collect(self)
    }

    /// Packets currently in the network.
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// Whether the deadlock watchdog has fired.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// Total flits ever sent on one wire: the wire's own counter (slow
    /// paths) plus the simulator's fast-path mirror, which bypasses the
    /// `Wire` struct.
    pub fn wire_flits_carried(&self, w: usize) -> u64 {
        self.wires[w].flits_carried + self.wire_flits[w]
    }

    /// Raw flit counts carried by every wire, labeled by its structural
    /// link — for utilization reporting and bottleneck analysis.
    pub fn wire_utilizations(&self) -> Vec<(GlobalLink, u64)> {
        self.wires
            .iter()
            .enumerate()
            .map(|(i, w)| (w.label, self.wire_flits_carried(i)))
            .collect()
    }

    /// Utilization (flits per cycle) of every external torus channel, as
    /// `(from node, direction, slice, utilization)`.
    pub fn torus_utilizations(&self) -> Vec<(NodeId, TorusDir, anton_core::topology::Slice, f64)> {
        let cycles = self.now.max(1) as f64;
        self.wires
            .iter()
            .enumerate()
            .filter_map(|(i, w)| match w.label {
                GlobalLink::Torus { from, dir, slice } => {
                    Some((from, dir, slice, self.wire_flits_carried(i) as f64 / cycles))
                }
                _ => None,
            })
            .collect()
    }

    /// Peak torus-channel utilization as a fraction of the effective channel
    /// bandwidth (1.0 = the channel moved flits at the full 89.6 Gb/s for
    /// the whole run).
    pub fn max_torus_utilization(&self) -> f64 {
        let cap =
            f64::from(crate::params::TORUS_TOKEN_GAIN) / f64::from(crate::params::TORUS_TOKEN_COST);
        self.torus_utilizations()
            .iter()
            .map(|(_, _, _, u)| u / cap)
            .fold(0.0, f64::max)
    }

    /// Sum of all routers' energy counters.
    pub fn router_energy(&self) -> EnergyCounters {
        let mut total = EnergyCounters::default();
        for r in &self.routers {
            total.add(&r.energy);
        }
        total
    }

    // ----- sharded-kernel hooks (see `crate::shard`) ------------------------

    /// Repositions the clock without stepping — the coordinator's replay
    /// spoofs the control replica's `now` so driver callbacks observe the
    /// same cycle they would in a serial run.
    pub(crate) fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// Whether the last stepped cycle moved any flit (the watchdog input;
    /// the coordinator evaluates the watchdog globally from per-shard logs).
    pub(crate) fn moved(&self) -> bool {
        self.moved
    }

    /// Moves the deliveries of the cycles stepped so far into `out`.
    pub(crate) fn drain_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Drains every export-boundary outbox into the per-destination-shard
    /// mailboxes, transferring each departed packet's slab state along with
    /// its buffer entry, and every import-boundary credit outbox back toward
    /// the producing shard. Called once per sync window, at the barrier.
    pub(crate) fn drain_boundary_exports(&mut self, out: &mut [crate::shard::ShardMail]) {
        let mut scratch: Vec<(u64, BufEntry, u8)> = Vec::new();
        let mut scratch_credits: Vec<(u64, u8, u8)> = Vec::new();
        for i in 0..self.export_wires.len() {
            let (w, dest) = self.export_wires[i];
            scratch.clear();
            self.wires[w as usize].take_outbox(&mut scratch);
            for &(mature, entry, vcidx) in &scratch {
                let state = self.packets.remove(entry.pkt);
                out[dest as usize]
                    .packets
                    .push(crate::shard::PacketTransfer {
                        wire: w,
                        mature,
                        entry,
                        vcidx,
                        state,
                    });
            }
        }
        for i in 0..self.import_wires.len() {
            let (w, src) = self.import_wires[i];
            scratch_credits.clear();
            self.wires[w as usize].take_outbox_credits(&mut scratch_credits);
            for &(at, vcidx, flits) in &scratch_credits {
                out[src as usize]
                    .credits
                    .push(crate::shard::CreditTransfer {
                        wire: w,
                        at,
                        vcidx,
                        flits,
                    });
            }
        }
    }

    /// Applies one inbound boundary packet: inserts its state into the local
    /// slab and files the entry into the import wire (in flight, or directly
    /// into the receive buffer when it matured during the closing window).
    /// `window_start` is the first cycle the next window will step.
    pub(crate) fn apply_packet_import(
        &mut self,
        window_start: u64,
        t: crate::shard::PacketTransfer,
    ) {
        let w = t.wire as usize;
        let mut entry = t.entry;
        entry.pkt = self.packets.insert(t.state);
        let mut rx = WireRx {
            occupied: &mut self.wire_occupied[w],
            heads: &mut self.wire_heads[w << self.vc_shift..(w + 1) << self.vc_shift],
            gate: &mut self.wire_gate[w << self.vc_shift..(w + 1) << self.vc_shift],
            queued: &mut self.wire_queued[w],
        };
        if let Some(ready) =
            self.wires[w].apply_import(window_start, t.mature, entry, t.vcidx, &mut rx)
        {
            let consumer = self.wire_consumer[w];
            self.wake(consumer, ready.max(self.now));
        }
        self.schedule_wire(w, self.now);
    }

    /// Applies one inbound boundary credit return on an export wire.
    pub(crate) fn apply_credit_import(&mut self, t: crate::shard::CreditTransfer) {
        let w = t.wire as usize;
        self.wires[w].apply_credit_return(t.at, t.vcidx, t.flits);
        self.schedule_wire(w, self.now);
    }

    /// Replays a delivery on the control replica: updates the delivery
    /// statistics exactly as [`Sim::deliver`] would have, so driver `done`
    /// predicates reading [`Sim::stats`] observe the serial values.
    pub(crate) fn replay_delivery(&mut self, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            let idx = self.cfg.endpoint_index(p.dst);
            self.stats.delivered_packets += 1;
            self.stats.recv_per_endpoint[idx] += 1;
            self.stats.last_delivery_cycle = p.delivered_at;
        }
    }

    /// Sender-side credit count of one wire VC (combined boundary balance
    /// checks).
    pub(crate) fn wire_credit_count(&self, w: usize, vc: usize) -> u8 {
        self.wire_credits[w][vc]
    }

    /// Flits this replica accounts for on one wire VC (see
    /// [`Wire::accounted_flits`]), including credit returns parked in the
    /// global credit calendar.
    pub(crate) fn wire_accounted_flits(&self, w: usize, vc: usize) -> u32 {
        self.wires[w].accounted_flits(
            vc,
            self.wire_occupied[w],
            &self.wire_heads[w << self.vc_shift..],
        ) + self.wheel_credit_flits(w, vc)
    }

    /// Credit-return flits parked in the global credit calendar for one
    /// wire VC (cold path: invariant checks only).
    fn wheel_credit_flits(&self, w: usize, vc: usize) -> u32 {
        self.credit_wheel
            .iter()
            .flatten()
            .filter(|&&(wu, vcidx, _)| wu as usize == w && usize::from(vcidx) == vc)
            .map(|&(_, _, flits)| u32::from(flits))
            .sum()
    }

    /// Export-boundary wires of this replica, as `(wire, consumer shard)`.
    pub(crate) fn export_wire_ids(&self) -> &[(u32, u32)] {
        &self.export_wires
    }

    /// Builds a deadlock report from the current state as if the watchdog
    /// tripped at `cycle` after `idle_cycles` idle cycles (the coordinator
    /// evaluates the watchdog globally and synthesizes the report from each
    /// shard's stalled state).
    pub(crate) fn forced_deadlock_report(
        &mut self,
        cycle: u64,
        idle_cycles: u64,
    ) -> DeadlockReport {
        let saved = self.now;
        self.now = cycle;
        self.idle_cycles = idle_cycles;
        let report = self.build_deadlock_report();
        self.now = saved;
        report
    }

    /// Runs until the driver completes, deadlock, or the cycle budget.
    ///
    /// Every exit path audits the self-checking invariants (packet
    /// conservation and per-channel credit balance) and panics with a
    /// diagnostic on violation, so every simulation is self-checking.
    pub fn run(&mut self, driver: &mut dyn Driver, max_cycles: u64) -> RunOutcome {
        let deadline = self.now + max_cycles;
        // Deliveries drain through a second buffer swapped in each cycle, so
        // the two vectors ping-pong and no cycle allocates.
        let mut dels: Vec<Delivery> = Vec::new();
        loop {
            if driver.done(self) {
                return self.audited(RunOutcome::Completed);
            }
            if self.deadlocked {
                return self.audited(RunOutcome::Deadlocked);
            }
            if self.now >= deadline {
                return self.audited(RunOutcome::TimedOut);
            }
            driver.pre_cycle(self);
            self.step();
            std::mem::swap(&mut self.deliveries, &mut dels);
            for d in &dels {
                driver.on_delivery(self, d);
            }
            dels.clear();
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        let prof = self.profile;
        let mut t = prof.then(std::time::Instant::now);
        let mark = |phase: usize, t: &mut Option<std::time::Instant>| {
            if let Some(started) = t {
                PHASE_NS[phase].fetch_add(
                    started.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                *t = Some(std::time::Instant::now());
            }
        };
        let now = self.now;
        self.moved = false;
        self.sched_router.begin_cycle(now);
        self.sched_chan.begin_cycle(now);
        self.sched_ep.begin_cycle(now);
        if self.degraded.is_some() {
            self.degraded_epoch_tick(now);
        }
        // Tick only the wires whose next arrival/credit maturity is due —
        // the wire wheel's snapshot for this cycle — waking the components
        // their events concern. Wakes raised here are either same-cycle
        // (credits, zero-pipeline arrivals) or future, so the snapshots
        // taken below see every component this cycle concerns. Direct-filed
        // sends (see [`Wire::send`]) never appear here at all: their
        // consumer wake was issued at send time.
        // Apply this cycle's credit-calendar slot first: one dense drain
        // covers every interior-wire credit return maturing now, without
        // touching the wires themselves. Order against the wire ticks below
        // is immaterial — credits touch sender-side pools, arrivals touch
        // receive buffers, and producer wakes are idempotent bit sets.
        {
            let slot = (now % crate::wake::HORIZON) as usize;
            let mut returns = std::mem::take(&mut self.credit_wheel[slot]);
            for &(wu, vcidx, flits) in &returns {
                let w = wu as usize;
                self.wire_credits[w][vcidx as usize] += flits;
                debug_assert!(
                    self.wire_credits[w][vcidx as usize] <= self.wires[w].depth(),
                    "credit overflow"
                );
                self.wake(self.wire_producer[w], now);
            }
            returns.clear();
            self.credit_wheel[slot] = returns;
        }
        let rec_on = self.recorder.is_some();
        let mut wire_list = std::mem::take(&mut self.scratch_wire);
        wire_list.clear();
        self.sched_wire.begin_cycle(now);
        self.sched_wire.snapshot_into(&mut wire_list);
        for &wu in &wire_list {
            let w = wu as usize;
            let mut rx = WireRx {
                occupied: &mut self.wire_occupied[w],
                heads: &mut self.wire_heads[w << self.vc_shift..(w + 1) << self.vc_shift],
                gate: &mut self.wire_gate[w << self.vc_shift..(w + 1) << self.vc_shift],
                queued: &mut self.wire_queued[w],
            };
            let (arrival_ready, credited) =
                self.wires[w].tick(now, &mut self.wire_credits[w], &mut rx);
            if rec_on {
                self.drain_shim_events(w);
            }
            if let Some(ready) = arrival_ready {
                self.wake(self.wire_consumer[w], ready);
            }
            if credited {
                self.wake(self.wire_producer[w], now);
            }
            self.schedule_wire(w, now + 1);
        }
        self.sched_wire.end_cycle();
        self.scratch_wire = wire_list;
        mark(0, &mut t);
        while let Some(&Reverse((t, ep_idx, counter))) = self.handler_heap.peek() {
            if t > now {
                break;
            }
            self.handler_heap.pop();
            let ep = &self.eps[ep_idx as usize];
            self.deliveries.push(Delivery::Handler {
                ep: GlobalEndpoint {
                    node: ep.node,
                    ep: ep.ep,
                },
                counter: CounterId(counter),
            });
        }
        // Snapshot the woken components (in ascending index order — the
        // processing order determinism depends on). All wake sources past
        // this point target future cycles, so the snapshots are complete;
        // the endpoint snapshot serves both the inject and receive phases,
        // exactly like the old single dirty-scan did.
        let mut ep_list = std::mem::take(&mut self.scratch_ep);
        let mut chan_list = std::mem::take(&mut self.scratch_chan);
        let mut router_list = std::mem::take(&mut self.scratch_router);
        ep_list.clear();
        chan_list.clear();
        router_list.clear();
        self.sched_ep.snapshot_into(&mut ep_list);
        self.sched_chan.snapshot_into(&mut chan_list);
        self.sched_router.snapshot_into(&mut router_list);
        for &e in &ep_list {
            self.ep_inject_step(e as usize);
        }
        mark(1, &mut t);
        for &c in &chan_list {
            self.chan_inbound_step(c as usize);
            self.chan_outbound_step(c as usize);
        }
        mark(2, &mut t);
        for &r in &router_list {
            self.router_step(r as usize);
        }
        mark(3, &mut t);
        for &e in &ep_list {
            self.ep_recv_step(e as usize);
        }
        mark(4, &mut t);
        self.sched_router.end_cycle();
        self.sched_chan.end_cycle();
        self.sched_ep.end_cycle();
        self.scratch_ep = ep_list;
        self.scratch_chan = chan_list;
        self.scratch_router = router_list;
        if !self.external_control && self.packets.live() > 0 && !self.moved {
            self.idle_cycles += 1;
            if self.idle_cycles >= self.params.watchdog_cycles && !self.deadlocked {
                self.deadlocked = true;
                let report = self.build_deadlock_report();
                self.deadlock_report = Some(Box::new(report));
            }
        } else {
            self.idle_cycles = 0;
        }
        debug_assert_eq!(
            self.packets.created(),
            self.packets.terminated() + self.packets.live() as u64,
            "packet conservation violated at cycle {}",
            self.now
        );
        if let Some(s) = &self.sampler {
            // `now + 1` cycles have completed once this step retires.
            if now + 1 >= s.next_at {
                self.take_sample(now + 1);
                let s = self.sampler.as_mut().expect("sampler vanished mid-step");
                s.next_at = now + 1 + s.every;
            }
        }
        self.now += 1;
    }

    /// Moves the shim's logged link-layer events (retransmissions, frame
    /// drops) into the flight recorder on wire `w`'s track. Only called with
    /// a recorder attached; allocation-free for shimless wires.
    fn drain_shim_events(&mut self, w: usize) {
        let events = self.wires[w].take_shim_events();
        if events.is_empty() {
            return;
        }
        let rec = self.recorder.as_mut().expect("recorder checked by caller");
        for (cycle, ev) in events {
            let kind = match ev {
                ShimEvent::Retransmit => TraceEventKind::Retransmit,
                ShimEvent::DataFrameDropped => TraceEventKind::FrameDrop { ack: false },
                ShimEvent::AckFrameDropped => TraceEventKind::FrameDrop { ack: true },
            };
            rec.record(w as u32, cycle, None, kind);
        }
    }

    /// Snapshots the dense kernel counters into the time-series sampler as
    /// the reading for `cycle`. Push order must match the channel
    /// registration order in [`SamplerState::new`].
    fn take_sample(&mut self, cycle: u64) {
        let mut s = self.sampler.take().expect("take_sample without a sampler");
        s.scratch.clear();
        s.scratch.push(self.stats.injected_packets);
        s.scratch.push(self.stats.delivered_packets);
        s.scratch.push(self.packets.live() as u64);
        s.scratch.push(
            self.wire_occupied
                .iter()
                .map(|m| u64::from(m.count_ones()))
                .sum(),
        );
        s.scratch
            .push(self.wires.iter().map(Wire::shim_backlog).sum());
        s.scratch.push(self.grants.sa1);
        s.scratch.push(self.grants.output);
        s.scratch.push(self.grants.serializer);
        let mut per_class = [0u64; crate::metrics::LinkClass::ALL.len()];
        for (i, w) in self.wires.iter().enumerate() {
            let class = crate::metrics::LinkClass::of(&w.label);
            let slot = crate::metrics::LinkClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("LinkClass::ALL covers every class");
            per_class[slot] += w.flits_carried + self.wire_flits[i];
        }
        s.scratch.extend_from_slice(&per_class);
        let scratch = std::mem::take(&mut s.scratch);
        s.ts.record(cycle, &scratch);
        s.scratch = scratch;
        self.sampler = Some(s);
    }

    /// Audits the invariants at a run exit; panics with a diagnostic (and
    /// the deadlock report, if one was captured) on violation.
    fn audited(&self, outcome: RunOutcome) -> RunOutcome {
        if let Err(e) = self.check_invariants() {
            panic!(
                "simulator invariant violated at {outcome:?}, cycle {}: {e}",
                self.now
            );
        }
        outcome
    }

    /// Cheap always-on self-checks, also run automatically at every
    /// [`Sim::run`] exit:
    ///
    /// - **Packet conservation**: every packet ever created was either
    ///   terminated (delivered, or absorbed into multicast copies) or is
    ///   still live — and once the network has fully drained, nothing may
    ///   remain live.
    /// - **Credit balance**: on every wire and VC, sender credits plus
    ///   flits in flight, inside the link layer, buffered, or returning as
    ///   credits exactly equal the buffer depth.
    pub fn check_invariants(&self) -> Result<(), String> {
        let created = self.packets.created();
        let terminated = self.packets.terminated();
        let live = self.packets.live() as u64;
        if created != terminated + live {
            return Err(format!(
                "packet conservation violated: {created} created != \
                 {terminated} terminated + {live} live"
            ));
        }
        for (wid, w) in self.wires.iter().enumerate() {
            if w.boundary_role() != BoundaryRole::Interior {
                // A boundary wire's flits split across two shard replicas;
                // `ShardedSim::check_invariants` checks the combined balance.
                continue;
            }
            // Credit returns parked in the global calendar are part of the
            // wire's accounted flits: fold them into a scratch credit image
            // before the balance check.
            let mut credits = self.wire_credits[wid];
            for (vc, c) in credits.iter_mut().enumerate() {
                let parked = self.wheel_credit_flits(wid, vc);
                *c = c.saturating_add(u8::try_from(parked).unwrap_or(u8::MAX));
            }
            w.check_credit_balance(
                &credits,
                self.wire_occupied[wid],
                &self.wire_heads[wid << self.vc_shift..],
            )?;
        }
        let quiescent = self
            .wires
            .iter()
            .zip(&self.wire_occupied)
            .all(|(w, &occ)| w.is_quiescent(occ))
            && self.handler_heap.is_empty()
            && self
                .eps
                .iter()
                .all(|e| e.inject.is_empty() && e.repl.is_empty())
            && self.chans.iter().all(|c| c.repl.is_empty());
        if quiescent && live != 0 {
            return Err(format!(
                "packet conservation violated at quiesce: network drained \
                 with {live} packets still live"
            ));
        }
        Ok(())
    }

    /// The structured diagnostic captured when the deadlock watchdog
    /// tripped; `None` while the network is making progress.
    pub fn deadlock_report(&self) -> Option<&DeadlockReport> {
        self.deadlock_report.as_deref()
    }

    /// What the static pre-flight verifier concluded about this
    /// configuration at construction time.
    pub fn static_verdict(&self) -> StaticVerdict {
        self.static_verdict
    }

    /// Runs the `anton-verify` pre-flight according to
    /// [`SimParams::preflight`](crate::params::SimParams::preflight).
    fn run_preflight(cfg: &MachineConfig, params: &SimParams) -> StaticVerdict {
        if params.preflight == PreflightMode::Off {
            return StaticVerdict::Unknown;
        }
        let report = anton_verify::preflight(cfg, &params.verify_view());
        let verdict = match report.certificate.as_ref() {
            Some(c) if c.acyclic => StaticVerdict::CertifiedAcyclic,
            Some(_) => StaticVerdict::PredictedDeadlock,
            None => StaticVerdict::Unknown,
        };
        if report.has_errors() && params.preflight == PreflightMode::Enforce {
            let mut text = String::new();
            for d in &report.diagnostics {
                text.push_str(&format!("{d}\n"));
            }
            panic!(
                "static pre-flight verification rejected this configuration \
                 ({}):\n{text}set SimParams::preflight to PreflightMode::WarnOnly \
                 to run it anyway",
                report.summary()
            );
        }
        for d in &report.diagnostics {
            eprintln!("anton-sim pre-flight: {d}");
        }
        verdict
    }

    // ----- fault-aware degraded routing -------------------------------------

    /// Builds the degraded-routing timeline from the fault schedule's `Down`
    /// windows: the timeline splits into epochs over which the down-link set
    /// is constant, each distinct non-empty set gets one route-table set
    /// (generated by `anton-verify`), and the **union** of every set's
    /// tables must pass the explicit deadlock certifier before anything is
    /// installed — traffic pinned to different epochs' tables shares the
    /// network in flight, so the mixed system is what has to be acyclic.
    ///
    /// Returns `None` when the schedule has no `Down` windows (BER-only
    /// schedules keep the pure go-back-N recovery path) or preflight is
    /// `Off` (the user opted out of verification, and uncertified tables
    /// are never installed). When generation or certification fails,
    /// [`PreflightMode::Enforce`] panics at construction; `WarnOnly` runs
    /// without tables, leaving outage diagnosis to the legacy watchdog.
    fn build_degraded(
        cfg: &MachineConfig,
        params: &SimParams,
        quiet: bool,
    ) -> Option<Box<DegradedState>> {
        let schedule = params.fault.as_ref()?;
        if params.preflight == PreflightMode::Off {
            return None;
        }
        let mut windows: Vec<(NodeId, ChanId, u64, u64)> = Vec::new();
        for f in &schedule.faults {
            if let FaultKind::Down {
                from_cycle,
                until_cycle,
            } = f.kind
            {
                if from_cycle < until_cycle {
                    windows.push((f.from, f.chan, from_cycle, until_cycle));
                }
            }
        }
        if windows.is_empty() {
            return None;
        }
        let mut boundaries: Vec<u64> = vec![0];
        for &(_, _, from, until) in &windows {
            boundaries.push(from);
            if until != u64::MAX {
                boundaries.push(until);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut table_sets: Vec<Vec<RouteTable>> = Vec::new();
        let mut set_keys: Vec<Vec<(NodeId, ChanId)>> = Vec::new();
        let mut epochs: Vec<DegradedEpoch> = Vec::new();
        let mut problems: Vec<String> = Vec::new();
        for &b in &boundaries {
            let mut downs = DownLinkSet::empty(cfg.shape);
            for &(n, c, from, until) in &windows {
                if from <= b && b < until {
                    downs.insert(n, c);
                }
            }
            let set = if downs.is_empty() {
                None
            } else {
                let key: Vec<(NodeId, ChanId)> = downs.iter().collect();
                let idx = match set_keys.iter().position(|k| *k == key) {
                    Some(i) => i,
                    None => {
                        let (tables, diags) = anton_verify::build_degraded_tables(cfg, &downs);
                        for d in &diags {
                            if d.severity == anton_verify::Severity::Error {
                                problems.push(d.to_string());
                            }
                        }
                        set_keys.push(key);
                        table_sets.push(tables);
                        table_sets.len() - 1
                    }
                };
                assert!(idx <= usize::from(u8::MAX), "too many distinct down sets");
                Some(idx as u8)
            };
            epochs.push(DegradedEpoch {
                start: b,
                downs,
                set,
            });
        }
        if problems.is_empty() {
            let union: Vec<RouteTable> = table_sets.iter().flatten().cloned().collect();
            let cert = anton_verify::certify_tables(cfg, &union);
            if !cert.acyclic {
                problems.push(format!(
                    "degraded route tables failed deadlock certification \
                     ({} channel-VC nodes, {} edges, dependency cycle found)",
                    cert.nodes, cert.edges
                ));
            }
        }
        if !problems.is_empty() {
            let mut text = String::new();
            for p in &problems {
                text.push_str(&format!("{p}\n"));
            }
            if params.preflight == PreflightMode::Enforce {
                panic!(
                    "cannot install certified reroutes for this fault \
                     schedule:\n{text}set SimParams::preflight to \
                     PreflightMode::WarnOnly to run with the legacy outage \
                     watchdog instead"
                );
            }
            if !quiet {
                for p in &problems {
                    eprintln!("anton-sim degraded routing: {p} (tables not installed)");
                }
            }
            return None;
        }
        Some(Box::new(DegradedState {
            table_sets,
            epochs,
            cur: 0,
        }))
    }

    /// Advances the degradation epoch to the one covering `now`, draining
    /// newly-failed links and waking the serializers of newly-recovered
    /// ones. Runs at the top of [`Sim::step`], before component snapshots,
    /// so same-cycle wakes land in this cycle.
    fn degraded_epoch_tick(&mut self, now: u64) {
        loop {
            let Some(dg) = &self.degraded else { return };
            let next = dg.cur + 1;
            if next >= dg.epochs.len() || dg.epochs[next].start > now {
                return;
            }
            let old = &dg.epochs[dg.cur].downs;
            let new = &dg.epochs[next].downs;
            let onsets: Vec<(NodeId, ChanId)> =
                new.iter().filter(|&(n, c)| !old.contains(n, c)).collect();
            let clears: Vec<(NodeId, ChanId)> =
                old.iter().filter(|&(n, c)| !new.contains(n, c)).collect();
            self.degraded.as_mut().expect("checked above").cur = next;
            for (n, c) in onsets {
                self.down_link_onset(n, c);
            }
            for (n, c) in clears {
                // The link is back up: wake its serializer so the absorbed
                // adapter resumes feeding the torus.
                let cidx = n.0 as usize * NUM_CHAN_ADAPTERS + c.index();
                self.wake(CompRef::Chan(cidx as u32), now);
            }
        }
    }

    /// A link just went `Down`: tear down its go-back-N session, restore
    /// the credits its undelivered flits held, and recover the stranded
    /// packets — unicast traffic reroutes over the epoch's certified table;
    /// multicast copies (which have no table to follow) re-enter the shim,
    /// which re-delivers them once the outage clears.
    fn down_link_onset(&mut self, node: NodeId, chan: ChanId) {
        let cidx = node.0 as usize * NUM_CHAN_ADAPTERS + chan.index();
        let w = self.chans[cidx].torus_out;
        let drained = self.wires[w].drain_shim_undelivered(self.now, &mut self.wire_credits[w]);
        for (entry, vcidx) in drained {
            match self.packets.get(entry.pkt).route {
                RouteProgress::Unicast { .. } | RouteProgress::Table { .. } => {
                    self.reroute_packet(node, entry.pkt);
                }
                _ => {
                    // Re-enters the shim queue (the wire keeps its shim),
                    // so no consumer wake can come back.
                    let mut rx = WireRx {
                        occupied: &mut self.wire_occupied[w],
                        heads: &mut self.wire_heads[w << self.vc_shift..(w + 1) << self.vc_shift],
                        gate: &mut self.wire_gate[w << self.vc_shift..(w + 1) << self.vc_shift],
                        queued: &mut self.wire_queued[w],
                    };
                    let filed = self.wires[w].send(
                        self.now,
                        entry,
                        vcidx,
                        &mut self.wire_credits[w],
                        &mut rx,
                    );
                    debug_assert!(filed.is_none(), "shimmed wires never direct-file");
                }
            }
        }
        self.schedule_wire(w, self.now);
        self.wake(CompRef::Chan(cidx as u32), self.now);
    }

    /// Ejects a stranded unicast packet from the network at `node` and
    /// queues it for re-injection over the degraded tables, preserving its
    /// original injection cycle and accumulated hop count (so delivery
    /// latency spans the whole journey).
    fn reroute_packet(&mut self, node: NodeId, pid: PacketId) {
        let st = self.packets.remove(pid);
        let slice = match st.route {
            RouteProgress::Unicast { spec, .. } => spec.slice,
            RouteProgress::Table { slice, .. } => slice,
            _ => unreachable!("only unicast traffic reroutes"),
        };
        self.stats.rerouted_packets += 1;
        self.moved = true;
        let eidx = node.0 as usize * self.cfg.endpoints_per_node();
        self.eps[eidx].inject.push_back(InjectCmd::Reroute {
            packet: st.packet,
            slice,
            injected_at: st.injected_at,
            torus_hops: st.torus_hops,
        });
        // `now + 1`: reroutes raised mid-cycle (serializer absorption) land
        // after the endpoint snapshot was taken.
        self.wake(CompRef::Ep(eidx as u32), self.now + 1);
    }

    /// Routing decision for a freshly injected unicast packet: the
    /// randomized oblivious spec on a healthy network, or the current
    /// epoch's certified table when the spec would traverse a link that is
    /// down right now.
    fn routed_unicast(&self, node: NodeId, spec: RouteSpec, dst: GlobalEndpoint) -> RouteProgress {
        if let Some(dg) = &self.degraded {
            let epoch = &dg.epochs[dg.cur];
            if let Some(set) = epoch.set {
                if self.spec_hits_down(node, &spec, &epoch.downs) {
                    return RouteProgress::Table {
                        set,
                        slice: spec.slice,
                        cur: node,
                        dst,
                    };
                }
            }
        }
        RouteProgress::Unicast { spec, dst }
    }

    /// Whether a route spec starting at `node` traverses any down link.
    fn spec_hits_down(&self, node: NodeId, spec: &RouteSpec, downs: &DownLinkSet) -> bool {
        let mut cur = self.cfg.shape.coord(node);
        for dir in spec.hops() {
            let id = self.cfg.shape.id(cur);
            if downs.contains(
                id,
                ChanId {
                    dir,
                    slice: spec.slice,
                },
            ) {
                return true;
            }
            cur = self.cfg.shape.neighbor(cur, dir);
        }
        false
    }

    /// Route for a packet re-entered at `node` during the current epoch.
    /// In a healthy epoch (every outage cleared while the packet waited in
    /// the re-injection queue) there is no installed table; the packet
    /// falls back to a deterministic dimension-ordered spec — every link it
    /// needs is up.
    fn table_route(&self, node: NodeId, slice: Slice, dst: GlobalEndpoint) -> RouteProgress {
        if let Some(dg) = &self.degraded {
            if let Some(set) = dg.epochs[dg.cur].set {
                return RouteProgress::Table {
                    set,
                    slice,
                    cur: node,
                    dst,
                };
            }
        }
        let spec = RouteSpec::deterministic(
            &self.cfg.shape,
            self.cfg.shape.coord(node),
            self.cfg.shape.coord(dst.node),
            DimOrder::XYZ,
            slice,
        );
        RouteProgress::Unicast { spec, dst }
    }

    /// Next torus hop of a table-routed packet (`None` at its destination
    /// node).
    fn table_next_hop(&self, set: u8, slice: Slice, cur: NodeId, dst: NodeId) -> Option<TorusDir> {
        let dg = self
            .degraded
            .as_ref()
            .expect("table packets exist only with degraded state installed");
        dg.table_sets[set as usize][slice.0 as usize].next_hop(cur, dst)
    }

    /// Whether this adapter's outgoing torus link is down in the current
    /// degradation epoch.
    fn link_down_now(&self, cidx: usize) -> bool {
        let Some(dg) = &self.degraded else {
            return false;
        };
        let epoch = &dg.epochs[dg.cur];
        !epoch.downs.is_empty()
            && epoch
                .downs
                .contains(self.chans[cidx].node, self.chans[cidx].chan)
    }

    /// The serializer of a down link absorbs its queue instead of feeding
    /// the dead channel: every rerouteable head is pulled off the adapter's
    /// inbound wire and re-entered at this node over the certified table.
    /// Multicast copies stay queued (they have no table) and resume when
    /// the link comes back.
    fn absorb_at_down_serializer(&mut self, cidx: usize, in_wire: WireId) {
        let now = self.now;
        let node = self.chans[cidx].node;
        let nvcs = self.wire_nvcs[in_wire];
        for v in 0..nvcs {
            while self.wire_occupied[in_wire] >> v & 1 != 0 {
                let Some(entry) = self.wire_head(in_wire, v) else {
                    break;
                };
                let pid = entry.pkt;
                if !matches!(
                    self.packets.get(pid).route,
                    RouteProgress::Unicast { .. } | RouteProgress::Table { .. }
                ) {
                    break;
                }
                self.pop_wire(in_wire, v);
                self.reroute_packet(node, pid);
            }
        }
        if self.wire_occupied[in_wire] != 0 {
            if self.stall.is_some() {
                // Whatever is left is parked at a dead serializer: multicast
                // copies (no reroute table) waiting out the outage.
                self.note_stall_all_ready(in_wire, StallCause::DeadLinkDrain);
            }
            // Heads still maturing (or multicast copies waiting out the
            // outage): poll again next cycle.
            self.wake(CompRef::Chan(cidx as u32), now + 1);
        }
    }

    fn build_deadlock_report(&mut self) -> DeadlockReport {
        const CAP: usize = 64;
        let mut report = DeadlockReport {
            cycle: self.now,
            live_packets: self.packets.live(),
            idle_cycles: self.idle_cycles,
            static_verdict: self.static_verdict,
            ..DeadlockReport::default()
        };
        if let Some(schedule) = &self.params.fault {
            for f in &schedule.faults {
                let link = GlobalLink::Torus {
                    from: f.from,
                    dir: f.chan.dir,
                    slice: f.chan.slice,
                };
                let active = match f.kind {
                    FaultKind::Down {
                        from_cycle,
                        until_cycle,
                    } => from_cycle <= self.now && self.now < until_cycle,
                    FaultKind::Degraded { .. } => true,
                };
                if active && !report.down_links.contains(&link) {
                    report.down_links.push(link);
                }
            }
        }
        // (wire id, packet) per stalled VC, for the flight-recorder pass.
        let mut stall_sites: Vec<(u32, PacketId)> = Vec::new();
        for (wid, w) in self.wires.iter().enumerate() {
            let backlog = w.shim_backlog();
            if backlog > 0 {
                report.shim_backlogs.push((w.label, backlog));
            }
            let mask = self.wire_occupied[wid];
            for vc in 0..w.num_vcs() as u8 {
                if mask & (1 << vc) == 0 {
                    continue;
                }
                let entry = &self.wire_heads[(wid << self.vc_shift) + vc as usize];
                if entry.ready_at > self.now {
                    continue;
                }
                if report.stalled.len() >= CAP {
                    report.truncated += 1;
                    continue;
                }
                let route = match self.packets.get(entry.pkt).route {
                    RouteProgress::Unicast { spec, dst } => format!(
                        "unicast to n{}:e{}, remaining offsets {:?}",
                        dst.node.0, dst.ep.0, spec.offsets
                    ),
                    RouteProgress::Table {
                        set,
                        slice,
                        cur,
                        dst,
                    } => format!(
                        "table-routed (set {set}) to n{}:e{}, at n{} slice {}",
                        dst.node.0, dst.ep.0, cur.0, slice.0
                    ),
                    RouteProgress::McExit { dir, slice, .. } => {
                        format!("multicast exit {:?} slice {}", dir, slice.0)
                    }
                    RouteProgress::McDeliver { ep, .. } => {
                        format!("multicast delivery to e{}", ep.0)
                    }
                };
                stall_sites.push((wid as u32, entry.pkt));
                report.stalled.push(StalledVc {
                    link: w.label,
                    vc_index: vc,
                    packet: entry.pkt,
                    flits: entry.flits,
                    injected_at: entry.age,
                    route,
                    recent_events: Vec::new(),
                });
            }
        }
        if let Some(rec) = self.recorder.as_mut() {
            // Stamp a stall event per stuck VC, then attach the last-K
            // events touching each stalled packet or wire (the stall
            // included) so the report carries the history leading in.
            for &(wid, pid) in &stall_sites {
                rec.record(
                    wid,
                    report.cycle,
                    Some(u64::from(pid.0)),
                    TraceEventKind::Stall {
                        idle_cycles: report.idle_cycles,
                    },
                );
            }
            for (s, &(wid, pid)) in report.stalled.iter_mut().zip(&stall_sites) {
                let pkt = u64::from(pid.0);
                s.recent_events = rec.recent_matching(DEADLOCK_RECENT_EVENTS, |e| {
                    e.packet == Some(pkt) || e.track == wid
                });
            }
        }
        report
    }

    // ----- observability ---------------------------------------------------

    /// The flight recorder, when [`TraceConfig::events`] was set.
    ///
    /// [`TraceConfig::events`]: crate::params::TraceConfig::events
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// The sampled kernel-counter time series, when
    /// [`TraceConfig::sample_every`](crate::params::TraceConfig::sample_every)
    /// was non-zero.
    pub fn timeseries(&self) -> Option<&TimeSeries> {
        self.sampler.as_ref().map(|s| &s.ts)
    }

    /// Forces a final (possibly partial) sample window at the current cycle.
    /// Call after a run completes so the tail of the simulation is not lost;
    /// a no-op when sampling is off or a window was just emitted.
    pub fn flush_samples(&mut self) {
        if self.sampler.is_some() {
            self.take_sample(self.now);
        }
    }

    /// Records a flight-recorder event at the current cycle; one branch when
    /// tracing is off.
    #[inline]
    fn record_event(&mut self, track: u32, packet: Option<u64>, kind: TraceEventKind) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(track, self.now, packet, kind);
        }
    }

    /// The stall attribution table, when [`TraceConfig::stalls`] was set.
    ///
    /// [`TraceConfig::stalls`]: crate::params::TraceConfig::stalls
    pub fn stall_table(&self) -> Option<&StallTable> {
        self.stall.as_deref()
    }

    /// Closes every open stall segment at the current cycle. Call after a
    /// run completes so stalls still in progress at the end are counted; a
    /// no-op when stall attribution is off.
    pub fn flush_stalls(&mut self) {
        if let Some(st) = self.stall.as_deref_mut() {
            st.flush(self.now);
        }
    }

    /// The derived congestion analysis (ranked hotspots, class totals,
    /// root-blocker trees), when stall attribution is on. Flush first.
    pub fn congestion_report(&self) -> Option<CongestionReport> {
        let table = self.stall.as_deref()?;
        Some(self.congestion_report_from(table))
    }

    /// Builds a congestion report from an explicit stall table with this
    /// replica's wire labels and link classes (the sharded kernel merges
    /// per-shard tables first).
    pub(crate) fn congestion_report_from(&self, table: &StallTable) -> CongestionReport {
        let stats = table
            .stalled_wires()
            .into_iter()
            .map(|w| {
                let label = self.wires[w as usize].label;
                LinkStat {
                    wire: w,
                    label: label.to_string(),
                    class: crate::metrics::LinkClass::of(&label).name().to_string(),
                    cause_cycles: table.wire_cause_cycles(w),
                    vc_cycles: table.wire_vc_cycles(w),
                }
            })
            .collect();
        CongestionReport::build(stats, table.edges(), |w| {
            self.wires[w as usize].label.to_string()
        })
    }

    /// Classifies the head of `(wire, vcidx)` as stalled with `cause` at
    /// the current cycle; one branch when stall attribution is off.
    #[inline]
    fn note_stall(&mut self, wire: WireId, vcidx: u8, cause: StallCause, blocker: Option<WireId>) {
        if let Some(st) = self.stall.as_deref_mut() {
            st.observe(
                wire as u32,
                vcidx,
                cause,
                blocker.map(|b| b as u32),
                self.now,
            );
        }
    }

    /// Classifies every ready head buffered on `wire` as stalled with
    /// `cause` — for whole-component stalls (busy adapter-to-router link,
    /// serializer out of tokens, dead-link drain) where no per-VC scan runs.
    /// Call only with stall attribution on.
    fn note_stall_all_ready(&mut self, wire: WireId, cause: StallCause) {
        let mut occ = self.wire_occupied[wire];
        while occ != 0 {
            let v = occ.trailing_zeros() as u8;
            occ &= occ - 1;
            if u64::from(self.wire_gate[(wire << self.vc_shift) + v as usize].ready) <= self.now {
                self.note_stall(wire, v, cause, None);
            }
        }
    }

    // ----- routing helpers -------------------------------------------------

    /// The on-chip target (adapter) of a packet at its current node.
    fn chip_target(&self, pid: PacketId) -> LocalAttach {
        let st = self.packets.get(pid);
        match st.route {
            RouteProgress::Unicast { spec, dst } => match spec.next_dir() {
                Some(d) => LocalAttach::Chan(ChanId {
                    dir: d,
                    slice: spec.slice,
                }),
                None => LocalAttach::Endpoint(dst.ep),
            },
            RouteProgress::Table {
                set,
                slice,
                cur,
                dst,
            } => match self.table_next_hop(set, slice, cur, dst.node) {
                Some(d) => LocalAttach::Chan(ChanId { dir: d, slice }),
                None => LocalAttach::Endpoint(dst.ep),
            },
            RouteProgress::McExit { dir, slice, .. } => LocalAttach::Chan(ChanId { dir, slice }),
            RouteProgress::McDeliver { ep, .. } => LocalAttach::Endpoint(ep),
        }
    }

    /// Output port and VC for a packet at a router. The result is cached in
    /// the head buffer entry by the switch-allocation loop, so this is only
    /// evaluated once per packet per router.
    fn route_output(&self, ridx: usize, pid: PacketId) -> (usize, Vc) {
        let router = &self.routers[ridx];
        let st = self.packets.get(pid);
        let target = self.chip_target(pid);
        let target_router = match target {
            LocalAttach::Chan(c) => self.cfg.chip.chan_router(c),
            LocalAttach::Endpoint(e) => self.cfg.chip.endpoint_router(e),
            _ => unreachable!("targets are adapters"),
        };
        let here = router.mesh;
        let attach = if here == target_router {
            target
        } else if self.cfg.chip.skip_partner(here) == Some(target_router)
            && matches!(target, LocalAttach::Chan(c) if c.dir.dim == Dim::X)
            && st.arrived_via.map(|d| d.dim) == Some(Dim::X)
        {
            // X through-traffic bypasses two routers via the skip channel.
            LocalAttach::Skip
        } else {
            let d = self
                .cfg
                .dir_order
                .next_dir(here, target_router)
                .expect("distinct routers need a mesh hop");
            LocalAttach::Mesh(d)
        };
        let port = self.router_port_of[ridx * self.attach_codes + attach.code()];
        debug_assert!(port != 0xFF, "routed attach must be a port");
        let port = port as usize;
        let group = match attach {
            LocalAttach::Mesh(_) | LocalAttach::Endpoint(_) => LinkGroup::M,
            LocalAttach::Skip | LocalAttach::Chan(_) => LinkGroup::T,
        };
        (port, st.vc.vc_for(group))
    }

    /// Entry-stamped variant of [`Sim::route_output`]: routes from the
    /// context the sender stamped into the buffer entry (see
    /// [`BufEntry::target`]), touching no per-packet slab state. Identical
    /// by construction to the slab-derived route — the stamp inputs are
    /// stable for the whole chip traversal (asserted at the fill site in
    /// debug builds).
    #[inline]
    fn route_output_stamped(&self, ridx: usize, target_code: u8, meta: u8) -> (usize, Vc) {
        let (target, target_router) = self.target_of_code[target_code as usize];
        let here = self.routers[ridx].mesh;
        let attach = if here == target_router {
            target
        } else if self.cfg.chip.skip_partner(here) == Some(target_router)
            && matches!(target, LocalAttach::Chan(c) if c.dir.dim == Dim::X)
            && meta & 0x40 != 0
        {
            // X through-traffic bypasses two routers via the skip channel.
            LocalAttach::Skip
        } else {
            let d = self
                .cfg
                .dir_order
                .next_dir(here, target_router)
                .expect("distinct routers need a mesh hop");
            LocalAttach::Mesh(d)
        };
        let port = self.router_port_of[ridx * self.attach_codes + attach.code()];
        debug_assert!(port != 0xFF, "routed attach must be a port");
        let vc = match attach {
            LocalAttach::Mesh(_) | LocalAttach::Endpoint(_) => Vc(meta & 7),
            LocalAttach::Skip | LocalAttach::Chan(_) => Vc((meta >> 3) & 7),
        };
        (port as usize, vc)
    }

    /// Whether `flits` credits are available on a wire's VC.
    #[inline]
    fn wire_can_send(&self, wire: WireId, vcidx: u8, flits: u8) -> bool {
        self.wire_credits[wire][vcidx as usize] >= flits
    }

    /// Pops the head packet of a wire's VC, refreshing the wire's dense
    /// occupancy state and filing the credit return the pop puts in flight
    /// into the global credit calendar (or, beyond the calendar's horizon,
    /// back onto the wire's own return queue plus a wire-wheel tick).
    #[inline]
    fn pop_wire(&mut self, wire: WireId, vcidx: u8) -> BufEntry {
        // Every head advance funnels through here, so this is the one
        // resolution point for stall attribution: the pop closes any open
        // stall segment of this (wire, VC) slot.
        if let Some(st) = self.stall.as_deref_mut() {
            st.resolve(wire as u32, vcidx, self.now);
        }
        let bit = 1u16 << vcidx;
        let t = self.wire_timing[wire];
        if t.flags & FAST_WIRE != 0 && self.wire_queued[wire] & bit == 0 {
            // Ideal interior wire with nothing queued behind the head: the
            // pop is pure dense-state bookkeeping — clear the occupied bit
            // and file the credit return straight into the calendar
            // (latency >= 1 and < HORIZON, so the slot is always valid).
            debug_assert!(
                self.wire_occupied[wire] & bit != 0,
                "pop from empty VC buffer"
            );
            self.wire_occupied[wire] &= !bit;
            let entry = self.wire_heads[(wire << self.vc_shift) + vcidx as usize];
            let at = self.now + u64::from(t.lat);
            let slot = (at % crate::wake::HORIZON) as usize;
            self.credit_wheel[slot].push((wire as u32, vcidx, entry.flits));
            return entry;
        }
        let mut rx = WireRx {
            occupied: &mut self.wire_occupied[wire],
            heads: &mut self.wire_heads[wire << self.vc_shift..(wire + 1) << self.vc_shift],
            gate: &mut self.wire_gate[wire << self.vc_shift..(wire + 1) << self.vc_shift],
            queued: &mut self.wire_queued[wire],
        };
        let (entry, credit) = self.wires[wire].pop_deferred(self.now, vcidx, &mut rx);
        if let Some((at, vc, flits)) = credit {
            // Zero-latency returns mature "now", but the wires phase has
            // already run this cycle — they apply next cycle, exactly when
            // a post-pop wire tick would have drained them.
            let at = at.max(self.now + 1);
            if at - self.now < crate::wake::HORIZON {
                let slot = (at % crate::wake::HORIZON) as usize;
                self.credit_wheel[slot].push((wire as u32, vc, flits));
            } else {
                self.wires[wire].file_credit_return(at, vc, flits);
                self.schedule_wire(wire, self.now + 1);
            }
        }
        entry
    }

    /// The head entry of a wire's VC, if one is buffered and ready at `now`.
    /// The gate reads only the compact occupancy/ready mirrors; the full
    /// entry is touched on a hit.
    #[inline]
    fn wire_head(&self, wire: WireId, vcidx: u8) -> Option<&BufEntry> {
        if self.wire_occupied[wire] & (1 << vcidx) == 0
            || u64::from(self.wire_gate[(wire << self.vc_shift) + vcidx as usize].ready) > self.now
        {
            return None;
        }
        Some(&self.wire_heads[(wire << self.vc_shift) + vcidx as usize])
    }

    /// Flattened VC index of `(class, vc)` on a wire, from the dense
    /// `group_vcs` mirror (see [`Wire::vc_index`]).
    #[inline]
    fn vc_index_of(&self, wire: WireId, class: anton_core::vc::TrafficClass, vc: Vc) -> u8 {
        let gvcs = self.wire_gvcs[wire];
        debug_assert!(vc.0 < gvcs, "vc {vc} out of range");
        class.index() as u8 * gvcs + vc.0
    }

    /// Builds a fresh buffer entry for a packet from its slab state (hops
    /// that already hold a buffered copy of the metadata pass it to
    /// [`Sim::send_entry`] directly).
    fn packet_entry(&self, pid: PacketId) -> BufEntry {
        let st = self.packets.get(pid);
        // Stamp the chip-traversal route context while the slab line is
        // hot: the target adapter is fixed until the packet leaves the
        // chip, the VC state changes only at adapters (a staged pending
        // promotion applies the instant this send completes, so stamp the
        // promoted state), and the arrival dimension is set once at torus
        // arrival. Table routes stay unstamped: fault events can swap
        // routing tables while a packet is mid-chip, and each router must
        // observe the table as of its own scan.
        let target = match st.route {
            RouteProgress::Table { .. } => 0xFF,
            _ => {
                let code = self.chip_target(pid).code();
                debug_assert!(code < 0xFF, "attach code overflows stamp");
                code as u8
            }
        };
        let vcs = st.pending_vc.unwrap_or(st.vc);
        let m_vc = vcs.vc_for(LinkGroup::M).0;
        let t_vc = vcs.vc_for(LinkGroup::T).0;
        debug_assert!(m_vc < 8 && t_vc < 8, "stamped VC exceeds 3 bits");
        let arrived_x = st.arrived_via.map(|d| d.dim) == Some(Dim::X);
        BufEntry {
            pkt: pid,
            ready_at: 0,
            flits: st.flits,
            class: st.packet.class.index() as u8,
            pattern: st.packet.pattern.0,
            rc_port: 0xFF,
            rc_vcidx: 0,
            target,
            meta: m_vc | (t_vc << 3) | (u8::from(arrived_x) << 6),
            age: st.injected_at,
        }
    }

    fn send_entry(&mut self, wire: WireId, mut entry: BufEntry, vcidx: u8) {
        let now = self.now;
        let flits = entry.flits;
        let pid = entry.pkt;
        let t = self.wire_timing[wire];
        if t.flags & FAST_WIRE != 0 {
            // Ideal interior wire: spend the credits, stamp the arrival and
            // file the entry into the dense receive mirrors without loading
            // the `Wire` struct. Its in-flight queue stays empty by
            // construction — every arrival here fits the wake horizon — so
            // this is exactly `Wire::send`'s direct-file path.
            let credits = &mut self.wire_credits[wire];
            assert!(credits[vcidx as usize] >= flits, "send without credits");
            credits[vcidx as usize] -= flits;
            self.wire_flits[wire] += u64::from(flits);
            entry.rc_port = 0xFF;
            let ready = now + u64::from(t.lat) + u64::from(flits) - 1 + u64::from(t.rxp);
            entry.ready_at = ready;
            let bit = 1u16 << vcidx;
            if self.wire_occupied[wire] & bit == 0 {
                self.wire_gate[(wire << self.vc_shift) + vcidx as usize] =
                    crate::wire::GateEntry::of(&entry);
                self.wire_heads[(wire << self.vc_shift) + vcidx as usize] = entry;
                self.wire_occupied[wire] |= bit;
            } else {
                self.wires[wire].queue_behind_head(entry, vcidx);
                self.wire_queued[wire] |= bit;
            }
            self.wake(self.wire_consumer[wire], ready);
        } else {
            let filed = {
                let mut rx = WireRx {
                    occupied: &mut self.wire_occupied[wire],
                    heads: &mut self.wire_heads[wire << self.vc_shift..(wire + 1) << self.vc_shift],
                    gate: &mut self.wire_gate[wire << self.vc_shift..(wire + 1) << self.vc_shift],
                    queued: &mut self.wire_queued[wire],
                };
                self.wires[wire].send(now, entry, vcidx, &mut self.wire_credits[wire], &mut rx)
            };
            if let Some(ready) = filed {
                // Direct-filed arrival: the wire wheel never sees it; wake
                // the consumer for the cycle the head clears the receive
                // pipeline.
                self.wake(self.wire_consumer[wire], ready);
            } else {
                self.schedule_wire(wire, now + 1);
            }
        }
        self.moved = true;
        self.stats.flit_hops += u64::from(flits);
        if t.flags & TORUS_WIRE != 0 {
            self.stats.torus_flits += u64::from(flits);
        }
        if self.record_routes {
            let label = self.wires[wire].label;
            let group_vcs = self.wires[wire].group_vcs;
            let vc = Vc(vcidx % group_vcs);
            let st = self.packets.get_mut(pid);
            if let Some(log) = &mut st.route_log {
                log.push((label, vc));
            }
        }
        self.record_event(
            wire as u32,
            Some(u64::from(pid.0)),
            TraceEventKind::Hop { vc: vcidx, flits },
        );
    }

    fn send_on_wire(&mut self, wire: WireId, pid: PacketId, vcidx: u8) {
        let entry = self.packet_entry(pid);
        self.send_entry(wire, entry, vcidx);
    }

    // ----- endpoint adapters ----------------------------------------------

    fn ep_inject_step(&mut self, eidx: usize) {
        let now = self.now;
        if self.eps[eidx].busy_until > now {
            return;
        }
        // Pending multicast copies first.
        if let Some(&pid) = self.eps[eidx].repl.front() {
            self.try_send_to_router_from_ep(eidx, pid);
            return;
        }
        let Some(cmd) = self.eps[eidx].inject.front().copied() else {
            return;
        };
        let pkt = *cmd.packet();
        let node = self.eps[eidx].node;
        match pkt.dst {
            Destination::Unicast(dst) => {
                // Injection always starts on M-group VC 0; check credits
                // before drawing the randomized route.
                let wire_id = self.eps[eidx].to_router;
                let flits = pkt.num_flits() as u8;
                let vcidx = self.vc_index_of(wire_id, pkt.class, Vc(0));
                if !self.wire_can_send(wire_id, vcidx, flits) {
                    return;
                }
                let src_c = self.cfg.shape.coord(node);
                let dst_c = self.cfg.shape.coord(dst.node);
                let (route, injected_at, torus_hops, fresh) = match cmd {
                    InjectCmd::WithSpec(_, spec) => {
                        (RouteProgress::Unicast { spec, dst }, now, 0, true)
                    }
                    InjectCmd::Auto(_) => {
                        let spec = RouteSpec::randomized(
                            &self.cfg.shape,
                            src_c,
                            dst_c,
                            &mut self.eps[eidx].rng,
                        );
                        (self.routed_unicast(node, spec, dst), now, 0, true)
                    }
                    InjectCmd::Reroute {
                        slice,
                        injected_at,
                        torus_hops,
                        ..
                    } => (
                        self.table_route(node, slice, dst),
                        injected_at,
                        torus_hops,
                        false,
                    ),
                };
                let on_table = matches!(route, RouteProgress::Table { .. });
                let first_hop = match &route {
                    RouteProgress::Unicast { spec, .. } => spec.next_dir().is_some(),
                    RouteProgress::Table {
                        set, slice, cur, ..
                    } => self.table_next_hop(*set, *slice, *cur, dst.node).is_some(),
                    _ => unreachable!("unicast injection"),
                };
                let mut vc = self.cfg.vc_policy.start();
                if first_hop {
                    vc.begin_dim();
                }
                let pid = self.packets.insert(PacketState {
                    packet: pkt,
                    route,
                    vc,
                    pending_vc: None,
                    arrived_via: None,
                    injected_at,
                    torus_hops,
                    rerouted: !fresh || on_table,
                    flits,
                    route_log: self.record_routes.then(Vec::new),
                });
                self.record_event(
                    wire_id as u32,
                    Some(u64::from(pid.0)),
                    TraceEventKind::Inject,
                );
                let sent = self.try_send_to_router_from_ep(eidx, pid);
                debug_assert!(sent, "credits were checked");
                self.eps[eidx].inject.pop_front();
                if fresh {
                    self.stats.injected_packets += 1;
                    // Drained packets were already counted when pulled off
                    // the dead link; fresh injections steered onto the
                    // tables by the down-link check count here.
                    if on_table {
                        self.stats.rerouted_packets += 1;
                    }
                }
            }
            Destination::Multicast { group, tree } => {
                let copies = self.expand_multicast_at(node, group, tree, None, &pkt, now);
                if self.eps[eidx].repl.len() + copies.len() <= REPL_CAP {
                    self.eps[eidx].inject.pop_front();
                    self.stats.injected_packets += 1;
                    if self.recorder.is_some() {
                        let track = self.eps[eidx].to_router as u32;
                        for pid in &copies {
                            self.record_event(
                                track,
                                Some(u64::from(pid.0)),
                                TraceEventKind::Inject,
                            );
                        }
                    }
                    for pid in copies {
                        self.eps[eidx].repl.push_back(pid);
                    }
                    if let Some(&pid) = self.eps[eidx].repl.front() {
                        self.try_send_to_router_from_ep(eidx, pid);
                    }
                } else {
                    for pid in copies {
                        self.packets.remove(pid);
                    }
                }
            }
        }
    }

    fn try_send_to_router_from_ep(&mut self, eidx: usize, pid: PacketId) -> bool {
        let now = self.now;
        let wire_id = self.eps[eidx].to_router;
        let st = self.packets.get(pid);
        let class = st.packet.class;
        let vc = st.vc.vc_for(LinkGroup::M);
        let flits = st.flits;
        let vcidx = self.vc_index_of(wire_id, class, vc);
        if !self.wire_can_send(wire_id, vcidx, flits) {
            return false;
        }
        self.send_on_wire(wire_id, pid, vcidx);
        self.eps[eidx].busy_until = now + u64::from(flits);
        if self.eps[eidx].repl.front() == Some(&pid) {
            self.eps[eidx].repl.pop_front();
        }
        // Re-examine the queues once the adapter frees up.
        self.wake(CompRef::Ep(eidx as u32), now + u64::from(flits));
        true
    }

    fn ep_recv_step(&mut self, eidx: usize) {
        let wire_id = self.eps[eidx].from_router;
        let mut mask = self.wire_occupied[wire_id];
        while mask != 0 {
            let v = mask.trailing_zeros() as u8;
            mask &= mask - 1;
            let Some(entry) = self.wire_head(wire_id, v) else {
                continue;
            };
            let pid = entry.pkt;
            self.pop_wire(wire_id, v);
            self.moved = true;
            self.deliver(eidx, pid);
        }
    }

    fn deliver(&mut self, eidx: usize, pid: PacketId) {
        let now = self.now;
        let st = self.packets.remove(pid);
        let ep = GlobalEndpoint {
            node: self.eps[eidx].node,
            ep: self.eps[eidx].ep,
        };
        self.stats.delivered_packets += 1;
        self.stats.last_delivery_cycle = now;
        self.stats.recv_per_endpoint[eidx] += 1;
        if self.recorder.is_some() {
            let track = self.eps[eidx].from_router as u32;
            self.record_event(track, Some(u64::from(pid.0)), TraceEventKind::Deliver);
        }
        if let Some(cid) = st.packet.counter {
            let counters = &mut self.eps[eidx].counters;
            if let Some(pos) = counters.iter().position(|&(c, _)| c == cid.0) {
                let rem = &mut counters[pos].1;
                *rem = rem.saturating_sub(1);
                if *rem == 0 {
                    counters.swap_remove(pos);
                    let fire = now + self.params.latency.handler_dispatch_cycles();
                    self.handler_heap.push(Reverse((fire, eidx as u32, cid.0)));
                }
            }
        }
        self.deliveries.push(Delivery::Packet(PacketDelivery {
            src: st.packet.src,
            dst: ep,
            pattern: st.packet.pattern.0,
            counter: st.packet.counter,
            injected_at: st.injected_at,
            delivered_at: now,
            torus_hops: st.torus_hops,
            rerouted: st.rerouted,
            route_log: st.route_log,
        }));
    }

    // ----- channel adapters -------------------------------------------------

    fn chan_inbound_step(&mut self, cidx: usize) {
        let now = self.now;
        if self.chans[cidx].to_router_busy_until > now {
            if self.stall.is_some() {
                // Ready arrivals are waiting out a transfer already on the
                // adapter-to-router link.
                let wire_id = self.chans[cidx].torus_in;
                self.note_stall_all_ready(wire_id, StallCause::OutputBusy);
            }
            return;
        }
        // Drain pending multicast copies first.
        if let Some(&pid) = self.chans[cidx].repl.front() {
            if self.try_send_chan_to_router(cidx, pid) {
                self.chans[cidx].repl.pop_front();
                if self.stall.is_some() {
                    // The copy took the adapter-to-router link; ready
                    // arrivals behind it wait out the transfer.
                    let wire_id = self.chans[cidx].torus_in;
                    self.note_stall_all_ready(wire_id, StallCause::OutputBusy);
                }
            } else if self.stall.is_some() {
                // The copy at the replication queue's head is itself
                // credit-starved, and it holds up every arrival behind it.
                let to_router = self.chans[cidx].to_router;
                let wire_id = self.chans[cidx].torus_in;
                let cause = if self.wires[to_router].shim_backlog() > 0 {
                    StallCause::RetransmitBacklog
                } else {
                    StallCause::NoCredit
                };
                let mut occ = self.wire_occupied[wire_id];
                while occ != 0 {
                    let v = occ.trailing_zeros() as u8;
                    occ &= occ - 1;
                    if u64::from(self.wire_gate[(wire_id << self.vc_shift) + v as usize].ready)
                        <= now
                    {
                        self.note_stall(wire_id, v, cause, Some(to_router));
                    }
                }
            }
            return;
        }
        let wire_id = self.chans[cidx].torus_in;
        if self.wire_occupied[wire_id] == 0 {
            return;
        }
        let nvcs = self.wire_nvcs[wire_id];
        let start = self.chans[cidx].rr_vc_in;
        let to_router = self.chans[cidx].to_router;
        for k in 0..nvcs {
            let v = (start + k) % nvcs;
            if self.wire_occupied[wire_id] >> v & 1 == 0 {
                continue;
            }
            let m = self.wire_gate[(wire_id << self.vc_shift) + v as usize];
            if u64::from(m.ready) > now {
                continue;
            }
            // Arrival classification, cached in the head's gate record so
            // blocked heads never touch the packet slab: the adapter owns
            // this wire's rc slots (`0xFE` = unicast/table with the
            // to-router VC index alongside, `0xFD` = multicast exit). The
            // classification and VC are stable while the head is parked —
            // packet VC state only advances when the packet moves.
            let (kind, cvcidx) = if m.rc_port == 0xFF {
                let pid = self.wire_heads[(wire_id << self.vc_shift) + v as usize].pkt;
                let st = self.packets.get(pid);
                let (kind, cvcidx) = match st.route {
                    RouteProgress::Unicast { .. } | RouteProgress::Table { .. } => {
                        let vc = st.vc.vc_for(LinkGroup::T);
                        (0xFE, self.vc_index_of(to_router, st.packet.class, vc))
                    }
                    RouteProgress::McExit { .. } => (0xFD, 0),
                    RouteProgress::McDeliver { .. } => {
                        unreachable!("deliver copies never cross torus links")
                    }
                };
                let g = &mut self.wire_gate[(wire_id << self.vc_shift) + v as usize];
                g.rc_port = kind;
                g.rc_vcidx = cvcidx;
                (kind, cvcidx)
            } else {
                (m.rc_port, m.rc_vcidx)
            };
            if kind == 0xFE {
                if !self.wire_can_send(to_router, cvcidx, m.flits) {
                    if self.stall.is_some() {
                        let cause = if self.wires[to_router].shim_backlog() > 0 {
                            StallCause::RetransmitBacklog
                        } else {
                            StallCause::NoCredit
                        };
                        self.note_stall(wire_id, v, cause, Some(to_router));
                    }
                    continue;
                }
                let pid = self.wire_heads[(wire_id << self.vc_shift) + v as usize].pkt;
                self.pop_wire(wire_id, v);
                self.moved = true;
                // Entry link uses the arriving T-phase VC; promotion
                // (if the dimension finished) applies past it.
                self.stage_unicast_arrival(pid);
                let sent = self.try_send_chan_to_router(cidx, pid);
                debug_assert!(sent, "send checked above");
                self.chans[cidx].rr_vc_in = (v + 1) % nvcs;
                return;
            }
            {
                let pid = self.wire_heads[(wire_id << self.vc_shift) + v as usize].pkt;
                let st = self.packets.get(pid);
                let RouteProgress::McExit { group, tree, .. } = st.route else {
                    unreachable!("gate cache says multicast exit")
                };
                let node = self.chans[cidx].node;
                let arrived = st.arrived_via.expect("multicast copy arrived via torus");
                let pkt = st.packet;
                // Peek at the fanout size before committing.
                let fanout = self.mc_fanout(node, group, tree);
                if self.chans[cidx].repl.len() + fanout > REPL_CAP {
                    // The replication queue can't absorb this copy's fanout:
                    // the adapter's output path is occupied by earlier
                    // copies.
                    self.note_stall(wire_id, v, StallCause::OutputBusy, None);
                    continue;
                }
                self.pop_wire(wire_id, v);
                self.moved = true;
                let parent = self.packets.remove(pid);
                let copies = self.expand_multicast_at(
                    node,
                    group,
                    tree,
                    Some((arrived, parent.vc, parent.torus_hops)),
                    &pkt,
                    parent.injected_at,
                );
                for c in copies {
                    self.chans[cidx].repl.push_back(c);
                }
                if let Some(&head) = self.chans[cidx].repl.front() {
                    if self.try_send_chan_to_router(cidx, head) {
                        self.chans[cidx].repl.pop_front();
                    }
                }
                self.wake(CompRef::Chan(cidx as u32), now + 1);
                self.chans[cidx].rr_vc_in = (v + 1) % nvcs;
                return;
            }
        }
    }

    fn try_send_chan_to_router(&mut self, cidx: usize, pid: PacketId) -> bool {
        let now = self.now;
        let st = self.packets.get(pid);
        let wire_id = self.chans[cidx].to_router;
        let vc = st.vc.vc_for(LinkGroup::T);
        let vcidx = self.vc_index_of(wire_id, st.packet.class, vc);
        let flits = st.flits;
        if !self.wire_can_send(wire_id, vcidx, flits) {
            return false;
        }
        self.send_on_wire(wire_id, pid, vcidx);
        self.chans[cidx].to_router_busy_until = now + u64::from(flits);
        self.wake(CompRef::Chan(cidx as u32), now + u64::from(flits));
        let st = self.packets.get_mut(pid);
        if let Some(promoted) = st.pending_vc.take() {
            let from = st.vc.vc_for(LinkGroup::T).0;
            st.vc = promoted;
            self.record_event(
                wire_id as u32,
                Some(u64::from(pid.0)),
                TraceEventKind::VcPromotion {
                    from,
                    to: promoted.vc_for(LinkGroup::T).0,
                },
            );
        }
        true
    }

    /// Stages the node-entry VC transitions of an arriving unicast packet:
    /// if its dimension finished, the promoted state (out of the T phase,
    /// and into the next dimension if one remains) applies after the entry
    /// link.
    fn stage_unicast_arrival(&mut self, pid: PacketId) {
        let st = self.packets.get(pid);
        let arrived = st
            .arrived_via
            .expect("arrival transition outside torus arrival");
        // For table packets the dimension run ends when the *next* hop (or
        // ejection) departs from the arriving dimension — the same grouping
        // the certifier's witness-route model uses.
        let (dim_done, more) = match &st.route {
            RouteProgress::Unicast { spec, .. } => (
                spec.offsets[arrived.dim.index()] == 0,
                spec.next_dir().is_some(),
            ),
            RouteProgress::Table {
                set,
                slice,
                cur,
                dst,
            } => {
                let next = self.table_next_hop(*set, *slice, *cur, dst.node);
                (next.map(|d| d.dim) != Some(arrived.dim), next.is_some())
            }
            _ => return,
        };
        if dim_done {
            let st = self.packets.get_mut(pid);
            let mut promoted = st.vc;
            promoted.end_dim();
            if more {
                promoted.begin_dim();
            }
            st.pending_vc = Some(promoted);
        }
    }

    fn chan_outbound_step(&mut self, cidx: usize) {
        let now = self.now;
        let gain = i64::from(TORUS_TOKEN_GAIN);
        let cost = i64::from(TORUS_TOKEN_COST);
        // Accumulate bandwidth tokens (lazily, since the adapter sleeps when
        // idle), keeping the fractional remainder so the long-run rate is
        // exactly 14/45 flits per cycle; the cap only bounds idle
        // accumulation (at most one extra closely-spaced flit after idle).
        {
            let c = &mut self.chans[cidx];
            let elapsed = (now - c.tokens_at) as i64;
            c.tokens = (c.tokens + gain * elapsed).min(cost + gain - 1);
            c.tokens_at = now;
        }
        let in_wire = self.chans[cidx].from_router;
        let out_wire = self.chans[cidx].torus_out;
        let crosses = self.chans[cidx].crosses_dateline;
        if self.wire_occupied[in_wire] == 0 {
            return;
        }
        if self.link_down_now(cidx) {
            self.absorb_at_down_serializer(cidx, in_wire);
            return;
        }
        if self.chans[cidx].tokens < cost {
            if self.stall.is_some() {
                // Ready heads wait out the token-bucket refill.
                self.note_stall_all_ready(in_wire, StallCause::SerializerBusy);
            }
            // Sleep until the bucket refills.
            let deficit = cost - self.chans[cidx].tokens;
            let refill = (deficit + gain - 1) / gain;
            self.wake(CompRef::Chan(cidx as u32), now + refill as u64);
            return;
        }
        // Gather the requesting VC set as a bitmask — heads that are ready
        // and whose post-dateline torus VC has credits — then let the
        // serializer's VC arbiter pick branchlessly from the mask (with
        // inverse weights installed, this is an EoS arbitration point).
        // The torus-lane index is computed once per head and cached in its
        // gate record (`0xFE` marker; packet VC state is stable while the
        // head is parked), so blocked heads re-gate without slab loads.
        let mut req: u64 = 0;
        let mut occ = self.wire_occupied[in_wire];
        while occ != 0 {
            let v = occ.trailing_zeros() as u8;
            occ &= occ - 1;
            let m = self.wire_gate[(in_wire << self.vc_shift) + v as usize];
            if u64::from(m.ready) > now {
                continue;
            }
            let vcidx = if m.rc_port == 0xFF {
                let st = self
                    .packets
                    .get(self.wire_heads[(in_wire << self.vc_shift) + v as usize].pkt);
                // VC on the torus link after a possible dateline promotion.
                let mut vc_after = st.vc;
                let tvc = vc_after.torus_hop(crosses);
                let vcidx = self.vc_index_of(out_wire, st.packet.class, tvc);
                let g = &mut self.wire_gate[(in_wire << self.vc_shift) + v as usize];
                g.rc_port = 0xFE;
                g.rc_vcidx = vcidx;
                vcidx
            } else {
                m.rc_vcidx
            };
            if !self.wire_can_send(out_wire, vcidx, m.flits) {
                if self.stall.is_some() {
                    let cause = if self.wires[out_wire].shim_backlog() > 0 {
                        StallCause::RetransmitBacklog
                    } else {
                        StallCause::NoCredit
                    };
                    self.note_stall(in_wire, v, cause, Some(out_wire));
                }
                continue;
            }
            req |= 1 << v;
        }
        if req == 0 {
            return;
        }
        let v = {
            let base = in_wire << self.vc_shift;
            let gate = &self.wire_gate[base..];
            let heads = &self.wire_heads[base..];
            self.chans[cidx]
                .out_arbiter
                .pick_mask(req, |i| gate[i as usize].pattern, |i| heads[i as usize].age)
                .expect("nonempty requests yield a grant") as u8
        };
        if self.params.collect_grants {
            self.grants.serializer += 1;
        }
        if self.stall.is_some() {
            // VCs that requested but lost the serializer grant.
            let mut losers = req & !(1 << v);
            while losers != 0 {
                let l = losers.trailing_zeros() as u8;
                losers &= losers - 1;
                self.note_stall(in_wire, l, StallCause::SerializerBusy, None);
            }
        }
        // Re-derive the winner's target lane from its head entry: the
        // packet-state lookups above were gates only, so the per-loser
        // entry/target staging is gone.
        let mut entry = self.wire_heads[(in_wire << self.vc_shift) + v as usize];
        // The stamped route context describes the chip being left; the next
        // chip's channel adapter re-stamps on mesh entry.
        entry.target = 0xFF;
        entry.meta = 0;
        let pid = entry.pkt;
        let flits = entry.flits;
        let (vcidx, vc_after) = {
            let st = self.packets.get(pid);
            let mut vc_after = st.vc;
            let tvc = vc_after.torus_hop(crosses);
            (self.vc_index_of(out_wire, st.packet.class, tvc), vc_after)
        };
        if self.recorder.is_some() {
            self.record_event(
                out_wire as u32,
                Some(u64::from(pid.0)),
                TraceEventKind::Grant {
                    site: GrantSite::Serializer,
                    requests: req.count_ones() as u8,
                    winner: v,
                },
            );
        }
        self.pop_wire(in_wire, v);
        {
            let dir = self.chans[cidx].chan.dir;
            let next_node = {
                let shape = &self.cfg.shape;
                shape.id(shape.neighbor(shape.coord(self.chans[cidx].node), dir))
            };
            let st = self.packets.get_mut(pid);
            let from_tvc = st.vc.vc_for(LinkGroup::T).0;
            let to_tvc = vc_after.vc_for(LinkGroup::T).0;
            st.vc = vc_after;
            st.torus_hops += 1;
            st.arrived_via = Some(dir);
            match &mut st.route {
                RouteProgress::Unicast { spec, .. } => {
                    spec.take_hop(dir);
                }
                RouteProgress::Table { cur, .. } => *cur = next_node,
                _ => {}
            }
            if crosses && from_tvc != to_tvc {
                self.record_event(
                    out_wire as u32,
                    Some(u64::from(pid.0)),
                    TraceEventKind::VcPromotion {
                        from: from_tvc,
                        to: to_tvc,
                    },
                );
            }
        }
        self.send_entry(out_wire, entry, vcidx);
        self.chans[cidx].tokens -= cost * i64::from(flits);
        // More traffic may be waiting: wake at the next refill.
        let deficit = (cost - self.chans[cidx].tokens).max(gain);
        let refill = (deficit + gain - 1) / gain;
        self.wake(CompRef::Chan(cidx as u32), now + refill as u64);
    }

    // ----- multicast ---------------------------------------------------------

    fn mc_entry(
        &self,
        node: NodeId,
        group: McGroupId,
        tree: u8,
    ) -> &anton_core::multicast::McEntry {
        self.mc_groups
            .get(group.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("unknown multicast group {group}"))
            .trees
            .get(tree as usize)
            .unwrap_or_else(|| panic!("multicast group {group} has no tree {tree}"))
            .entry(node)
            .unwrap_or_else(|| panic!("multicast {group} tree {tree} has no entry at {node}"))
    }

    fn mc_fanout(&self, node: NodeId, group: McGroupId, tree: u8) -> usize {
        let e = self.mc_entry(node, group, tree);
        e.forward.len() + e.local.len()
    }

    /// Creates the multicast copies for `group`/`tree` at `node`.
    ///
    /// `arrival` is `None` at the source endpoint, or the arriving direction
    /// plus inherited state for copies spawned mid-tree. Mid-tree copies
    /// keep the arriving T-phase VC for the entry link; turns and local
    /// deliveries stage their promoted state via `pending_vc`.
    fn expand_multicast_at(
        &mut self,
        node: NodeId,
        group: McGroupId,
        tree: u8,
        arrival: Option<(TorusDir, VcState, u16)>,
        pkt: &Packet,
        injected_at: u64,
    ) -> Vec<PacketId> {
        let entry = self.mc_entry(node, group, tree).clone();
        let slice = self.mc_groups[group.0 as usize]
            .as_ref()
            .expect("group checked by mc_entry")
            .trees[tree as usize]
            .slice;
        let mut out = Vec::with_capacity(entry.forward.len() + entry.local.len());
        let (arrived_via, base_vc, torus_hops) = match arrival {
            Some((dir, vc, hops)) => (Some(dir), vc, hops),
            None => (None, self.cfg.vc_policy.start(), 0),
        };
        for dir in &entry.forward {
            let (vc, pending_vc) = match arrived_via {
                Some(a) if a.dim == dir.dim => {
                    debug_assert_eq!(a, *dir, "tree chains never reverse direction");
                    (base_vc, None)
                }
                Some(_) => {
                    let mut promoted = base_vc;
                    promoted.end_dim();
                    promoted.begin_dim();
                    (base_vc, Some(promoted))
                }
                None => {
                    // Source fanout: begin the dimension immediately (the
                    // injection link's M VC is unaffected).
                    let mut vc = base_vc;
                    vc.begin_dim();
                    (vc, None)
                }
            };
            out.push(self.packets.insert(PacketState {
                packet: *pkt,
                route: RouteProgress::McExit {
                    group,
                    tree,
                    dir: *dir,
                    slice,
                },
                vc,
                pending_vc,
                arrived_via,
                injected_at,
                torus_hops,
                rerouted: false,
                flits: pkt.num_flits() as u8,
                route_log: self.record_routes.then(Vec::new),
            }));
        }
        for ep in &entry.local {
            let (vc, pending_vc) = if arrived_via.is_some() {
                let mut promoted = base_vc;
                promoted.end_dim();
                (base_vc, Some(promoted))
            } else {
                (base_vc, None)
            };
            out.push(self.packets.insert(PacketState {
                packet: *pkt,
                route: RouteProgress::McDeliver { group, ep: *ep },
                vc,
                pending_vc,
                arrived_via,
                injected_at,
                torus_hops,
                rerouted: false,
                flits: pkt.num_flits() as u8,
                route_log: self.record_routes.then(Vec::new),
            }));
        }
        out
    }

    // ----- routers -----------------------------------------------------------

    fn router_step(&mut self, ridx: usize) {
        let now = self.now;
        let nports = self.routers[ridx].ports.len();
        #[derive(Clone, Copy)]
        struct Cand {
            vcidx: u8,
            pid: PacketId,
            out_port: usize,
            out_vcidx: u8,
            flits: u8,
            class: u8,
            pattern: u8,
            target: u8,
            meta: u8,
            age: u64,
        }
        let mut cands: [Option<Cand>; MAX_ROUTER_PORTS] = [None; MAX_ROUTER_PORTS];
        // SA2 request bitsets, built once during the SA1 pass: bit `inp` of
        // `out_req[out]` is set when input port `inp`'s SA1 winner wants
        // output `out`. `outs` tracks the non-empty outputs so SA2 walks
        // exactly the contested ports instead of rescanning candidates
        // per output.
        let mut out_req = [0u64; MAX_ROUTER_PORTS];
        let mut outs: u32 = 0;
        let rbase = ridx * MAX_ROUTER_PORTS;
        for (inp, cand) in cands.iter_mut().enumerate().take(nports) {
            let in_wire = self.router_in_wire[rbase + inp] as usize;
            let occupied = self.wire_occupied[in_wire];
            if occupied == 0 {
                continue;
            }
            // SA1: gather the VCs whose heads can proceed into a request
            // bitmask, then let the input port's VC arbiter pick from it
            // (inverse-weighted when programmed). The gates read only the
            // packed gate records; the winner's full entry is loaded after
            // the grant.
            let mut req: u64 = 0;
            let mut occ = occupied;
            while occ != 0 {
                let v = occ.trailing_zeros() as u8;
                occ &= occ - 1;
                let m = self.wire_gate[(in_wire << self.vc_shift) + v as usize];
                if u64::from(m.ready) > now {
                    continue;
                }
                let (out_port, out_vcidx, flits) = if m.rc_port == 0xFF {
                    // Route computation: once per packet per router, cached
                    // in the head's gating metadata. Stamped entries route
                    // from their sender-provided context — no packet-slab
                    // load in the hot path.
                    let e = self.wire_heads[(in_wire << self.vc_shift) + v as usize];
                    let (out_port, out_vc) = if e.target != 0xFF {
                        let r = self.route_output_stamped(ridx, e.target, e.meta);
                        debug_assert_eq!(
                            r,
                            self.route_output(ridx, e.pkt),
                            "stamped route context diverged from slab route"
                        );
                        r
                    } else {
                        self.route_output(ridx, e.pkt)
                    };
                    let out_wire = self.router_out_wire[rbase + out_port] as usize;
                    let class = if e.class == 0 {
                        anton_core::vc::TrafficClass::Request
                    } else {
                        anton_core::vc::TrafficClass::Reply
                    };
                    let rc_vcidx = self.vc_index_of(out_wire, class, out_vc);
                    let mm = &mut self.wire_gate[(in_wire << self.vc_shift) + v as usize];
                    mm.rc_port = out_port as u8;
                    mm.rc_vcidx = rc_vcidx;
                    (out_port, rc_vcidx, e.flits)
                } else {
                    (m.rc_port as usize, m.rc_vcidx, m.flits)
                };
                if self.router_out_busy[rbase + out_port] > now {
                    self.note_stall(in_wire, v, StallCause::OutputBusy, None);
                    continue;
                }
                let out_wire = self.router_out_wire[rbase + out_port] as usize;
                if !self.wire_can_send(out_wire, out_vcidx, flits) {
                    if self.stall.is_some() {
                        let cause = if self.wires[out_wire].shim_backlog() > 0 {
                            StallCause::RetransmitBacklog
                        } else {
                            StallCause::NoCredit
                        };
                        self.note_stall(in_wire, v, cause, Some(out_wire));
                    }
                    continue;
                }
                req |= 1 << v;
            }
            if req == 0 {
                continue;
            }
            // A sole candidate bypasses the arbiter (state untouched),
            // matching the reference model's "no contest, no pick" rule.
            let v = if req & (req - 1) == 0 {
                req.trailing_zeros()
            } else {
                let base = in_wire << self.vc_shift;
                let gate = &self.wire_gate[base..];
                let heads = &self.wire_heads[base..];
                self.router_in_arb[rbase + inp]
                    .pick_mask(req, |i| gate[i as usize].pattern, |i| heads[i as usize].age)
                    .expect("nonempty requests yield a grant")
            };
            if self.params.collect_grants {
                self.grants.sa1 += 1;
            }
            if self.stall.is_some() {
                // VCs that requested but lost the input port's SA1 grant.
                let mut losers = req & !(1 << v);
                while losers != 0 {
                    let l = losers.trailing_zeros() as u8;
                    losers &= losers - 1;
                    self.note_stall(in_wire, l, StallCause::LostSa1, None);
                }
            }
            // Rebuild the winner's candidate from the head mirrors (the rc
            // cache above guarantees the route fields are populated).
            let m = self.wire_gate[(in_wire << self.vc_shift) + v as usize];
            let e = &self.wire_heads[(in_wire << self.vc_shift) + v as usize];
            let c = Cand {
                vcidx: v as u8,
                pid: e.pkt,
                out_port: m.rc_port as usize,
                out_vcidx: m.rc_vcidx,
                flits: m.flits,
                class: e.class,
                pattern: m.pattern,
                target: e.target,
                meta: e.meta,
                age: e.age,
            };
            out_req[c.out_port] |= 1 << inp;
            outs |= 1 << c.out_port;
            *cand = Some(c);
            if self.recorder.is_some() {
                self.record_event(
                    in_wire as u32,
                    Some(u64::from(c.pid.0)),
                    TraceEventKind::Grant {
                        site: GrantSite::Sa1,
                        requests: req.count_ones() as u8,
                        winner: c.vcidx,
                    },
                );
            }
        }
        // SA2: walk the contested outputs in ascending order (as the old
        // per-output scan did) and grant one input each from its request
        // bitset. Unlike SA1, the output arbiter always commits — even an
        // uncontested request advances its state.
        while outs != 0 {
            let out = outs.trailing_zeros() as usize;
            outs &= outs - 1;
            let req = out_req[out];
            let inp = {
                let cands_ref = &cands;
                self.router_out_arb[rbase + out]
                    .pick_mask(
                        req,
                        |i| {
                            cands_ref[i as usize]
                                .expect("requesting input has a cand")
                                .pattern
                        },
                        |i| {
                            cands_ref[i as usize]
                                .expect("requesting input has a cand")
                                .age
                        },
                    )
                    .expect("nonempty requests yield a grant") as usize
            };
            if self.params.collect_grants {
                self.grants.output += 1;
            }
            if self.stall.is_some() {
                // Input ports whose SA1 winner lost this output's SA2 grant.
                let mut losers = req & !(1 << inp);
                while losers != 0 {
                    let l = losers.trailing_zeros() as usize;
                    losers &= losers - 1;
                    let lc = cands[l].expect("requesting input has a cand");
                    let lw = self.router_in_wire[rbase + l] as usize;
                    self.note_stall(lw, lc.vcidx, StallCause::LostSa2, None);
                }
            }
            let cand = cands[inp].expect("winner came from candidates");
            let in_wire = self.router_in_wire[rbase + inp] as usize;
            let out_wire = self.router_out_wire[rbase + out] as usize;
            if self.recorder.is_some() {
                self.record_event(
                    out_wire as u32,
                    Some(u64::from(cand.pid.0)),
                    TraceEventKind::Grant {
                        site: GrantSite::Output,
                        requests: req.count_ones() as u8,
                        winner: inp as u8,
                    },
                );
            }
            self.pop_wire(in_wire, cand.vcidx);
            self.send_entry(
                out_wire,
                BufEntry {
                    pkt: cand.pid,
                    ready_at: 0,
                    flits: cand.flits,
                    class: cand.class,
                    pattern: cand.pattern,
                    rc_port: 0xFF,
                    rc_vcidx: 0,
                    target: cand.target,
                    meta: cand.meta,
                    age: cand.age,
                },
                cand.out_vcidx,
            );
            self.router_out_busy[rbase + out] = now + u64::from(cand.flits);
            // The old deadline wake covered both following cycles; with
            // exact-cycle wakes both must be scheduled (other ports may act
            // at `now + 1` while this one is still busy).
            self.wake(CompRef::Router(ridx as u32), now + 1);
            self.wake(CompRef::Router(ridx as u32), now + 2);
            if self.params.track_energy {
                self.record_energy(ridx, out, cand.pid, cand.flits);
            }
        }
    }

    fn record_energy(&mut self, ridx: usize, out: usize, pid: PacketId, flits: u8) {
        let now = self.now;
        let st = self.packets.get(pid);
        let mut words = Vec::with_capacity(flits as usize);
        for j in 0..flits as usize {
            words.push(st.packet.flit_words(j));
        }
        let r = &mut self.routers[ridx];
        let pe = &mut r.port_energy[out];
        // A transfer starting exactly when the previous one ended is
        // back-to-back (no idle cycle): not an activation. The per-set-bit
        // energy of the Section 4.5 model is an *activation* energy, so the
        // activating flit's payload bits are recorded with the activation.
        if now > pe.idle_from {
            r.energy.activations += 1;
            r.energy.set_bits += u64::from(words[0][1].count_ones() + words[0][2].count_ones());
        }
        for w in &words {
            r.energy.flits += 1;
            r.energy.flips += u64::from(anton_core::packet::flit_hamming(&pe.last_words, w));
            pe.last_words = *w;
        }
        pe.idle_from = now + u64::from(flits);
    }
}
