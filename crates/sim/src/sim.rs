//! The cycle-driven simulator core.
//!
//! Builds the full unified network — every router, endpoint adapter, channel
//! adapter, on-chip wire, and external torus channel of the configured
//! machine — and advances it cycle by cycle. Routers implement the four-stage
//! pipeline (RC, VA, SA1, SA2) with virtual cut-through flow control and
//! pluggable output arbiters; channel adapters serialize flits onto the
//! torus at the effective link bandwidth and host the multicast replication
//! tables; endpoint adapters implement counted-write synchronization.
//!
//! Modelling notes (see DESIGN.md): packets are at most two flits and are
//! switched whole (store-and-forward for the rare two-flit packet), and the
//! incremental route computation is cross-checked against the reference
//! tracer of `anton-core` in tests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use anton_arbiter::{
    AgeArbiter, ArbRequest, ArbiterKind, FixedPriorityArbiter, InverseWeightedArbiter, PortArbiter,
    RoundRobinArbiter,
};
use anton_core::chip::{
    ChanId, LinkGroup, LocalAttach, LocalEndpointId, LocalLink, MeshCoord, MAX_ROUTER_PORTS,
    NUM_CHAN_ADAPTERS, NUM_ROUTERS,
};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{McGroup, McGroupId};
use anton_core::packet::{CounterId, Destination, Packet};
use anton_core::routing::RouteSpec;
use anton_core::topology::{Dim, NodeId, TorusDir};
use anton_core::trace::GlobalLink;
use anton_core::vc::{Vc, VcPolicy, VcState};

use crate::params::{
    SimParams, ADAPTER_PIPELINE, ROUTER_PIPELINE, TORUS_TOKEN_COST, TORUS_TOKEN_GAIN,
};
use crate::state::{PacketId, PacketSlab, PacketState, RouteProgress};
use crate::wire::{BufEntry, Wire};

/// Maximum multicast copies queued at one replication point.
const REPL_CAP: usize = 32;

/// Per-phase nanosecond accumulators, active when the `ANTON_SIM_PROFILE`
/// environment variable is set: wires, endpoints-inject, adapters, routers,
/// endpoints-recv.
pub static PHASE_NS: [std::sync::atomic::AtomicU64; 5] = [
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
    std::sync::atomic::AtomicU64::new(0),
];

type WireId = usize;

#[derive(Debug)]
struct RouterPort {
    attach: LocalAttach,
    in_wire: WireId,
    out_wire: WireId,
}

/// Activity counters for the energy model (Section 4.5), per router.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounters {
    /// Flits traversed.
    pub flits: u64,
    /// Datapath bit flips between successive valid flits.
    pub flips: u64,
    /// Idle→valid activation events.
    pub activations: u64,
    /// Set payload bits of activating flits (the model's per-set-bit term
    /// is activation energy).
    pub set_bits: u64,
}

impl EnergyCounters {
    /// Adds another counter set.
    pub fn add(&mut self, other: &EnergyCounters) {
        self.flits += other.flits;
        self.flips += other.flips;
        self.activations += other.activations;
        self.set_bits += other.set_bits;
    }

    /// Energy in picojoules under the given coefficients.
    pub fn energy_pj(&self, p: &crate::params::EnergyParams) -> f64 {
        self.flits as f64 * p.fixed_pj
            + self.flips as f64 * p.per_flip_pj
            + self.activations as f64 * p.activation_pj
            + self.set_bits as f64 * p.per_set_bit_pj
    }
}

#[derive(Debug, Clone, Copy)]
struct PortEnergy {
    last_words: [u64; 3],
    /// First cycle at which the port is idle after its last transfer.
    idle_from: u64,
}

struct RouterState {
    node: NodeId,
    mesh: MeshCoord,
    ports: Vec<RouterPort>,
    arbiters: Vec<Box<dyn PortArbiter>>,
    /// SA1 VC arbiters, one per input port (inputs = VC indices).
    in_arbiters: Vec<Box<dyn PortArbiter>>,
    out_busy_until: Vec<u64>,
    port_energy: Vec<PortEnergy>,
    energy: EnergyCounters,
}

impl std::fmt::Debug for RouterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterState")
            .field("node", &self.node)
            .field("mesh", &self.mesh)
            .field("ports", &self.ports.len())
            .finish()
    }
}

struct ChanState {
    node: NodeId,
    chan: ChanId,
    /// Wire from the router into this adapter (outbound direction).
    from_router: WireId,
    /// Wire from this adapter into the router (inbound direction).
    to_router: WireId,
    /// Torus wire this adapter transmits on.
    torus_out: WireId,
    /// Torus wire this adapter receives on.
    torus_in: WireId,
    /// Serializer token bucket (gains [`TORUS_TOKEN_GAIN`]/cycle, a flit
    /// costs [`TORUS_TOKEN_COST`]); accrued lazily since `tokens_at`.
    tokens: i64,
    /// Cycle at which `tokens` was last brought up to date.
    tokens_at: u64,
    /// Whether the outgoing torus hop crosses its dimension's dateline — a
    /// static property of the link (Section 2.5).
    crosses_dateline: bool,
    /// Multicast copies awaiting on-chip injection.
    repl: VecDeque<PacketId>,
    /// VC arbiter of the outbound serializer (per Section 3, every
    /// arbitration point can be inverse-weighted).
    out_arbiter: Box<dyn PortArbiter>,
    rr_vc_in: u8,
    to_router_busy_until: u64,
}

impl std::fmt::Debug for ChanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChanState")
            .field("node", &self.node)
            .field("chan", &self.chan)
            .finish()
    }
}

#[derive(Debug)]
struct EpState {
    node: NodeId,
    ep: LocalEndpointId,
    to_router: WireId,
    from_router: WireId,
    inject: VecDeque<InjectCmd>,
    repl: VecDeque<PacketId>,
    counters: HashMap<u16, u32>,
    busy_until: u64,
}

/// A queued injection: routing is either randomized (the normal oblivious
/// policy) or fixed to an explicit route spec (tests and controlled
/// experiments).
#[derive(Debug, Clone, Copy)]
enum InjectCmd {
    Auto(Packet),
    WithSpec(Packet, RouteSpec),
}

impl InjectCmd {
    fn packet(&self) -> &Packet {
        match self {
            InjectCmd::Auto(p) | InjectCmd::WithSpec(p, _) => p,
        }
    }
}

/// A completed network-level event reported to the driver.
#[derive(Debug, Clone)]
pub enum Delivery {
    /// A packet (or multicast copy) arrived at an endpoint.
    Packet(PacketDelivery),
    /// A counted-write counter hit zero and the software handler fired.
    Handler {
        /// Endpoint whose handler fired.
        ep: GlobalEndpoint,
        /// The counter that completed.
        counter: CounterId,
    },
}

/// Details of one delivered packet.
#[derive(Debug, Clone)]
pub struct PacketDelivery {
    /// Injecting endpoint.
    pub src: GlobalEndpoint,
    /// Receiving endpoint.
    pub dst: GlobalEndpoint,
    /// Traffic-pattern tag.
    pub pattern: u8,
    /// Counter the packet decremented, if any.
    pub counter: Option<CounterId>,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Cycle the last flit reached the endpoint adapter.
    pub delivered_at: u64,
    /// Inter-node hops taken.
    pub torus_hops: u16,
    /// Link-level route (when route recording is enabled).
    pub route_log: Option<Vec<(GlobalLink, Vc)>>,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Packets injected into the network (multicast counts once).
    pub injected_packets: u64,
    /// Packet deliveries (multicast copies count individually).
    pub delivered_packets: u64,
    /// Per-endpoint delivery counts (indexed by dense endpoint index).
    pub recv_per_endpoint: Vec<u64>,
    /// Total flit·link traversals.
    pub flit_hops: u64,
    /// Flits that crossed external torus channels.
    pub torus_flits: u64,
    /// Cycle of the most recent delivery.
    pub last_delivery_cycle: u64,
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The driver reported completion.
    Completed,
    /// The watchdog detected a deadlock (no movement with packets live).
    Deadlocked,
    /// The cycle budget expired first.
    TimedOut,
}

/// One stalled head packet in a [`DeadlockReport`].
#[derive(Debug, Clone)]
pub struct StalledVc {
    /// Wire whose receive buffer holds the packet.
    pub link: GlobalLink,
    /// Flattened VC index on that wire.
    pub vc_index: u8,
    /// Slab id of the stalled head packet.
    pub packet: PacketId,
    /// Flits the packet occupies.
    pub flits: u8,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Human-readable routing progress ("where was this packet going").
    pub route: String,
}

/// Structured diagnostic captured when the forward-progress watchdog trips:
/// instead of hanging, the simulator records which VCs hold stalled head
/// packets, where each was headed, and what the lossy link layer is still
/// holding.
#[derive(Debug, Clone, Default)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Packets still live in the network.
    pub live_packets: usize,
    /// Consecutive cycles without flit movement before the trip.
    pub idle_cycles: u64,
    /// Head packets of occupied VC buffers (capped; see `truncated`).
    pub stalled: Vec<StalledVc>,
    /// Occupied VC buffers beyond the report cap.
    pub truncated: usize,
    /// Flits stuck inside lossy-link shims, per torus wire.
    pub shim_backlogs: Vec<(GlobalLink, u64)>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock watchdog tripped at cycle {}: {} packets live after \
             {} cycles without movement",
            self.cycle, self.live_packets, self.idle_cycles
        )?;
        for s in &self.stalled {
            writeln!(
                f,
                "  stalled {} vc{}: pkt{} ({} flits, injected @{}) {}",
                s.link, s.vc_index, s.packet.0, s.flits, s.injected_at, s.route
            )?;
        }
        if self.truncated > 0 {
            writeln!(f, "  ... and {} more occupied VCs", self.truncated)?;
        }
        for (link, flits) in &self.shim_backlogs {
            writeln!(f, "  link layer {link}: {flits} flits undelivered")?;
        }
        Ok(())
    }
}

/// A workload driving the simulator: injects packets and consumes
/// deliveries.
pub trait Driver {
    /// Called before each cycle; inject here.
    fn pre_cycle(&mut self, sim: &mut Sim);

    /// Called for every delivery of the elapsed cycle.
    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery);

    /// Whether the workload is complete.
    fn done(&self, sim: &Sim) -> bool;
}

/// What sits at the end of a wire, for event wakeups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompRef {
    Router(u32),
    Chan(u32),
    Ep(u32),
}

/// The cycle-driven simulator of one Anton 2 machine.
pub struct Sim {
    /// Machine configuration the simulator was built from.
    pub cfg: MachineConfig,
    /// Simulation parameters.
    pub params: SimParams,
    /// Record per-packet link-level routes into deliveries.
    pub record_routes: bool,
    now: u64,
    rng: StdRng,
    wires: Vec<Wire>,
    /// Component consuming each wire's arrivals.
    wire_consumer: Vec<CompRef>,
    /// Component receiving each wire's credit returns.
    wire_producer: Vec<CompRef>,
    /// Wires with flits or credits in flight.
    active_wires: Vec<u32>,
    wire_active: Vec<bool>,
    /// Per-component wake deadlines: the component is processed every cycle
    /// `now <= dirty_until`.
    dirty_router: Vec<u64>,
    dirty_chan: Vec<u64>,
    dirty_ep: Vec<u64>,
    routers: Vec<RouterState>,
    chans: Vec<ChanState>,
    eps: Vec<EpState>,
    packets: PacketSlab,
    mc_groups: HashMap<McGroupId, McGroup>,
    handler_heap: BinaryHeap<Reverse<(u64, u32, u16)>>,
    deliveries: Vec<Delivery>,
    stats: SimStats,
    grants: crate::metrics::ArbiterGrantCounts,
    moved: bool,
    idle_cycles: u64,
    deadlocked: bool,
    deadlock_report: Option<Box<DeadlockReport>>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("shape", &self.cfg.shape)
            .field("now", &self.now)
            .field("live_packets", &self.packets.live())
            .finish()
    }
}

impl Sim {
    /// Builds the simulator for a machine configuration.
    pub fn new(cfg: MachineConfig, params: SimParams) -> Sim {
        let nodes = cfg.shape.num_nodes();
        let eps_per_node = cfg.endpoints_per_node();
        let policy = cfg.vc_policy;
        let depth = params.buffer_depth;
        let torus_latency = params.latency.torus_link_cycles().max(1);
        let mut wires: Vec<Wire> = Vec::new();
        let mut routers: Vec<RouterState> = Vec::new();
        let mut chans: Vec<ChanState> = Vec::with_capacity(nodes * NUM_CHAN_ADAPTERS);
        let mut eps: Vec<EpState> = Vec::with_capacity(nodes * eps_per_node);

        // Wire lookup tables filled in the first pass.
        let mut mesh_wire: HashMap<(u32, MeshCoord, anton_core::chip::MeshDir), WireId> =
            HashMap::new();
        let mut skip_wire: HashMap<(u32, MeshCoord), WireId> = HashMap::new();
        let mut chan_wires: HashMap<(u32, usize), (WireId, WireId)> = HashMap::new(); // (to adapter, to router)
        let mut ep_wires: HashMap<(u32, u8), (WireId, WireId)> = HashMap::new();

        let torus_depth = params.torus_buffer_depth;
        let add_wire = move |wires: &mut Vec<Wire>, label: GlobalLink, latency, rx, group| {
            let vcs = policy.num_vcs(group);
            let d = if matches!(label, GlobalLink::Torus { .. }) {
                torus_depth
            } else {
                depth
            };
            wires.push(Wire::new(label, latency, rx, vcs, d));
            wires.len() - 1
        };

        // Pass 1: create all wires.
        for n in 0..nodes as u32 {
            let node = NodeId(n);
            for r in MeshCoord::all() {
                for attach in cfg.chip.router_ports(r) {
                    match attach {
                        LocalAttach::Mesh(d) => {
                            let label = GlobalLink::Local {
                                node,
                                link: LocalLink::Mesh { from: r, dir: d },
                            };
                            let w =
                                add_wire(&mut wires, label, 1, ROUTER_PIPELINE - 1, LinkGroup::M);
                            mesh_wire.insert((n, r, d), w);
                        }
                        LocalAttach::Skip => {
                            let label = GlobalLink::Local {
                                node,
                                link: LocalLink::Skip { from: r },
                            };
                            let w =
                                add_wire(&mut wires, label, 1, ROUTER_PIPELINE - 1, LinkGroup::T);
                            skip_wire.insert((n, r), w);
                        }
                        LocalAttach::Chan(c) => {
                            let to_adapter = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::RouterToChan(c),
                                },
                                1,
                                ADAPTER_PIPELINE - 1,
                                LinkGroup::T,
                            );
                            let to_router = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::ChanToRouter(c),
                                },
                                1,
                                ROUTER_PIPELINE - 1,
                                LinkGroup::T,
                            );
                            chan_wires.insert((n, c.index()), (to_adapter, to_router));
                        }
                        LocalAttach::Endpoint(e) => {
                            let to_ep = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::RouterToEp(e),
                                },
                                1,
                                0,
                                LinkGroup::M,
                            );
                            let to_router = add_wire(
                                &mut wires,
                                GlobalLink::Local {
                                    node,
                                    link: LocalLink::EpToRouter(e),
                                },
                                1,
                                ROUTER_PIPELINE - 1,
                                LinkGroup::M,
                            );
                            ep_wires.insert((n, e.0), (to_ep, to_router));
                        }
                    }
                }
            }
        }
        // Torus wires.
        let mut torus_wire: HashMap<(u32, usize), WireId> = HashMap::new(); // keyed by departing adapter
        for n in 0..nodes as u32 {
            let node = NodeId(n);
            for c in ChanId::all() {
                let label = GlobalLink::Torus {
                    from: node,
                    dir: c.dir,
                    slice: c.slice,
                };
                let w = add_wire(
                    &mut wires,
                    label,
                    torus_latency,
                    ADAPTER_PIPELINE - 1,
                    LinkGroup::T,
                );
                torus_wire.insert((n, c.index()), w);
            }
        }
        // With a fault schedule, every external torus channel routes its
        // flits through a lossy go-back-N link shim. Each link gets an
        // independent RNG stream derived from the schedule seed and the
        // link's dense index, so fault decisions are reproducible and
        // independent of wire construction order.
        if let Some(schedule) = &params.fault {
            for (&(n, cidx), &w) in &torus_wire {
                let node = NodeId(n);
                let chan = ChanId::from_index(cidx);
                let profile = schedule.profile(node, chan);
                let seed = schedule.link_seed(cfg.torus_link_index(node, chan));
                wires[w].install_shim(anton_fault::LinkShim::new(
                    torus_latency,
                    schedule.gbn,
                    profile.ber,
                    profile.downs,
                    seed,
                ));
            }
        }

        // Pass 2: create components.
        for n in 0..nodes as u32 {
            let node = NodeId(n);
            let node_coord = cfg.shape.coord(node);
            for r in MeshCoord::all() {
                let attaches = cfg.chip.router_ports(r);
                let mut ports = Vec::with_capacity(attaches.len());
                for attach in &attaches {
                    let (in_wire, out_wire) = match *attach {
                        LocalAttach::Mesh(d) => {
                            let nbr = r.step(d).expect("mesh port has neighbor");
                            (mesh_wire[&(n, nbr, d.opposite())], mesh_wire[&(n, r, d)])
                        }
                        LocalAttach::Skip => {
                            let partner = cfg.chip.skip_partner(r).expect("skip port has partner");
                            (skip_wire[&(n, partner)], skip_wire[&(n, r)])
                        }
                        LocalAttach::Chan(c) => {
                            let (to_adapter, to_router) = chan_wires[&(n, c.index())];
                            (to_router, to_adapter)
                        }
                        LocalAttach::Endpoint(e) => {
                            let (to_ep, to_router) = ep_wires[&(n, e.0)];
                            (to_router, to_ep)
                        }
                    };
                    ports.push(RouterPort {
                        attach: *attach,
                        in_wire,
                        out_wire,
                    });
                }
                let nports = ports.len();
                let arbiters: Vec<Box<dyn PortArbiter>> = (0..nports)
                    .map(|_| Self::make_arbiter(&params.arbiter, nports))
                    .collect();
                let in_arbiters: Vec<Box<dyn PortArbiter>> = ports
                    .iter()
                    .map(|p| {
                        Box::new(RoundRobinArbiter::new(wires[p.in_wire].num_vcs()))
                            as Box<dyn PortArbiter>
                    })
                    .collect();
                routers.push(RouterState {
                    node,
                    mesh: r,
                    ports,
                    arbiters,
                    in_arbiters,
                    out_busy_until: vec![0; nports],
                    port_energy: vec![
                        PortEnergy {
                            last_words: [0; 3],
                            idle_from: 0
                        };
                        nports
                    ],
                    energy: EnergyCounters::default(),
                });
            }
            for c in ChanId::all() {
                let (from_router, to_router) = chan_wires[&(n, c.index())];
                // The wire we receive on departs from our neighbor in
                // direction c.dir, labeled with the opposite direction.
                let nbr = cfg.shape.neighbor(node_coord, c.dir);
                let nbr_id = cfg.shape.id(nbr);
                let arriving_from = torus_wire[&(
                    nbr_id.0,
                    ChanId {
                        dir: c.dir.opposite(),
                        slice: c.slice,
                    }
                    .index(),
                )];
                chans.push(ChanState {
                    node,
                    chan: c,
                    from_router,
                    to_router,
                    torus_out: torus_wire[&(n, c.index())],
                    torus_in: arriving_from,
                    tokens: i64::from(TORUS_TOKEN_COST),
                    tokens_at: 0,
                    crosses_dateline: cfg.shape.hop_crosses_dateline(node_coord, c.dir),
                    repl: VecDeque::new(),
                    out_arbiter: Box::new(RoundRobinArbiter::new(
                        2 * policy.num_vcs(LinkGroup::T) as usize,
                    )),
                    rr_vc_in: 0,
                    to_router_busy_until: 0,
                });
            }
            for e in cfg.chip.endpoints() {
                let (from_router, to_router) = ep_wires[&(n, e.0)];
                eps.push(EpState {
                    node,
                    ep: e,
                    to_router,
                    from_router,
                    inject: VecDeque::new(),
                    repl: VecDeque::new(),
                    counters: HashMap::new(),
                    busy_until: 0,
                });
            }
        }

        let num_eps = eps.len();
        if params.collect_metrics {
            for w in &mut wires {
                w.enable_occupancy_tracking();
            }
        }
        // Wire endpoint tables for event wakeups.
        let mut wire_consumer = vec![CompRef::Ep(0); wires.len()];
        let mut wire_producer = vec![CompRef::Ep(0); wires.len()];
        for (ridx, r) in routers.iter().enumerate() {
            for p in &r.ports {
                wire_consumer[p.in_wire] = CompRef::Router(ridx as u32);
                wire_producer[p.out_wire] = CompRef::Router(ridx as u32);
            }
        }
        for (cidx, c) in chans.iter().enumerate() {
            wire_consumer[c.from_router] = CompRef::Chan(cidx as u32);
            wire_producer[c.to_router] = CompRef::Chan(cidx as u32);
            wire_consumer[c.torus_in] = CompRef::Chan(cidx as u32);
            wire_producer[c.torus_out] = CompRef::Chan(cidx as u32);
        }
        for (eidx, e) in eps.iter().enumerate() {
            wire_consumer[e.from_router] = CompRef::Ep(eidx as u32);
            wire_producer[e.to_router] = CompRef::Ep(eidx as u32);
        }
        let nwires = wires.len();
        let nrouters = routers.len();
        let nchans = chans.len();
        Sim {
            rng: StdRng::seed_from_u64(params.seed),
            cfg,
            params,
            record_routes: false,
            now: 0,
            wires,
            wire_consumer,
            wire_producer,
            active_wires: Vec::with_capacity(nwires),
            wire_active: vec![false; nwires],
            dirty_router: vec![0; nrouters],
            dirty_chan: vec![0; nchans],
            dirty_ep: vec![0; num_eps],
            routers,
            chans,
            eps,
            packets: PacketSlab::new(),
            mc_groups: HashMap::new(),
            handler_heap: BinaryHeap::new(),
            deliveries: Vec::new(),
            stats: SimStats {
                recv_per_endpoint: vec![0; num_eps],
                ..SimStats::default()
            },
            grants: crate::metrics::ArbiterGrantCounts::default(),
            moved: false,
            idle_cycles: 0,
            deadlocked: false,
            deadlock_report: None,
        }
    }

    #[inline]
    fn wake(&mut self, c: CompRef, until: u64) {
        match c {
            CompRef::Router(i) => {
                let d = &mut self.dirty_router[i as usize];
                *d = (*d).max(until);
            }
            CompRef::Chan(i) => {
                let d = &mut self.dirty_chan[i as usize];
                *d = (*d).max(until);
            }
            CompRef::Ep(i) => {
                let d = &mut self.dirty_ep[i as usize];
                *d = (*d).max(until);
            }
        }
    }

    #[inline]
    fn mark_wire_active(&mut self, w: WireId) {
        if !self.wire_active[w] {
            self.wire_active[w] = true;
            self.active_wires.push(w as u32);
        }
    }

    fn make_arbiter(kind: &ArbiterKind, nports: usize) -> Box<dyn PortArbiter> {
        match kind {
            ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::new(nports)),
            ArbiterKind::InverseWeighted { m_bits } => {
                Box::new(InverseWeightedArbiter::uniform(nports, *m_bits))
            }
            ArbiterKind::Age => Box::new(AgeArbiter::new(nports)),
            ArbiterKind::FixedPriority => Box::new(FixedPriorityArbiter::new(nports)),
        }
    }

    /// Installs inverse weights at one router output arbiter.
    ///
    /// `weights[input_port][pattern]` must be indexed consistently with
    /// [`anton_core::chip::ChipLayout::router_ports`].
    ///
    /// # Panics
    ///
    /// Panics if the router or port index is out of range.
    pub fn set_arbiter_weights(
        &mut self,
        node: NodeId,
        router_idx: usize,
        out_port: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let r = &mut self.routers[node.0 as usize * NUM_ROUTERS + router_idx];
        assert!(out_port < r.ports.len(), "output port out of range");
        r.arbiters[out_port] = Box::new(InverseWeightedArbiter::new(weights, m_bits));
    }

    /// Installs inverse weights at one router input port's SA1 VC arbiter.
    /// `weights[vc_index][pattern]` spans both traffic classes of the link
    /// feeding the port.
    ///
    /// # Panics
    ///
    /// Panics if the router or port index is out of range.
    pub fn set_input_arbiter_weights(
        &mut self,
        node: NodeId,
        router_idx: usize,
        in_port: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let r = &mut self.routers[node.0 as usize * NUM_ROUTERS + router_idx];
        assert!(in_port < r.ports.len(), "input port out of range");
        r.in_arbiters[in_port] = Box::new(InverseWeightedArbiter::new(weights, m_bits));
    }

    /// Installs inverse weights at one channel adapter's serializer VC
    /// arbiter. `weights[vc_index][pattern]` spans both traffic classes.
    ///
    /// # Panics
    ///
    /// Panics if the adapter index is out of range.
    pub fn set_chan_arbiter_weights(
        &mut self,
        node: NodeId,
        chan_idx: usize,
        weights: Vec<Vec<u32>>,
        m_bits: u32,
    ) {
        let c = &mut self.chans[node.0 as usize * NUM_CHAN_ADAPTERS + chan_idx];
        c.out_arbiter = Box::new(InverseWeightedArbiter::new(weights, m_bits));
    }

    /// Registers a multicast group's tables.
    ///
    /// # Panics
    ///
    /// Panics if the group id is already registered.
    pub fn add_multicast_group(&mut self, group: McGroup) {
        let prev = self.mc_groups.insert(group.id, group);
        assert!(prev.is_none(), "duplicate multicast group id");
    }

    /// Arms a counted-write counter at an endpoint (Section 2.1): after
    /// `count` packets naming `counter` arrive, the endpoint's software
    /// handler fires (reported as [`Delivery::Handler`]).
    pub fn set_counter(&mut self, ep: GlobalEndpoint, counter: CounterId, count: u32) {
        let idx = self.cfg.endpoint_index(ep);
        self.eps[idx].counters.insert(counter.0, count);
    }

    /// Queues a packet for injection at `src` (unbounded software queue).
    pub fn inject(&mut self, src: GlobalEndpoint, packet: Packet) {
        let idx = self.cfg.endpoint_index(src);
        self.eps[idx].inject.push_back(InjectCmd::Auto(packet));
        self.wake(CompRef::Ep(idx as u32), self.now);
    }

    /// Queues a unicast packet with an explicit route spec instead of the
    /// randomized oblivious route — used by controlled experiments and the
    /// route cross-check tests.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is not unicast or `spec` does not route from
    /// `src`'s node to the destination node.
    pub fn inject_with_spec(&mut self, src: GlobalEndpoint, packet: Packet, spec: RouteSpec) {
        let Destination::Unicast(dst) = packet.dst else {
            panic!("explicit route specs apply to unicast packets only");
        };
        let mut cur = self.cfg.shape.coord(src.node);
        for hop in spec.hops() {
            cur = self.cfg.shape.neighbor(cur, hop);
        }
        assert_eq!(
            cur,
            self.cfg.shape.coord(dst.node),
            "spec does not reach destination"
        );
        let idx = self.cfg.endpoint_index(src);
        self.eps[idx]
            .inject
            .push_back(InjectCmd::WithSpec(packet, spec));
        self.wake(CompRef::Ep(idx as u32), self.now);
    }

    /// Number of packets still queued in an endpoint's software queue.
    pub fn inject_queue_len(&self, src: GlobalEndpoint) -> usize {
        self.eps[self.cfg.endpoint_index(src)].inject.len()
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Grants issued so far at each arbitration-site class.
    pub fn grant_counts(&self) -> crate::metrics::ArbiterGrantCounts {
        self.grants
    }

    /// Every wire of the machine (read-only, for metrics aggregation).
    pub(crate) fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// Collects the full typed metrics record (see
    /// [`Metrics`](crate::metrics::Metrics)); occupancy histograms are
    /// present only when the simulator was built with
    /// [`SimParams::collect_metrics`](crate::params::SimParams::collect_metrics).
    pub fn metrics(&self) -> crate::metrics::Metrics {
        crate::metrics::Metrics::collect(self)
    }

    /// Packets currently in the network.
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }

    /// Whether the deadlock watchdog has fired.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// Raw flit counts carried by every wire, labeled by its structural
    /// link — for utilization reporting and bottleneck analysis.
    pub fn wire_utilizations(&self) -> Vec<(GlobalLink, u64)> {
        self.wires
            .iter()
            .map(|w| (w.label, w.flits_carried))
            .collect()
    }

    /// Utilization (flits per cycle) of every external torus channel, as
    /// `(from node, direction, slice, utilization)`.
    pub fn torus_utilizations(&self) -> Vec<(NodeId, TorusDir, anton_core::topology::Slice, f64)> {
        let cycles = self.now.max(1) as f64;
        self.wires
            .iter()
            .filter_map(|w| match w.label {
                GlobalLink::Torus { from, dir, slice } => {
                    Some((from, dir, slice, w.flits_carried as f64 / cycles))
                }
                _ => None,
            })
            .collect()
    }

    /// Peak torus-channel utilization as a fraction of the effective channel
    /// bandwidth (1.0 = the channel moved flits at the full 89.6 Gb/s for
    /// the whole run).
    pub fn max_torus_utilization(&self) -> f64 {
        let cap =
            f64::from(crate::params::TORUS_TOKEN_GAIN) / f64::from(crate::params::TORUS_TOKEN_COST);
        self.torus_utilizations()
            .iter()
            .map(|(_, _, _, u)| u / cap)
            .fold(0.0, f64::max)
    }

    /// Sum of all routers' energy counters.
    pub fn router_energy(&self) -> EnergyCounters {
        let mut total = EnergyCounters::default();
        for r in &self.routers {
            total.add(&r.energy);
        }
        total
    }

    /// The RNG used for route randomization (exposed for drivers that want
    /// correlated decisions).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Runs until the driver completes, deadlock, or the cycle budget.
    ///
    /// Every exit path audits the self-checking invariants (packet
    /// conservation and per-channel credit balance) and panics with a
    /// diagnostic on violation, so every simulation is self-checking.
    pub fn run(&mut self, driver: &mut dyn Driver, max_cycles: u64) -> RunOutcome {
        let deadline = self.now + max_cycles;
        loop {
            if driver.done(self) {
                return self.audited(RunOutcome::Completed);
            }
            if self.deadlocked {
                return self.audited(RunOutcome::Deadlocked);
            }
            if self.now >= deadline {
                return self.audited(RunOutcome::TimedOut);
            }
            driver.pre_cycle(self);
            self.step();
            let dels = std::mem::take(&mut self.deliveries);
            for d in &dels {
                driver.on_delivery(self, d);
            }
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        let prof = std::env::var_os("ANTON_SIM_PROFILE").is_some();
        let mut t = std::time::Instant::now();
        #[allow(unused_mut)]
        let mut mark = |phase: usize, t: &mut std::time::Instant| {
            if prof {
                PHASE_NS[phase].fetch_add(
                    t.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                *t = std::time::Instant::now();
            }
        };
        let now = self.now;
        self.moved = false;
        // Tick only wires with traffic or credits in flight, waking the
        // components their events concern.
        let mut i = 0;
        while i < self.active_wires.len() {
            let w = self.active_wires[i] as usize;
            let (arrival_ready, credited) = self.wires[w].tick(now);
            if let Some(ready) = arrival_ready {
                self.wake(self.wire_consumer[w], ready);
            }
            if credited {
                self.wake(self.wire_producer[w], now);
            }
            if self.wires[w].idle() {
                self.wire_active[w] = false;
                self.active_wires.swap_remove(i);
            } else {
                i += 1;
            }
        }
        mark(0, &mut t);
        while let Some(&Reverse((t, ep_idx, counter))) = self.handler_heap.peek() {
            if t > now {
                break;
            }
            self.handler_heap.pop();
            let ep = &self.eps[ep_idx as usize];
            self.deliveries.push(Delivery::Handler {
                ep: GlobalEndpoint {
                    node: ep.node,
                    ep: ep.ep,
                },
                counter: CounterId(counter),
            });
        }
        for e in 0..self.eps.len() {
            if self.dirty_ep[e] >= now {
                self.ep_inject_step(e);
            }
        }
        mark(1, &mut t);
        for c in 0..self.chans.len() {
            if self.dirty_chan[c] >= now {
                self.chan_inbound_step(c);
                self.chan_outbound_step(c);
            }
        }
        mark(2, &mut t);
        for r in 0..self.routers.len() {
            if self.dirty_router[r] >= now {
                self.router_step(r);
            }
        }
        mark(3, &mut t);
        for e in 0..self.eps.len() {
            if self.dirty_ep[e] >= now {
                self.ep_recv_step(e);
            }
        }
        mark(4, &mut t);
        if self.packets.live() > 0 && !self.moved {
            self.idle_cycles += 1;
            if self.idle_cycles >= self.params.watchdog_cycles && !self.deadlocked {
                self.deadlocked = true;
                let report = self.build_deadlock_report();
                self.deadlock_report = Some(Box::new(report));
            }
        } else {
            self.idle_cycles = 0;
        }
        debug_assert_eq!(
            self.packets.created(),
            self.packets.terminated() + self.packets.live() as u64,
            "packet conservation violated at cycle {}",
            self.now
        );
        self.now += 1;
    }

    /// Audits the invariants at a run exit; panics with a diagnostic (and
    /// the deadlock report, if one was captured) on violation.
    fn audited(&self, outcome: RunOutcome) -> RunOutcome {
        if let Err(e) = self.check_invariants() {
            panic!(
                "simulator invariant violated at {outcome:?}, cycle {}: {e}",
                self.now
            );
        }
        outcome
    }

    /// Cheap always-on self-checks, also run automatically at every
    /// [`Sim::run`] exit:
    ///
    /// - **Packet conservation**: every packet ever created was either
    ///   terminated (delivered, or absorbed into multicast copies) or is
    ///   still live — and once the network has fully drained, nothing may
    ///   remain live.
    /// - **Credit balance**: on every wire and VC, sender credits plus
    ///   flits in flight, inside the link layer, buffered, or returning as
    ///   credits exactly equal the buffer depth.
    pub fn check_invariants(&self) -> Result<(), String> {
        let created = self.packets.created();
        let terminated = self.packets.terminated();
        let live = self.packets.live() as u64;
        if created != terminated + live {
            return Err(format!(
                "packet conservation violated: {created} created != \
                 {terminated} terminated + {live} live"
            ));
        }
        for w in &self.wires {
            w.check_credit_balance()?;
        }
        let quiescent = self.wires.iter().all(|w| w.is_quiescent())
            && self.handler_heap.is_empty()
            && self
                .eps
                .iter()
                .all(|e| e.inject.is_empty() && e.repl.is_empty())
            && self.chans.iter().all(|c| c.repl.is_empty());
        if quiescent && live != 0 {
            return Err(format!(
                "packet conservation violated at quiesce: network drained \
                 with {live} packets still live"
            ));
        }
        Ok(())
    }

    /// The structured diagnostic captured when the deadlock watchdog
    /// tripped; `None` while the network is making progress.
    pub fn deadlock_report(&self) -> Option<&DeadlockReport> {
        self.deadlock_report.as_deref()
    }

    fn build_deadlock_report(&self) -> DeadlockReport {
        const CAP: usize = 64;
        let mut report = DeadlockReport {
            cycle: self.now,
            live_packets: self.packets.live(),
            idle_cycles: self.idle_cycles,
            ..DeadlockReport::default()
        };
        for w in &self.wires {
            let backlog = w.shim_backlog();
            if backlog > 0 {
                report.shim_backlogs.push((w.label, backlog));
            }
            let mask = w.occupied_mask();
            for vc in 0..w.num_vcs() as u8 {
                if mask & (1 << vc) == 0 {
                    continue;
                }
                let Some(entry) = w.head(self.now, vc) else {
                    continue;
                };
                if report.stalled.len() >= CAP {
                    report.truncated += 1;
                    continue;
                }
                let route = match self.packets.get(entry.pkt).route {
                    RouteProgress::Unicast { spec, dst } => format!(
                        "unicast to n{}:e{}, remaining offsets {:?}",
                        dst.node.0, dst.ep.0, spec.offsets
                    ),
                    RouteProgress::McExit { dir, slice, .. } => {
                        format!("multicast exit {:?} slice {}", dir, slice.0)
                    }
                    RouteProgress::McDeliver { ep, .. } => {
                        format!("multicast delivery to e{}", ep.0)
                    }
                };
                report.stalled.push(StalledVc {
                    link: w.label,
                    vc_index: vc,
                    packet: entry.pkt,
                    flits: entry.flits,
                    injected_at: entry.age,
                    route,
                });
            }
        }
        report
    }

    // ----- routing helpers -------------------------------------------------

    /// The on-chip target (adapter) of a packet at its current node.
    fn chip_target(&self, pid: PacketId) -> LocalAttach {
        let st = self.packets.get(pid);
        match st.route {
            RouteProgress::Unicast { spec, dst } => match spec.next_dir() {
                Some(d) => LocalAttach::Chan(ChanId {
                    dir: d,
                    slice: spec.slice,
                }),
                None => LocalAttach::Endpoint(dst.ep),
            },
            RouteProgress::McExit { dir, slice, .. } => LocalAttach::Chan(ChanId { dir, slice }),
            RouteProgress::McDeliver { ep, .. } => LocalAttach::Endpoint(ep),
        }
    }

    /// Output port and VC for a packet at a router. The result is cached in
    /// the head buffer entry by the switch-allocation loop, so this is only
    /// evaluated once per packet per router.
    fn route_output(&self, ridx: usize, pid: PacketId) -> (usize, Vc) {
        let router = &self.routers[ridx];
        let st = self.packets.get(pid);
        let target = self.chip_target(pid);
        let target_router = match target {
            LocalAttach::Chan(c) => self.cfg.chip.chan_router(c),
            LocalAttach::Endpoint(e) => self.cfg.chip.endpoint_router(e),
            _ => unreachable!("targets are adapters"),
        };
        let here = router.mesh;
        let attach = if here == target_router {
            target
        } else if self.cfg.chip.skip_partner(here) == Some(target_router)
            && matches!(target, LocalAttach::Chan(c) if c.dir.dim == Dim::X)
            && st.arrived_via.map(|d| d.dim) == Some(Dim::X)
        {
            // X through-traffic bypasses two routers via the skip channel.
            LocalAttach::Skip
        } else {
            let d = self
                .cfg
                .dir_order
                .next_dir(here, target_router)
                .expect("distinct routers need a mesh hop");
            LocalAttach::Mesh(d)
        };
        let port = router
            .ports
            .iter()
            .position(|p| p.attach == attach)
            .expect("routed attach must be a port");
        let group = match attach {
            LocalAttach::Mesh(_) | LocalAttach::Endpoint(_) => LinkGroup::M,
            LocalAttach::Skip | LocalAttach::Chan(_) => LinkGroup::T,
        };
        (port, st.vc.vc_for(group))
    }

    fn send_on_wire(&mut self, wire: WireId, pid: PacketId, vcidx: u8) {
        let now = self.now;
        let st = self.packets.get(pid);
        let entry = BufEntry {
            pkt: pid,
            ready_at: 0,
            flits: st.flits,
            class: st.packet.class.index() as u8,
            pattern: st.packet.pattern.0,
            rc_port: 0xFF,
            rc_vcidx: 0,
            age: st.injected_at,
        };
        let flits = st.flits;
        self.wires[wire].send(now, entry, vcidx);
        let label = self.wires[wire].label;
        self.mark_wire_active(wire);
        self.moved = true;
        self.stats.flit_hops += u64::from(flits);
        if matches!(label, GlobalLink::Torus { .. }) {
            self.stats.torus_flits += u64::from(flits);
        }
        if self.record_routes {
            let group_vcs = self.wires[wire].group_vcs;
            let vc = Vc(vcidx % group_vcs);
            let st = self.packets.get_mut(pid);
            if let Some(log) = &mut st.route_log {
                log.push((label, vc));
            }
        }
    }

    // ----- endpoint adapters ----------------------------------------------

    fn ep_inject_step(&mut self, eidx: usize) {
        let now = self.now;
        if self.eps[eidx].busy_until > now {
            return;
        }
        // Pending multicast copies first.
        if let Some(&pid) = self.eps[eidx].repl.front() {
            self.try_send_to_router_from_ep(eidx, pid);
            return;
        }
        let Some(cmd) = self.eps[eidx].inject.front().copied() else {
            return;
        };
        let pkt = *cmd.packet();
        let node = self.eps[eidx].node;
        match pkt.dst {
            Destination::Unicast(dst) => {
                // Injection always starts on M-group VC 0; check credits
                // before drawing the randomized route.
                let wire_id = self.eps[eidx].to_router;
                let flits = pkt.num_flits() as u8;
                let vcidx = self.wires[wire_id].vc_index(pkt.class, Vc(0));
                if !self.wires[wire_id].can_send(vcidx, flits) {
                    return;
                }
                let src_c = self.cfg.shape.coord(node);
                let dst_c = self.cfg.shape.coord(dst.node);
                let spec = match cmd {
                    InjectCmd::WithSpec(_, spec) => spec,
                    InjectCmd::Auto(_) => {
                        RouteSpec::randomized(&self.cfg.shape, src_c, dst_c, &mut self.rng)
                    }
                };
                let mut vc = self.cfg.vc_policy.start();
                if spec.next_dir().is_some() {
                    vc.begin_dim();
                }
                let pid = self.packets.insert(PacketState {
                    packet: pkt,
                    route: RouteProgress::Unicast { spec, dst },
                    vc,
                    pending_vc: None,
                    arrived_via: None,
                    injected_at: now,
                    torus_hops: 0,
                    flits,
                    route_log: self.record_routes.then(Vec::new),
                });
                let sent = self.try_send_to_router_from_ep(eidx, pid);
                debug_assert!(sent, "credits were checked");
                self.eps[eidx].inject.pop_front();
                self.stats.injected_packets += 1;
            }
            Destination::Multicast { group, tree } => {
                let copies = self.expand_multicast_at(node, group, tree, None, &pkt, now);
                if self.eps[eidx].repl.len() + copies.len() <= REPL_CAP {
                    self.eps[eidx].inject.pop_front();
                    self.stats.injected_packets += 1;
                    for pid in copies {
                        self.eps[eidx].repl.push_back(pid);
                    }
                    if let Some(&pid) = self.eps[eidx].repl.front() {
                        self.try_send_to_router_from_ep(eidx, pid);
                    }
                } else {
                    for pid in copies {
                        self.packets.remove(pid);
                    }
                }
            }
        }
    }

    fn try_send_to_router_from_ep(&mut self, eidx: usize, pid: PacketId) -> bool {
        let now = self.now;
        let wire_id = self.eps[eidx].to_router;
        let st = self.packets.get(pid);
        let class = st.packet.class;
        let vc = st.vc.vc_for(LinkGroup::M);
        let flits = st.flits;
        let vcidx = self.wires[wire_id].vc_index(class, vc);
        if !self.wires[wire_id].can_send(vcidx, flits) {
            return false;
        }
        self.send_on_wire(wire_id, pid, vcidx);
        self.eps[eidx].busy_until = now + u64::from(flits);
        if self.eps[eidx].repl.front() == Some(&pid) {
            self.eps[eidx].repl.pop_front();
        }
        // Re-examine the queues once the adapter frees up.
        self.wake(CompRef::Ep(eidx as u32), now + u64::from(flits));
        true
    }

    fn ep_recv_step(&mut self, eidx: usize) {
        let now = self.now;
        let wire_id = self.eps[eidx].from_router;
        let mut mask = self.wires[wire_id].occupied_mask();
        while mask != 0 {
            let v = mask.trailing_zeros() as u8;
            mask &= mask - 1;
            let Some(entry) = self.wires[wire_id].head(now, v) else {
                continue;
            };
            let pid = entry.pkt;
            self.wires[wire_id].pop(now, v);
            self.mark_wire_active(wire_id);
            self.moved = true;
            self.deliver(eidx, pid);
        }
    }

    fn deliver(&mut self, eidx: usize, pid: PacketId) {
        let now = self.now;
        let st = self.packets.remove(pid);
        let ep = GlobalEndpoint {
            node: self.eps[eidx].node,
            ep: self.eps[eidx].ep,
        };
        self.stats.delivered_packets += 1;
        self.stats.last_delivery_cycle = now;
        self.stats.recv_per_endpoint[eidx] += 1;
        if let Some(cid) = st.packet.counter {
            if let Some(rem) = self.eps[eidx].counters.get_mut(&cid.0) {
                *rem = rem.saturating_sub(1);
                if *rem == 0 {
                    self.eps[eidx].counters.remove(&cid.0);
                    let fire = now + self.params.latency.handler_dispatch_cycles();
                    self.handler_heap.push(Reverse((fire, eidx as u32, cid.0)));
                }
            }
        }
        self.deliveries.push(Delivery::Packet(PacketDelivery {
            src: st.packet.src,
            dst: ep,
            pattern: st.packet.pattern.0,
            counter: st.packet.counter,
            injected_at: st.injected_at,
            delivered_at: now,
            torus_hops: st.torus_hops,
            route_log: st.route_log,
        }));
    }

    // ----- channel adapters -------------------------------------------------

    fn chan_inbound_step(&mut self, cidx: usize) {
        let now = self.now;
        if self.chans[cidx].to_router_busy_until > now {
            return;
        }
        // Drain pending multicast copies first.
        if let Some(&pid) = self.chans[cidx].repl.front() {
            if self.try_send_chan_to_router(cidx, pid) {
                self.chans[cidx].repl.pop_front();
            }
            return;
        }
        let wire_id = self.chans[cidx].torus_in;
        if self.wires[wire_id].occupied_mask() == 0 {
            return;
        }
        let nvcs = self.wires[wire_id].num_vcs() as u8;
        let start = self.chans[cidx].rr_vc_in;
        for k in 0..nvcs {
            let v = (start + k) % nvcs;
            if self.wires[wire_id].occupied_mask() >> v & 1 == 0 {
                continue;
            }
            let Some(entry) = self.wires[wire_id].head(now, v) else {
                continue;
            };
            let pid = entry.pkt;
            let st = self.packets.get(pid);
            match st.route {
                RouteProgress::Unicast { .. } => {
                    if !self.can_send_chan_to_router(cidx, pid) {
                        continue;
                    }
                    self.wires[wire_id].pop(now, v);
                    self.mark_wire_active(wire_id);
                    self.moved = true;
                    // Entry link uses the arriving T-phase VC; promotion
                    // (if the dimension finished) applies past it.
                    self.stage_unicast_arrival(pid);
                    let sent = self.try_send_chan_to_router(cidx, pid);
                    debug_assert!(sent, "send checked above");
                    self.chans[cidx].rr_vc_in = (v + 1) % nvcs;
                    return;
                }
                RouteProgress::McExit { group, tree, .. } => {
                    let node = self.chans[cidx].node;
                    let arrived = st.arrived_via.expect("multicast copy arrived via torus");
                    let pkt = st.packet;
                    // Peek at the fanout size before committing.
                    let fanout = self.mc_fanout(node, group, tree);
                    if self.chans[cidx].repl.len() + fanout > REPL_CAP {
                        continue;
                    }
                    self.wires[wire_id].pop(now, v);
                    self.mark_wire_active(wire_id);
                    self.moved = true;
                    let parent = self.packets.remove(pid);
                    let copies = self.expand_multicast_at(
                        node,
                        group,
                        tree,
                        Some((arrived, parent.vc, parent.torus_hops)),
                        &pkt,
                        parent.injected_at,
                    );
                    for c in copies {
                        self.chans[cidx].repl.push_back(c);
                    }
                    if let Some(&head) = self.chans[cidx].repl.front() {
                        if self.try_send_chan_to_router(cidx, head) {
                            self.chans[cidx].repl.pop_front();
                        }
                    }
                    self.wake(CompRef::Chan(cidx as u32), now + 1);
                    self.chans[cidx].rr_vc_in = (v + 1) % nvcs;
                    return;
                }
                RouteProgress::McDeliver { .. } => {
                    unreachable!("deliver copies never cross torus links")
                }
            }
        }
    }

    fn can_send_chan_to_router(&self, cidx: usize, pid: PacketId) -> bool {
        let st = self.packets.get(pid);
        let wire_id = self.chans[cidx].to_router;
        let vc = st.vc.vc_for(LinkGroup::T);
        let vcidx = self.wires[wire_id].vc_index(st.packet.class, vc);
        self.wires[wire_id].can_send(vcidx, st.flits)
    }

    fn try_send_chan_to_router(&mut self, cidx: usize, pid: PacketId) -> bool {
        let now = self.now;
        let st = self.packets.get(pid);
        let wire_id = self.chans[cidx].to_router;
        let vc = st.vc.vc_for(LinkGroup::T);
        let vcidx = self.wires[wire_id].vc_index(st.packet.class, vc);
        let flits = st.flits;
        if !self.wires[wire_id].can_send(vcidx, flits) {
            return false;
        }
        self.send_on_wire(wire_id, pid, vcidx);
        self.chans[cidx].to_router_busy_until = now + u64::from(flits);
        self.wake(CompRef::Chan(cidx as u32), now + u64::from(flits));
        let st = self.packets.get_mut(pid);
        if let Some(promoted) = st.pending_vc.take() {
            st.vc = promoted;
        }
        true
    }

    /// Stages the node-entry VC transitions of an arriving unicast packet:
    /// if its dimension finished, the promoted state (out of the T phase,
    /// and into the next dimension if one remains) applies after the entry
    /// link.
    fn stage_unicast_arrival(&mut self, pid: PacketId) {
        let st = self.packets.get_mut(pid);
        let RouteProgress::Unicast { spec, .. } = &st.route else {
            return;
        };
        let arrived = st
            .arrived_via
            .expect("arrival transition outside torus arrival");
        if spec.offsets[arrived.dim.index()] == 0 {
            let mut promoted = st.vc;
            promoted.end_dim();
            if spec.next_dir().is_some() {
                promoted.begin_dim();
            }
            st.pending_vc = Some(promoted);
        }
    }

    fn chan_outbound_step(&mut self, cidx: usize) {
        let now = self.now;
        let gain = i64::from(TORUS_TOKEN_GAIN);
        let cost = i64::from(TORUS_TOKEN_COST);
        // Accumulate bandwidth tokens (lazily, since the adapter sleeps when
        // idle), keeping the fractional remainder so the long-run rate is
        // exactly 14/45 flits per cycle; the cap only bounds idle
        // accumulation (at most one extra closely-spaced flit after idle).
        {
            let c = &mut self.chans[cidx];
            let elapsed = (now - c.tokens_at) as i64;
            c.tokens = (c.tokens + gain * elapsed).min(cost + gain - 1);
            c.tokens_at = now;
        }
        let in_wire = self.chans[cidx].from_router;
        let out_wire = self.chans[cidx].torus_out;
        let crosses = self.chans[cidx].crosses_dateline;
        if self.wires[in_wire].occupied_mask() == 0 {
            return;
        }
        if self.chans[cidx].tokens < cost {
            // Sleep until the bucket refills.
            let deficit = cost - self.chans[cidx].tokens;
            let refill = (deficit + gain - 1) / gain;
            self.wake(CompRef::Chan(cidx as u32), now + refill as u64);
            return;
        }
        // Gather every VC whose head is ready and whose post-dateline torus
        // VC has credits, then let the serializer's VC arbiter pick — with
        // inverse weights installed, this is an EoS arbitration point.
        let nvcs = self.wires[in_wire].num_vcs() as u8;
        let mut reqs = [ArbRequest {
            input: 0,
            pattern: 0,
            age: 0,
        }; 16];
        let mut targets = [(PacketId(0), 0u8, VcPolicy::Anton.start()); 16];
        let mut nreqs = 0;
        for v in 0..nvcs {
            if self.wires[in_wire].occupied_mask() >> v & 1 == 0 {
                continue;
            }
            let Some(entry) = self.wires[in_wire].head(now, v) else {
                continue;
            };
            let pid = entry.pkt;
            let flits = entry.flits;
            let pattern = entry.pattern;
            let age = entry.age;
            let st = self.packets.get(pid);
            // VC on the torus link after a possible dateline promotion.
            let mut vc_after = st.vc;
            let tvc = vc_after.torus_hop(crosses);
            let vcidx = self.wires[out_wire].vc_index(st.packet.class, tvc);
            if !self.wires[out_wire].can_send(vcidx, flits) {
                continue;
            }
            reqs[nreqs] = ArbRequest {
                input: v as usize,
                pattern,
                age,
            };
            targets[nreqs] = (pid, vcidx, vc_after);
            nreqs += 1;
        }
        if nreqs == 0 {
            return;
        }
        let widx = self.chans[cidx]
            .out_arbiter
            .pick(&reqs[..nreqs])
            .expect("nonempty requests yield a grant");
        self.grants.serializer += 1;
        let v = reqs[widx].input as u8;
        let (pid, vcidx, vc_after) = targets[widx];
        let flits = self.packets.get(pid).flits;
        self.wires[in_wire].pop(now, v);
        self.mark_wire_active(in_wire);
        {
            let dir = self.chans[cidx].chan.dir;
            let st = self.packets.get_mut(pid);
            st.vc = vc_after;
            st.torus_hops += 1;
            st.arrived_via = Some(dir);
            if let RouteProgress::Unicast { spec, .. } = &mut st.route {
                spec.take_hop(dir);
            }
        }
        self.send_on_wire(out_wire, pid, vcidx);
        self.chans[cidx].tokens -= cost * i64::from(flits);
        // More traffic may be waiting: wake at the next refill.
        let deficit = (cost - self.chans[cidx].tokens).max(gain);
        let refill = (deficit + gain - 1) / gain;
        self.wake(CompRef::Chan(cidx as u32), now + refill as u64);
    }

    // ----- multicast ---------------------------------------------------------

    fn mc_entry(
        &self,
        node: NodeId,
        group: McGroupId,
        tree: u8,
    ) -> &anton_core::multicast::McEntry {
        self.mc_groups
            .get(&group)
            .unwrap_or_else(|| panic!("unknown multicast group {group}"))
            .trees
            .get(tree as usize)
            .unwrap_or_else(|| panic!("multicast group {group} has no tree {tree}"))
            .entry(node)
            .unwrap_or_else(|| panic!("multicast {group} tree {tree} has no entry at {node}"))
    }

    fn mc_fanout(&self, node: NodeId, group: McGroupId, tree: u8) -> usize {
        let e = self.mc_entry(node, group, tree);
        e.forward.len() + e.local.len()
    }

    /// Creates the multicast copies for `group`/`tree` at `node`.
    ///
    /// `arrival` is `None` at the source endpoint, or the arriving direction
    /// plus inherited state for copies spawned mid-tree. Mid-tree copies
    /// keep the arriving T-phase VC for the entry link; turns and local
    /// deliveries stage their promoted state via `pending_vc`.
    fn expand_multicast_at(
        &mut self,
        node: NodeId,
        group: McGroupId,
        tree: u8,
        arrival: Option<(TorusDir, VcState, u16)>,
        pkt: &Packet,
        injected_at: u64,
    ) -> Vec<PacketId> {
        let entry = self.mc_entry(node, group, tree).clone();
        let slice = self.mc_groups[&group].trees[tree as usize].slice;
        let mut out = Vec::with_capacity(entry.forward.len() + entry.local.len());
        let (arrived_via, base_vc, torus_hops) = match arrival {
            Some((dir, vc, hops)) => (Some(dir), vc, hops),
            None => (None, self.cfg.vc_policy.start(), 0),
        };
        for dir in &entry.forward {
            let (vc, pending_vc) = match arrived_via {
                Some(a) if a.dim == dir.dim => {
                    debug_assert_eq!(a, *dir, "tree chains never reverse direction");
                    (base_vc, None)
                }
                Some(_) => {
                    let mut promoted = base_vc;
                    promoted.end_dim();
                    promoted.begin_dim();
                    (base_vc, Some(promoted))
                }
                None => {
                    // Source fanout: begin the dimension immediately (the
                    // injection link's M VC is unaffected).
                    let mut vc = base_vc;
                    vc.begin_dim();
                    (vc, None)
                }
            };
            out.push(self.packets.insert(PacketState {
                packet: *pkt,
                route: RouteProgress::McExit {
                    group,
                    tree,
                    dir: *dir,
                    slice,
                },
                vc,
                pending_vc,
                arrived_via,
                injected_at,
                torus_hops,
                flits: pkt.num_flits() as u8,
                route_log: self.record_routes.then(Vec::new),
            }));
        }
        for ep in &entry.local {
            let (vc, pending_vc) = if arrived_via.is_some() {
                let mut promoted = base_vc;
                promoted.end_dim();
                (base_vc, Some(promoted))
            } else {
                (base_vc, None)
            };
            out.push(self.packets.insert(PacketState {
                packet: *pkt,
                route: RouteProgress::McDeliver { group, ep: *ep },
                vc,
                pending_vc,
                arrived_via,
                injected_at,
                torus_hops,
                flits: pkt.num_flits() as u8,
                route_log: self.record_routes.then(Vec::new),
            }));
        }
        out
    }

    // ----- routers -----------------------------------------------------------

    fn router_step(&mut self, ridx: usize) {
        let now = self.now;
        let nports = self.routers[ridx].ports.len();
        #[derive(Clone, Copy)]
        struct Cand {
            vcidx: u8,
            pid: PacketId,
            out_port: usize,
            out_vcidx: u8,
            flits: u8,
            pattern: u8,
            age: u64,
        }
        let mut cands: [Option<Cand>; MAX_ROUTER_PORTS] = [None; MAX_ROUTER_PORTS];
        for (inp, cand) in cands.iter_mut().enumerate().take(nports) {
            let in_wire = self.routers[ridx].ports[inp].in_wire;
            let occupied = self.wires[in_wire].occupied_mask();
            if occupied == 0 {
                continue;
            }
            // SA1: gather every VC whose head can proceed, then let the
            // input port's VC arbiter choose (inverse-weighted when
            // programmed).
            let nvcs = self.wires[in_wire].num_vcs() as u8;
            let mut vc_cands: [Option<Cand>; 16] = [None; 16];
            let mut vc_reqs = [ArbRequest {
                input: 0,
                pattern: 0,
                age: 0,
            }; 16];
            let mut n_vc = 0usize;
            for v in 0..nvcs {
                if occupied >> v & 1 == 0 {
                    continue;
                }
                let Some(entry) = self.wires[in_wire].head(now, v) else {
                    continue;
                };
                let mut e = *entry;
                if e.rc_port == 0xFF {
                    // Route computation: once per packet per router, cached
                    // in the buffer entry.
                    let (out_port, out_vc) = self.route_output(ridx, e.pkt);
                    let out_wire = self.routers[ridx].ports[out_port].out_wire;
                    let class = if e.class == 0 {
                        anton_core::vc::TrafficClass::Request
                    } else {
                        anton_core::vc::TrafficClass::Reply
                    };
                    e.rc_port = out_port as u8;
                    e.rc_vcidx = self.wires[out_wire].vc_index(class, out_vc);
                    let head = self.wires[in_wire].head_mut(v);
                    head.rc_port = e.rc_port;
                    head.rc_vcidx = e.rc_vcidx;
                }
                let out_port = e.rc_port as usize;
                if self.routers[ridx].out_busy_until[out_port] > now {
                    continue;
                }
                let out_wire = self.routers[ridx].ports[out_port].out_wire;
                if !self.wires[out_wire].can_send(e.rc_vcidx, e.flits) {
                    continue;
                }
                vc_cands[n_vc] = Some(Cand {
                    vcidx: v,
                    pid: e.pkt,
                    out_port,
                    out_vcidx: e.rc_vcidx,
                    flits: e.flits,
                    pattern: e.pattern,
                    age: e.age,
                });
                vc_reqs[n_vc] = ArbRequest {
                    input: v as usize,
                    pattern: e.pattern,
                    age: e.age,
                };
                n_vc += 1;
            }
            *cand = match n_vc {
                0 => None,
                1 => {
                    self.grants.sa1 += 1;
                    vc_cands[0]
                }
                _ => {
                    let w = self.routers[ridx].in_arbiters[inp]
                        .pick(&vc_reqs[..n_vc])
                        .expect("nonempty requests yield a grant");
                    self.grants.sa1 += 1;
                    vc_cands[w]
                }
            };
        }
        let mut reqs_buf = [ArbRequest {
            input: 0,
            pattern: 0,
            age: 0,
        }; MAX_ROUTER_PORTS];
        for out in 0..nports {
            let mut nreqs = 0;
            for (inp, cand) in cands.iter().enumerate().take(nports) {
                if let Some(c) = cand.filter(|c| c.out_port == out) {
                    reqs_buf[nreqs] = ArbRequest {
                        input: inp,
                        pattern: c.pattern,
                        age: c.age,
                    };
                    nreqs += 1;
                }
            }
            let reqs = &reqs_buf[..nreqs];
            if reqs.is_empty() {
                continue;
            }
            let widx = self.routers[ridx].arbiters[out]
                .pick(reqs)
                .expect("nonempty requests yield a grant");
            self.grants.output += 1;
            let inp = reqs[widx].input;
            let cand = cands[inp].expect("winner came from candidates");
            let in_wire = self.routers[ridx].ports[inp].in_wire;
            let out_wire = self.routers[ridx].ports[out].out_wire;
            self.wires[in_wire].pop(now, cand.vcidx);
            self.mark_wire_active(in_wire);
            self.send_on_wire(out_wire, cand.pid, cand.out_vcidx);
            self.routers[ridx].out_busy_until[out] = now + u64::from(cand.flits);
            self.wake(CompRef::Router(ridx as u32), now + 2);
            if self.params.track_energy {
                self.record_energy(ridx, out, cand.pid, cand.flits);
            }
        }
    }

    fn record_energy(&mut self, ridx: usize, out: usize, pid: PacketId, flits: u8) {
        let now = self.now;
        let st = self.packets.get(pid);
        let mut words = Vec::with_capacity(flits as usize);
        for j in 0..flits as usize {
            words.push(st.packet.flit_words(j));
        }
        let r = &mut self.routers[ridx];
        let pe = &mut r.port_energy[out];
        // A transfer starting exactly when the previous one ended is
        // back-to-back (no idle cycle): not an activation. The per-set-bit
        // energy of the Section 4.5 model is an *activation* energy, so the
        // activating flit's payload bits are recorded with the activation.
        if now > pe.idle_from {
            r.energy.activations += 1;
            r.energy.set_bits += u64::from(words[0][1].count_ones() + words[0][2].count_ones());
        }
        for w in &words {
            r.energy.flits += 1;
            r.energy.flips += u64::from(anton_core::packet::flit_hamming(&pe.last_words, w));
            pe.last_words = *w;
        }
        pe.idle_from = now + u64::from(flits);
    }
}
