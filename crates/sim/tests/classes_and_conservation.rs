//! Traffic classes, conservation, and randomized route validation.

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::packet::{Packet, Payload};
use anton_core::topology::{NodeCoord, TorusShape};
use anton_core::trace::GlobalLink;
use anton_core::vc::{TrafficClass, VcPolicy};
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::{BitComplement, ReverseTornado, Tornado, Transpose};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Collect {
    want: u64,
    got: u64,
    deliveries: Vec<anton_sim::sim::PacketDelivery>,
}

impl Driver for Collect {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            self.got += 1;
            self.deliveries.push(p.clone());
        }
    }
    fn done(&self, _sim: &Sim) -> bool {
        self.got >= self.want
    }
}

#[test]
fn request_and_reply_classes_both_deliver() {
    // Mixed-class traffic exercises both VC class banks end to end.
    let cfg = MachineConfig::new(TorusShape::cube(3));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let mut rng = StdRng::seed_from_u64(11);
    let n = cfg.num_endpoints();
    let total = 600u64;
    for i in 0..total {
        let src = cfg.endpoint_at(rng.gen_range(0..n));
        let dst = cfg.endpoint_at(rng.gen_range(0..n));
        let mut pkt = Packet::write(src, dst, Payload::zeros(16));
        pkt.class = if i % 2 == 0 {
            TrafficClass::Request
        } else {
            TrafficClass::Reply
        };
        sim.inject(src, pkt);
    }
    let mut drv = Collect {
        want: total,
        got: 0,
        deliveries: Vec::new(),
    };
    assert_eq!(sim.run(&mut drv, 10_000_000), RunOutcome::Completed);
    assert_eq!(sim.live_packets(), 0);
    assert_eq!(sim.stats().delivered_packets, total);
}

#[test]
fn blended_adversarial_patterns_conserve_packets() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let mut sim = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
    let blend: Vec<(Box<dyn anton_core::pattern::TrafficPattern>, f64)> = vec![
        (Box::new(Tornado), 0.4),
        (Box::new(ReverseTornado), 0.4),
        (Box::new(BitComplement), 0.1),
        (Box::new(Transpose), 0.1),
    ];
    let batch = 40;
    let mut drv = BatchDriver::builder(&sim)
        .components(blend)
        .packets_per_endpoint(batch)
        .seed(23)
        .build();
    assert_eq!(sim.run(&mut drv, 20_000_000), RunOutcome::Completed);
    let stats = sim.stats();
    let n = sim.cfg.num_endpoints() as u64;
    assert_eq!(stats.injected_packets, batch * n);
    assert_eq!(stats.delivered_packets, batch * n);
    assert_eq!(sim.live_packets(), 0);
}

#[test]
fn two_flit_packets_conserve_under_load() {
    // Max-size (32-byte payload, 2-flit) packets at saturation: no loss, no
    // duplication, correct payload length semantics.
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let mut rng = StdRng::seed_from_u64(3);
    let n = cfg.num_endpoints();
    let total = 800u64;
    for _ in 0..total {
        let src = cfg.endpoint_at(rng.gen_range(0..n));
        let mut dst = cfg.endpoint_at(rng.gen_range(0..n - 1));
        if dst == src {
            dst = cfg.endpoint_at(n - 1);
        }
        let pkt = Packet::write(src, dst, Payload::ones(32));
        assert_eq!(pkt.num_flits(), 2);
        sim.inject(src, pkt);
    }
    let mut drv = Collect {
        want: total,
        got: 0,
        deliveries: Vec::new(),
    };
    assert_eq!(sim.run(&mut drv, 10_000_000), RunOutcome::Completed);
    assert_eq!(drv.got, total);
    // Every flit-hop is even (2-flit packets only).
    assert_eq!(sim.stats().flit_hops % 2, 0);
    assert_eq!(sim.stats().torus_flits % 2, 0);
}

#[test]
fn randomized_routes_respect_vc_budget_in_flight() {
    // Route-record a randomized saturating run and check every link/VC pair
    // the hardware actually used against the policy budget — the dynamic
    // counterpart of the static trace checks.
    let cfg = MachineConfig::new(TorusShape::new(4, 3, 2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    sim.record_routes = true;
    let mut rng = StdRng::seed_from_u64(7);
    let n = cfg.num_endpoints();
    let total = 300u64;
    for _ in 0..total {
        let src = cfg.endpoint_at(rng.gen_range(0..n));
        let dst = cfg.endpoint_at(rng.gen_range(0..n));
        sim.inject(src, Packet::write(src, dst, Payload::zeros(16)));
    }
    let mut drv = Collect {
        want: total,
        got: 0,
        deliveries: Vec::new(),
    };
    assert_eq!(sim.run(&mut drv, 10_000_000), RunOutcome::Completed);
    for d in &drv.deliveries {
        let log = d.route_log.as_ref().expect("routes recorded");
        for (link, vc) in log {
            let budget = VcPolicy::Anton.num_vcs(link.group());
            assert!(vc.0 < budget, "{link} used vc{} (budget {budget})", vc.0);
        }
        // Hop accounting matches the recorded route.
        let torus = log
            .iter()
            .filter(|(l, _)| matches!(l, GlobalLink::Torus { .. }))
            .count();
        assert_eq!(torus as u16, d.torus_hops);
    }
}

#[test]
fn deliveries_arrive_in_order_per_source_destination_vc_pair() {
    // Within one (source, destination) pair and a single class, packets
    // travel the same priority structure; the network may reorder across
    // different oblivious routes, but counted sequence via payload should
    // never lose packets. Verify exact multiset delivery.
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let src = GlobalEndpoint {
        node: cfg.shape.id(NodeCoord::new(0, 0, 0)),
        ep: LocalEndpointId(0),
    };
    let dst = GlobalEndpoint {
        node: cfg.shape.id(NodeCoord::new(1, 1, 1)),
        ep: LocalEndpointId(9),
    };
    let total = 200u64;
    for i in 0..total {
        let payload = Payload::from_bytes(&i.to_le_bytes());
        sim.inject(src, Packet::write(src, dst, payload));
    }
    let mut drv = Collect {
        want: total,
        got: 0,
        deliveries: Vec::new(),
    };
    assert_eq!(sim.run(&mut drv, 10_000_000), RunOutcome::Completed);
    assert_eq!(drv.got, total);
    let idx = cfg.endpoint_index(dst);
    assert_eq!(sim.stats().recv_per_endpoint[idx], total);
}
