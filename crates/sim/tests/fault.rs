//! Integration tests for the fault-injection subsystem: lossy torus links,
//! deterministic schedules, and the self-checking invariants.

use anton_core::chip::ChanId;
use anton_core::config::MachineConfig;
use anton_core::topology::{NodeId, TorusShape};
use anton_core::vc::VcPolicy;
use anton_fault::{FaultKind, FaultSchedule};
use anton_sim::driver::BatchDriver;
use anton_sim::params::{PreflightMode, SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::{NodePermutation, UniformRandom};

/// Runs a uniform-random batch on a 2×2×2 machine under the given fault
/// schedule, returning the finished simulator and driver.
fn run_batch(fault: Option<FaultSchedule>, packets: u64) -> (Sim, BatchDriver, RunOutcome) {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        fault,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(packets)
        .seed(11)
        .build();
    let outcome = sim.run(&mut drv, 10_000_000);
    (sim, drv, outcome)
}

#[test]
fn zero_ber_schedule_matches_ideal_simulation() {
    // Installing the link shims with BER 0 and no outages must not change
    // the simulation by a single cycle: the shim's token bucket never
    // throttles beyond the upstream serializer.
    let (ideal_sim, ideal_drv, ideal_out) = run_batch(None, 20);
    let (shim_sim, shim_drv, shim_out) = run_batch(Some(FaultSchedule::uniform(3, 0.0)), 20);
    assert_eq!(ideal_out, RunOutcome::Completed);
    assert_eq!(shim_out, RunOutcome::Completed);
    assert_eq!(ideal_drv.finish_cycle, shim_drv.finish_cycle);
    assert_eq!(ideal_sim.now(), shim_sim.now());
    assert_eq!(
        ideal_sim.stats().delivered_packets,
        shim_sim.stats().delivered_packets
    );
    assert_eq!(ideal_sim.stats().flit_hops, shim_sim.stats().flit_hops);
    assert_eq!(ideal_sim.stats().torus_flits, shim_sim.stats().torus_flits);
    // The ideal run has no fault metrics; the shimmed run has them, but
    // with zero link-layer recovery events.
    assert!(ideal_sim.metrics().fault.is_none());
    let fm = shim_sim.metrics().fault.expect("shims installed");
    assert_eq!(fm.totals.retransmissions, 0);
    assert_eq!(fm.totals.data_frames_dropped, 0);
}

#[test]
fn faulty_runs_reproduce_from_schedule() {
    // The schedule (seed + BER) fully determines a faulty run.
    let (sim_a, drv_a, out_a) = run_batch(Some(FaultSchedule::uniform(5, 1e-4)), 20);
    let (sim_b, drv_b, out_b) = run_batch(Some(FaultSchedule::uniform(5, 1e-4)), 20);
    assert_eq!(out_a, RunOutcome::Completed);
    assert_eq!(out_a, out_b);
    assert_eq!(drv_a.finish_cycle, drv_b.finish_cycle);
    let (fa, fb) = (
        sim_a.metrics().fault.unwrap().totals,
        sim_b.metrics().fault.unwrap().totals,
    );
    assert_eq!(fa, fb);
    assert!(
        fa.retransmissions > 0,
        "BER 1e-4 must force at least one retransmission"
    );
    // A different schedule seed draws a different corruption pattern.
    let (sim_c, _, _) = run_batch(Some(FaultSchedule::uniform(6, 1e-4)), 20);
    let fc = sim_c.metrics().fault.unwrap().totals;
    assert_ne!(
        (fa.data_frames_dropped, fa.retransmissions),
        (fc.data_frames_dropped, fc.retransmissions),
        "different schedule seeds should corrupt differently"
    );
}

#[test]
fn retransmission_overhead_rises_with_ber() {
    let mut last = -1.0f64;
    for ber in [1e-5, 1e-4, 1e-3] {
        let (sim, _, out) = run_batch(Some(FaultSchedule::uniform(9, ber)), 12);
        assert_eq!(out, RunOutcome::Completed, "ber {ber} run must finish");
        sim.check_invariants().expect("invariants at quiesce");
        let fm = sim.metrics().fault.unwrap();
        let overhead = fm.retransmission_overhead();
        assert!(
            overhead > last,
            "retransmission overhead must rise with BER: {overhead} after {last} at {ber}"
        );
        last = overhead;
    }
    assert!(last > 0.0);
}

#[test]
fn transient_outage_reroutes_and_conserves_packets() {
    // One link goes dark for a window mid-run. The down-link serializer
    // absorbs its stranded traffic and re-injects it over the epoch's
    // certified degraded table, so the run completes with every packet
    // delivered exactly once and no frames eaten by the dead channel.
    let schedule = FaultSchedule::uniform(4, 0.0).with_fault(
        NodeId(0),
        ChanId::from_index(0),
        FaultKind::Down {
            from_cycle: 100,
            until_cycle: 700,
        },
    );
    let (sim, _, out) = run_batch(Some(schedule), 20);
    assert_eq!(out, RunOutcome::Completed);
    sim.check_invariants().expect("invariants at quiesce");
    assert!(
        sim.stats().rerouted_packets > 0,
        "the outage window must push traffic onto the degraded tables"
    );
    assert_eq!(
        sim.stats().injected_packets,
        sim.stats().delivered_packets,
        "rerouted traffic still delivers exactly once"
    );
}

#[test]
fn permanent_outage_survives_via_certified_reroute() {
    // A permanently dead link used to strand its traffic until the
    // watchdog tripped. With fault-aware routing the pre-certified
    // degraded table takes over: the run completes, the watchdog stays
    // silent, and conservation holds.
    let schedule = FaultSchedule::uniform(8, 0.0).with_fault(
        NodeId(0),
        ChanId::from_index(0),
        FaultKind::Down {
            from_cycle: 0,
            until_cycle: u64::MAX,
        },
    );
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        fault: Some(schedule),
        watchdog_cycles: 5_000,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(20)
        .seed(11)
        .build();
    let outcome = sim.run(&mut drv, 10_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    assert!(sim.deadlock_report().is_none(), "watchdog must stay silent");
    assert_eq!(sim.live_packets(), 0);
    assert_eq!(sim.stats().injected_packets, sim.stats().delivered_packets);
    sim.check_invariants().expect("invariants at quiesce");
}

#[test]
fn partitioned_node_falls_back_to_watchdog_with_down_link_diagnostic() {
    // Every outgoing link of node 0 is dead: no degraded table can route
    // around that (the node is unreachable as a source), so table
    // generation is rejected. Under `WarnOnly` the simulator runs anyway
    // on the legacy path; the stranded traffic trips the watchdog and the
    // report names the down links at trip time.
    let mut schedule = FaultSchedule::uniform(8, 0.0);
    for idx in 0..anton_core::chip::NUM_CHAN_ADAPTERS {
        schedule = schedule.with_fault(
            NodeId(0),
            ChanId::from_index(idx),
            FaultKind::Down {
                from_cycle: 0,
                until_cycle: u64::MAX,
            },
        );
    }
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        fault: Some(schedule),
        watchdog_cycles: 5_000,
        preflight: PreflightMode::WarnOnly,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(20)
        .seed(11)
        .build();
    let outcome = sim.run(&mut drv, 10_000_000);
    assert_eq!(outcome, RunOutcome::Deadlocked);
    let report = sim.deadlock_report().expect("watchdog must leave a report");
    assert!(report.live_packets > 0);
    assert!(
        !report.shim_backlogs.is_empty(),
        "report must name the backed-up link shim"
    );
    assert_eq!(
        report.down_links.len(),
        anton_core::chip::NUM_CHAN_ADAPTERS,
        "report must list every link down at trip time"
    );
    let text = report.to_string();
    assert!(text.contains("deadlock watchdog tripped"), "got: {text}");
    assert!(text.contains("flits undelivered"), "got: {text}");
    assert!(text.contains("faulty at trip time"), "got: {text}");
    // The diagnostic must survive a trip through its JSON serialization.
    let json_text = report.to_json().to_pretty_string();
    let parsed = anton_obs::Json::parse(&json_text).expect("report JSON parses");
    let back =
        anton_sim::sim::DeadlockReport::from_json(&parsed).expect("report JSON deserializes");
    assert_eq!(*report, back);
    // Reports written before down-link tracking existed must still read
    // back (the field just comes up empty).
    let mut old_report = (*report).clone();
    old_report.down_links.clear();
    let stripped = {
        let anton_obs::Json::Obj(mut fields) = report.to_json() else {
            panic!("report JSON is an object");
        };
        fields.retain(|(k, _)| k != "down_links");
        anton_obs::Json::Obj(fields)
    };
    let old_back = anton_sim::sim::DeadlockReport::from_json(&stripped)
        .expect("pre-down-links report JSON still deserializes");
    assert_eq!(old_report, old_back);
    // Stranded packets are still conserved: created == terminated + live.
    sim.check_invariants()
        .expect("conservation and credit balance hold even mid-deadlock");
}

#[test]
fn vc_deadlock_trips_watchdog_instead_of_hanging() {
    // Mis-configured VC policy (the single-VC negative control of
    // Section 2.5) on ring-wrap traffic: a genuine routing deadlock, no
    // faults involved. The watchdog must convert the hang into a
    // structured diagnostic naming stalled VCs and their head packets.
    let k = 4u8;
    let perm: Vec<u32> = (0..u32::from(k))
        .map(|x| (x + u32::from(k) / 2) % u32::from(k))
        .collect();
    let mut cfg = MachineConfig::new(TorusShape::new(k, 1, 1));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let params = SimParams {
        buffer_depth: 2,
        watchdog_cycles: 5_000,
        preflight: PreflightMode::WarnOnly,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(NodePermutation::new(perm)))
        .packets_per_endpoint(400)
        .seed(7)
        .build();
    let outcome = sim.run(&mut drv, 10_000_000);
    assert_eq!(outcome, RunOutcome::Deadlocked, "NaiveSingle must deadlock");
    let report = sim.deadlock_report().expect("watchdog must leave a report");
    assert!(report.live_packets > 0);
    assert!(report.idle_cycles >= 5_000);
    assert!(
        !report.stalled.is_empty(),
        "report must list stalled head packets"
    );
    let text = report.to_string();
    assert!(text.contains("deadlock watchdog tripped"), "got: {text}");
    assert!(text.contains("unicast to"), "got: {text}");
    sim.check_invariants()
        .expect("conservation and credit balance hold in the deadlocked state");
}

#[test]
fn deadlock_report_carries_flight_recorder_events_and_roundtrips() {
    // Same VC-deadlock negative control, but with the flight recorder on:
    // the report must attach the last recorded events per stalled VC, and
    // the whole diagnostic (events included) must round-trip through JSON.
    let k = 4u8;
    let perm: Vec<u32> = (0..u32::from(k))
        .map(|x| (x + u32::from(k) / 2) % u32::from(k))
        .collect();
    let mut cfg = MachineConfig::new(TorusShape::new(k, 1, 1));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let params = SimParams {
        buffer_depth: 2,
        watchdog_cycles: 5_000,
        trace: TraceConfig::events(128),
        preflight: PreflightMode::WarnOnly,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(NodePermutation::new(perm)))
        .packets_per_endpoint(400)
        .seed(7)
        .build();
    assert_eq!(sim.run(&mut drv, 10_000_000), RunOutcome::Deadlocked);
    let report = sim.deadlock_report().expect("watchdog must leave a report");
    assert!(!report.stalled.is_empty());
    assert!(
        report.stalled.iter().any(|s| !s.recent_events.is_empty()),
        "with tracing on, stalls must carry recent flight-recorder events"
    );
    for s in &report.stalled {
        assert!(
            s.recent_events.windows(2).all(|w| w[0].seq < w[1].seq),
            "recent events must stay in recording order"
        );
    }
    // The textual form surfaces the attached events too.
    let text = report.to_string();
    assert!(text.contains("stall"), "got: {text}");
    let parsed =
        anton_obs::Json::parse(&report.to_json().to_pretty_string()).expect("report JSON parses");
    let back =
        anton_sim::sim::DeadlockReport::from_json(&parsed).expect("report JSON deserializes");
    assert_eq!(*report, back);
}

#[test]
fn invariants_hold_at_quiesce_on_a_clean_run() {
    let (sim, drv, out) = run_batch(None, 30);
    assert_eq!(out, RunOutcome::Completed);
    assert!(drv.finish_cycle > 0);
    sim.check_invariants()
        .expect("quiesced simulator must pass conservation and credit balance");
    assert_eq!(sim.live_packets(), 0);
    assert_eq!(
        sim.stats().injected_packets,
        sim.stats().delivered_packets,
        "unicast batch: every injected packet is delivered exactly once"
    );
}
