//! Static pre-flight verification wired into simulator construction.

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_core::vc::VcPolicy;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{PreflightMode, SimParams};
use anton_sim::sim::{RunOutcome, Sim, StaticVerdict};
use anton_traffic::patterns::NodePermutation;

#[test]
fn default_config_certifies_at_construction() {
    let sim = Sim::builder().shape(TorusShape::cube(2)).build();
    assert_eq!(sim.static_verdict(), StaticVerdict::CertifiedAcyclic);
}

/// Construction from an explicit `MachineConfig` plus `SimParams` — the
/// shape callers of the removed `Sim::new` shim used before migrating to
/// the builder — certifies the same way.
#[test]
fn explicit_config_and_params_certify_through_the_builder() {
    let sim = Sim::builder()
        .config(MachineConfig::new(TorusShape::cube(2)))
        .params(SimParams::default())
        .build();
    assert_eq!(sim.static_verdict(), StaticVerdict::CertifiedAcyclic);
}

/// `.shards()` flows through the builder into the lint engine: AV019
/// rejects more shards than nodes under the default enforce mode.
#[test]
#[should_panic(expected = "static pre-flight verification rejected")]
fn enforce_mode_rejects_oversharded_machine() {
    let _ = Sim::builder()
        .shape(TorusShape::cube(2))
        .shards(9) // a 2x2x2 machine has 8 nodes
        .build();
}

#[test]
fn preflight_off_leaves_verdict_unknown() {
    let params = SimParams {
        preflight: PreflightMode::Off,
        ..SimParams::default()
    };
    let sim = Sim::builder()
        .config(MachineConfig::new(TorusShape::cube(2)))
        .params(params)
        .build();
    assert_eq!(sim.static_verdict(), StaticVerdict::Unknown);
}

#[test]
#[should_panic(expected = "static pre-flight verification rejected")]
fn enforce_mode_rejects_single_vc_torus() {
    let mut cfg = MachineConfig::new(TorusShape::cube(2));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let _ = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
}

#[test]
#[should_panic(expected = "static pre-flight verification rejected")]
fn enforce_mode_rejects_zero_watchdog() {
    let params = SimParams {
        watchdog_cycles: 0,
        ..SimParams::default()
    };
    let _ = Sim::builder()
        .config(MachineConfig::new(TorusShape::cube(2)))
        .params(params)
        .build();
}

/// The end-to-end story the verifier exists for: a statically predicted
/// deadlock comes true in the live simulation, and the watchdog's report
/// says so.
#[test]
fn predicted_deadlock_is_labeled_in_the_report() {
    let mut cfg = MachineConfig::new(TorusShape::new(4, 1, 1));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let params = SimParams {
        buffer_depth: 2,
        watchdog_cycles: 5_000,
        preflight: PreflightMode::WarnOnly,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    assert_eq!(sim.static_verdict(), StaticVerdict::PredictedDeadlock);

    let perm: Vec<u32> = (0..4u32).map(|x| (x + 2) % 4).collect();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(NodePermutation::new(perm)))
        .packets_per_endpoint(400)
        .seed(7)
        .build();
    assert_eq!(sim.run(&mut drv, 3_000_000), RunOutcome::Deadlocked);
    let report = sim.deadlock_report().expect("report");
    assert_eq!(report.static_verdict, StaticVerdict::PredictedDeadlock);
    let text = report.to_string();
    assert!(text.contains("statically predicted"), "got: {text}");

    // The verdict survives the JSON round trip, and reports written before
    // the field existed default to `Unknown`.
    let j = report.to_json();
    let back = anton_sim::sim::DeadlockReport::from_json(&j).expect("round trip");
    assert_eq!(back, *report);
    let mut old = j.clone();
    if let anton_obs::json::Json::Obj(pairs) = &mut old {
        pairs.retain(|(k, _)| k != "static_verdict");
    }
    let back = anton_sim::sim::DeadlockReport::from_json(&old).expect("tolerant parse");
    assert_eq!(back.static_verdict, StaticVerdict::Unknown);
}
