//! End-to-end validation of the typed metrics layer: conservation between
//! [`Metrics`] aggregates and the raw simulator counters, occupancy-
//! histogram gating, and determinism of the whole record.

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_sim::driver::BatchDriver;
use anton_sim::metrics::LinkClass;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

fn run_uniform(collect_metrics: bool, seed: u64) -> Sim {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        collect_metrics,
        seed,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(8)
        .seed(1)
        .build();
    assert_eq!(sim.run(&mut drv, 1_000_000), RunOutcome::Completed);
    sim
}

#[test]
fn link_class_flits_sum_to_flit_hops() {
    let sim = run_uniform(false, 1);
    let m = sim.metrics();
    let class_total: u64 = m.link_classes.iter().map(|c| c.flits).sum();
    assert_eq!(
        class_total, m.stats.flit_hops,
        "every flit hop belongs to one class"
    );
    assert_eq!(m.link_class(LinkClass::Torus).flits, m.stats.torus_flits);
    assert_eq!(m.cycles, sim.now());
    // A 2×2×2 machine has 12 torus channels per node × 8 nodes.
    assert_eq!(m.link_class(LinkClass::Torus).wires, 8 * 12);
    for c in &m.link_classes {
        assert!(c.peak_util >= c.mean_util, "{}: peak below mean", c.class);
    }
}

#[test]
fn occupancy_histograms_gated_by_params() {
    let plain = run_uniform(false, 1).metrics();
    assert!(plain.vc_occupancy.is_empty(), "tracking must default off");

    let tracked_sim = run_uniform(true, 1);
    let tracked = tracked_sim.metrics();
    assert!(!tracked.vc_occupancy.is_empty());
    // Histogram totals are wire·cycles: every tracked (class, vc) of a
    // class with w wires accounts exactly w × cycles.
    for h in &tracked.vc_occupancy {
        let total: u64 = h.buckets.iter().sum();
        let wires = tracked.link_class(h.class).wires as u64;
        assert_eq!(
            total,
            wires * tracked.cycles,
            "{} vc{} histogram does not cover the run",
            h.class,
            h.vc_index
        );
        assert!(h.mean() >= 0.0 && h.busy_fraction() <= 1.0);
    }
    // Traffic flowed, so something was buffered somewhere.
    assert!(tracked.vc_occupancy.iter().any(|h| h.busy_fraction() > 0.0));
}

#[test]
fn collecting_metrics_does_not_perturb_results() {
    let plain = run_uniform(false, 7);
    let tracked = run_uniform(true, 7);
    assert_eq!(
        plain.stats().delivered_packets,
        tracked.stats().delivered_packets
    );
    assert_eq!(plain.stats().flit_hops, tracked.stats().flit_hops);
    assert_eq!(
        plain.now(),
        tracked.now(),
        "tracking must not change timing"
    );
    assert_eq!(plain.grant_counts(), tracked.grant_counts());
}

#[test]
fn grant_counts_are_live_and_deterministic() {
    let a = run_uniform(false, 3);
    let b = run_uniform(false, 3);
    let g = a.grant_counts();
    assert!(
        g.sa1 > 0 && g.output > 0 && g.serializer > 0,
        "all sites granted: {g:?}"
    );
    assert_eq!(g, b.grant_counts(), "same seed, same grants");
    // Every grant moves one packet through a router output, and SA1 feeds
    // SA2, so SA1 grants can't be fewer than output grants.
    assert!(g.sa1 >= g.output);
}

/// Wraps [`BatchDriver`], recording every packet delivery for exact
/// comparison across instrumentation settings.
struct RecordingBatch {
    inner: BatchDriver,
    deliveries: Vec<anton_sim::sim::PacketDelivery>,
}

impl anton_sim::sim::Driver for RecordingBatch {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim);
    }
    fn on_delivery(&mut self, sim: &mut Sim, d: &anton_sim::sim::Delivery) {
        if let anton_sim::sim::Delivery::Packet(p) = d {
            self.deliveries.push(p.clone());
        }
        self.inner.on_delivery(sim, d);
    }
    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

#[test]
fn instrumentation_toggles_never_change_routing_or_deliveries() {
    // Flipping collect_grants, collect_metrics, and any TraceConfig (event
    // recording, sampling at any window size) must be observationally
    // invisible: identical link-level routes, VCs, per-packet delivery
    // cycles, and final simulated time.
    let run = |collect_grants: bool, collect_metrics: bool, trace: TraceConfig| {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let params = SimParams {
            collect_grants,
            collect_metrics,
            trace,
            seed: 11,
            ..SimParams::default()
        };
        let mut sim = Sim::builder().config(cfg).params(params).build();
        sim.record_routes = true;
        let inner = BatchDriver::builder(&sim)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(6)
            .seed(5)
            .build();
        let mut drv = RecordingBatch {
            inner,
            deliveries: Vec::new(),
        };
        assert_eq!(sim.run(&mut drv, 1_000_000), RunOutcome::Completed);
        let mut log: Vec<_> = drv
            .deliveries
            .into_iter()
            .map(|p| {
                (
                    p.src,
                    p.dst,
                    p.injected_at,
                    p.delivered_at,
                    p.torus_hops,
                    p.route_log.expect("routes recorded"),
                )
            })
            .collect();
        log.sort_by_key(|(src, dst, inj, del, ..)| (*src, *dst, *inj, *del));
        (sim.now(), log)
    };
    let reference = run(true, false, TraceConfig::default()); // the defaults
    for (grants, metrics) in [(false, false), (true, true), (false, true)] {
        let got = run(grants, metrics, TraceConfig::default());
        assert_eq!(
            reference.0, got.0,
            "final cycle changed under grants={grants} metrics={metrics}"
        );
        assert_eq!(
            reference.1, got.1,
            "deliveries/routes changed under grants={grants} metrics={metrics}"
        );
    }
    // Observability at any setting: full event recording (tiny and large
    // rings), sampling at several window sizes, stall attribution, all at
    // once, and the profiler flag.
    let trace_variants = [
        TraceConfig::events(4),
        TraceConfig::events(4096),
        TraceConfig::sampled(1),
        TraceConfig::sampled(37),
        TraceConfig::sampled(100_000), // larger than the run: tail-only
        TraceConfig::stalls(),
        TraceConfig {
            stalls: true,
            ..TraceConfig::events(16)
        },
        TraceConfig {
            events: true,
            ring_capacity: 64,
            sample_every: 50,
            profile: true,
            stalls: true,
        },
    ];
    for trace in trace_variants {
        let got = run(true, false, trace);
        assert_eq!(reference.0, got.0, "final cycle changed under {trace:?}");
        assert_eq!(
            reference.1, got.1,
            "deliveries/routes changed under {trace:?}"
        );
    }
}

#[test]
fn recorder_and_sampler_capture_the_run() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        trace: TraceConfig {
            events: true,
            ring_capacity: 256,
            sample_every: 64,
            ..TraceConfig::default()
        },
        seed: 9,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(8)
        .seed(2)
        .build();
    assert_eq!(sim.run(&mut drv, 1_000_000), RunOutcome::Completed);
    sim.flush_samples();

    let rec = sim.recorder().expect("events enabled");
    assert!(rec.total_recorded() > 0, "a saturating run records events");
    let events = rec.all_events();
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    let delivers = events.iter().filter(|e| e.kind.name() == "deliver").count() as u64;
    // Rings drop oldest, so at most stats.delivered_packets survive.
    assert!(delivers <= sim.stats().delivered_packets);
    assert!(delivers > 0, "recent deliveries stay in the rings");

    let ts = sim.timeseries().expect("sampling enabled");
    assert!(ts.windows().len() >= 2, "the run spans multiple windows");
    let injected = ts
        .channels()
        .iter()
        .position(|(n, _)| n == "injected_packets")
        .unwrap();
    let total: u64 = ts.windows().iter().map(|w| w.values[injected]).sum();
    assert_eq!(
        total,
        sim.stats().injected_packets,
        "per-window counter deltas must sum to the run total"
    );
}
