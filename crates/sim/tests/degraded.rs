//! Integration coverage for fault-aware routing: a single external link
//! going Down must be survived via the pre-certified degraded route
//! tables — every unicast packet still delivers exactly once, packet
//! conservation and credit balance hold, and the deadlock watchdog stays
//! silent. The sweep also cross-checks that the table set the simulator
//! installs is exactly the one the standalone certifier approves.

use anton_core::chip::ChanId;
use anton_core::config::MachineConfig;
use anton_core::route_table::DownLinkSet;
use anton_core::topology::{NodeId, TorusShape};
use anton_fault::{FaultKind, FaultSchedule};
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::shard::ShardedSim;
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;
use anton_verify::verify_degraded;

/// A schedule where exactly one link is dead for the whole run.
fn down_forever(node: NodeId, chan: ChanId) -> FaultSchedule {
    FaultSchedule::uniform(3, 0.0).with_fault(
        node,
        chan,
        FaultKind::Down {
            from_cycle: 0,
            until_cycle: u64::MAX,
        },
    )
}

/// Runs a uniform-random unicast batch with one link Down forever and
/// asserts the survival contract: completion, silent watchdog, exact
/// packet conservation, and clean invariants at quiesce. Returns the
/// number of packets that took the degraded tables.
fn assert_survives_single_down(
    shape: TorusShape,
    node: NodeId,
    chan: ChanId,
    packets_per_endpoint: u64,
) -> u64 {
    let cfg = MachineConfig::new(shape);
    let params = SimParams {
        fault: Some(down_forever(node, chan)),
        watchdog_cycles: 20_000,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(packets_per_endpoint)
        .seed(11)
        .build();
    let outcome = sim.run(&mut drv, 50_000_000);
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "single down link {chan:?} at {node:?} on {shape} must not hang the run"
    );
    assert!(
        sim.deadlock_report().is_none(),
        "watchdog must stay silent for a survivable single-link failure"
    );
    assert_eq!(sim.live_packets(), 0);
    assert_eq!(
        sim.stats().injected_packets,
        sim.stats().delivered_packets,
        "every unicast must deliver exactly once around the dead link"
    );
    sim.check_invariants()
        .expect("conservation and credit balance at quiesce");
    sim.stats().rerouted_packets
}

#[test]
fn any_single_down_link_on_cube4_delivers_everything() {
    // Sweep every channel direction at a corner node and an interior
    // node of the 4x4x4 torus. For each position the run must complete
    // with the watchdog silent, and the degraded table set the simulator
    // installed must be exactly one the standalone certifier approves.
    let shape = TorusShape::cube(4);
    let cfg = MachineConfig::new(shape);
    let mut total_rerouted = 0;
    for node in [NodeId(0), NodeId(21)] {
        for chan in ChanId::all() {
            let mut downs = DownLinkSet::empty(shape);
            downs.insert(node, chan);
            let verdict = verify_degraded(&cfg, &downs);
            assert!(
                verdict.certified(),
                "single down link {chan:?} at {node:?} must certify: {:?}",
                verdict.diagnostics
            );
            total_rerouted += assert_survives_single_down(shape, node, chan, 1);
        }
    }
    assert!(
        total_rerouted > 0,
        "uniform traffic must exercise the degraded tables somewhere in the sweep"
    );
}

#[test]
fn single_down_link_on_paper_scale_torus_delivers_everything() {
    // The paper's 8x8x8 machine: one dead external link, all-to-all
    // uniform traffic from all 8192 endpoints. One position suffices at
    // this scale — the cube-4 sweep covers the direction/dateline cases.
    let shape = TorusShape::cube(8);
    let node = NodeId(0);
    let chan = ChanId::from_index(0);
    let cfg = MachineConfig::new(shape);
    let mut downs = DownLinkSet::empty(shape);
    downs.insert(node, chan);
    assert!(
        verify_degraded(&cfg, &downs).certified(),
        "8x8x8 single-link degraded tables must certify"
    );
    let rerouted = assert_survives_single_down(shape, node, chan, 1);
    assert!(
        rerouted > 0,
        "8192 uniform packets must route some traffic across the dead link"
    );
}

#[test]
fn sharded_kernel_matches_serial_under_permanent_outage() {
    // The sharded kernel builds its degraded state independently per
    // replica; it must agree with the serial kernel cycle-for-cycle even
    // when the whole run executes on the degraded tables.
    let shape = TorusShape::cube(2);
    let cfg = MachineConfig::new(shape);
    let schedule = down_forever(NodeId(0), ChanId::from_index(0));
    let params = SimParams {
        fault: Some(schedule),
        watchdog_cycles: 20_000,
        ..SimParams::default()
    };

    let mut serial = Sim::builder()
        .config(cfg.clone())
        .params(params.clone())
        .build();
    let mut drv = BatchDriver::builder(&serial)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(20)
        .seed(11)
        .build();
    let serial_out = serial.run(&mut drv, 10_000_000);
    assert_eq!(serial_out, RunOutcome::Completed);
    serial.check_invariants().unwrap();

    for shards in [2usize, 4] {
        let mut sharded = ShardedSim::new(
            cfg.clone(),
            SimParams {
                shards,
                ..params.clone()
            },
        );
        let mut sdrv = BatchDriver::builder_for(&cfg)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(20)
            .seed(11)
            .build();
        let sharded_out = sharded.run(&mut sdrv, 10_000_000);
        assert_eq!(sharded_out, RunOutcome::Completed);
        sharded.check_invariants().unwrap();
        assert_eq!(
            sharded.now(),
            serial.now(),
            "{shards}-shard run must finish on the same cycle as serial"
        );
        let (ss, ds) = (serial.stats(), sharded.stats());
        assert_eq!(ss.delivered_packets, ds.delivered_packets);
        assert_eq!(ss.injected_packets, ds.injected_packets);
        assert_eq!(ss.rerouted_packets, ds.rerouted_packets);
        assert_eq!(ss.flit_hops, ds.flit_hops);
    }
}
