//! Stall attribution and the congestion analyzer: the counters are exact,
//! shard-invariant, and explain a saturated run's bottleneck.

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_obs::StallCause;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

fn stall_params() -> SimParams {
    SimParams {
        trace: TraceConfig::stalls(),
        ..SimParams::default()
    }
}

fn batch(cfg: &MachineConfig, packets: u64) -> BatchDriver {
    BatchDriver::builder_for(cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(packets)
        .seed(9)
        .build()
}

#[test]
fn stall_attribution_is_byte_identical_serial_vs_sharded() {
    let cfg = MachineConfig::new(TorusShape::cube(2));

    let mut serial = Sim::builder()
        .config(cfg.clone())
        .params(stall_params())
        .build();
    let mut drv = batch(&cfg, 6);
    assert_eq!(serial.run(&mut drv, 1_000_000), RunOutcome::Completed);
    serial.flush_stalls();
    let serial_report = serial
        .congestion_report()
        .expect("stall attribution on")
        .to_json()
        .to_pretty_string();
    let serial_total = serial
        .stall_table()
        .expect("stall attribution on")
        .total_stall_cycles();
    assert!(serial_total > 0, "a saturating batch must attribute stalls");

    for shards in [2usize, 4] {
        let mut sim = Sim::builder()
            .config(cfg.clone())
            .params(stall_params())
            .shards(shards)
            .build_sharded();
        let mut drv = batch(&cfg, 6);
        assert_eq!(sim.run(&mut drv, 1_000_000), RunOutcome::Completed);
        let merged = sim.merged_stalls().expect("stall attribution on");
        assert_eq!(merged.total_stall_cycles(), serial_total, "{shards} shards");
        let report = sim
            .congestion_report()
            .expect("stall attribution on")
            .to_json()
            .to_pretty_string();
        assert_eq!(report, serial_report, "{shards} shards");
    }
}

#[test]
fn hotspot_totals_sum_and_the_serializer_class_leads_when_saturated() {
    // The probe's headline configuration: a saturated uniform batch on the
    // 4×4×4 machine. The inter-node serializer interface (the
    // `router_to_chan` wires feeding the 45-cost/14-gain token buckets) is
    // the narrowest resource, so its class must rank first.
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(stall_params())
        .build();
    let mut drv = BatchDriver::builder_for(&cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(24)
        .seed(42)
        .build();
    assert_eq!(sim.run(&mut drv, 100_000_000), RunOutcome::Completed);
    sim.flush_stalls();
    let report = sim.congestion_report().expect("stall attribution on");

    let hotspot_sum: u64 = report.hotspots.iter().map(|h| h.total()).sum();
    assert_eq!(hotspot_sum, report.total_stall_cycles);
    assert_eq!(
        report.total_stall_cycles,
        sim.stall_table().unwrap().total_stall_cycles()
    );
    assert_eq!(
        report.class_totals[0].0, "router_to_chan",
        "full ranking: {:?}",
        report.class_totals
    );
    assert!(
        report.cause_totals[StallCause::SerializerBusy.index()] > 0
            && report.cause_totals[StallCause::NoCredit.index()] > 0,
        "saturation shows both serializer and credit stalls: {:?}",
        report.cause_totals
    );
    // Credit stalls carry blocker edges, so backpressure chains resolve.
    assert!(!report.roots.is_empty(), "root blockers derived");
}

#[test]
fn stall_attribution_is_off_by_default_and_phase_profile_gates() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut plain = Sim::builder().config(cfg.clone()).build();
    let mut drv = batch(&cfg, 2);
    assert_eq!(plain.run(&mut drv, 1_000_000), RunOutcome::Completed);
    assert!(plain.stall_table().is_none());
    assert!(plain.congestion_report().is_none());

    // Sharded, profiler off: no phase report.
    let mut off = Sim::builder().config(cfg.clone()).shards(2).build_sharded();
    let mut drv = batch(&cfg, 2);
    assert_eq!(off.run(&mut drv, 1_000_000), RunOutcome::Completed);
    assert!(off.phase_ns().is_none());
    assert!(off.merged_stalls().is_none());

    // Sharded, profiler on: one four-phase breakdown per shard, each
    // accounting for some of the worker's wall clock.
    let mut on = Sim::builder()
        .config(cfg.clone())
        .params(SimParams {
            trace: TraceConfig {
                profile: true,
                ..TraceConfig::default()
            },
            ..SimParams::default()
        })
        .shards(2)
        .build_sharded();
    let mut drv = batch(&cfg, 2);
    assert_eq!(on.run(&mut drv, 1_000_000), RunOutcome::Completed);
    let phases = on.phase_ns().expect("profiler on");
    assert_eq!(phases.len(), 2);
    for p in phases {
        assert!(p.iter().sum::<u64>() > 0, "each worker accumulated time");
    }
}
