//! Behavioural validation of the simulator against the reference semantics
//! of `anton-core` and the paper's qualitative claims.

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::McGroupId;
use anton_core::packet::{CounterId, Destination, Packet, Payload};
use anton_core::routing::{DimOrder, RouteSpec};
use anton_core::topology::{NodeCoord, Slice, TorusShape};
use anton_core::trace::trace_unicast;
use anton_core::vc::VcPolicy;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{PreflightMode, SimParams};
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::{NodePermutation, UniformRandom};

fn ep(cfg: &MachineConfig, node: NodeCoord, e: u8) -> GlobalEndpoint {
    GlobalEndpoint {
        node: cfg.shape.id(node),
        ep: LocalEndpointId(e),
    }
}

/// Driver that does nothing: packets are injected manually.
struct Idle {
    want: u64,
    got: u64,
    deliveries: Vec<anton_sim::sim::PacketDelivery>,
}

impl Idle {
    fn new(want: u64) -> Idle {
        Idle {
            want,
            got: 0,
            deliveries: Vec::new(),
        }
    }
}

impl Driver for Idle {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            self.got += 1;
            self.deliveries.push(p.clone());
        }
    }
    fn done(&self, _sim: &Sim) -> bool {
        self.got >= self.want
    }
}

#[test]
fn sim_routes_match_reference_tracer() {
    // Every link and VC the simulator sends a packet over must match the
    // reference trace, across all dimension orders and both slices.
    let cfg = MachineConfig::new(TorusShape::new(4, 3, 2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    sim.record_routes = true;
    let cases = [
        (NodeCoord::new(0, 0, 0), NodeCoord::new(2, 1, 1), 0u8, 15u8),
        (NodeCoord::new(3, 2, 1), NodeCoord::new(1, 0, 0), 5, 0),
        (NodeCoord::new(1, 1, 1), NodeCoord::new(1, 1, 1), 2, 9),
        (NodeCoord::new(3, 0, 0), NodeCoord::new(1, 0, 0), 7, 7), // X dateline + through
        (NodeCoord::new(0, 2, 0), NodeCoord::new(0, 0, 1), 4, 12),
    ];
    for (src_c, dst_c, se, de) in cases {
        for order in DimOrder::ALL {
            for slice in Slice::ALL {
                let src = ep(&cfg, src_c, se);
                let dst = ep(&cfg, dst_c, de);
                let spec = RouteSpec::deterministic(&cfg.shape, src_c, dst_c, order, slice);
                let expected = trace_unicast(&cfg, src, dst, &spec);
                let pkt = Packet::write(src, dst, Payload::zeros(16));
                sim.inject_with_spec(src, pkt, spec);
                let mut drv = Idle::new(1);
                assert_eq!(sim.run(&mut drv, 50_000), RunOutcome::Completed);
                let log = drv.deliveries[0].route_log.clone().expect("route recorded");
                assert_eq!(
                    log, expected,
                    "route mismatch {src_c}->{dst_c} order {order} slice {slice}"
                );
            }
        }
    }
}

#[test]
fn two_flit_packets_route_identically() {
    let cfg = MachineConfig::new(TorusShape::cube(3));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    sim.record_routes = true;
    let src = ep(&cfg, NodeCoord::new(0, 0, 0), 0);
    let dst = ep(&cfg, NodeCoord::new(2, 2, 2), 8);
    let spec = RouteSpec::deterministic(
        &cfg.shape,
        NodeCoord::new(0, 0, 0),
        NodeCoord::new(2, 2, 2),
        DimOrder::XYZ,
        Slice(1),
    );
    let expected = trace_unicast(&cfg, src, dst, &spec);
    let pkt = Packet::write(src, dst, Payload::ones(32));
    assert_eq!(pkt.num_flits(), 2);
    sim.inject_with_spec(src, pkt, spec);
    let mut drv = Idle::new(1);
    assert_eq!(sim.run(&mut drv, 50_000), RunOutcome::Completed);
    assert_eq!(drv.deliveries[0].route_log.clone().unwrap(), expected);
}

#[test]
fn zero_load_latency_is_linear_in_hops() {
    let cfg = MachineConfig::new(TorusShape::new(8, 1, 1));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    // Measure pure network latency (inject -> deliver) for 1..4 X hops.
    let mut lat = Vec::new();
    for hops in 1..=4u8 {
        let src = ep(&cfg, NodeCoord::new(0, 0, 0), 0);
        let dst = ep(&cfg, NodeCoord::new(hops, 0, 0), 0);
        let spec = RouteSpec::deterministic(
            &cfg.shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(hops, 0, 0),
            DimOrder::XYZ,
            Slice(0),
        );
        sim.inject_with_spec(src, Packet::write(src, dst, Payload::zeros(16)), spec);
        let mut drv = Idle::new(1);
        assert_eq!(sim.run(&mut drv, 100_000), RunOutcome::Completed);
        let d = &drv.deliveries[0];
        assert_eq!(d.torus_hops, u16::from(hops));
        lat.push((d.delivered_at - d.injected_at) as f64);
    }
    let d1 = lat[1] - lat[0];
    for w in lat.windows(2) {
        let step = w[1] - w[0];
        assert!(
            (step - d1).abs() < 1e-9,
            "per-hop latency not constant: {lat:?}"
        );
    }
    // X through-hops cross the skip channel: a through-node costs one
    // router plus the skip traversal.
    assert!(
        d1 > 30.0 && d1 < 120.0,
        "per-hop {d1} cycles out of plausible range"
    );
}

#[test]
fn naive_single_vc_deadlocks_on_ring_wrap_traffic() {
    // All nodes send to the node k/2 across the X ring: with a single VC
    // the ring fills and deadlocks; the promotion policy drains it.
    let shape = TorusShape::new(4, 1, 1);
    let perm: Vec<u32> = (0..4u32).map(|x| (x + 2) % 4).collect();

    let mut cfg = MachineConfig::new(shape);
    cfg.vc_policy = VcPolicy::NaiveSingle;
    // The pre-flight verifier rejects this config (that is the point of
    // the test), so demote it to a warning.
    let params = SimParams {
        buffer_depth: 2,
        watchdog_cycles: 5_000,
        preflight: PreflightMode::WarnOnly,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params.clone()).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(NodePermutation::new(perm.clone())))
        .packets_per_endpoint(400)
        .seed(7)
        .build();
    let outcome = sim.run(&mut drv, 3_000_000);
    assert_eq!(
        outcome,
        RunOutcome::Deadlocked,
        "single-VC wrap traffic must deadlock"
    );

    // Identical workload under the Anton promotion policy completes.
    let mut cfg = MachineConfig::new(shape);
    cfg.vc_policy = VcPolicy::Anton;
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(NodePermutation::new(perm)))
        .packets_per_endpoint(400)
        .seed(7)
        .build();
    assert_eq!(sim.run(&mut drv, 3_000_000), RunOutcome::Completed);
}

#[test]
fn uniform_batch_completes_and_is_conserved() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut sim = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
    let batch = 50;
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(3)
        .build();
    assert_eq!(sim.run(&mut drv, 2_000_000), RunOutcome::Completed);
    let stats = sim.stats();
    let n_eps = sim.cfg.num_endpoints() as u64;
    assert_eq!(stats.injected_packets, batch * n_eps);
    assert_eq!(stats.delivered_packets, batch * n_eps);
    assert_eq!(sim.live_packets(), 0);
    let total_recv: u64 = stats.recv_per_endpoint.iter().sum();
    assert_eq!(total_recv, batch * n_eps);
}

#[test]
fn counted_write_handler_fires_after_count() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let src = ep(&cfg, NodeCoord::new(0, 0, 0), 0);
    let dst = ep(&cfg, NodeCoord::new(1, 1, 1), 3);
    let counter = CounterId(9);
    sim.set_counter(dst, counter, 3);
    for _ in 0..3 {
        let mut pkt = Packet::write(src, dst, Payload::zeros(16));
        pkt.counter = Some(counter);
        sim.inject(src, pkt);
    }
    struct HandlerWait {
        fired: Option<u64>,
        packets: u64,
        last_packet_at: u64,
    }
    impl Driver for HandlerWait {
        fn pre_cycle(&mut self, _sim: &mut Sim) {}
        fn on_delivery(&mut self, sim: &mut Sim, d: &Delivery) {
            match d {
                Delivery::Packet(_) => {
                    self.packets += 1;
                    self.last_packet_at = sim.now();
                }
                Delivery::Handler { counter, .. } => {
                    assert_eq!(counter.0, 9);
                    self.fired = Some(sim.now());
                }
            }
        }
        fn done(&self, _sim: &Sim) -> bool {
            self.fired.is_some()
        }
    }
    let mut drv = HandlerWait {
        fired: None,
        packets: 0,
        last_packet_at: 0,
    };
    assert_eq!(sim.run(&mut drv, 100_000), RunOutcome::Completed);
    assert_eq!(drv.packets, 3, "handler fired before all writes arrived");
    let dispatch = sim.params.latency.handler_dispatch_cycles();
    assert_eq!(drv.fired.unwrap(), drv.last_packet_at + dispatch);
}

#[test]
fn multicast_delivers_exactly_the_destination_set() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let src_node = NodeCoord::new(1, 1, 1);
    let spec = anton_traffic::md::HaloSpec {
        radius: 1,
        plane_normal: None,
        endpoints_per_node: 2,
    };
    let dests = anton_traffic::md::halo_dest_set(&cfg, src_node, spec);
    let group = anton_core::multicast::McGroup::build(
        &cfg.shape,
        McGroupId(0),
        src_node,
        dests.clone(),
        &anton_traffic::md::alternating_variants(),
    );
    let tree_hops = group.trees[0].torus_hops();
    sim.add_multicast_group(group);

    let src = ep(&cfg, src_node, 0);
    let mut pkt = Packet::write(src, src, Payload::zeros(16));
    pkt.dst = Destination::Multicast {
        group: McGroupId(0),
        tree: 0,
    };
    sim.inject(src, pkt);
    let want = dests.num_endpoints() as u64;
    let mut drv = Idle::new(want);
    assert_eq!(sim.run(&mut drv, 200_000), RunOutcome::Completed);

    // Exactly one copy per destination endpoint.
    let mut got: Vec<GlobalEndpoint> = drv.deliveries.iter().map(|d| d.dst).collect();
    got.sort();
    got.dedup();
    assert_eq!(got.len(), want as usize, "duplicate or missing copies");
    for (node, eps) in dests.iter() {
        for e in eps {
            assert!(
                got.contains(&ep(&cfg, node, e.0)),
                "missing copy at {node}/{e}"
            );
        }
    }
    // Bandwidth saving: torus flits equal the tree's edge count, not the
    // unicast hop total.
    assert_eq!(sim.stats().torus_flits, u64::from(tree_hops));
    assert!(u64::from(tree_hops) < u64::from(dests.unicast_torus_hops(&cfg.shape, src_node)));
    assert_eq!(sim.live_packets(), 0);
}

#[test]
fn multicast_alternating_trees_spread_traffic() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let src_node = NodeCoord::new(0, 0, 0);
    let dests =
        anton_traffic::md::halo_dest_set(&cfg, src_node, anton_traffic::md::HaloSpec::default());
    let group = anton_core::multicast::McGroup::build(
        &cfg.shape,
        McGroupId(5),
        src_node,
        dests.clone(),
        &anton_traffic::md::alternating_variants(),
    );
    sim.add_multicast_group(group);
    let src = ep(&cfg, src_node, 0);
    for tree in [0u8, 1] {
        let mut pkt = Packet::write(src, src, Payload::zeros(16));
        pkt.dst = Destination::Multicast {
            group: McGroupId(5),
            tree,
        };
        sim.inject(src, pkt);
    }
    let want = 2 * dests.num_endpoints() as u64;
    let mut drv = Idle::new(want);
    assert_eq!(sim.run(&mut drv, 400_000), RunOutcome::Completed);
    assert_eq!(drv.got, want);
}

#[test]
fn fairness_improves_with_inverse_weighted_arbiters() {
    // Uniform random traffic beyond saturation: inverse-weighted arbiters
    // should spread service at least as evenly as round-robin, measured by
    // the spread of per-endpoint receive completion.
    use anton_arbiter::ArbiterKind;
    let shape = TorusShape::cube(2);
    let run = |kind: ArbiterKind| -> f64 {
        let cfg = MachineConfig::new(shape);
        let params = SimParams {
            arbiter: kind,
            ..SimParams::default()
        };
        let mut sim = Sim::builder().config(cfg).params(params).build();
        let mut drv = BatchDriver::builder(&sim)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(150)
            .seed(11)
            .build();
        assert_eq!(sim.run(&mut drv, 5_000_000), RunOutcome::Completed);
        drv.finish_cycle as f64
    };
    let rr = run(ArbiterKind::RoundRobin);
    let iw = run(ArbiterKind::InverseWeighted { m_bits: 5 });
    // With symmetric uniform traffic the uniform-weight IW arbiter should
    // not be slower than RR beyond noise.
    assert!(iw < rr * 1.25, "IW completion {iw} much worse than RR {rr}");
}
