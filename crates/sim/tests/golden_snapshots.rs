//! Golden determinism snapshots of the simulator kernel.
//!
//! Each scenario runs a figure-shaped workload (fig9 batch throughput,
//! fault-sweep open-loop traffic, multicast + counted writes) on a small
//! machine and serializes every observable output — delivery stream, event
//! counters, per-endpoint receive counts, grant counts, link-class
//! utilization, occupancy histograms, per-wire flit counts — into a
//! deterministic text form compared byte-for-byte against the committed
//! snapshot under `tests/snapshots/`.
//!
//! The snapshots were generated on the pre-event-driven (dirty-scan) kernel;
//! any kernel change that alters a single routing decision, arbitration
//! grant, delivery cycle, or metric shows up here as a byte diff. To
//! regenerate after an *intentional* behavioral change, run with
//! `ANTON_UPDATE_SNAPSHOTS=1`.

use std::fmt::Write as _;
use std::path::PathBuf;

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_core::chip::{ChanId, LocalEndpointId};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{McGroup, McGroupId};
use anton_core::packet::{CounterId, Destination, Packet, Payload};
use anton_core::topology::{NodeCoord, NodeId, TorusShape};
use anton_fault::{FaultKind, FaultSchedule};
use anton_sim::driver::{BatchDriver, LoadDriver};
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

/// 64-bit FNV-1a, folded over `u64` words.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Wraps any driver, recording the full ordered delivery stream.
struct Recorder<D> {
    inner: D,
    /// (src_idx, dst_idx, pattern, counter|u64::MAX, injected, delivered,
    /// torus_hops) per packet delivery, in delivery order.
    packets: Vec<[u64; 7]>,
    /// (ep_idx, counter, cycle) per handler dispatch, in order.
    handlers: Vec<[u64; 3]>,
}

impl<D> Recorder<D> {
    fn new(inner: D) -> Recorder<D> {
        Recorder {
            inner,
            packets: Vec::new(),
            handlers: Vec::new(),
        }
    }
}

impl<D: Driver> Driver for Recorder<D> {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim);
    }

    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery) {
        match delivery {
            Delivery::Packet(p) => self.packets.push([
                sim.cfg.endpoint_index(p.src) as u64,
                sim.cfg.endpoint_index(p.dst) as u64,
                u64::from(p.pattern),
                p.counter.map_or(u64::MAX, |c| u64::from(c.0)),
                p.injected_at,
                p.delivered_at,
                u64::from(p.torus_hops),
            ]),
            Delivery::Handler { ep, counter } => self.handlers.push([
                sim.cfg.endpoint_index(*ep) as u64,
                u64::from(counter.0),
                sim.now(),
            ]),
        }
        self.inner.on_delivery(sim, delivery);
    }

    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

/// Serializes every observable output of a finished run.
fn render<D: Driver>(name: &str, sim: &Sim, drv: &Recorder<D>, outcome: RunOutcome) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "# golden snapshot: {name}");
    let _ = writeln!(w, "outcome: {outcome:?}");
    let _ = writeln!(w, "cycles: {}", sim.now());
    let _ = writeln!(w, "live_packets: {}", sim.live_packets());
    let stats = sim.stats();
    let _ = writeln!(w, "injected_packets: {}", stats.injected_packets);
    let _ = writeln!(w, "delivered_packets: {}", stats.delivered_packets);
    let _ = writeln!(w, "flit_hops: {}", stats.flit_hops);
    let _ = writeln!(w, "torus_flits: {}", stats.torus_flits);
    let _ = writeln!(w, "last_delivery_cycle: {}", stats.last_delivery_cycle);
    let mut recv = Fnv::new();
    for &c in &stats.recv_per_endpoint {
        recv.word(c);
    }
    let _ = writeln!(
        w,
        "recv_per_endpoint: n={} digest={:#018x}",
        stats.recv_per_endpoint.len(),
        recv.0
    );
    let mut pd = Fnv::new();
    for rec in &drv.packets {
        for &f in rec {
            pd.word(f);
        }
    }
    let _ = writeln!(
        w,
        "packet_deliveries: n={} digest={:#018x}",
        drv.packets.len(),
        pd.0
    );
    for h in &drv.handlers {
        let _ = writeln!(w, "handler: ep={} counter={} cycle={}", h[0], h[1], h[2]);
    }
    let m = sim.metrics();
    let _ = writeln!(
        w,
        "grants: sa1={} output={} serializer={}",
        m.grants.sa1, m.grants.output, m.grants.serializer
    );
    for lc in &m.link_classes {
        let _ = writeln!(
            w,
            "link_class {}: wires={} flits={}",
            lc.class, lc.wires, lc.flits
        );
    }
    for occ in &m.vc_occupancy {
        if occ.buckets.iter().all(|&b| b == 0) {
            continue;
        }
        let _ = write!(w, "occ {} vc{}:", occ.class, occ.vc_index);
        for b in occ.buckets {
            let _ = write!(w, " {b}");
        }
        let _ = writeln!(w);
    }
    if let Some(f) = &m.fault {
        let t = f.totals;
        let _ = writeln!(
            w,
            "fault: links={} sent={} retx={} data_dropped={} ack_dropped={} delivered={}",
            f.shimmed_links,
            t.frames_sent,
            t.retransmissions,
            t.data_frames_dropped,
            t.ack_frames_dropped,
            t.flits_delivered
        );
    }
    let mut wires = Fnv::new();
    for (label, flits) in sim.wire_utilizations() {
        wires.str(&label.to_string());
        wires.word(flits);
    }
    let _ = writeln!(w, "wire_flits_digest: {:#018x}", wires.0);
    out
}

fn check(name: &str, rendered: &str) {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("tests/snapshots");
    path.push(format!("{name}.txt"));
    if std::env::var_os("ANTON_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        want, rendered,
        "kernel output diverged from golden snapshot {name}; if the change \
         is intentional, regenerate with ANTON_UPDATE_SNAPSHOTS=1"
    );
}

fn ep(cfg: &MachineConfig, c: NodeCoord, i: u8) -> GlobalEndpoint {
    GlobalEndpoint {
        node: cfg.shape.id(c),
        ep: LocalEndpointId(i),
    }
}

/// Figure 9-shaped: closed-loop batch of uniform traffic, round-robin
/// arbitration, metrics collection on.
#[test]
fn golden_fig9_round_robin() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        collect_metrics: true,
        ..SimParams::default()
    };
    let mut sim = Sim::new(cfg, params);
    let inner = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(10)
        .seed(42)
        .build();
    let mut drv = Recorder::new(inner);
    let outcome = sim.run(&mut drv, 2_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    sim.check_invariants().unwrap();
    check(
        "fig9_round_robin",
        &render("fig9_round_robin", &sim, &drv, outcome),
    );
}

/// Figure 9-shaped with programmed inverse-weighted arbiters (exercises the
/// weight-installation paths and EoS arbitration sites).
#[test]
fn golden_fig9_inverse_weighted() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let weights = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
    let params = SimParams {
        arbiter: ArbiterKind::InverseWeighted { m_bits: 5 },
        collect_metrics: true,
        ..SimParams::default()
    };
    let mut sim = Sim::new(cfg, params);
    for ((node, router, out), table) in &weights.tables {
        sim.set_arbiter_weights(*node, *router, *out, table.clone(), weights.m_bits);
    }
    for ((node, chan), table) in &weights.chan_tables {
        sim.set_chan_arbiter_weights(*node, *chan, table.clone(), weights.m_bits);
    }
    for ((node, router, port), table) in &weights.input_tables {
        sim.set_input_arbiter_weights(*node, *router, *port, table.clone(), weights.m_bits);
    }
    let inner = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(8)
        .seed(7)
        .build();
    let mut drv = Recorder::new(inner);
    let outcome = sim.run(&mut drv, 2_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    sim.check_invariants().unwrap();
    check(
        "fig9_inverse_weighted",
        &render("fig9_inverse_weighted", &sim, &drv, outcome),
    );
}

/// Fault-sweep-shaped: open-loop load under a lossy schedule with an outage
/// window, metrics collection on.
#[test]
fn golden_fault_sweep() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let schedule = FaultSchedule::uniform(5, 1e-4).with_fault(
        NodeId(0),
        ChanId::from_index(0),
        FaultKind::Down {
            from_cycle: 200,
            until_cycle: 900,
        },
    );
    let params = SimParams {
        collect_metrics: true,
        fault: Some(schedule),
        ..SimParams::default()
    };
    let mut sim = Sim::new(cfg.clone(), params);
    let inner = LoadDriver::new(&sim, Box::new(UniformRandom), 0.05, 20, 13);
    let mut drv = Recorder::new(inner);
    let outcome = sim.run(&mut drv, 10_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    sim.check_invariants().unwrap();
    check("fault_sweep", &render("fault_sweep", &sim, &drv, outcome));
}

/// Multicast trees plus counted-write synchronization (exercises the
/// replication tables, endpoint counters, and handler dispatch).
#[test]
fn golden_multicast_counted_write() {
    let cfg = MachineConfig::new(TorusShape::cube(3));
    let mut sim = Sim::new(cfg.clone(), SimParams::default());
    let src_node = NodeCoord::new(1, 1, 1);
    let dests =
        anton_traffic::md::halo_dest_set(&cfg, src_node, anton_traffic::md::HaloSpec::default());
    let n_dests = dests.num_endpoints() as u64;
    let group = McGroup::build(
        &cfg.shape,
        McGroupId(3),
        src_node,
        dests,
        &anton_traffic::md::alternating_variants(),
    );
    sim.add_multicast_group(group);
    let src = ep(&cfg, src_node, 0);
    for tree in [0u8, 1] {
        let mut pkt = Packet::write(src, src, Payload::zeros(16));
        pkt.dst = Destination::Multicast {
            group: McGroupId(3),
            tree,
        };
        sim.inject(src, pkt);
    }
    // Counted write: three writes arm a three-count counter at a far corner.
    let dst = ep(&cfg, NodeCoord::new(2, 2, 2), 5);
    let counter = CounterId(4);
    sim.set_counter(dst, counter, 3);
    for _ in 0..3 {
        let mut pkt = Packet::write(src, dst, Payload::zeros(16));
        pkt.counter = Some(counter);
        sim.inject(src, pkt);
    }

    struct Wait {
        want_packets: u64,
        packets: u64,
        handler_seen: bool,
    }
    impl Driver for Wait {
        fn pre_cycle(&mut self, _sim: &mut Sim) {}
        fn on_delivery(&mut self, _sim: &mut Sim, d: &Delivery) {
            match d {
                Delivery::Packet(_) => self.packets += 1,
                Delivery::Handler { .. } => self.handler_seen = true,
            }
        }
        fn done(&self, _sim: &Sim) -> bool {
            self.packets >= self.want_packets && self.handler_seen
        }
    }
    let inner = Wait {
        want_packets: 2 * n_dests + 3,
        packets: 0,
        handler_seen: false,
    };
    let mut drv = Recorder::new(inner);
    let outcome = sim.run(&mut drv, 1_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    sim.check_invariants().unwrap();
    check(
        "multicast_counted_write",
        &render("multicast_counted_write", &sim, &drv, outcome),
    );
}
