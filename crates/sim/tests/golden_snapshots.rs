//! Golden determinism snapshots of the simulator kernel.
//!
//! Each scenario runs a figure-shaped workload (fig9 batch throughput,
//! fault-sweep open-loop traffic, multicast + counted writes) on a small
//! machine and serializes every observable output — delivery stream, event
//! counters, per-endpoint receive counts, grant counts, link-class
//! utilization, occupancy histograms, per-wire flit counts — into a
//! deterministic text form compared byte-for-byte against the committed
//! snapshot under `tests/snapshots/`.
//!
//! Any kernel change that alters a single routing decision, arbitration
//! grant, delivery cycle, or metric shows up here as a byte diff. To
//! regenerate after an *intentional* behavioral change, run with
//! `ANTON_UPDATE_SNAPSHOTS=1`.
//!
//! Every scenario additionally runs on the sharded parallel kernel
//! ([`ShardedSim`]) at 1, 2, 4, and 8 shards, and the rendered output must
//! be byte-identical to the serial kernel's — the sharded kernel's
//! determinism contract.

use std::fmt::Write as _;
use std::path::PathBuf;

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_core::chip::{ChanId, LocalEndpointId};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{McGroup, McGroupId};
use anton_core::packet::{CounterId, Destination, Packet, Payload};
use anton_core::topology::{NodeCoord, NodeId, TorusShape};
use anton_core::trace::GlobalLink;
use anton_fault::{FaultKind, FaultSchedule};
use anton_sim::driver::{BatchDriver, LoadDriver};
use anton_sim::metrics::Metrics;
use anton_sim::params::SimParams;
use anton_sim::shard::{ShardableDriver, ShardedSim};
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim, SimStats};
use anton_traffic::patterns::UniformRandom;

/// 64-bit FNV-1a, folded over `u64` words.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Wraps any driver, recording the full ordered delivery stream.
struct Recorder<D> {
    inner: D,
    /// (src_idx, dst_idx, pattern, counter|u64::MAX, injected, delivered,
    /// torus_hops) per packet delivery, in delivery order.
    packets: Vec<[u64; 7]>,
    /// (ep_idx, counter, cycle) per handler dispatch, in order.
    handlers: Vec<[u64; 3]>,
}

impl<D> Recorder<D> {
    fn new(inner: D) -> Recorder<D> {
        Recorder {
            inner,
            packets: Vec::new(),
            handlers: Vec::new(),
        }
    }
}

impl<D: Driver> Driver for Recorder<D> {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim);
    }

    fn on_delivery(&mut self, sim: &mut Sim, delivery: &Delivery) {
        match delivery {
            Delivery::Packet(p) => self.packets.push([
                sim.cfg.endpoint_index(p.src) as u64,
                sim.cfg.endpoint_index(p.dst) as u64,
                u64::from(p.pattern),
                p.counter.map_or(u64::MAX, |c| u64::from(c.0)),
                p.injected_at,
                p.delivered_at,
                u64::from(p.torus_hops),
            ]),
            Delivery::Handler { ep, counter } => self.handlers.push([
                sim.cfg.endpoint_index(*ep) as u64,
                u64::from(counter.0),
                sim.now(),
            ]),
        }
        self.inner.on_delivery(sim, delivery);
    }

    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

/// In sharded mode the recording stays on the original driver — the
/// coordinator's serial-order replay feeds it — while the inner driver's
/// sub-drivers run the shards.
impl<D: ShardableDriver> ShardableDriver for Recorder<D> {
    fn split(
        &self,
        cfg: &MachineConfig,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<Box<dyn Driver + Send>> {
        self.inner.split(cfg, ranges)
    }

    fn done_implies_quiescent(&self) -> bool {
        self.inner.done_implies_quiescent()
    }
}

/// Which kernel a scenario runs on.
#[derive(Clone, Copy)]
enum Kernel {
    Serial,
    Sharded(usize),
}

/// Everything a finished run exposes, captured identically from either
/// kernel so the render is kernel-agnostic.
struct Observed {
    outcome: RunOutcome,
    cycles: u64,
    live: u64,
    stats: SimStats,
    metrics: Metrics,
    wires: Vec<(GlobalLink, u64)>,
}

fn observe(sim: &Sim, outcome: RunOutcome) -> Observed {
    Observed {
        outcome,
        cycles: sim.now(),
        live: sim.live_packets() as u64,
        stats: sim.stats().clone(),
        metrics: sim.metrics(),
        wires: sim.wire_utilizations(),
    }
}

fn observe_sharded(sim: &ShardedSim, outcome: RunOutcome) -> Observed {
    Observed {
        outcome,
        cycles: sim.now(),
        live: sim.live_packets() as u64,
        stats: sim.stats(),
        metrics: sim.metrics(),
        wires: sim.wire_utilizations(),
    }
}

/// Serializes every observable output of a finished run.
fn render<D>(name: &str, obs: &Observed, drv: &Recorder<D>) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "# golden snapshot: {name}");
    let _ = writeln!(w, "outcome: {:?}", obs.outcome);
    let _ = writeln!(w, "cycles: {}", obs.cycles);
    let _ = writeln!(w, "live_packets: {}", obs.live);
    let stats = &obs.stats;
    let _ = writeln!(w, "injected_packets: {}", stats.injected_packets);
    let _ = writeln!(w, "delivered_packets: {}", stats.delivered_packets);
    let _ = writeln!(w, "flit_hops: {}", stats.flit_hops);
    let _ = writeln!(w, "torus_flits: {}", stats.torus_flits);
    let _ = writeln!(w, "last_delivery_cycle: {}", stats.last_delivery_cycle);
    let mut recv = Fnv::new();
    for &c in &stats.recv_per_endpoint {
        recv.word(c);
    }
    let _ = writeln!(
        w,
        "recv_per_endpoint: n={} digest={:#018x}",
        stats.recv_per_endpoint.len(),
        recv.0
    );
    let mut pd = Fnv::new();
    for rec in &drv.packets {
        for &f in rec {
            pd.word(f);
        }
    }
    let _ = writeln!(
        w,
        "packet_deliveries: n={} digest={:#018x}",
        drv.packets.len(),
        pd.0
    );
    for h in &drv.handlers {
        let _ = writeln!(w, "handler: ep={} counter={} cycle={}", h[0], h[1], h[2]);
    }
    let m = &obs.metrics;
    let _ = writeln!(
        w,
        "grants: sa1={} output={} serializer={}",
        m.grants.sa1, m.grants.output, m.grants.serializer
    );
    for lc in &m.link_classes {
        let _ = writeln!(
            w,
            "link_class {}: wires={} flits={}",
            lc.class, lc.wires, lc.flits
        );
    }
    for occ in &m.vc_occupancy {
        if occ.buckets.iter().all(|&b| b == 0) {
            continue;
        }
        let _ = write!(w, "occ {} vc{}:", occ.class, occ.vc_index);
        for b in occ.buckets {
            let _ = write!(w, " {b}");
        }
        let _ = writeln!(w);
    }
    if let Some(f) = &m.fault {
        let t = f.totals;
        let _ = writeln!(
            w,
            "fault: links={} sent={} retx={} data_dropped={} ack_dropped={} delivered={}",
            f.shimmed_links,
            t.frames_sent,
            t.retransmissions,
            t.data_frames_dropped,
            t.ack_frames_dropped,
            t.flits_delivered
        );
    }
    // Hash per-link flit counts in structural (label-sorted) order so the
    // digest certifies traffic per link, not the kernel's internal wire
    // numbering (which is free to change for locality).
    let mut labeled: Vec<(String, u64)> = obs
        .wires
        .iter()
        .map(|(label, flits)| (label.to_string(), *flits))
        .collect();
    labeled.sort();
    let mut wires = Fnv::new();
    for (label, flits) in &labeled {
        wires.str(label);
        wires.word(*flits);
    }
    let _ = writeln!(w, "wire_flits_digest: {:#018x}", wires.0);
    out
}

fn check(name: &str, rendered: &str) {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("tests/snapshots");
    path.push(format!("{name}.txt"));
    if std::env::var_os("ANTON_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        want, rendered,
        "kernel output diverged from golden snapshot {name}; if the change \
         is intentional, regenerate with ANTON_UPDATE_SNAPSHOTS=1"
    );
}

/// Asserts a scenario renders byte-identically on the sharded kernel at
/// every shard count.
fn check_shard_equivalence(scenario: impl Fn(Kernel) -> String, shard_counts: &[usize]) {
    let serial = scenario(Kernel::Serial);
    for &n in shard_counts {
        let sharded = scenario(Kernel::Sharded(n));
        assert_eq!(
            serial, sharded,
            "sharded kernel diverged from serial at {n} shards"
        );
    }
}

fn ep(cfg: &MachineConfig, c: NodeCoord, i: u8) -> GlobalEndpoint {
    GlobalEndpoint {
        node: cfg.shape.id(c),
        ep: LocalEndpointId(i),
    }
}

/// Figure 9-shaped: closed-loop batch of uniform traffic, round-robin
/// arbitration, metrics collection on.
fn fig9_round_robin(kernel: Kernel) -> String {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let params = SimParams {
        collect_metrics: true,
        ..SimParams::default()
    };
    let inner = BatchDriver::builder_for(&cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(10)
        .seed(42)
        .build();
    let mut drv = Recorder::new(inner);
    match kernel {
        Kernel::Serial => {
            let mut sim = Sim::builder().config(cfg).params(params).build();
            let outcome = sim.run(&mut drv, 2_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("fig9_round_robin", &observe(&sim, outcome), &drv)
        }
        Kernel::Sharded(n) => {
            let mut sim = ShardedSim::new(
                cfg,
                SimParams {
                    shards: n,
                    ..params
                },
            );
            let outcome = sim.run(&mut drv, 2_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("fig9_round_robin", &observe_sharded(&sim, outcome), &drv)
        }
    }
}

/// Figure 9-shaped with programmed inverse-weighted arbiters (exercises the
/// weight-installation paths and EoS arbitration sites).
fn fig9_inverse_weighted(kernel: Kernel) -> String {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let weights = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
    let params = SimParams {
        arbiter: ArbiterKind::InverseWeighted { m_bits: 5 },
        collect_metrics: true,
        ..SimParams::default()
    };
    let install = |sim: &mut Sim| {
        for ((node, router, out), table) in &weights.tables {
            sim.set_arbiter_weights(*node, *router, *out, table.clone(), weights.m_bits);
        }
        for ((node, chan), table) in &weights.chan_tables {
            sim.set_chan_arbiter_weights(*node, *chan, table.clone(), weights.m_bits);
        }
        for ((node, router, port), table) in &weights.input_tables {
            sim.set_input_arbiter_weights(*node, *router, *port, table.clone(), weights.m_bits);
        }
    };
    let inner = BatchDriver::builder_for(&cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(8)
        .seed(7)
        .build();
    let mut drv = Recorder::new(inner);
    match kernel {
        Kernel::Serial => {
            let mut sim = Sim::builder().config(cfg).params(params).build();
            install(&mut sim);
            let outcome = sim.run(&mut drv, 2_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("fig9_inverse_weighted", &observe(&sim, outcome), &drv)
        }
        Kernel::Sharded(n) => {
            let mut sim = ShardedSim::new(
                cfg,
                SimParams {
                    shards: n,
                    ..params
                },
            );
            sim.configure(install);
            let outcome = sim.run(&mut drv, 2_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render(
                "fig9_inverse_weighted",
                &observe_sharded(&sim, outcome),
                &drv,
            )
        }
    }
}

/// Fault-sweep-shaped: open-loop load under a lossy schedule with an outage
/// window, metrics collection on.
fn fault_sweep(kernel: Kernel) -> String {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let schedule = FaultSchedule::uniform(5, 1e-4).with_fault(
        NodeId(0),
        ChanId::from_index(0),
        FaultKind::Down {
            from_cycle: 200,
            until_cycle: 900,
        },
    );
    let params = SimParams {
        collect_metrics: true,
        fault: Some(schedule),
        ..SimParams::default()
    };
    let inner = LoadDriver::for_config(&cfg, Box::new(UniformRandom), 0.05, 20, 13);
    let mut drv = Recorder::new(inner);
    match kernel {
        Kernel::Serial => {
            let mut sim = Sim::builder().config(cfg).params(params).build();
            let outcome = sim.run(&mut drv, 10_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("fault_sweep", &observe(&sim, outcome), &drv)
        }
        Kernel::Sharded(n) => {
            let mut sim = ShardedSim::new(
                cfg,
                SimParams {
                    shards: n,
                    ..params
                },
            );
            let outcome = sim.run(&mut drv, 10_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("fault_sweep", &observe_sharded(&sim, outcome), &drv)
        }
    }
}

/// Driver for the multicast scenario: waits for a fixed delivery count plus
/// one handler dispatch. All traffic is injected up front, so shard
/// sub-drivers have nothing to do.
struct Wait {
    want_packets: u64,
    packets: u64,
    handler_seen: bool,
}

impl Driver for Wait {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, d: &Delivery) {
        match d {
            Delivery::Packet(_) => self.packets += 1,
            Delivery::Handler { .. } => self.handler_seen = true,
        }
    }
    fn done(&self, _sim: &Sim) -> bool {
        self.packets >= self.want_packets && self.handler_seen
    }
}

/// A sub-driver that injects nothing.
struct Idle;

impl Driver for Idle {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, _d: &Delivery) {}
    fn done(&self, _sim: &Sim) -> bool {
        false
    }
}

impl ShardableDriver for Wait {
    fn split(
        &self,
        _cfg: &MachineConfig,
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<Box<dyn Driver + Send>> {
        ranges
            .iter()
            .map(|_| Box::new(Idle) as Box<dyn Driver + Send>)
            .collect()
    }

    fn done_implies_quiescent(&self) -> bool {
        true
    }
}

/// Multicast trees plus counted-write synchronization (exercises the
/// replication tables, endpoint counters, and handler dispatch).
fn multicast_counted_write(kernel: Kernel) -> String {
    let cfg = MachineConfig::new(TorusShape::cube(3));
    let src_node = NodeCoord::new(1, 1, 1);
    let dests =
        anton_traffic::md::halo_dest_set(&cfg, src_node, anton_traffic::md::HaloSpec::default());
    let n_dests = dests.num_endpoints() as u64;
    let group = McGroup::build(
        &cfg.shape,
        McGroupId(3),
        src_node,
        dests,
        &anton_traffic::md::alternating_variants(),
    );
    let src = ep(&cfg, src_node, 0);
    let dst = ep(&cfg, NodeCoord::new(2, 2, 2), 5);
    let counter = CounterId(4);
    let packets = || {
        let mut pkts = Vec::new();
        for tree in [0u8, 1] {
            let mut pkt = Packet::write(src, src, Payload::zeros(16));
            pkt.dst = Destination::Multicast {
                group: McGroupId(3),
                tree,
            };
            pkts.push(pkt);
        }
        // Counted write: three writes arm a three-count counter at a far
        // corner.
        for _ in 0..3 {
            let mut pkt = Packet::write(src, dst, Payload::zeros(16));
            pkt.counter = Some(counter);
            pkts.push(pkt);
        }
        pkts
    };
    let inner = Wait {
        want_packets: 2 * n_dests + 3,
        packets: 0,
        handler_seen: false,
    };
    let mut drv = Recorder::new(inner);
    match kernel {
        Kernel::Serial => {
            let mut sim = Sim::builder()
                .config(cfg.clone())
                .params(SimParams::default())
                .build();
            sim.add_multicast_group(group);
            sim.set_counter(dst, counter, 3);
            for pkt in packets() {
                sim.inject(src, pkt);
            }
            let outcome = sim.run(&mut drv, 1_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render("multicast_counted_write", &observe(&sim, outcome), &drv)
        }
        Kernel::Sharded(n) => {
            let mut sim = ShardedSim::new(
                cfg.clone(),
                SimParams {
                    shards: n,
                    ..SimParams::default()
                },
            );
            sim.add_multicast_group(group);
            sim.set_counter(dst, counter, 3);
            for pkt in packets() {
                sim.inject(src, pkt);
            }
            let outcome = sim.run(&mut drv, 1_000_000);
            assert_eq!(outcome, RunOutcome::Completed);
            sim.check_invariants().unwrap();
            render(
                "multicast_counted_write",
                &observe_sharded(&sim, outcome),
                &drv,
            )
        }
    }
}

#[test]
fn golden_fig9_round_robin() {
    check("fig9_round_robin", &fig9_round_robin(Kernel::Serial));
}

#[test]
fn golden_fig9_inverse_weighted() {
    check(
        "fig9_inverse_weighted",
        &fig9_inverse_weighted(Kernel::Serial),
    );
}

#[test]
fn golden_fault_sweep() {
    check("fault_sweep", &fault_sweep(Kernel::Serial));
}

#[test]
fn golden_multicast_counted_write() {
    check(
        "multicast_counted_write",
        &multicast_counted_write(Kernel::Serial),
    );
}

#[test]
fn sharded_equivalence_fig9_round_robin() {
    check_shard_equivalence(fig9_round_robin, &[1, 2, 4, 8]);
}

#[test]
fn sharded_equivalence_fig9_inverse_weighted() {
    check_shard_equivalence(fig9_inverse_weighted, &[1, 2, 4, 8]);
}

#[test]
fn sharded_equivalence_fault_sweep() {
    check_shard_equivalence(fault_sweep, &[1, 2, 4, 8]);
}

#[test]
fn sharded_equivalence_multicast_counted_write() {
    check_shard_equivalence(multicast_counted_write, &[1, 2, 4, 8]);
}
