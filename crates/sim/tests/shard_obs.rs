//! Merged observability of the sharded kernel: the per-shard flight
//! recorders and time-series samplers combine into machine-wide exports
//! that agree with the serial kernel's view of the same run.

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_obs::TraceEventKind;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::shard::ShardedSim;
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

fn trace_params() -> SimParams {
    SimParams {
        trace: TraceConfig {
            events: true,
            ring_capacity: 8192,
            sample_every: 32,
            ..TraceConfig::default()
        },
        ..SimParams::default()
    }
}

fn batch(cfg: &MachineConfig) -> BatchDriver {
    BatchDriver::builder_for(cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(4)
        .seed(9)
        .build()
}

/// One event, stripped of the identifiers that legitimately differ between
/// kernels: sequence numbers (renumbered by the merge) and dense packet ids
/// (each shard allocates its own slab).
type EventKey = (u64, u32, TraceEventKind);

#[test]
fn merged_events_and_timeseries_agree_with_serial() {
    let cfg = MachineConfig::new(TorusShape::cube(2));

    let mut serial = Sim::builder()
        .config(cfg.clone())
        .params(trace_params())
        .build();
    let mut drv = batch(&cfg);
    assert_eq!(serial.run(&mut drv, 1_000_000), RunOutcome::Completed);
    serial.flush_samples();
    let mut serial_events = serial.recorder().expect("tracing on").all_events();
    // The canonical merged order: global time, then component track, then
    // per-track recording order.
    serial_events.sort_by_key(|e| (e.cycle, e.track, e.seq));
    let serial_key: Vec<EventKey> = serial_events
        .iter()
        .map(|e| (e.cycle, e.track, e.kind))
        .collect();
    assert!(!serial_key.is_empty(), "the run recorded no events");
    let serial_ts = serial.timeseries().expect("sampling on").clone();

    for shards in [2usize, 4, 8] {
        let mut sim = ShardedSim::new(
            cfg.clone(),
            SimParams {
                shards,
                ..trace_params()
            },
        );
        let mut drv = batch(&cfg);
        assert_eq!(sim.run(&mut drv, 1_000_000), RunOutcome::Completed);

        // The merged event stream is the serial stream in canonical order.
        let merged = sim.merged_events();
        let key: Vec<EventKey> = merged.iter().map(|e| (e.cycle, e.track, e.kind)).collect();
        assert_eq!(key, serial_key, "{shards} shards");
        for (i, e) in merged.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "merged seq must be consecutive");
        }

        // The merged series covers the same channels, and its per-window
        // per-shard sums reproduce the machine-wide delivery total.
        let ts = sim.merged_timeseries().expect("sampling on");
        assert_eq!(ts.channels(), serial_ts.channels());
        let delivered = ts
            .channels()
            .iter()
            .position(|(name, _)| name == "delivered_packets")
            .expect("delivered channel registered");
        let total: u64 = ts.windows().iter().map(|w| w.values[delivered]).sum();
        assert_eq!(total, sim.stats().delivered_packets, "{shards} shards");

        // Windows that align with a serial window agree on the injection
        // and delivery counters (per-flit channels are owned per side and
        // audited through `wire_utilizations` instead).
        let injected = ts
            .channels()
            .iter()
            .position(|(name, _)| name == "injected_packets")
            .expect("injected channel registered");
        let mut aligned = 0;
        for w in serial_ts.windows() {
            if let Some(m) = ts
                .windows()
                .iter()
                .find(|m| (m.start, m.end) == (w.start, w.end))
            {
                assert_eq!(m.values[delivered], w.values[delivered]);
                assert_eq!(m.values[injected], w.values[injected]);
                aligned += 1;
            }
        }
        assert!(aligned > 0, "no aligned windows between serial and sharded");
    }
}
