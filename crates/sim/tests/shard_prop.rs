//! Property tests of the sharded kernel: for *any* contiguous partition of
//! the node space — not just the balanced ones `--shards N` produces — a
//! sharded run preserves the kernel's invariants (packet conservation,
//! per-VC and cross-shard boundary credit balance) and reproduces the
//! serial kernel's aggregate statistics exactly.

use std::collections::BTreeSet;
use std::ops::Range;

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::shard::{ShardPlan, ShardedSim};
use anton_sim::sim::{RunOutcome, Sim, SimStats};
use anton_traffic::patterns::UniformRandom;
use proptest::prelude::*;

const NODES: usize = 8; // 2x2x2 torus

/// Turns a set of interior cut points into contiguous node ranges covering
/// `0..NODES`.
fn ranges_from_cuts(cuts: &BTreeSet<usize>) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0;
    for &c in cuts {
        ranges.push(start..c);
        start = c;
    }
    ranges.push(start..NODES);
    ranges
}

fn run_serial(seed: u64, ppe: u64) -> SimStats {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let mut drv = BatchDriver::builder_for(&cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(ppe)
        .seed(seed)
        .build();
    assert_eq!(sim.run(&mut drv, 2_000_000), RunOutcome::Completed);
    sim.check_invariants().unwrap();
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_partitions_preserve_invariants_and_stats(
        raw_cuts in proptest::collection::vec(1usize..NODES, 0..(NODES - 1)),
        seed in 0u64..1000,
    ) {
        let cuts: BTreeSet<usize> = raw_cuts.into_iter().collect();
        let ppe = 4;
        let serial = run_serial(seed, ppe);

        let cfg = MachineConfig::new(TorusShape::cube(2));
        let plan = ShardPlan::from_node_ranges(ranges_from_cuts(&cuts));
        let mut sim = ShardedSim::with_plan(cfg.clone(), SimParams::default(), plan);
        let mut drv = BatchDriver::builder_for(&cfg)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(ppe)
            .seed(seed)
            .build();
        let outcome = sim.run(&mut drv, 2_000_000);
        prop_assert_eq!(outcome, RunOutcome::Completed);

        // Packet conservation and credit balance, including the combined
        // balance across every shard-boundary wire.
        if let Err(e) = sim.check_invariants() {
            return Err(TestCaseError::fail(format!(
                "invariant violated with cuts {cuts:?}: {e}"
            )));
        }

        // The partition must be observationally invisible: aggregate
        // statistics match the serial kernel field for field.
        let sharded = sim.stats();
        prop_assert_eq!(sharded.injected_packets, serial.injected_packets);
        prop_assert_eq!(sharded.delivered_packets, serial.delivered_packets);
        prop_assert_eq!(sharded.flit_hops, serial.flit_hops);
        prop_assert_eq!(sharded.torus_flits, serial.torus_flits);
        prop_assert_eq!(sharded.last_delivery_cycle, serial.last_delivery_cycle);
        prop_assert_eq!(&sharded.recv_per_endpoint, &serial.recv_per_endpoint);
        prop_assert_eq!(sim.live_packets(), 0);
    }
}
