//! # anton-analysis
//!
//! Offline analyses for the Anton 2 unified network:
//!
//! * [`load`] — exact expected channel loads under a traffic pattern
//!   (Section 3.1), the basis for arbiter weights and saturation
//!   normalization;
//! * [`weights`] — inverse arbiter weight derivation (Section 3.3);
//! * [`worstcase`] — the direction-order routing search over worst-case
//!   switching demands (Section 2.4, Figure 4, equation (1));
//! * [`deadlock`] — VC dependency graphs and cycle detection (Section 2.5);
//! * [`fit`] — least-squares fitting and fairness statistics used by the
//!   measurement reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod deadlock;
pub mod fit;
pub mod load;
pub mod weights;
pub mod worstcase;

pub use deadlock::{build_unicast_dep_graph, DepGraph, RouteEnumeration};
pub use fit::{jain_fairness, least_squares, linear_fit};
pub use load::LoadAnalysis;
pub use weights::ArbiterWeightSet;
