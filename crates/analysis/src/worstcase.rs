//! The on-chip routing-algorithm search of Section 2.4.
//!
//! The ASIC should look like a perfect switch to its external torus
//! channels. The search evaluates every direction-order routing algorithm
//! against every possible switching demand and picks the order that
//! minimizes the worst-case load on any mesh channel. Following [27], the
//! worst case of the underlying linear program is attained at an extreme
//! point, and extreme points are permutation traffic patterns — so the
//! search is an exact enumeration: 24 direction orders × the permutations of
//! the six external channel directions (excluding U-turns, which minimal
//! routing cannot produce).
//!
//! The paper reports a common worst-case permutation for all orders
//! (equation (1)) and that routing V⁻, U⁺, U⁻, then V⁺ outperforms every
//! other direction order, with the most heavily loaded mesh channels
//! carrying two torus channels' worth of traffic (Figure 4).

use std::collections::HashMap;

use anton_core::chip::{ChanId, ChipLayout, LocalLink};
use anton_core::onchip::DirOrder;
use anton_core::topology::{Dim, Slice, TorusDir};

/// A switching permutation: `perm[i]` is the departing-channel direction
/// (canonical index) for traffic arriving on channel direction `i`.
///
/// "Arriving on channel `c`" means traveling in direction `c.opposite()`;
/// `perm[c] == c.opposite()` is therefore *through* traffic, and
/// `perm[c] == c` would be a U-turn, which minimal routing never produces.
pub type SwitchPerm = [usize; 6];

/// Equation (1) of the paper: the common worst-case permutation.
///
/// ```text
/// ( X+  X-  Y+  Y-  Z+  Z- )
/// ( Z-  X+  Y-  Z+  X-  Y+ )
/// ```
pub fn eq1_permutation() -> SwitchPerm {
    use anton_core::topology::Sign::{Minus, Plus};
    let d = |dim, sign| TorusDir::new(dim, sign).index();
    let mut perm = [0usize; 6];
    perm[d(Dim::X, Plus)] = d(Dim::Z, Minus);
    perm[d(Dim::X, Minus)] = d(Dim::X, Plus);
    perm[d(Dim::Y, Plus)] = d(Dim::Y, Minus);
    perm[d(Dim::Y, Minus)] = d(Dim::Z, Plus);
    perm[d(Dim::Z, Plus)] = d(Dim::X, Minus);
    perm[d(Dim::Z, Minus)] = d(Dim::Y, Plus);
    perm
}

/// Enumerates all switching permutations without U-turns (derangement-like:
/// `perm[c] != c`, since departing on the arrival channel reverses
/// direction).
pub fn all_switch_perms() -> Vec<SwitchPerm> {
    let mut out = Vec::new();
    let mut perm = [usize::MAX; 6];
    let mut used = [false; 6];
    fn rec(i: usize, perm: &mut SwitchPerm, used: &mut [bool; 6], out: &mut Vec<SwitchPerm>) {
        if i == 6 {
            out.push(*perm);
            return;
        }
        for c in 0..6 {
            if !used[c] && c != i {
                used[c] = true;
                perm[i] = c;
                rec(i + 1, perm, used, out);
                used[c] = false;
            }
        }
    }
    rec(0, &mut perm, &mut used, &mut out);
    out
}

/// The mesh-channel loads induced by one switching permutation under one
/// direction-order algorithm, assuming the two torus slices are
/// load-balanced (each arriving physical channel carries 1.0 units).
///
/// Through X traffic uses the skip channels (no mesh load); through Y/Z
/// traffic crosses a single router (no mesh links).
pub fn mesh_link_loads(
    chip: &ChipLayout,
    order: DirOrder,
    perm: &SwitchPerm,
) -> HashMap<LocalLink, f64> {
    let mut loads: HashMap<LocalLink, f64> = HashMap::new();
    for (src_idx, &dst_idx) in perm.iter().enumerate() {
        let src_dir = TorusDir::from_index(src_idx);
        let dst_dir = TorusDir::from_index(dst_idx);
        if dst_dir == src_dir.opposite() {
            // Through traffic: skip channel (X) or single router (Y/Z).
            continue;
        }
        for slice in Slice::ALL {
            let from = chip.chan_router(ChanId {
                dir: src_dir,
                slice,
            });
            let to = chip.chan_router(ChanId {
                dir: dst_dir,
                slice,
            });
            let mut cur = from;
            while let Some(d) = order.next_dir(cur, to) {
                *loads
                    .entry(LocalLink::Mesh { from: cur, dir: d })
                    .or_insert(0.0) += 1.0;
                cur = cur.step(d).expect("mesh route stays on chip");
            }
        }
    }
    loads
}

/// Maximum mesh-channel load of one `(order, permutation)` pair.
pub fn max_mesh_load(chip: &ChipLayout, order: DirOrder, perm: &SwitchPerm) -> f64 {
    mesh_link_loads(chip, order, perm)
        .values()
        .copied()
        .fold(0.0, f64::max)
}

/// Result of evaluating one direction order over all switching demands.
#[derive(Debug, Clone)]
pub struct OrderEvaluation {
    /// The direction order evaluated.
    pub order: DirOrder,
    /// Its worst-case maximum mesh-channel load.
    pub worst_load: f64,
    /// Every permutation attaining the worst case.
    pub worst_perms: Vec<SwitchPerm>,
}

/// Evaluates every direction-order algorithm over every switching
/// permutation; results are sorted best (lowest worst-case load) first.
pub fn search(chip: &ChipLayout) -> Vec<OrderEvaluation> {
    let perms = all_switch_perms();
    let mut results: Vec<OrderEvaluation> = DirOrder::all()
        .into_iter()
        .map(|order| {
            let mut worst_load = 0.0f64;
            let mut worst_perms = Vec::new();
            for perm in &perms {
                let load = max_mesh_load(chip, order, perm);
                if load > worst_load + 1e-9 {
                    worst_load = load;
                    worst_perms = vec![*perm];
                } else if (load - worst_load).abs() <= 1e-9 {
                    worst_perms.push(*perm);
                }
            }
            OrderEvaluation {
                order,
                worst_load,
                worst_perms,
            }
        })
        .collect();
    results.sort_by(|a, b| {
        a.worst_load
            .partial_cmp(&b.worst_load)
            .expect("loads are finite")
    });
    results
}

/// Pretty-prints a switching permutation in the paper's matrix style.
pub fn format_perm(perm: &SwitchPerm) -> String {
    let top: Vec<String> = (0..6)
        .map(|i| TorusDir::from_index(i).to_string())
        .collect();
    let bot: Vec<String> = perm
        .iter()
        .map(|&d| TorusDir::from_index(d).to_string())
        .collect();
    format!("({}) -> ({})", top.join(" "), bot.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_count_is_derangement_like() {
        // Permutations of 6 with no fixed point: D(6) = 265.
        assert_eq!(all_switch_perms().len(), 265);
    }

    #[test]
    fn eq1_has_no_fixed_points_and_two_throughs() {
        let p = eq1_permutation();
        let mut throughs = 0;
        for (i, &d) in p.iter().enumerate() {
            assert_ne!(i, d, "U-turn in eq. (1)");
            if TorusDir::from_index(d) == TorusDir::from_index(i).opposite() {
                throughs += 1;
            }
        }
        // X− → X+ and Y+ → Y− continue straight through the node.
        assert_eq!(throughs, 2, "eq. (1) routes X and Y through");
    }

    #[test]
    fn anton_order_worst_case_is_two_channels() {
        let chip = ChipLayout::default();
        let load = max_mesh_load(&chip, DirOrder::ANTON, &eq1_permutation());
        assert!(
            (load - 2.0).abs() < 1e-9,
            "eq. (1) under the Anton order should load 2.0 torus channels, got {load}"
        );
    }

    #[test]
    fn search_ranks_anton_first() {
        let chip = ChipLayout::default();
        let results = search(&chip);
        let best = &results[0];
        assert!(
            (best.worst_load - 2.0).abs() < 1e-9,
            "best worst-case load should be 2.0, got {}",
            best.worst_load
        );
        // The Anton order must be among the best performers.
        let anton = results.iter().find(|r| r.order == DirOrder::ANTON).unwrap();
        assert!(
            (anton.worst_load - best.worst_load).abs() < 1e-9,
            "Anton order worst case {} exceeds optimum {}",
            anton.worst_load,
            best.worst_load
        );
    }

    #[test]
    fn eq1_attains_the_anton_worst_case() {
        // Equation (1) is a worst-case demand for the selected routing
        // algorithm: under the (V−, U+, U−, V+) order it loads the busiest
        // mesh channel with exactly the order's worst-case two flows.
        let chip = ChipLayout::default();
        let results = search(&chip);
        let anton = results.iter().find(|r| r.order == DirOrder::ANTON).unwrap();
        let eq1_load = max_mesh_load(&chip, DirOrder::ANTON, &eq1_permutation());
        assert!(
            (eq1_load - anton.worst_load).abs() < 1e-9,
            "eq. (1) load {eq1_load} but Anton worst case {}",
            anton.worst_load
        );
    }

    #[test]
    fn a_common_worst_case_permutation_exists() {
        // Section 2.4: the search yields a common worst-case permutation for
        // all direction-order routing algorithms.
        let chip = ChipLayout::default();
        let results = search(&chip);
        let mut common: Option<Vec<SwitchPerm>> = None;
        for eval in &results {
            common = Some(match common {
                None => eval.worst_perms.clone(),
                Some(prev) => prev
                    .into_iter()
                    .filter(|p| eval.worst_perms.contains(p))
                    .collect(),
            });
        }
        let common = common.unwrap();
        assert!(
            !common.is_empty(),
            "no permutation is worst-case for every direction order"
        );
    }

    #[test]
    fn through_traffic_places_no_mesh_load() {
        let chip = ChipLayout::default();
        // All-through permutation: every direction departs on its opposite.
        let mut perm = [0usize; 6];
        for (i, slot) in perm.iter_mut().enumerate() {
            *slot = TorusDir::from_index(i).opposite().index();
        }
        let loads = mesh_link_loads(&chip, DirOrder::ANTON, &perm);
        assert!(loads.is_empty(), "through traffic must bypass the mesh");
    }
}
