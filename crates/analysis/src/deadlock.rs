//! Virtual-channel dependency graphs and deadlock checking (Section 2.5).
//!
//! The network is deadlock-free iff the dependency graph between
//! `(channel, VC)` pairs is acyclic within each traffic class. A dependency
//! `a → b` exists when some packet can hold `a` while waiting for `b`, i.e.
//! when `a` and `b` are consecutive in some route. This module enumerates
//! every unicast route (all sources × destinations × dimension orders ×
//! slices × minimal tie-breaks) through the reference tracer and checks the
//! resulting graph for cycles.

use std::collections::HashMap;

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::routing::{DimOrder, RouteSpec};
use anton_core::topology::{Dim, Slice};
use anton_core::trace::{trace_unicast, GlobalLink};
use anton_core::vc::Vc;

/// A node of the dependency graph: a directed channel and a VC on it.
pub type ChannelVc = (GlobalLink, Vc);

/// A VC dependency graph.
#[derive(Debug, Default)]
pub struct DepGraph {
    index: HashMap<ChannelVc, usize>,
    nodes: Vec<ChannelVc>,
    edges: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> DepGraph {
        DepGraph::default()
    }

    fn node(&mut self, cv: ChannelVc) -> usize {
        if let Some(&i) = self.index.get(&cv) {
            return i;
        }
        let i = self.nodes.len();
        self.index.insert(cv, i);
        self.nodes.push(cv);
        self.edges.push(Vec::new());
        i
    }

    /// Adds a dependency edge `from → to` (idempotent).
    pub fn add_edge(&mut self, from: ChannelVc, to: ChannelVc) {
        let f = self.node(from);
        let t = self.node(to);
        if !self.edges[f].contains(&t) {
            self.edges[f].push(t);
        }
    }

    /// Adds the consecutive-hop dependencies of one traced route.
    pub fn add_route(&mut self, steps: &[(GlobalLink, Vc)]) {
        for pair in steps.windows(2) {
            self.add_edge(pair[0], pair[1]);
        }
    }

    /// Number of `(channel, VC)` nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Iterates every dependency edge as a `(from, to)` pair of
    /// `(channel, VC)` nodes. Used by the static verifier's cross-check to
    /// compare this enumerated graph against the symbolic construction.
    pub fn edges(&self) -> impl Iterator<Item = (ChannelVc, ChannelVc)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(move |(f, tos)| tos.iter().map(move |&t| (self.nodes[f], self.nodes[t])))
    }

    /// Finds a dependency cycle, if one exists, returned as the sequence of
    /// `(channel, VC)` nodes around the cycle.
    pub fn find_cycle(&self) -> Option<Vec<ChannelVc>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS: stack of (node, next edge index).
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < self.edges[u].len() {
                    let v = self.edges[u][*ei];
                    *ei += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Cycle found: walk parents from u back to v.
                            let mut cycle = vec![self.nodes[v]];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(self.nodes[cur]);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Which endpoints to include when enumerating routes (on-chip segments
/// depend on endpoint placement; a small sample keeps the enumeration
/// tractable without losing any mesh-segment shape).
#[derive(Debug, Clone)]
pub struct RouteEnumeration {
    /// Source endpoints per node to enumerate.
    pub src_endpoints: Vec<u8>,
    /// Destination endpoints per node to enumerate.
    pub dst_endpoints: Vec<u8>,
}

impl Default for RouteEnumeration {
    fn default() -> RouteEnumeration {
        // Corner and interior routers cover every mesh-segment shape.
        RouteEnumeration {
            src_endpoints: vec![0, 5, 15],
            dst_endpoints: vec![0, 10, 15],
        }
    }
}

/// Builds the full unicast VC dependency graph of a machine configuration.
///
/// Enumerates every (source node, destination node, dimension order, slice,
/// minimal tie-break) combination through the reference tracer.
pub fn build_unicast_dep_graph(cfg: &MachineConfig, en: &RouteEnumeration) -> DepGraph {
    let mut graph = DepGraph::new();
    for src_n in cfg.shape.nodes() {
        for dst_n in cfg.shape.nodes() {
            // Enumerate tie combinations exactly.
            let choices: Vec<Vec<i32>> = Dim::ALL
                .iter()
                .map(|d| cfg.shape.minimal_offset_choices(*d, src_n, dst_n))
                .collect();
            let num_combos: usize = choices.iter().map(Vec::len).product();
            for order in DimOrder::ALL {
                for slice in Slice::ALL {
                    for combo in 0..num_combos {
                        let mut idx = combo;
                        let mut offsets = [0i32; 3];
                        for (d, ch) in choices.iter().enumerate() {
                            offsets[d] = ch[idx % ch.len()];
                            idx /= ch.len();
                        }
                        let spec = RouteSpec {
                            order,
                            slice,
                            offsets,
                        };
                        for &se in &en.src_endpoints {
                            for &de in &en.dst_endpoints {
                                let src = GlobalEndpoint {
                                    node: cfg.shape.id(src_n),
                                    ep: LocalEndpointId(se),
                                };
                                let dst = GlobalEndpoint {
                                    node: cfg.shape.id(dst_n),
                                    ep: LocalEndpointId(de),
                                };
                                let steps = trace_unicast(cfg, src, dst, &spec);
                                graph.add_route(&steps);
                            }
                        }
                    }
                }
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;
    use anton_core::vc::VcPolicy;

    fn quick_enum() -> RouteEnumeration {
        RouteEnumeration {
            src_endpoints: vec![0],
            dst_endpoints: vec![15],
        }
    }

    fn graph_for(k: u8, policy: VcPolicy) -> DepGraph {
        let mut cfg = MachineConfig::new(TorusShape::cube(k));
        cfg.vc_policy = policy;
        build_unicast_dep_graph(&cfg, &quick_enum())
    }

    #[test]
    fn anton_policy_acyclic_small_tori() {
        for k in [2u8, 3, 4] {
            let g = graph_for(k, VcPolicy::Anton);
            assert!(g.num_nodes() > 0);
            assert!(
                g.find_cycle().is_none(),
                "Anton policy produced a VC dependency cycle on k={k}"
            );
        }
    }

    #[test]
    fn baseline_policy_acyclic() {
        let g = graph_for(4, VcPolicy::Baseline2n);
        assert!(
            g.find_cycle().is_none(),
            "2n-VC baseline must be deadlock-free"
        );
    }

    #[test]
    fn naive_single_vc_has_cycle() {
        // The torus rings are unbroken with a single VC: a cycle must exist
        // for any ring long enough to route around (k >= 3).
        let g = graph_for(4, VcPolicy::NaiveSingle);
        let cycle = g.find_cycle().expect("single-VC torus must deadlock");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn naive_single_vc_cyclic_even_on_k2() {
        // Even with k=2 (no ring long enough to wrap), a single VC is
        // unsafe in a *unified* network: M-group mesh channels are shared by
        // packets before and after their torus dimensions, so dependencies
        // M → T_x → M → T_y → ... → M close cycles through the mesh. This is
        // exactly why the promotion algorithm advances the M-group VC once
        // per dimension.
        let g = graph_for(2, VcPolicy::NaiveSingle);
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn single_dimension_machines_acyclic() {
        // Degenerate shapes (rings only in X) stay deadlock-free under the
        // promotion policy.
        let mut cfg = MachineConfig::new(TorusShape::new(8, 1, 1));
        cfg.vc_policy = VcPolicy::Anton;
        let g = build_unicast_dep_graph(&cfg, &quick_enum());
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn rectangular_torus_acyclic() {
        let mut cfg = MachineConfig::new(TorusShape::new(4, 3, 2));
        cfg.vc_policy = VcPolicy::Anton;
        let g = build_unicast_dep_graph(&cfg, &quick_enum());
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn cycle_detector_finds_planted_cycle() {
        use anton_core::chip::LocalLink;
        use anton_core::chip::MeshCoord;
        use anton_core::chip::MeshDir;
        use anton_core::topology::NodeId;
        let mut g = DepGraph::new();
        let mk = |i: u8| {
            (
                GlobalLink::Local {
                    node: NodeId(u32::from(i)),
                    link: LocalLink::Mesh {
                        from: MeshCoord::new(0, 0),
                        dir: MeshDir::UPlus,
                    },
                },
                Vc(0),
            )
        };
        g.add_edge(mk(0), mk(1));
        g.add_edge(mk(1), mk(2));
        g.add_edge(mk(2), mk(0));
        g.add_edge(mk(2), mk(3));
        let cycle = g.find_cycle().expect("planted cycle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn dedup_keeps_graph_bounded() {
        let g = graph_for(2, VcPolicy::Anton);
        let nodes = g.num_nodes();
        let edges = g.num_edges();
        // 8 nodes x ~120 links x 4 VCs bounds the node count.
        assert!(nodes < 8 * 120 * 4, "{nodes} nodes");
        assert!(edges < nodes * 16, "{edges} edges");
    }
}
