//! Expected channel loads (Section 3.1).
//!
//! The load on a network resource is the sum over sources of the expected
//! number of packets per unit time that use the resource. For the oblivious
//! Anton 2 routing, loads are computed exactly by enumerating each flow's
//! route distribution: 6 dimension orders × 2 slices, uniformly, and both
//! directions of any minimal-distance tie.
//!
//! Loads drive two things: the inverse arbiter weights (Section 3.3,
//! [`crate::weights`]) and the saturation-throughput normalization of the
//! Figure 9/10 experiments.

use std::collections::HashMap;

use anton_core::chip::{ChanId, LocalAttach, LocalLink, MeshCoord};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::pattern::TrafficPattern;
use anton_core::routing::{DimOrder, RouteSpec};
use anton_core::topology::{Dim, NodeCoord, NodeId, Slice, TorusDir};
use anton_core::trace::{trace_unicast, GlobalLink};

/// The router and input port a directed link feeds, if it ends at a router.
pub fn link_into_router(
    cfg: &MachineConfig,
    link: &GlobalLink,
) -> Option<(NodeId, MeshCoord, LocalAttach)> {
    match link {
        GlobalLink::Local { node, link } => match *link {
            LocalLink::Mesh { from, dir } => {
                Some((*node, from.step(dir)?, LocalAttach::Mesh(dir.opposite())))
            }
            LocalLink::Skip { from } => {
                Some((*node, cfg.chip.skip_partner(from)?, LocalAttach::Skip))
            }
            LocalLink::ChanToRouter(c) => {
                Some((*node, cfg.chip.chan_router(c), LocalAttach::Chan(c)))
            }
            LocalLink::EpToRouter(e) => {
                Some((*node, cfg.chip.endpoint_router(e), LocalAttach::Endpoint(e)))
            }
            LocalLink::RouterToChan(_) | LocalLink::RouterToEp(_) => None,
        },
        GlobalLink::Torus { .. } | GlobalLink::Direct { .. } => None,
    }
}

/// The router and output port a directed link leaves, if it starts at a
/// router.
pub fn link_out_of_router(
    cfg: &MachineConfig,
    link: &GlobalLink,
) -> Option<(NodeId, MeshCoord, LocalAttach)> {
    match link {
        GlobalLink::Local { node, link } => match *link {
            LocalLink::Mesh { from, dir } => Some((*node, from, LocalAttach::Mesh(dir))),
            LocalLink::Skip { from } => Some((*node, from, LocalAttach::Skip)),
            LocalLink::RouterToChan(c) => {
                Some((*node, cfg.chip.chan_router(c), LocalAttach::Chan(c)))
            }
            LocalLink::RouterToEp(e) => {
                Some((*node, cfg.chip.endpoint_router(e), LocalAttach::Endpoint(e)))
            }
            LocalLink::ChanToRouter(_) | LocalLink::EpToRouter(_) => None,
        },
        GlobalLink::Torus { .. } | GlobalLink::Direct { .. } => None,
    }
}

/// A directed packet flow through one router: input port → output port.
pub type RouterFlowKey = (NodeId, MeshCoord, LocalAttach, LocalAttach);

/// Expected loads on every link and every router input→output flow, for one
/// traffic pattern at an injection rate of one packet per endpoint per unit
/// time.
#[derive(Debug, Clone, Default)]
pub struct LoadAnalysis {
    /// Load per directed link (packets per unit time).
    pub link_loads: HashMap<GlobalLink, f64>,
    /// Load per directed link and virtual channel — the per-VC arbitration
    /// demand at serializers and input ports.
    pub link_vc_loads: HashMap<(GlobalLink, anton_core::vc::Vc), f64>,
    /// Load per router input→output flow.
    pub router_flows: HashMap<RouterFlowKey, f64>,
}

impl LoadAnalysis {
    /// Computes the exact expected loads of `pattern` on `cfg`.
    ///
    /// Node-symmetric patterns are analyzed from a single source node and
    /// replicated by torus translation, which is exact for
    /// translation-invariant demands.
    pub fn compute(cfg: &MachineConfig, pattern: &dyn TrafficPattern) -> LoadAnalysis {
        let mut analysis = LoadAnalysis::default();
        if pattern.node_symmetric() {
            let base = LoadAnalysis::compute_sources(
                cfg,
                pattern,
                (0..cfg.endpoints_per_node())
                    .map(|e| cfg.endpoint_at(e))
                    .collect::<Vec<_>>()
                    .as_slice(),
            );
            for node in cfg.shape.nodes() {
                let delta = [i32::from(node.x), i32::from(node.y), i32::from(node.z)];
                for (link, load) in &base.link_loads {
                    *analysis
                        .link_loads
                        .entry(translate_link(cfg, link, delta))
                        .or_insert(0.0) += load;
                }
                for ((link, vc), load) in &base.link_vc_loads {
                    *analysis
                        .link_vc_loads
                        .entry((translate_link(cfg, link, delta), *vc))
                        .or_insert(0.0) += load;
                }
                for ((n, r, i, o), load) in &base.router_flows {
                    let tn = translate_node(cfg, *n, delta);
                    *analysis.router_flows.entry((tn, *r, *i, *o)).or_insert(0.0) += load;
                }
            }
        } else {
            let sources: Vec<GlobalEndpoint> = cfg.endpoints().collect();
            analysis = LoadAnalysis::compute_sources(cfg, pattern, &sources);
        }
        analysis
    }

    /// Computes loads contributed by the given source endpoints only.
    pub fn compute_sources(
        cfg: &MachineConfig,
        pattern: &dyn TrafficPattern,
        sources: &[GlobalEndpoint],
    ) -> LoadAnalysis {
        let mut analysis = LoadAnalysis::default();
        for &src in sources {
            for flow in pattern.flows_from(cfg, src) {
                analysis.add_flow(cfg, src, flow.dst, flow.rate);
            }
        }
        analysis
    }

    /// Adds one expected flow of `rate` packets/unit time from `src` to
    /// `dst`, spread over the oblivious route distribution.
    pub fn add_flow(
        &mut self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        dst: GlobalEndpoint,
        rate: f64,
    ) {
        let src_c = cfg.shape.coord(src.node);
        let dst_c = cfg.shape.coord(dst.node);
        // Enumerate tie choices per dimension.
        let choices: Vec<Vec<i32>> = Dim::ALL
            .iter()
            .map(|d| cfg.shape.minimal_offset_choices(*d, src_c, dst_c))
            .collect();
        let num_combos: usize = choices.iter().map(|c| c.len()).product();
        let w = rate / (12.0 * num_combos as f64);
        for order in DimOrder::ALL {
            for slice in Slice::ALL {
                for combo in 0..num_combos {
                    let mut idx = combo;
                    let mut offsets = [0i32; 3];
                    for (d, ch) in choices.iter().enumerate() {
                        offsets[d] = ch[idx % ch.len()];
                        idx /= ch.len();
                    }
                    let spec = RouteSpec {
                        order,
                        slice,
                        offsets,
                    };
                    let steps = trace_unicast(cfg, src, dst, &spec);
                    for (link, vc) in &steps {
                        *self.link_loads.entry(*link).or_insert(0.0) += w;
                        *self.link_vc_loads.entry((*link, *vc)).or_insert(0.0) += w;
                    }
                    for pair in steps.windows(2) {
                        let (l1, l2) = (&pair[0].0, &pair[1].0);
                        if let (Some((n1, r1, pin)), Some((n2, r2, pout))) =
                            (link_into_router(cfg, l1), link_out_of_router(cfg, l2))
                        {
                            debug_assert_eq!(
                                (n1, r1),
                                (n2, r2),
                                "consecutive links must share a router"
                            );
                            *self.router_flows.entry((n1, r1, pin, pout)).or_insert(0.0) += w;
                        }
                    }
                }
            }
        }
    }

    /// Load on one link (0 if untouched).
    pub fn link_load(&self, link: &GlobalLink) -> f64 {
        self.link_loads.get(link).copied().unwrap_or(0.0)
    }

    /// Maximum load over all torus channels.
    pub fn max_torus_load(&self) -> f64 {
        self.link_loads
            .iter()
            .filter(|(l, _)| matches!(l, GlobalLink::Torus { .. }))
            .map(|(_, v)| *v)
            .fold(0.0, f64::max)
    }

    /// Maximum load over all on-chip mesh channels.
    pub fn max_mesh_load(&self) -> f64 {
        self.link_loads
            .iter()
            .filter(|(l, _)| {
                matches!(
                    l,
                    GlobalLink::Local {
                        link: LocalLink::Mesh { .. },
                        ..
                    }
                )
            })
            .map(|(_, v)| *v)
            .fold(0.0, f64::max)
    }

    /// The per-endpoint injection rate (packets/cycle) at which the busiest
    /// torus channel saturates, given the channel capacity in packets/cycle.
    ///
    /// Normalizing measured throughput by this rate makes "1.0" mean full
    /// utilization of the torus channels, as in Figures 9 and 10.
    pub fn saturation_injection_rate(&self, torus_capacity: f64) -> f64 {
        let max = self.max_torus_load();
        assert!(max > 0.0, "pattern places no load on torus channels");
        torus_capacity / max
    }
}

fn translate_node(cfg: &MachineConfig, node: NodeId, delta: [i32; 3]) -> NodeId {
    let c = cfg.shape.coord(node);
    let t = NodeCoord::new(
        ((i32::from(c.x) + delta[0]).rem_euclid(i32::from(cfg.shape.k(Dim::X)))) as u8,
        ((i32::from(c.y) + delta[1]).rem_euclid(i32::from(cfg.shape.k(Dim::Y)))) as u8,
        ((i32::from(c.z) + delta[2]).rem_euclid(i32::from(cfg.shape.k(Dim::Z)))) as u8,
    );
    cfg.shape.id(t)
}

fn translate_link(cfg: &MachineConfig, link: &GlobalLink, delta: [i32; 3]) -> GlobalLink {
    match link {
        GlobalLink::Local { node, link } => GlobalLink::Local {
            node: translate_node(cfg, *node, delta),
            link: *link,
        },
        GlobalLink::Torus { from, dir, slice } => GlobalLink::Torus {
            from: translate_node(cfg, *from, delta),
            dir: *dir,
            slice: *slice,
        },
        GlobalLink::Direct { from, to } => GlobalLink::Direct {
            from: translate_node(cfg, *from, delta),
            to: translate_node(cfg, *to, delta),
        },
    }
}

/// Convenience: the load every torus channel carries under a pattern, as a
/// map from `(from node, direction, slice)`.
pub fn torus_channel_loads(analysis: &LoadAnalysis) -> HashMap<(NodeId, TorusDir, Slice), f64> {
    analysis
        .link_loads
        .iter()
        .filter_map(|(l, v)| match l {
            GlobalLink::Torus { from, dir, slice } => Some(((*from, *dir, *slice), *v)),
            _ => None,
        })
        .collect()
}

/// The input→output flows at one router, grouped by output port, with inputs
/// identified by their index in [`anton_core::chip::ChipLayout::router_ports`].
pub fn router_port_flows(
    cfg: &MachineConfig,
    analysis: &LoadAnalysis,
    node: NodeId,
    router: MeshCoord,
) -> HashMap<usize, Vec<(usize, f64)>> {
    let ports = cfg.chip.router_ports(router);
    let port_idx = |attach: &LocalAttach| -> usize {
        ports
            .iter()
            .position(|p| p == attach)
            .expect("flow references an attach missing from the port list")
    };
    let mut out: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    for ((n, r, pin, pout), load) in &analysis.router_flows {
        if *n == node && *r == router && *load > 0.0 {
            out.entry(port_idx(pout))
                .or_default()
                .push((port_idx(pin), *load));
        }
    }
    for flows in out.values_mut() {
        flows.sort_by_key(|(i, _)| *i);
    }
    out
}

/// Is this channel id usable as an arrival adapter? Helper for tests.
pub fn arrival_chan(dir_of_travel: TorusDir, slice: Slice) -> ChanId {
    ChanId {
        dir: dir_of_travel.opposite(),
        slice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;
    use anton_traffic::patterns::{Tornado, UniformRandom};

    fn cfg(k: u8) -> MachineConfig {
        MachineConfig::new(TorusShape::cube(k))
    }

    #[test]
    fn symmetric_and_full_computations_agree() {
        let cfg = cfg(2);
        let sym = LoadAnalysis::compute(&cfg, &UniformRandom);
        let sources: Vec<GlobalEndpoint> = cfg.endpoints().collect();
        let full = LoadAnalysis::compute_sources(&cfg, &UniformRandom, &sources);
        assert_eq!(sym.link_loads.len(), full.link_loads.len());
        for (link, load) in &sym.link_loads {
            let f = full.link_load(link);
            assert!((load - f).abs() < 1e-9, "{link}: {load} vs {f}");
        }
        for (key, load) in &sym.router_flows {
            let f = full.router_flows.get(key).copied().unwrap_or(0.0);
            assert!((load - f).abs() < 1e-9, "flow {key:?}: {load} vs {f}");
        }
    }

    #[test]
    fn uniform_torus_loads_are_symmetric() {
        let cfg = cfg(4);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        let loads = torus_channel_loads(&analysis);
        assert_eq!(loads.len(), 64 * 12);
        let first = loads.values().next().copied().unwrap();
        for ((n, d, s), v) in &loads {
            assert!(
                (v - first).abs() < 1e-9,
                "channel {n}/{d}{s} load {v} != {first}"
            );
        }
    }

    #[test]
    fn uniform_torus_load_matches_closed_form() {
        // Uniform on a k-ary 3-cube: average hops per dimension is
        // (sum over minimal offsets)/k ... with the torus channel count per
        // node = 2 per dim per slice, total load per channel =
        // E * avg_hops_per_dim / (2 directions * 2 slices) at rate 1, scaled
        // by N/(N-1) because self-traffic is excluded.
        let cfg = cfg(4);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        let loads = torus_channel_loads(&analysis);
        let load = loads.values().next().copied().unwrap();
        // k = 4: offsets {0, ±1, 2}: mean |offset| = (0+1+1+2)/4 = 1.
        // Per-endpoint per-dim hop demand = 1 * 64/63 (exclude self node only
        // among the 63 destinations: E[|off|] over dst != src is
        // (sum over all dsts of |off_x|) / 63 per endpoint).
        // Direct combinatorial value: sum over dx of |dx| * (#nodes with that
        // dx) = (0*16 + 1*16 + 1*16 + 2*16)/63 per packet.
        let per_packet_x_hops = (16.0 * (0.0 + 1.0 + 1.0 + 2.0)) / 63.0;
        let eps = cfg.endpoints_per_node() as f64;
        // Node's X-hop demand spread over 2 directions x 2 slices... but
        // direction split is asymmetric for the odd offset? No: +1 and -1
        // balance, and the tie at 2 splits evenly, so each of the 4 X
        // channels carries an equal quarter.
        let expected = eps * per_packet_x_hops / 4.0;
        assert!(
            (load - expected).abs() < 1e-9,
            "load {load} vs expected {expected}"
        );
    }

    #[test]
    fn tornado_loads_concentrate() {
        let cfg = cfg(8);
        let analysis = LoadAnalysis::compute(&cfg, &Tornado);
        // Tornado sends k/2 - 1 = 3 hops in +X per packet (per dim), so the
        // +X channels carry 16 endpoints * 3 hops / (8 nodes per ring... )
        // All traffic flows in the + directions: - channels idle.
        let loads = torus_channel_loads(&analysis);
        for ((_, d, _), v) in &loads {
            match d.sign {
                anton_core::topology::Sign::Plus => assert!(*v > 0.0),
                anton_core::topology::Sign::Minus => {
                    assert!(*v < 1e-12, "tornado must not use - channels, got {v}")
                }
            }
        }
        // Each + channel: 16 eps * 3 hops per ring of 8 nodes, over 2 slices:
        // ring demand = 16*3*8 hop-packets; channels = 8 per ring per slice;
        // per channel = 16*3/2 slices... = 24.
        let max = analysis.max_torus_load();
        assert!((max - 24.0).abs() < 1e-9, "tornado channel load {max}");
    }

    #[test]
    fn router_port_flows_reference_valid_ports() {
        let cfg = cfg(2);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        for r in MeshCoord::all() {
            let flows = router_port_flows(&cfg, &analysis, NodeId(0), r);
            let nports = cfg.chip.router_ports(r).len();
            for (out, ins) in flows {
                assert!(out < nports);
                for (i, load) in ins {
                    assert!(i < nports);
                    assert!(load > 0.0);
                }
            }
        }
    }

    #[test]
    fn saturation_rate_scales_with_capacity() {
        let cfg = cfg(4);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        let r1 = analysis.saturation_injection_rate(0.311);
        let r2 = analysis.saturation_injection_rate(0.622);
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }
}
