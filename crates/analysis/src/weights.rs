//! Inverse arbiter weight computation (Section 3.3).
//!
//! For each router output-port arbiter, the load `γ[i][n]` on input `i` due
//! to traffic pattern `n` is read off a [`LoadAnalysis`], and the stored
//! inverse weight is `m[i][n] = nint(β / γ[i][n])` with a per-arbiter scale
//! `β` chosen so every weight fits in `M` bits. Inputs a pattern never uses
//! get the maximum weight (they are never charged under that pattern).

use std::collections::HashMap;

use anton_core::chip::MeshCoord;
use anton_core::config::MachineConfig;
use anton_core::topology::NodeId;

use crate::load::{router_port_flows, LoadAnalysis};

/// Identifies one output-port arbiter: node, router, output port index
/// (into [`anton_core::chip::ChipLayout::router_ports`]).
pub type ArbiterKey = (NodeId, usize, usize);

/// Identifies one channel-adapter serializer VC arbiter: node, channel
/// adapter index (into [`anton_core::chip::ChanId::index`]).
pub type ChanArbiterKey = (NodeId, usize);

/// Identifies one router input-port (SA1) VC arbiter: node, router index,
/// input port index.
pub type InputArbiterKey = (NodeId, usize, usize);

/// Inverse weights for every arbitration point in the machine: router
/// output-port arbiters and channel-adapter serializer VC arbiters
/// (Section 3 applies the inverse-weighted design at each network
/// arbitration point).
#[derive(Debug, Clone)]
pub struct ArbiterWeightSet {
    /// Number of inverse-weight bits `M`.
    pub m_bits: u32,
    /// Per-router-arbiter table: `weights[input_port][pattern]`. Arbiters
    /// without any analyzed load have no entry; the simulator falls back to
    /// uniform weights there.
    pub tables: HashMap<ArbiterKey, Vec<Vec<u32>>>,
    /// Per-serializer table: `weights[vc_index][pattern]`, where the VC
    /// index spans both traffic classes of the adapter's router-side input.
    pub chan_tables: HashMap<ChanArbiterKey, Vec<Vec<u32>>>,
    /// Per-router-input (SA1) table: `weights[vc_index][pattern]` for the
    /// VC selection at each router input port.
    pub input_tables: HashMap<InputArbiterKey, Vec<Vec<u32>>>,
    /// Number of patterns each table covers.
    pub num_patterns: usize,
}

impl ArbiterWeightSet {
    /// Computes weights from one load analysis per traffic pattern.
    ///
    /// # Panics
    ///
    /// Panics if `analyses` is empty or `m_bits` is outside `2..=16`.
    pub fn compute(
        cfg: &MachineConfig,
        analyses: &[&LoadAnalysis],
        m_bits: u32,
    ) -> ArbiterWeightSet {
        assert!(!analyses.is_empty(), "need at least one pattern analysis");
        assert!(
            (2..=16).contains(&m_bits),
            "m_bits={m_bits} out of range 2..=16"
        );
        let max_w = (1u32 << m_bits) - 1;
        let mut tables: HashMap<ArbiterKey, Vec<Vec<u32>>> = HashMap::new();
        for node in cfg.shape.nodes().map(|c| cfg.shape.id(c)) {
            for router in MeshCoord::all() {
                let nports = cfg.chip.router_ports(router).len();
                // Gather per-output, per-input, per-pattern loads.
                let mut loads = vec![vec![vec![0.0f64; analyses.len()]; nports]; nports];
                let mut any = false;
                for (n, analysis) in analyses.iter().enumerate() {
                    for (out, ins) in router_port_flows(cfg, analysis, node, router) {
                        for (input, load) in ins {
                            loads[out][input][n] += load;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                for (out, out_loads) in loads.iter().enumerate() {
                    // β scaled to the smallest nonzero load so the largest
                    // weight saturates the M-bit field.
                    let min_load = out_loads
                        .iter()
                        .flatten()
                        .copied()
                        .filter(|l| *l > 0.0)
                        .fold(f64::INFINITY, f64::min);
                    if !min_load.is_finite() {
                        continue; // no traffic through this output
                    }
                    let beta = f64::from(max_w) * min_load;
                    let table: Vec<Vec<u32>> = (0..nports)
                        .map(|input| {
                            (0..analyses.len())
                                .map(|n| {
                                    let g = out_loads[input][n];
                                    if g > 0.0 {
                                        ((beta / g).round() as u32).clamp(1, max_w)
                                    } else {
                                        max_w
                                    }
                                })
                                .collect()
                        })
                        .collect();
                    tables.insert((node, router.index(), out), table);
                }
            }
        }
        // Serializer VC arbiters: one per channel adapter, weighted by the
        // per-VC load on the adapter's router-side input link.
        let mut chan_tables: HashMap<ChanArbiterKey, Vec<Vec<u32>>> = HashMap::new();
        let group_vcs = cfg.vc_policy.num_vcs(anton_core::chip::LinkGroup::T) as usize;
        let nvcs = 2 * group_vcs;
        for node in cfg.shape.nodes().map(|c| cfg.shape.id(c)) {
            for chan in anton_core::chip::ChanId::all() {
                let link = anton_core::trace::GlobalLink::Local {
                    node,
                    link: anton_core::chip::LocalLink::RouterToChan(chan),
                };
                let mut loads = vec![vec![0.0f64; analyses.len()]; nvcs];
                let mut any = false;
                for (n, analysis) in analyses.iter().enumerate() {
                    for (vc, slot) in loads.iter_mut().enumerate().take(group_vcs) {
                        let l = analysis
                            .link_vc_loads
                            .get(&(link, anton_core::vc::Vc(vc as u8)))
                            .copied()
                            .unwrap_or(0.0);
                        if l > 0.0 {
                            // Analyzed traffic is Request class (VC indices
                            // 0..group_vcs).
                            slot[n] = l;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                let min_load = loads
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|l| *l > 0.0)
                    .fold(f64::INFINITY, f64::min);
                let beta = f64::from(max_w) * min_load;
                let table: Vec<Vec<u32>> = (0..nvcs)
                    .map(|vc| {
                        (0..analyses.len())
                            .map(|n| {
                                let g = loads[vc][n];
                                if g > 0.0 {
                                    ((beta / g).round() as u32).clamp(1, max_w)
                                } else {
                                    max_w
                                }
                            })
                            .collect()
                    })
                    .collect();
                chan_tables.insert((node, chan.index()), table);
            }
        }
        // SA1 VC arbiters: one per router input port, weighted by the
        // per-VC load on the link feeding that port.
        let mut input_tables: HashMap<InputArbiterKey, Vec<Vec<u32>>> = HashMap::new();
        for node in cfg.shape.nodes().map(|c| cfg.shape.id(c)) {
            for router in MeshCoord::all() {
                for (port, attach) in cfg.chip.router_ports(router).iter().enumerate() {
                    use anton_core::chip::{LocalAttach, LocalLink};
                    let (link, group) = match *attach {
                        LocalAttach::Mesh(d) => (
                            LocalLink::Mesh {
                                from: router.step(d).expect("mesh port has neighbor"),
                                dir: d.opposite(),
                            },
                            anton_core::chip::LinkGroup::M,
                        ),
                        LocalAttach::Skip => (
                            LocalLink::Skip {
                                from: cfg.chip.skip_partner(router).expect("skip partner"),
                            },
                            anton_core::chip::LinkGroup::T,
                        ),
                        LocalAttach::Chan(c) => {
                            (LocalLink::ChanToRouter(c), anton_core::chip::LinkGroup::T)
                        }
                        LocalAttach::Endpoint(e) => {
                            (LocalLink::EpToRouter(e), anton_core::chip::LinkGroup::M)
                        }
                    };
                    let glink = anton_core::trace::GlobalLink::Local { node, link };
                    let group_vcs = cfg.vc_policy.num_vcs(group) as usize;
                    let nvcs = 2 * group_vcs;
                    let mut loads = vec![vec![0.0f64; analyses.len()]; nvcs];
                    let mut any = false;
                    for (n, analysis) in analyses.iter().enumerate() {
                        for (vc, slot) in loads.iter_mut().enumerate().take(group_vcs) {
                            let l = analysis
                                .link_vc_loads
                                .get(&(glink, anton_core::vc::Vc(vc as u8)))
                                .copied()
                                .unwrap_or(0.0);
                            if l > 0.0 {
                                slot[n] = l;
                                any = true;
                            }
                        }
                    }
                    if !any {
                        continue;
                    }
                    let min_load = loads
                        .iter()
                        .flatten()
                        .copied()
                        .filter(|l| *l > 0.0)
                        .fold(f64::INFINITY, f64::min);
                    let beta = f64::from(max_w) * min_load;
                    let table: Vec<Vec<u32>> = (0..nvcs)
                        .map(|vc| {
                            (0..analyses.len())
                                .map(|n| {
                                    let g = loads[vc][n];
                                    if g > 0.0 {
                                        ((beta / g).round() as u32).clamp(1, max_w)
                                    } else {
                                        max_w
                                    }
                                })
                                .collect()
                        })
                        .collect();
                    input_tables.insert((node, router.index(), port), table);
                }
            }
        }
        ArbiterWeightSet {
            m_bits,
            tables,
            chan_tables,
            input_tables,
            num_patterns: analyses.len(),
        }
    }

    /// The weight table of one arbiter, if the analyses placed load on it.
    pub fn table(&self, node: NodeId, router: usize, out_port: usize) -> Option<&Vec<Vec<u32>>> {
        self.tables.get(&(node, router, out_port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;
    use anton_traffic::patterns::{ReverseTornado, Tornado, UniformRandom};

    fn cfg(k: u8) -> MachineConfig {
        MachineConfig::new(TorusShape::cube(k))
    }

    #[test]
    fn weights_are_correctly_rounded_inverses() {
        // Section 3.3 spec: m[i][n] = nint(β / γ[i][n]) with β scaled so the
        // largest weight saturates the M-bit field, clamped to at least 1.
        let cfg = cfg(2);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        let m_bits = 5u32;
        let max_w = (1u32 << m_bits) - 1;
        let set = ArbiterWeightSet::compute(&cfg, &[&analysis], m_bits);
        assert!(!set.tables.is_empty());
        for ((node, router, out), table) in &set.tables {
            let r = MeshCoord::from_index(*router);
            let flows = router_port_flows(&cfg, &analysis, *node, r);
            let Some(ins) = flows.get(out) else { continue };
            let min_load = ins.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
            let beta = f64::from(max_w) * min_load;
            for (i, load) in ins {
                let expect = ((beta / load).round() as u32).clamp(1, max_w);
                assert_eq!(
                    table[*i][0], expect,
                    "weight at {node}/{r}/out{out}/in{i} (load {load})"
                );
            }
            // The busiest weight direction: the smallest load gets the
            // largest weight, saturating the field.
            let max_m = ins.iter().map(|(i, _)| table[*i][0]).max().unwrap();
            assert_eq!(max_m, max_w, "β scaling should saturate the M-bit field");
        }
    }

    #[test]
    fn heavier_inputs_get_smaller_weights() {
        let cfg = cfg(2);
        let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
        let set = ArbiterWeightSet::compute(&cfg, &[&analysis], 8);
        for ((node, router, out), table) in &set.tables {
            let r = MeshCoord::from_index(*router);
            let flows = router_port_flows(&cfg, &analysis, *node, r);
            let Some(ins) = flows.get(out) else { continue };
            for a in ins {
                for b in ins {
                    if a.1 > b.1 + 1e-12 {
                        assert!(
                            table[a.0][0] <= table[b.0][0],
                            "monotonicity violated at {node}/{r}/{out}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weights_fit_in_m_bits() {
        let cfg = cfg(2);
        let a0 = LoadAnalysis::compute(&cfg, &Tornado);
        let a1 = LoadAnalysis::compute(&cfg, &ReverseTornado);
        for m in [4u32, 5, 8] {
            let set = ArbiterWeightSet::compute(&cfg, &[&a0, &a1], m);
            let max = (1u32 << m) - 1;
            for table in set.tables.values() {
                for row in table {
                    assert_eq!(row.len(), 2);
                    for &w in row {
                        assert!((1..=max).contains(&w));
                    }
                }
            }
        }
    }

    #[test]
    fn unused_inputs_get_max_weight() {
        let cfg = cfg(2);
        let analysis = LoadAnalysis::compute(&cfg, &Tornado);
        let set = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
        let mut saw_unused = false;
        for ((node, router, out), table) in &set.tables {
            let r = MeshCoord::from_index(*router);
            let flows = router_port_flows(&cfg, &analysis, *node, r);
            let ins = &flows[out];
            for (i, row) in table.iter().enumerate() {
                if !ins.iter().any(|(inp, _)| *inp == i) {
                    assert_eq!(row[0], 31, "unused input should carry max weight");
                    saw_unused = true;
                }
            }
        }
        assert!(saw_unused, "tornado should leave some inputs unused");
    }
}
