//! Small numerical utilities: linear least squares (for the Figure 11
//! latency fit and the Figure 13 energy-model fit) and fairness statistics.

/// Solves the linear least-squares problem `min ‖Xβ − y‖₂` by the normal
/// equations with Gaussian elimination (adequate for the handful of
/// parameters the experiments fit).
///
/// `xs` holds one row of regressors per observation.
///
/// # Panics
///
/// Panics if the inputs are empty, ragged, or the normal matrix is singular
/// (collinear regressors).
pub fn least_squares(xs: &[Vec<f64>], ys: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "no observations");
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    let p = xs[0].len();
    assert!(p > 0, "no regressors");
    for row in xs {
        assert_eq!(row.len(), p, "ragged design matrix");
    }
    // Normal equations: (XᵀX) β = Xᵀy.
    let mut a = vec![vec![0.0f64; p + 1]; p];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..p {
            for j in 0..p {
                a[i][j] += row[i] * row[j];
            }
            a[i][p] += row[i] * y;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..p {
        let pivot = (col..p)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("nonempty");
        a.swap(col, pivot);
        assert!(
            a[col][col].abs() > 1e-12,
            "singular normal matrix (collinear regressors)"
        );
        for row in 0..p {
            if row == col {
                continue;
            }
            let f = a[row][col] / a[col][col];
            // `j` indexes two rows of `a` at once; an iterator can't.
            #[allow(clippy::needless_range_loop)]
            for j in col..=p {
                a[row][j] -= f * a[col][j];
            }
        }
    }
    (0..p).map(|i| a[i][p] / a[i][i]).collect()
}

/// Fits `y ≈ a + b·x` and returns `(a, b)`.
///
/// # Panics
///
/// Panics if fewer than two observations are given or all `x` are equal.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert!(x.len() >= 2, "need at least two points");
    let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
    let beta = least_squares(&rows, y);
    (beta[0], beta[1])
}

/// Jain's fairness index of a set of allocations: 1.0 when perfectly fair,
/// approaching `1/n` under total starvation of all but one party.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "fairness of an empty set is undefined");
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Mean of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty set");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0, 6.0];
        let y: Vec<f64> = x.iter().map(|v| 80.7 + 39.1 * v).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 80.7).abs() < 1e-9);
        assert!((b - 39.1).abs() < 1e-9);
    }

    #[test]
    fn recovers_multivariate_coefficients() {
        // y = 42.7 + 0.837*h + 34.4*q + 0.250*n*q (the Fig 13 model form).
        let truth = [42.7, 0.837, 34.4, 0.250];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for h in [0.0, 32.0, 96.0, 192.0] {
            for q in [0.25, 0.5, 1.0] {
                for n in [0.0, 64.0, 128.0] {
                    xs.push(vec![1.0, h, q, n * q]);
                    ys.push(truth[0] + truth[1] * h + truth[2] * q + truth[3] * n * q);
                }
            }
        }
        let beta = least_squares(&xs, &ys);
        for (b, t) in beta.iter().zip(truth) {
            assert!((b - t).abs() < 1e-9, "{beta:?}");
        }
    }

    #[test]
    fn fairness_extremes() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let starved = jain_fairness(&[100.0, 0.0, 0.0, 0.0]);
        assert!((starved - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn collinear_regressors_detected() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        least_squares(&xs, &[1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn noiseless_fit_is_exact(a in -100.0f64..100.0, b in -10.0f64..10.0) {
            let x: Vec<f64> = (0..10).map(f64::from).collect();
            let y: Vec<f64> = x.iter().map(|v| a + b * v).collect();
            let (fa, fb) = linear_fit(&x, &y);
            prop_assert!((fa - a).abs() < 1e-6);
            prop_assert!((fb - b).abs() < 1e-6);
        }

        #[test]
        fn fairness_in_unit_interval(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let j = jain_fairness(&xs);
            prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-9);
            prop_assert!(j <= 1.0 + 1e-9);
        }
    }
}
