//! Property test: `DepGraph::find_cycle` agrees with a brute-force oracle
//! on random directed graphs, and any cycle it reports is a real cycle of
//! the graph.

use anton_analysis::deadlock::{ChannelVc, DepGraph};
use anton_core::topology::{Dim, NodeId, Sign, Slice, TorusDir};
use anton_core::trace::GlobalLink;
use anton_core::vc::Vc;
use proptest::prelude::*;
use std::collections::HashSet;

const N: usize = 12;

/// Distinct `ChannelVc` labels for the abstract node ids the generator
/// draws — the graph algorithm only cares about identity.
fn cv(i: usize) -> ChannelVc {
    (
        GlobalLink::Torus {
            from: NodeId(i as u32),
            dir: TorusDir {
                dim: Dim::X,
                sign: Sign::Plus,
            },
            slice: Slice(0),
        },
        Vc(0),
    )
}

/// Brute-force oracle: does any directed cycle exist? Recursive DFS over
/// the raw edge list, no sharing with the production implementation.
fn has_cycle_oracle(edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); N];
    for &(f, t) in edges {
        adj[f].push(t);
    }
    // state: 0 = unvisited, 1 = on stack, 2 = done
    fn dfs(u: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
        state[u] = 1;
        for &v in &adj[u] {
            if state[v] == 1 {
                return true;
            }
            if state[v] == 0 && dfs(v, adj, state) {
                return true;
            }
        }
        state[u] = 2;
        false
    }
    let mut state = vec![0u8; N];
    (0..N).any(|s| state[s] == 0 && dfs(s, &adj, &mut state))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn find_cycle_agrees_with_oracle(
        edges in proptest::collection::vec((0usize..N, 0usize..N), 0..40)
    ) {
        let mut g = DepGraph::new();
        for &(f, t) in &edges {
            g.add_edge(cv(f), cv(t));
        }
        let found = g.find_cycle();
        prop_assert_eq!(
            found.is_some(),
            has_cycle_oracle(&edges),
            "edges: {:?}",
            edges
        );
        if let Some(cycle) = found {
            // The reported cycle must be nonempty and every consecutive
            // pair (wrapping) must be a real edge.
            prop_assert!(!cycle.is_empty());
            let edge_set: HashSet<(ChannelVc, ChannelVc)> =
                edges.iter().map(|&(f, t)| (cv(f), cv(t))).collect();
            for i in 0..cycle.len() {
                let from = cycle[i];
                let to = cycle[(i + 1) % cycle.len()];
                prop_assert!(
                    edge_set.contains(&(from, to)),
                    "reported cycle step {from:?} -> {to:?} is not an edge"
                );
            }
        }
    }
}
