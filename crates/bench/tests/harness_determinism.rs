//! The harness determinism contract: executing a sweep across a worker pool
//! must produce *byte-identical* measurements to serial execution — same
//! per-point seeds, same values, same serialized results document.

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{run_batch_detailed, run_batch_sharded, saturation_rate, values, ArbiterSetup};
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_traffic::patterns::UniformRandom;

/// A miniature Figure-9-style sweep on a 2×2×2 torus: real simulations, so
/// this checks the whole path (spec → worker pool → Sim → metrics), not
/// just the scheduling plumbing.
fn mini_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new("determinism_check", 42);
    for batch in [4u64, 8, 12] {
        spec.push_point(values!["batch" => batch]);
    }
    spec
}

fn body(
    cfg: &MachineConfig,
    sat: f64,
) -> impl Fn(&SweepPoint) -> Vec<(String, anton_bench::Value)> + Sync + '_ {
    move |point| {
        let batch = point.int("batch") as u64;
        let (p, m) = run_batch_detailed(
            cfg,
            vec![(Box::new(UniformRandom), 1.0)],
            batch,
            &ArbiterSetup::RoundRobin,
            sat,
            point.seed,
        );
        values![
            "normalized" => p.normalized,
            "cycles" => p.cycles,
            "peak_utilization" => p.peak_utilization,
            "flit_hops" => m.stats.flit_hops,
            "sa1_grants" => m.grants.sa1,
        ]
    }
}

#[test]
fn parallel_measurements_are_byte_identical_to_serial() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let sat = saturation_rate(&cfg, &UniformRandom);
    let spec = mini_sweep();

    let serial = spec.run(1, body(&cfg, sat));
    let parallel = spec.run(4, body(&cfg, sat));

    // Typed records agree exactly (f64 bit-equality via PartialEq on the
    // identical computation), and so do the serialized bytes.
    assert_eq!(serial, parallel);
    assert_eq!(
        spec.results_json(&serial).to_pretty_string().into_bytes(),
        spec.results_json(&parallel).to_pretty_string().into_bytes()
    );

    // The sweep did real work: cycles grow with batch size.
    let cycles: Vec<f64> = serial.iter().map(|m| m.metric_f64("cycles")).collect();
    assert!(
        cycles[0] > 0.0 && cycles[0] < cycles[2],
        "cycles {cycles:?}"
    );
}

/// The sharded kernel behind `--shards` is measurement-invisible: the same
/// sweep point produces bit-identical throughput numbers and metrics on the
/// serial kernel and on any shard count.
#[test]
fn sharded_measurements_match_serial_exactly() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let sat = saturation_rate(&cfg, &UniformRandom);
    for shards in [2usize, 4, 8] {
        let (serial, ms) = run_batch_detailed(
            &cfg,
            vec![(Box::new(UniformRandom), 1.0)],
            8,
            &ArbiterSetup::RoundRobin,
            sat,
            42,
        );
        let (sharded, mp) = run_batch_sharded(
            &cfg,
            vec![(Box::new(UniformRandom), 1.0)],
            8,
            &ArbiterSetup::RoundRobin,
            sat,
            42,
            shards,
        );
        assert_eq!(serial.normalized.to_bits(), sharded.normalized.to_bits());
        assert_eq!(serial.cycles, sharded.cycles);
        assert_eq!(
            serial.peak_utilization.to_bits(),
            sharded.peak_utilization.to_bits()
        );
        assert_eq!(ms.stats, mp.stats, "{shards} shards");
        assert_eq!(ms.grants, mp.grants, "{shards} shards");
    }
}

#[test]
fn rerunning_the_spec_reproduces_the_measurements() {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let sat = saturation_rate(&cfg, &UniformRandom);
    let a = mini_sweep().run(2, body(&cfg, sat));
    let b = mini_sweep().run(3, body(&cfg, sat));
    assert_eq!(
        a, b,
        "same spec, same measurements, regardless of pool size"
    );
}
