//! Declarative, typed command-line flags for the experiment binaries.
//!
//! Each binary declares its flags once — name, typed default, help text —
//! and gets parsing, `--help` generation, unknown-flag rejection, and typed
//! access in return:
//!
//! ```
//! use anton_bench::flags::FlagSet;
//!
//! let args = FlagSet::new("fig9_throughput", "Figure 9 batch-throughput sweep")
//!     .flag("k", 8u8, "torus dimension per side")
//!     .list("batches", &[64, 256, 1024], "batch sizes to sweep")
//!     .switch("verbose", "print per-point progress")
//!     .try_parse(&["--k".into(), "4".into()])
//!     .unwrap();
//! assert_eq!(args.get::<u8>("k"), 4);
//! assert_eq!(args.list("batches"), vec![64, 256, 1024]);
//! assert!(!args.on("verbose"));
//! ```
//!
//! Binaries call [`FlagSet::parse`], which prints help on `--help` (exit 0)
//! and a diagnostic plus usage on any malformed, unknown, or positional
//! argument (exit 2).

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

type ParseFn = Box<dyn Fn(&str) -> Result<Box<dyn Any>, String>>;
type DefaultFn = Box<dyn Fn() -> Box<dyn Any>>;

enum FlagKind {
    /// `--name <value>`: typed, with a default.
    Value {
        default_repr: String,
        make_default: DefaultFn,
        parse: ParseFn,
    },
    /// `--name`: boolean, default off.
    Switch,
}

struct FlagDecl {
    name: String,
    help: String,
    kind: FlagKind,
}

/// A set of declared flags for one binary; build with the chained
/// constructors, then [`parse`](FlagSet::parse).
pub struct FlagSet {
    program: String,
    about: String,
    flags: Vec<FlagDecl>,
}

impl fmt::Debug for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlagSet")
            .field("program", &self.program)
            .field(
                "flags",
                &self.flags.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl FlagSet {
    /// Starts a flag set for `program`, described by `about` in `--help`.
    pub fn new(program: impl Into<String>, about: impl Into<String>) -> FlagSet {
        FlagSet {
            program: program.into(),
            about: about.into(),
            flags: Vec::new(),
        }
    }

    fn declare(mut self, decl: FlagDecl) -> FlagSet {
        assert!(
            self.flags.iter().all(|d| d.name != decl.name),
            "flag --{} declared twice",
            decl.name
        );
        assert!(decl.name != "help", "--help is reserved");
        self.flags.push(decl);
        self
    }

    /// Declares a typed value flag `--name <value>` with a default.
    pub fn flag<T>(self, name: &str, default: T, help: &str) -> FlagSet
    where
        T: std::str::FromStr + fmt::Display + Clone + 'static,
        T::Err: fmt::Display,
    {
        let default_repr = default.to_string();
        self.declare(FlagDecl {
            name: name.to_string(),
            help: help.to_string(),
            kind: FlagKind::Value {
                default_repr,
                make_default: Box::new(move || Box::new(default.clone())),
                parse: Box::new(|s| {
                    s.parse::<T>()
                        .map(|v| Box::new(v) as Box<dyn Any>)
                        .map_err(|e| e.to_string())
                }),
            },
        })
    }

    /// Declares a comma-separated `u64` list flag (e.g. `--batches 64,256`).
    pub fn list(self, name: &str, default: &[u64], help: &str) -> FlagSet {
        let default: Vec<u64> = default.to_vec();
        let default_repr = default
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.declare(FlagDecl {
            name: name.to_string(),
            help: help.to_string(),
            kind: FlagKind::Value {
                default_repr,
                make_default: Box::new(move || Box::new(default.clone())),
                parse: Box::new(|s| {
                    s.split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<u64>()
                                .map_err(|e| format!("entry `{}`: {e}", part.trim()))
                        })
                        .collect::<Result<Vec<u64>, String>>()
                        .map(|v| Box::new(v) as Box<dyn Any>)
                }),
            },
        })
    }

    /// Declares a comma-separated `f64` list flag (e.g. `--bers 1e-5,1e-4`).
    pub fn flist(self, name: &str, default: &[f64], help: &str) -> FlagSet {
        let default: Vec<f64> = default.to_vec();
        let default_repr = default
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        self.declare(FlagDecl {
            name: name.to_string(),
            help: help.to_string(),
            kind: FlagKind::Value {
                default_repr,
                make_default: Box::new(move || Box::new(default.clone())),
                parse: Box::new(|s| {
                    s.split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<f64>()
                                .map_err(|e| format!("entry `{}`: {e}", part.trim()))
                        })
                        .collect::<Result<Vec<f64>, String>>()
                        .map(|v| Box::new(v) as Box<dyn Any>)
                }),
            },
        })
    }

    /// Declares a boolean switch `--name` (default off).
    pub fn switch(self, name: &str, help: &str) -> FlagSet {
        self.declare(FlagDecl {
            name: name.to_string(),
            help: help.to_string(),
            kind: FlagKind::Switch,
        })
    }

    /// Renders the generated `--help` text.
    pub fn help_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.program, self.about);
        let _ = writeln!(out);
        let _ = writeln!(out, "USAGE: {} [FLAGS]", self.program);
        let _ = writeln!(out);
        let _ = writeln!(out, "FLAGS:");
        let left_col: Vec<String> = self
            .flags
            .iter()
            .map(|d| match &d.kind {
                FlagKind::Value { .. } => format!("--{} <value>", d.name),
                FlagKind::Switch => format!("--{}", d.name),
            })
            .chain(["--help".to_string()])
            .collect();
        let width = left_col.iter().map(String::len).max().unwrap_or(0);
        for (d, left) in self.flags.iter().zip(&left_col) {
            let default = match &d.kind {
                FlagKind::Value { default_repr, .. } => format!(" [default: {default_repr}]"),
                FlagKind::Switch => String::new(),
            };
            let _ = writeln!(out, "  {left:width$}  {}{default}", d.help);
        }
        let _ = writeln!(out, "  {:width$}  print this help", "--help");
        out
    }

    /// Parses `argv` (excluding the program name). Every token must be a
    /// declared `--flag` (with its value, for value flags); unknown flags,
    /// positional arguments, and malformed values are errors.
    pub fn try_parse(&self, argv: &[String]) -> Result<ParsedFlags, FlagError> {
        let mut values: HashMap<String, Box<dyn Any>> = HashMap::new();
        let mut switches: HashMap<String, bool> = HashMap::new();
        for d in &self.flags {
            match &d.kind {
                FlagKind::Value { make_default, .. } => {
                    values.insert(d.name.clone(), make_default());
                }
                FlagKind::Switch => {
                    switches.insert(d.name.clone(), false);
                }
            }
        }

        let mut it = argv.iter();
        while let Some(token) = it.next() {
            if token == "--help" || token == "-h" {
                return Err(FlagError::HelpRequested);
            }
            let Some(body) = token.strip_prefix("--") else {
                return Err(FlagError::Invalid(format!(
                    "unexpected positional argument `{token}` (all arguments are --flags)"
                )));
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            let Some(decl) = self.flags.iter().find(|d| d.name == name) else {
                return Err(FlagError::Invalid(format!("unknown flag `--{name}`")));
            };
            match &decl.kind {
                FlagKind::Switch => {
                    if inline.is_some() {
                        return Err(FlagError::Invalid(format!(
                            "switch `--{name}` takes no value"
                        )));
                    }
                    switches.insert(name.to_string(), true);
                }
                FlagKind::Value { parse, .. } => {
                    let raw = match inline {
                        Some(v) => v,
                        None => it.next().cloned().ok_or_else(|| {
                            FlagError::Invalid(format!("flag `--{name}` expects a value"))
                        })?,
                    };
                    let parsed = parse(&raw).map_err(|e| {
                        FlagError::Invalid(format!("invalid value `{raw}` for `--{name}`: {e}"))
                    })?;
                    values.insert(name.to_string(), parsed);
                }
            }
        }
        Ok(ParsedFlags { values, switches })
    }

    /// Parses the process arguments. Prints help and exits 0 on `--help`;
    /// prints the diagnostic plus usage and exits 2 on any parse error.
    pub fn parse(&self) -> ParsedFlags {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match self.try_parse(&argv) {
            Ok(parsed) => parsed,
            Err(FlagError::HelpRequested) => {
                print!("{}", self.help_text());
                std::process::exit(0);
            }
            Err(FlagError::Invalid(msg)) => {
                eprintln!("{}: {msg}", self.program);
                eprintln!();
                eprint!("{}", self.help_text());
                std::process::exit(2);
            }
        }
    }
}

/// Why parsing stopped without producing flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// `--help`/`-h` was passed; the caller should print help and exit 0.
    HelpRequested,
    /// A malformed, unknown, or positional argument, with a diagnostic.
    Invalid(String),
}

/// Typed flag values after parsing.
pub struct ParsedFlags {
    values: HashMap<String, Box<dyn Any>>,
    switches: HashMap<String, bool>,
}

impl fmt::Debug for ParsedFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParsedFlags")
            .field("values", &self.values.keys().collect::<Vec<_>>())
            .field("switches", &self.switches)
            .finish()
    }
}

impl ParsedFlags {
    /// The value of a declared flag, at its declared type.
    ///
    /// # Panics
    ///
    /// Panics if the flag was never declared or `T` differs from the
    /// declaration — both are bugs in the binary, not user errors.
    pub fn get<T: Clone + 'static>(&self, name: &str) -> T {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("flag --{name} was not declared as a value flag"))
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("flag --{name} was declared at a different type"))
            .clone()
    }

    /// The value of a declared list flag.
    pub fn list(&self, name: &str) -> Vec<u64> {
        self.get::<Vec<u64>>(name)
    }

    /// The value of a declared [`flist`](FlagSet::flist) flag.
    pub fn flist(&self, name: &str) -> Vec<f64> {
        self.get::<Vec<f64>>(name)
    }

    /// Whether a declared switch was passed.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared with [`FlagSet::switch`].
    pub fn on(&self, name: &str) -> bool {
        *self
            .switches
            .get(name)
            .unwrap_or_else(|| panic!("flag --{name} was not declared as a switch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn demo() -> FlagSet {
        FlagSet::new("demo", "test binary")
            .flag("k", 8u8, "torus dimension")
            .flag("seed", 42u64, "base seed")
            .flag("mode", "rr".to_string(), "arbiter mode")
            .list("batches", &[64, 256], "batch sizes")
            .flist("bers", &[0.0, 1e-5], "bit error rates")
            .switch("baseline-vcs", "use baseline VC count")
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let p = demo().try_parse(&[]).unwrap();
        assert_eq!(p.get::<u8>("k"), 8);
        assert_eq!(p.get::<u64>("seed"), 42);
        assert_eq!(p.get::<String>("mode"), "rr");
        assert_eq!(p.list("batches"), vec![64, 256]);
        assert_eq!(p.flist("bers"), vec![0.0, 1e-5]);
        assert!(!p.on("baseline-vcs"));
    }

    #[test]
    fn typed_parses_and_lists_and_switches() {
        let p = demo()
            .try_parse(&argv(&[
                "--k",
                "4",
                "--batches",
                "8, 16,32",
                "--baseline-vcs",
                "--mode=wf",
            ]))
            .unwrap();
        assert_eq!(p.get::<u8>("k"), 4);
        assert_eq!(p.list("batches"), vec![8, 16, 32]);
        assert!(p.on("baseline-vcs"));
        assert_eq!(p.get::<String>("mode"), "wf");
    }

    #[test]
    fn float_lists_parse_scientific_notation() {
        let p = demo()
            .try_parse(&argv(&["--bers", "1e-6, 5e-5,0.001"]))
            .unwrap();
        assert_eq!(p.flist("bers"), vec![1e-6, 5e-5, 1e-3]);
        assert!(matches!(
            demo().try_parse(&argv(&["--bers", "1e-6,oops"])),
            Err(FlagError::Invalid(msg)) if msg.contains("oops")
        ));
        let help = demo().help_text();
        assert!(help.contains("--bers <value>"));
        assert!(help.contains("[default: 0,0.00001]"));
    }

    #[test]
    fn unknown_flags_and_positionals_are_rejected() {
        assert!(matches!(
            demo().try_parse(&argv(&["--nope", "1"])),
            Err(FlagError::Invalid(msg)) if msg.contains("unknown flag `--nope`")
        ));
        assert!(matches!(
            demo().try_parse(&argv(&["4"])),
            Err(FlagError::Invalid(msg)) if msg.contains("positional")
        ));
    }

    #[test]
    fn malformed_values_are_diagnosed() {
        assert!(matches!(
            demo().try_parse(&argv(&["--k", "banana"])),
            Err(FlagError::Invalid(msg)) if msg.contains("--k")
        ));
        assert!(matches!(
            demo().try_parse(&argv(&["--k"])),
            Err(FlagError::Invalid(msg)) if msg.contains("expects a value")
        ));
        assert!(matches!(
            demo().try_parse(&argv(&["--baseline-vcs=yes"])),
            Err(FlagError::Invalid(msg)) if msg.contains("takes no value")
        ));
        // u8 range errors surface too.
        assert!(demo().try_parse(&argv(&["--k", "300"])).is_err());
    }

    #[test]
    fn help_is_generated_and_requested() {
        assert!(matches!(
            demo().try_parse(&argv(&["--help"])),
            Err(FlagError::HelpRequested)
        ));
        assert!(matches!(
            demo().try_parse(&argv(&["-h"])),
            Err(FlagError::HelpRequested)
        ));
        let help = demo().help_text();
        assert!(help.contains("demo — test binary"));
        assert!(help.contains("--k <value>"));
        assert!(help.contains("[default: 8]"));
        assert!(help.contains("--batches <value>"));
        assert!(help.contains("[default: 64,256]"));
        assert!(help.contains("--baseline-vcs"));
        assert!(help.contains("--help"));
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_declarations_panic() {
        let _ = FlagSet::new("d", "d")
            .flag("k", 1u8, "a")
            .flag("k", 2u8, "b");
    }
}
