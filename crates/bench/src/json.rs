//! Dependency-free JSON emission for structured experiment results.
//!
//! The build environment is offline, so instead of a serde dependency the
//! harness serializes through this small value tree. Object keys keep
//! insertion order, making output deterministic — the harness determinism
//! test compares serialized bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer; keeps full `u64` precision (seeds use the whole
    /// range).
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back exactly, and always includes a decimal point or
                    // exponent — unambiguously a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_pretty_string(), "null\n");
        assert_eq!(Json::from(true).to_pretty_string(), "true\n");
        assert_eq!(Json::from(42i64).to_pretty_string(), "42\n");
        assert_eq!(Json::from(0.5).to_pretty_string(), "0.5\n");
        assert_eq!(Json::Float(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).to_pretty_string(), "null\n");
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        // 1.0 must not serialize as the integer 1.
        assert_eq!(Json::from(1.0).to_pretty_string(), "1.0\n");
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = Json::from("a\"b\\c\nd\u{1}").to_pretty_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structure_is_stable() {
        let j = Json::obj([
            ("name", Json::from("fig9")),
            (
                "points",
                Json::arr([Json::obj([("batch", Json::from(64u64))])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            j.to_pretty_string(),
            "{\n  \"name\": \"fig9\",\n  \"points\": [\n    {\n      \"batch\": 64\n    }\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn u64_keeps_full_precision() {
        assert_eq!(
            Json::from(u64::MAX).to_pretty_string(),
            format!("{}\n", u64::MAX)
        );
    }
}
