//! Dependency-free JSON for structured experiment results.
//!
//! The value tree moved to [`anton_obs::json`] so the simulator's
//! observability exports and the harness share one implementation (and one
//! parser); this module re-exports it to keep `anton_bench::json::Json`
//! paths working.

pub use anton_obs::json::{Json, JsonError};
