//! Command-line-input validation for the experiment binaries, expressed as
//! `anton-verify` diagnostics (codes `AV101..AV103`).
//!
//! The flag parser ([`crate::flags`]) already rejects malformed tokens;
//! these helpers cover the *values*: a `--k` outside what [`TorusShape`]
//! supports, a pattern or workload name no binary knows, or an output path
//! that cannot be written. Binaries report all three through
//! [`fail_usage`] — one readable diagnostic on stderr and a nonzero exit —
//! instead of a panic backtrace.

use anton_core::pattern::TrafficPattern;
use anton_core::topology::TorusShape;
use anton_traffic::patterns::{NHopNeighbor, UniformRandom};
use anton_verify::Diagnostic;

/// Prints a CLI diagnostic and exits 2 (the same status the flag parser
/// uses for malformed flags).
pub fn fail_usage(diag: &Diagnostic) -> ! {
    eprintln!("{diag}");
    std::process::exit(2);
}

/// Validates a user-supplied torus extent (AV102) before it reaches
/// [`TorusShape`]'s panicking constructor.
pub fn checked_cube(k: u8) -> TorusShape {
    if !(1..=TorusShape::MAX_K).contains(&k) {
        fail_usage(
            &Diagnostic::error(
                "AV102",
                format!("torus extent {k} out of range 1..={}", TorusShape::MAX_K),
            )
            .with("k", k),
        );
    }
    TorusShape::cube(k)
}

/// Looks up a named traffic pattern (AV101). The fig9-family binaries
/// share this table; an unknown name lists the known ones.
pub fn make_pattern(name: &str) -> Result<Box<dyn TrafficPattern>, Diagnostic> {
    match name {
        "uniform" => Ok(Box::new(UniformRandom)),
        "2-hop-neighbor" => Ok(Box::new(NHopNeighbor::new(2))),
        other => Err(
            Diagnostic::error("AV101", format!("unknown traffic pattern `{other}`"))
                .with("known", "uniform, 2-hop-neighbor"),
        ),
    }
}

/// Writes an output file via [`anton_obs::write_atomic`], reporting failure
/// as AV103 with exit 1 instead of a panic.
pub fn write_output(path: impl AsRef<std::path::Path>, contents: &str) {
    let path = path.as_ref();
    if let Err(e) = anton_obs::write_atomic(path, contents) {
        eprintln!(
            "{}",
            Diagnostic::error("AV103", format!("cannot write {}: {e}", path.display()))
                .with("path", path.display()),
        );
        std::process::exit(1);
    }
}
