//! # anton-bench
//!
//! Experiment runners and benchmarks regenerating every table and figure of
//! *"Unifying on-chip and inter-node switching within the Anton 2 network"*
//! (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
//! results). Each `src/bin/figN_*.rs` / `tableN_*.rs` binary prints the
//! rows or series of the corresponding paper exhibit.
//!
//! This library hosts the shared experiment infrastructure:
//!
//! * [`harness`] — typed [`ExperimentSpec`](harness::ExperimentSpec) sweeps
//!   executed across a scoped worker pool, collecting
//!   [`Measurement`](harness::Measurement) records;
//! * [`json`] — dependency-free serialization of `results/<name>.json`;
//! * [`flags`] — declarative typed command-line flags for the binaries;
//! * plus the shared measurement loop: weight installation, saturation
//!   normalization, and batch-throughput runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod flags;
pub mod harness;
pub mod json;

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_sim::driver::BatchDriver;
use anton_sim::metrics::Metrics;
use anton_sim::params::{SimParams, TORUS_TOKEN_COST, TORUS_TOKEN_GAIN};
use anton_sim::sim::{RunOutcome, Sim};

pub use cli::{checked_cube, fail_usage, make_pattern, write_output};
pub use flags::{FlagSet, ParsedFlags};
pub use harness::{ExperimentSpec, Measurement, SweepPoint, Value};
pub use json::Json;

/// Effective torus-channel capacity in packets per cycle (single-flit
/// packets).
pub fn torus_capacity() -> f64 {
    f64::from(TORUS_TOKEN_GAIN) / f64::from(TORUS_TOKEN_COST)
}

/// Installs a weight set at every router output arbiter and channel
/// serializer the analysis covered.
pub fn apply_weights(sim: &mut Sim, weights: &ArbiterWeightSet) {
    for ((node, router, out), table) in &weights.tables {
        sim.set_arbiter_weights(*node, *router, *out, table.clone(), weights.m_bits);
    }
    for ((node, chan), table) in &weights.chan_tables {
        sim.set_chan_arbiter_weights(*node, *chan, table.clone(), weights.m_bits);
    }
    for ((node, router, port), table) in &weights.input_tables {
        sim.set_input_arbiter_weights(*node, *router, *port, table.clone(), weights.m_bits);
    }
}

/// Which arbitration configuration a throughput run uses.
#[derive(Debug, Clone)]
pub enum ArbiterSetup {
    /// Plain round-robin everywhere.
    RoundRobin,
    /// Inverse-weighted arbiters programmed from the given weight set.
    InverseWeighted(ArbiterWeightSet),
}

impl ArbiterSetup {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ArbiterSetup::RoundRobin => "round-robin",
            ArbiterSetup::InverseWeighted(_) => "inverse-weighted",
        }
    }
}

/// Result of one batch-throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Packets per endpoint in the batch.
    pub batch: u64,
    /// Measured throughput normalized so 1.0 = full torus-channel
    /// utilization for the pattern.
    pub normalized: f64,
    /// Completion time in cycles.
    pub cycles: u64,
    /// Peak torus-channel utilization observed (fraction of effective
    /// bandwidth).
    pub peak_utilization: f64,
}

/// Runs one batch-throughput measurement (the Figure 9/10 procedure): all
/// cores send `batch` packets of the blended pattern; throughput is the
/// batch size over the time of the last delivery, normalized by the
/// pattern's analytic saturation rate.
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle budget.
pub fn run_batch(
    cfg: &MachineConfig,
    components: Vec<(Box<dyn TrafficPattern>, f64)>,
    batch: u64,
    setup: &ArbiterSetup,
    saturation_rate: f64,
    seed: u64,
) -> ThroughputPoint {
    run_batch_detailed(cfg, components, batch, setup, saturation_rate, seed).0
}

/// Like [`run_batch`], but also returns the full typed [`Metrics`] record
/// (link-class utilization, arbiter grant counts) collected from the run,
/// for structured results export.
///
/// # Panics
///
/// Panics if the run deadlocks or exceeds the cycle budget, if the static
/// pre-flight verification inside [`Sim::builder`] rejects the
/// configuration, or if an [`ArbiterSetup::InverseWeighted`] weight set
/// fails its lints (AV016) — every experiment fails fast on a broken setup
/// rather than measuring it.
pub fn run_batch_detailed(
    cfg: &MachineConfig,
    components: Vec<(Box<dyn TrafficPattern>, f64)>,
    batch: u64,
    setup: &ArbiterSetup,
    saturation_rate: f64,
    seed: u64,
) -> (ThroughputPoint, Metrics) {
    run_batch_sharded(cfg, components, batch, setup, saturation_rate, seed, 1)
}

/// [`run_batch_detailed`] on the sharded parallel kernel: the machine is
/// partitioned into `shards` contiguous sub-bricks, each stepped by its own
/// worker thread under bounded-lag synchronization. `shards <= 1` runs the
/// serial kernel. Measurements are byte-identical for every shard count —
/// only wall-clock time changes — which the golden shard-equivalence suite
/// pins.
///
/// # Panics
///
/// As [`run_batch_detailed`]; additionally if the pre-flight lints reject
/// the shard count (AV019: more shards than nodes).
pub fn run_batch_sharded(
    cfg: &MachineConfig,
    components: Vec<(Box<dyn TrafficPattern>, f64)>,
    batch: u64,
    setup: &ArbiterSetup,
    saturation_rate: f64,
    seed: u64,
    shards: usize,
) -> (ThroughputPoint, Metrics) {
    if let ArbiterSetup::InverseWeighted(w) = setup {
        let diags = anton_verify::lint_weights(w);
        assert!(
            diags.is_empty(),
            "arbiter weight set failed verification:\n{}",
            diags.iter().map(|d| format!("{d}\n")).collect::<String>()
        );
    }
    let params = SimParams {
        arbiter: match setup {
            ArbiterSetup::RoundRobin => ArbiterKind::RoundRobin,
            ArbiterSetup::InverseWeighted(w) => ArbiterKind::InverseWeighted { m_bits: w.m_bits },
        },
        ..SimParams::default()
    };
    let mut driver = BatchDriver::builder_for(cfg)
        .components(components)
        .packets_per_endpoint(batch)
        .seed(seed)
        .build();
    let builder = Sim::builder().config(cfg.clone()).params(params);
    if shards > 1 {
        let mut sim = builder.shards(shards).build_sharded();
        if let ArbiterSetup::InverseWeighted(w) = setup {
            sim.configure(|s| apply_weights(s, w));
        }
        let outcome = sim.run(&mut driver, 600_000_000);
        assert_eq!(
            outcome,
            RunOutcome::Completed,
            "batch run did not complete: {outcome:?}"
        );
        let point = ThroughputPoint {
            batch,
            normalized: driver.throughput() / saturation_rate,
            cycles: driver.finish_cycle,
            peak_utilization: sim.max_torus_utilization(),
        };
        (point, sim.metrics())
    } else {
        let mut sim = builder.build();
        if let ArbiterSetup::InverseWeighted(w) = setup {
            apply_weights(&mut sim, w);
        }
        let outcome = sim.run(&mut driver, 600_000_000);
        assert_eq!(
            outcome,
            RunOutcome::Completed,
            "batch run did not complete: {outcome:?}"
        );
        let point = ThroughputPoint {
            batch,
            normalized: driver.throughput() / saturation_rate,
            cycles: driver.finish_cycle,
            peak_utilization: sim.max_torus_utilization(),
        };
        (point, sim.metrics())
    }
}

/// Computes a pattern's analytic saturation injection rate on a machine.
pub fn saturation_rate(cfg: &MachineConfig, pattern: &dyn TrafficPattern) -> f64 {
    LoadAnalysis::compute(cfg, pattern).saturation_injection_rate(torus_capacity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;
    use anton_traffic::patterns::UniformRandom;

    #[test]
    fn capacity_is_effective_over_mesh() {
        assert!((torus_capacity() - 89.6 / 288.0).abs() < 1e-12);
    }

    #[test]
    fn batch_run_completes_on_tiny_machine() {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let sat = saturation_rate(&cfg, &UniformRandom);
        let p = run_batch(
            &cfg,
            vec![(Box::new(UniformRandom), 1.0)],
            20,
            &ArbiterSetup::RoundRobin,
            sat,
            1,
        );
        assert!(
            p.normalized > 0.1 && p.normalized < 1.2,
            "normalized {}",
            p.normalized
        );
        assert!(p.cycles > 0);
    }
}
