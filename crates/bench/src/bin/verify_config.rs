//! Standalone static verification of a machine configuration: runs the
//! `anton-verify` lint engine and the symbolic deadlock certifier, prints a
//! human-readable report, optionally exports it as JSON, and exits nonzero
//! if any error-severity diagnostic (including a dependency cycle) was
//! found.
//!
//! Examples:
//!
//! ```text
//! verify_config                         # the paper's 8x8x8 Anton machine
//! verify_config --k 4 --policy naive    # single-VC negative control
//! verify_config --no-datelines          # broken promotion placement
//! verify_config --cross-check           # also enumerate routes and diff
//! verify_config --down-links 0,0,0,x+   # certify the degraded reroute tables
//! verify_config --topology mesh         # VC-free full mesh (zero VCs)
//! verify_config --topology mesh --mesh-routing ring   # cyclic negative control
//! verify_config --json results/verify_config.json
//! ```

use anton_bench::{fail_usage, write_output, FlagSet};
use anton_core::chip::ChanId;
use anton_core::config::MachineConfig;
use anton_core::mesh::MeshRule;
use anton_core::route_table::DownLinkSet;
use anton_core::topology::{Dim, NodeCoord, NodeId, Sign, Slice, TorusDir, TorusShape};
use anton_core::vc::VcPolicy;
use anton_obs::json::Json;
use anton_verify::{
    cross_check, full_enumeration, lint_params, verify_degraded, verify_mesh, ParamsView, Severity,
    VerifyModel, VerifyReport,
};

fn parse_policy(name: &str) -> VcPolicy {
    match name {
        "anton" => VcPolicy::Anton,
        "baseline" => VcPolicy::Baseline2n,
        "naive" => VcPolicy::NaiveSingle,
        other => fail_usage(
            &anton_verify::Diagnostic::error("AV101", format!("unknown VC policy `{other}`"))
                .with("known", "anton, baseline, naive"),
        ),
    }
}

fn parse_shape(spec: &str) -> TorusShape {
    let parts: Vec<&str> = spec.split('x').collect();
    let bad = |why: String| -> ! {
        fail_usage(
            &anton_verify::Diagnostic::error("AV102", format!("bad --shape `{spec}`: {why}")).with(
                "expected",
                "KXxKYxKZ with each extent in 1..=16, e.g. 8x8x8",
            ),
        )
    };
    if parts.len() != 3 {
        bad(format!("expected 3 extents, got {}", parts.len()));
    }
    let mut k = [0u8; 3];
    for (slot, part) in k.iter_mut().zip(&parts) {
        match part.parse::<u8>() {
            Ok(v) if (1..=TorusShape::MAX_K).contains(&v) => *slot = v,
            Ok(v) => bad(format!("extent {v} out of range 1..={}", TorusShape::MAX_K)),
            Err(e) => bad(format!("extent `{part}`: {e}")),
        }
    }
    TorusShape::new(k[0], k[1], k[2])
}

/// Parses the `--down-links` spec: `;`-separated entries of
/// `x,y,z,dir[,slice]` where `dir` is one of `x+ x- y+ y- z+ z-`. Without
/// the slice field the direction goes down on both slices (a failed
/// physical cable); with it only that slice's channel fails.
fn parse_down_links(shape: TorusShape, spec: &str) -> DownLinkSet {
    let bad = |entry: &str, why: String| -> ! {
        fail_usage(
            &anton_verify::Diagnostic::error(
                "AV103",
                format!("bad --down-links entry `{entry}`: {why}"),
            )
            .with(
                "expected",
                "x,y,z,dir[,slice] entries joined by ';', e.g. 0,0,0,x+;1,2,3,y-,1",
            ),
        )
    };
    let mut downs = DownLinkSet::empty(shape);
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let parts: Vec<&str> = entry.trim().split(',').map(str::trim).collect();
        if !(4..=5).contains(&parts.len()) {
            bad(
                entry,
                format!("expected 4 or 5 fields, got {}", parts.len()),
            );
        }
        let mut coord = [0u8; 3];
        for (i, (slot, dim)) in coord.iter_mut().zip([Dim::X, Dim::Y, Dim::Z]).enumerate() {
            match parts[i].parse::<u8>() {
                Ok(v) if v < shape.k(dim) => *slot = v,
                Ok(v) => bad(
                    entry,
                    format!("{dim:?} coordinate {v} outside extent {}", shape.k(dim)),
                ),
                Err(e) => bad(entry, format!("coordinate `{}`: {e}", parts[i])),
            }
        }
        let node: NodeId = shape.id(NodeCoord::new(coord[0], coord[1], coord[2]));
        let dir = match parts[3].to_ascii_lowercase().as_str() {
            "x+" => TorusDir::new(Dim::X, Sign::Plus),
            "x-" => TorusDir::new(Dim::X, Sign::Minus),
            "y+" => TorusDir::new(Dim::Y, Sign::Plus),
            "y-" => TorusDir::new(Dim::Y, Sign::Minus),
            "z+" => TorusDir::new(Dim::Z, Sign::Plus),
            "z-" => TorusDir::new(Dim::Z, Sign::Minus),
            other => bad(entry, format!("unknown direction `{other}`")),
        };
        let slices: Vec<Slice> = if parts.len() == 5 {
            match parts[4].parse::<u8>() {
                Ok(s) if (s as usize) < Slice::ALL.len() => vec![Slice(s)],
                Ok(s) => bad(entry, format!("slice {s} out of range 0..2")),
                Err(e) => bad(entry, format!("slice `{}`: {e}", parts[4])),
            }
        } else {
            Slice::ALL.to_vec()
        };
        for slice in slices {
            downs.insert(node, ChanId { dir, slice });
        }
    }
    if downs.is_empty() {
        fail_usage(&anton_verify::Diagnostic::error(
            "AV103",
            "--down-links given but no links parsed".to_string(),
        ));
    }
    downs
}

/// Writes the JSON report. On top of [`VerifyReport::to_json`], the
/// top-level object carries the certified pair/edge counts (previously
/// print-only) and, when a degraded check ran, its certificate too.
fn write_json_report(path: &str, report: &VerifyReport, degraded: Option<&Json>) {
    let mut json = report.to_json();
    if let Json::Obj(pairs) = &mut json {
        if let Some(cert) = &report.certificate {
            pairs.push(("certified_pairs".to_string(), Json::from(cert.nodes)));
            pairs.push(("certified_edges".to_string(), Json::from(cert.edges)));
            pairs.push(("certified_acyclic".to_string(), Json::from(cert.acyclic)));
        }
        if let Some(d) = degraded {
            pairs.push(("degraded".to_string(), d.clone()));
        }
    }
    write_output(path, &json.to_pretty_string());
    eprintln!("[verify_config] wrote {path}");
}

/// Prints the certificate, the diagnostics, and the verdict line, writes
/// the JSON report when requested, and exits 1 if anything is
/// error-severity. Shared by the torus and mesh paths.
fn finish(report: &VerifyReport, json_path: &str, degraded: Option<&Json>) -> ! {
    if let Some(cert) = &report.certificate {
        println!("{cert}");
    }
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!("verdict: {}", report.summary());
    if !json_path.is_empty() {
        write_json_report(json_path, report, degraded);
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        eprintln!("verify_config: {errors} error(s)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args = FlagSet::new(
        "verify_config",
        "Static deadlock-freedom certification and config lints",
    )
    .flag(
        "topology",
        "torus".to_string(),
        "topology to certify: torus|mesh",
    )
    .flag("k", 8u8, "cubic torus extent (ignored if --shape is given)")
    .flag(
        "shape",
        String::new(),
        "rectangular shape KXxKYxKZ (overrides --k)",
    )
    .flag(
        "policy",
        "anton".to_string(),
        "VC policy: anton|baseline|naive",
    )
    .switch("no-datelines", "model dateline promotion as disabled")
    .switch(
        "cross-check",
        "also build the route-enumerated graph and diff it (small shapes only)",
    )
    .flag(
        "down-links",
        String::new(),
        "certify degraded reroute tables for these down links \
         (x,y,z,dir[,slice] entries joined by ';', dir in x+ x- y+ y- z+ z-)",
    )
    .flag(
        "mesh-nodes",
        8usize,
        "full-mesh node count (with --topology mesh)",
    )
    .flag(
        "mesh-routing",
        "direct".to_string(),
        "full-mesh routing rule: direct|ring (with --topology mesh)",
    )
    .flag("json", String::new(), "write the JSON report to this path")
    .parse();

    let json_path: String = args.get("json");
    match args.get::<String>("topology").as_str() {
        "torus" => {}
        "mesh" => {
            let nodes: usize = args.get("mesh-nodes");
            if !(2..=64).contains(&nodes) {
                fail_usage(
                    &anton_verify::Diagnostic::error(
                        "AV102",
                        format!("--mesh-nodes {nodes} out of range 2..=64"),
                    )
                    .with("mesh_nodes", nodes),
                );
            }
            let rule = match args.get::<String>("mesh-routing").as_str() {
                "direct" => MeshRule::Direct,
                "ring" => MeshRule::Ring,
                other => fail_usage(
                    &anton_verify::Diagnostic::error(
                        "AV101",
                        format!("unknown mesh routing rule `{other}`"),
                    )
                    .with("known", "direct, ring"),
                ),
            };
            println!("verify_config: {nodes}-node full mesh, {rule} routing, zero VCs");
            let report = verify_mesh(nodes, rule);
            finish(&report, &json_path, None);
        }
        other => fail_usage(
            &anton_verify::Diagnostic::error("AV101", format!("unknown topology `{other}`"))
                .with("known", "torus, mesh"),
        ),
    }

    let shape_spec: String = args.get("shape");
    let shape = if shape_spec.is_empty() {
        let k: u8 = args.get("k");
        if !(1..=TorusShape::MAX_K).contains(&k) {
            fail_usage(
                &anton_verify::Diagnostic::error(
                    "AV102",
                    format!("torus extent {k} out of range 1..={}", TorusShape::MAX_K),
                )
                .with("k", k),
            );
        }
        TorusShape::cube(k)
    } else {
        parse_shape(&shape_spec)
    };
    let mut cfg = MachineConfig::new(shape);
    cfg.vc_policy = parse_policy(&args.get::<String>("policy"));

    let model = if args.on("no-datelines") {
        VerifyModel::without_datelines(cfg.clone())
    } else {
        VerifyModel::new(cfg.clone())
    };

    println!(
        "verify_config: {shape} torus, policy {}, datelines {}",
        cfg.vc_policy,
        if model.datelines { "on" } else { "off" }
    );
    let mut report: VerifyReport = anton_verify::verify_model(&model);
    // Standalone runs have no SimParams; lint the paper defaults so the
    // report covers the parameters an experiment binary would use.
    report
        .diagnostics
        .extend(lint_params(&cfg, &ParamsView::reference()));

    let mut degraded_json: Option<Json> = None;
    let down_spec: String = args.get("down-links");
    if !down_spec.is_empty() {
        let downs = parse_down_links(shape, &down_spec);
        println!(
            "degraded check: {} down link(s) — building and certifying reroute tables",
            downs.len()
        );
        let verdict = verify_degraded(&cfg, &downs);
        if let Some(cert) = &verdict.certificate {
            println!("degraded tables: {cert}");
        }
        println!(
            "degraded verdict: {}",
            if verdict.certified() {
                "certified for install"
            } else {
                "REJECTED (the simulator would refuse these tables)"
            }
        );
        degraded_json = Some(Json::obj([
            ("down_links", Json::from(downs.len())),
            ("certified", Json::from(verdict.certified())),
            (
                "certificate",
                verdict
                    .certificate
                    .as_ref()
                    .map_or(Json::Null, anton_verify::DeadlockCertificate::to_json),
            ),
        ]));
        report.diagnostics.extend(verdict.diagnostics);
    }

    if args.on("cross-check") {
        let nodes = shape.num_nodes();
        if nodes > 64 {
            eprintln!(
                "[verify_config] skipping --cross-check: full enumeration over \
                 {nodes} nodes is infeasible (use a shape up to 4x4x4)"
            );
        } else {
            let cc = cross_check(&cfg, &full_enumeration(&cfg));
            println!(
                "cross-check vs route enumeration: symbolic {} edges, enumerated {} \
                 edges, identical: {}, verdicts agree: {}",
                cc.symbolic_edges,
                cc.enumerated_edges,
                cc.edges_equal,
                cc.verdicts_agree()
            );
            assert!(
                cc.verdicts_agree() && cc.edges_equal,
                "symbolic verifier disagrees with route enumeration — this is a bug"
            );
        }
    }

    finish(&report, &json_path, degraded_json.as_ref());
}
