//! Figure 11: average one-way message latency (16-byte payload) versus
//! inter-node hop count, measured with the standard ping-pong test including
//! software and synchronization latency, plus the linear fit the paper
//! reports (80.7 ns fixed + 39.1 ns/hop).

use anton_analysis::fit::linear_fit;
use anton_bench::FlagSet;
use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::topology::{NodeCoord, TorusShape};
use anton_sim::driver::PingPongDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{RunOutcome, Sim};

fn main() {
    let args = FlagSet::new(
        "fig11_latency",
        "Figure 11: one-way latency vs inter-node hops",
    )
    .flag("k", 8u8, "torus dimension per side")
    .flag("legs", 40u32, "ping-pong legs averaged per pair")
    .parse();
    let k: u8 = args.get("k");
    let legs: u32 = args.get("legs");
    let cfg = MachineConfig::new(TorusShape::cube(k));

    println!("## Figure 11 — one-way message latency vs inter-node hops ({k}x{k}x{k})");
    println!();
    // Destination offsets covering 0..=3 hops per dimension: average over a
    // few endpoint pairs per hop count, as the paper averages over endpoint
    // pairs at each distance.
    let max_hops = (3 * (k / 2)).min(12);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    println!("{:>6} {:>14}", "hops", "one-way (ns)");
    for hops in 0..=max_hops {
        let mut samples = Vec::new();
        for variant in 0..3u8 {
            let Some(dst) = offset_for(hops, variant, k) else {
                continue;
            };
            let a = GlobalEndpoint {
                node: cfg.shape.id(NodeCoord::new(0, 0, 0)),
                ep: LocalEndpointId(variant % 16),
            };
            let b = GlobalEndpoint {
                node: cfg.shape.id(dst),
                ep: LocalEndpointId(5),
            };
            let mut sim = Sim::builder()
                .config(cfg.clone())
                .params(SimParams::default())
                .build();
            let mut drv = PingPongDriver::new(vec![(a, b)], legs);
            let outcome = sim.run(&mut drv, 60_000_000);
            assert_eq!(
                outcome,
                RunOutcome::Completed,
                "ping-pong stalled at {hops} hops"
            );
            samples.push(drv.mean_one_way_ns(0));
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!("{hops:>6} {mean:>14.1}");
        xs.push(f64::from(hops));
        ys.push(mean);
    }
    let (fixed, per_hop) = linear_fit(&xs, &ys);
    println!();
    println!("Linear fit: {fixed:.1} ns fixed + {per_hop:.1} ns/hop (paper: 80.7 + 39.1)");
    let min = ys.iter().skip(1).cloned().fold(f64::INFINITY, f64::min);
    println!("Minimum inter-node latency: {min:.1} ns (paper: ~99 ns)");
}

/// A destination coordinate `hops` inter-node hops from the origin,
/// spreading the hops across dimensions differently per variant.
fn offset_for(hops: u8, variant: u8, k: u8) -> Option<NodeCoord> {
    let max_per_dim = k / 2;
    let mut rem = hops;
    let mut d = [0u8; 3];
    for i in 0..3 {
        let idx = (i + variant as usize) % 3;
        let take = rem.min(max_per_dim);
        d[idx] = take;
        rem -= take;
    }
    if rem > 0 {
        return None;
    }
    Some(NodeCoord::new(d[0], d[1], d[2]))
}
