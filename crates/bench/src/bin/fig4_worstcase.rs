//! Figure 4 / Section 2.4: the direction-order routing search.
//!
//! Enumerates all 24 direction-order on-chip routing algorithms against
//! every switching permutation (the extreme points of the worst-case LP of
//! [27]) and prints the ranking, the worst-case load of the selected
//! (V−, U+, U−, V+) order, and the superposed mesh loads induced by the
//! paper's equation (1).

use anton_analysis::worstcase::{
    eq1_permutation, format_perm, max_mesh_load, mesh_link_loads, search,
};
use anton_core::chip::ChipLayout;
use anton_core::onchip::DirOrder;

fn main() {
    anton_bench::FlagSet::new("fig4_worstcase", "Figure 4: direction-order routing search").parse();
    let chip = ChipLayout::default();
    println!("## Section 2.4 / Figure 4 — direction-order routing search");
    println!();
    println!("Evaluating 24 direction orders x 265 switching permutations");
    println!("(derangements of the six external channel directions; both slices loaded).");
    println!();
    let results = search(&chip);
    println!("{:<22} {:>18}", "direction order", "worst-case load");
    for r in &results {
        let marker = if r.order == DirOrder::ANTON {
            "  <= selected (Anton 2)"
        } else {
            ""
        };
        println!(
            "{:<22} {:>14.2}{}",
            r.order.to_string(),
            r.worst_load,
            marker
        );
    }
    let best = &results[0];
    let anton = results
        .iter()
        .find(|r| r.order == DirOrder::ANTON)
        .expect("present");
    println!();
    println!(
        "Best worst-case load: {:.2} torus channels; Anton order achieves {:.2} (paper: 2.0).",
        best.worst_load, anton.worst_load
    );

    let eq1 = eq1_permutation();
    println!();
    println!("Equation (1) worst-case permutation: {}", format_perm(&eq1));
    println!(
        "Load under the Anton order: {:.2} (the order's worst case: {:.2})",
        max_mesh_load(&chip, DirOrder::ANTON, &eq1),
        anton.worst_load
    );
    println!();
    println!("Superposed mesh-channel loads under eq. (1), Anton order (Figure 4):");
    let mut loads: Vec<_> = mesh_link_loads(&chip, DirOrder::ANTON, &eq1)
        .into_iter()
        .collect();
    loads.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    for (link, load) in loads {
        println!("  {link}: {load:.1}");
    }
}
