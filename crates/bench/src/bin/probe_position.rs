//! Diagnostic: mean per-source completion time by on-chip endpoint/router
//! position, exposing floorplan-correlated service inequity.
//! Usage: `probe_position --k K --batch B --mode rr|iw|age --depth D`.
use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_bench::{apply_weights, FlagSet};
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

struct P {
    inner: BatchDriver,
    rem: Vec<u64>,
    fin: Vec<u64>,
}
impl Driver for P {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim)
    }
    fn on_delivery(&mut self, sim: &mut Sim, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            let i = sim.cfg.endpoint_index(p.src);
            self.rem[i] -= 1;
            if self.rem[i] == 0 {
                self.fin[i] = sim.now();
            }
        }
        self.inner.on_delivery(sim, d)
    }
    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

fn main() {
    let args = FlagSet::new(
        "probe_position",
        "Diagnostic: completion time by router position",
    )
    .flag("k", 4u8, "torus dimension per side")
    .flag("batch", 512u64, "packets per core")
    .flag("mode", "rr".to_string(), "arbitration: rr, iw, or age")
    .flag("depth", 8u8, "on-chip VC buffer depth in flits")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let mode: String = args.get("mode");
    let depth: u8 = args.get("depth");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let mut params = SimParams {
        buffer_depth: depth,
        ..SimParams::default()
    };
    let weights = match mode.as_str() {
        "iw" => {
            let a = LoadAnalysis::compute(&cfg, &UniformRandom);
            params.arbiter = ArbiterKind::InverseWeighted { m_bits: 5 };
            Some(ArbiterWeightSet::compute(&cfg, &[&a], 5))
        }
        "age" => {
            params.arbiter = ArbiterKind::Age;
            None
        }
        _ => None,
    };
    let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
    if let Some(w) = &weights {
        apply_weights(&mut sim, w);
    }
    let n = cfg.num_endpoints();
    let inner = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(42)
        .build();
    let mut drv = P {
        inner,
        rem: vec![batch; n],
        fin: vec![0; n],
    };
    assert_eq!(sim.run(&mut drv, 400_000_000), RunOutcome::Completed);
    // mean finish per on-chip endpoint index (router position), averaged over nodes
    let eps = cfg.endpoints_per_node();
    let mut by_router = vec![0f64; eps];
    for (i, f) in drv.fin.iter().enumerate() {
        by_router[i % eps] += *f as f64;
    }
    let nodes = (n / eps) as f64;
    println!("{mode} k{k} b{batch}: mean finish by on-chip endpoint/router position:");
    for (e, s) in by_router.iter().enumerate() {
        println!(
            "  ep{e:<2} (router R({},{})): {:.0}",
            e % 4,
            e / 4,
            s / nodes
        );
    }
    let mn = by_router.iter().cloned().fold(f64::MAX, f64::min) / nodes;
    let mx = by_router.iter().cloned().fold(f64::MIN, f64::max) / nodes;
    println!(
        "  positional spread: {:.0} .. {:.0} ({:.2}x)",
        mn,
        mx,
        mx / mn
    );
}
