//! Diagnostic: per-source batch-completion fairness, round-robin versus
//! fully weighted arbitration, printing completion-time percentiles.
//! Usage: `probe_fair --k K --batch B`.
use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_arbiter::ArbiterKind;
use anton_bench::FlagSet;
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

struct FairBatch {
    inner: BatchDriver,
    // completion cycle per source endpoint
    sent_remaining: Vec<u64>,
    finish: Vec<u64>,
}
impl Driver for FairBatch {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim)
    }
    fn on_delivery(&mut self, sim: &mut Sim, d: &Delivery) {
        if let Delivery::Packet(p) = d {
            let idx = sim.cfg.endpoint_index(p.src);
            self.sent_remaining[idx] -= 1;
            if self.sent_remaining[idx] == 0 {
                self.finish[idx] = sim.now();
            }
        }
        self.inner.on_delivery(sim, d)
    }
    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

fn main() {
    let args = FlagSet::new("probe_fair", "Diagnostic: per-source completion fairness")
        .flag("k", 4u8, "torus dimension per side")
        .flag("batch", 1024u64, "packets per core")
        .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let sat = analysis.saturation_injection_rate(14.0 / 45.0);
    let weights = ArbiterWeightSet::compute(&cfg, &[&analysis], 5);
    for kind in ["rr", "iw"] {
        let params = SimParams {
            arbiter: if kind == "rr" {
                ArbiterKind::RoundRobin
            } else {
                ArbiterKind::InverseWeighted { m_bits: 5 }
            },
            ..SimParams::default()
        };
        let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
        if kind == "iw" {
            for ((node, router, out), table) in &weights.tables {
                sim.set_arbiter_weights(*node, *router, *out, table.clone(), 5);
            }
            for ((node, chan), table) in &weights.chan_tables {
                sim.set_chan_arbiter_weights(*node, *chan, table.clone(), 5);
            }
            for ((node, router, port), table) in &weights.input_tables {
                sim.set_input_arbiter_weights(*node, *router, *port, table.clone(), 5);
            }
        }
        let n = cfg.num_endpoints();
        let inner = BatchDriver::builder(&sim)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(batch)
            .seed(42)
            .build();
        let mut drv = FairBatch {
            inner,
            sent_remaining: vec![batch; n],
            finish: vec![0; n],
        };
        let t0 = std::time::Instant::now();
        assert_eq!(sim.run(&mut drv, 200_000_000), RunOutcome::Completed);
        let mut f = drv.finish.clone();
        f.sort_unstable();
        let pct = |p: f64| f[((f.len() - 1) as f64 * p) as usize];
        eprintln!(
            "{kind} k{k} b{batch}: thr {:.3} | src-finish p10 {} p50 {} p90 {} p100 {} | wall {:.0?}",
            drv.inner.throughput() / sat, pct(0.1), pct(0.5), pct(0.9), pct(1.0), t0.elapsed()
        );
    }
}
