//! Table 1: contributions of the network component types to total die area.

use anton_area::{AreaModel, Component};

fn main() {
    anton_bench::FlagSet::new("table1_area", "Table 1: network die-area contributions").parse();
    let model = AreaModel::anton();
    println!("## Table 1 — network component die-area contributions");
    println!();
    println!(
        "{:<20} {:>16} {:>12} {:>12}",
        "Component", "Component count", "% die", "paper"
    );
    let paper = [3.4, 1.1, 4.7];
    let counts = [16, 23, 12];
    let mut total = 0.0;
    for (i, comp) in Component::ALL.iter().enumerate() {
        let pct = model.die_fraction(*comp);
        total += pct;
        println!(
            "{:<20} {:>16} {:>11.1}% {:>11.1}%",
            comp.name(),
            counts[i],
            pct,
            paper[i]
        );
    }
    println!();
    println!("Network total: {total:.1}% of die (paper: 9.2%, 'less than 10%')");
}
