//! Diagnostic: delivery-rate profile over time for a batch run, separating
//! steady-state throughput from the ramp and straggler tail.
//!
//! The profile comes from the simulator's time-series sampler
//! ([`TraceConfig::sampled`]): every `--bucket` cycles the kernel counters
//! are snapshotted into a typed window, and the per-window
//! `delivered_packets` delta is the delivery rate. Results land in
//! `results/probe_profile.json` (schema v2, with the sampled windows
//! attached) instead of a text table.
//!
//! Usage: `probe_profile --k K --batch B --bucket CYCLES`.
use anton_bench::harness::ExperimentSpec;
use anton_bench::{values, FlagSet};
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_obs::ChannelKind;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

fn main() {
    let args = FlagSet::new(
        "probe_profile",
        "Diagnostic: delivery-rate profile over time",
    )
    .flag("k", 8u8, "torus dimension per side")
    .flag("batch", 256u64, "packets per core")
    .flag("bucket", 500u64, "sample window width in cycles")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let bucket: u64 = args.get("bucket");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let n_eps = cfg.num_endpoints() as f64;
    let params = SimParams {
        trace: TraceConfig::sampled(bucket),
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(42)
        .build();
    assert_eq!(sim.run(&mut drv, 100_000_000), RunOutcome::Completed);
    sim.flush_samples();
    let ts = sim.timeseries().expect("sampling was enabled");

    let delivered = ts
        .channels()
        .iter()
        .position(|(name, kind)| name == "delivered_packets" && *kind == ChannelKind::Counter)
        .expect("sampler registers delivered_packets");
    println!(
        "completion {}; per-window delivery rate (pkts/cycle/ep):",
        sim.now()
    );
    for w in ts.windows() {
        let cycles = (w.end - w.start).max(1) as f64;
        let rate = w.values[delivered] as f64 / cycles / n_eps;
        println!("  [{:>6}] {:.5}", w.start, rate);
    }

    let completion_cycles = sim.now();
    let num_windows = ts.windows().len();
    let mut spec = ExperimentSpec::new("probe_profile", 42);
    spec.push_point(values!["k" => k, "batch" => batch, "bucket" => bucket]);
    let measurements = spec.run(1, |_| {
        values![
            "completion_cycles" => completion_cycles,
            "windows" => num_windows,
        ]
    });
    match spec.write_results_with_under(
        std::path::Path::new("."),
        &measurements,
        &[("windows", ts.to_json())],
    ) {
        Ok(path) => eprintln!("[probe_profile] wrote {}", path.display()),
        Err(e) => eprintln!("[probe_profile] could not write results JSON: {e}"),
    }
}
