//! Diagnostic: delivery-rate profile over time for a batch run, separating
//! steady-state throughput from the ramp and straggler tail.
//! Usage: `probe_profile --k K --batch B --bucket CYCLES`.
use anton_bench::FlagSet;
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

struct Profile {
    inner: BatchDriver,
    buckets: Vec<u64>,
    bucket: u64,
}
impl Driver for Profile {
    fn pre_cycle(&mut self, sim: &mut Sim) {
        self.inner.pre_cycle(sim)
    }
    fn on_delivery(&mut self, sim: &mut Sim, d: &Delivery) {
        if matches!(d, Delivery::Packet(_)) {
            let b = (sim.now() / self.bucket) as usize;
            if self.buckets.len() <= b {
                self.buckets.resize(b + 1, 0);
            }
            self.buckets[b] += 1;
        }
        self.inner.on_delivery(sim, d)
    }
    fn done(&self, sim: &Sim) -> bool {
        self.inner.done(sim)
    }
}

fn main() {
    let args = FlagSet::new(
        "probe_profile",
        "Diagnostic: delivery-rate profile over time",
    )
    .flag("k", 8u8, "torus dimension per side")
    .flag("batch", 256u64, "packets per core")
    .flag("bucket", 500u64, "histogram bucket width in cycles")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let bucket: u64 = args.get("bucket");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let n_eps = cfg.num_endpoints() as f64;
    let mut sim = Sim::new(cfg.clone(), SimParams::default());
    let inner = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(42)
        .build();
    let mut drv = Profile {
        inner,
        buckets: vec![],
        bucket,
    };
    assert_eq!(sim.run(&mut drv, 100_000_000), RunOutcome::Completed);
    // uniform sat rate at this k, computed analytically elsewhere; just show pkts/cycle/ep
    println!(
        "completion {}; per-bucket injection-normalized rate (pkts/cycle/ep):",
        sim.now()
    );
    for (i, b) in drv.buckets.iter().enumerate() {
        let rate = *b as f64 / bucket as f64 / n_eps;
        println!("  [{:>6}] {:.5}", i as u64 * bucket, rate);
    }
}
