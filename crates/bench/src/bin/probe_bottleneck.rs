//! Diagnostic: peak and mean utilization by link class (mesh, skip,
//! adapters, torus) at saturation, for locating the binding resource.
//! Usage: `probe_bottleneck --k K --batch B`.
use anton_bench::FlagSet;
use anton_core::chip::LocalLink;
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_core::trace::GlobalLink;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

fn main() {
    let args = FlagSet::new("probe_bottleneck", "Diagnostic: utilization by link class")
        .flag("k", 8u8, "torus dimension per side")
        .flag("batch", 192u64, "packets per core")
        .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(SimParams::default())
        .build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(batch)
        .seed(42)
        .build();
    let outcome = sim.run(&mut drv, 100_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    let cycles = sim.now() as f64;
    // classify utilization by link kind
    let mut best: std::collections::BTreeMap<&str, (f64, f64, usize)> = Default::default(); // kind -> (max, sum, count)
    for (label, flits) in sim.wire_utilizations() {
        let (kind, cap) = match label {
            GlobalLink::Torus { .. } => ("torus", 14.0 / 45.0),
            GlobalLink::Direct { .. } => ("direct", 1.0),
            GlobalLink::Local { link, .. } => match link {
                LocalLink::Mesh { .. } => ("mesh", 1.0),
                LocalLink::Skip { .. } => ("skip", 1.0),
                LocalLink::ChanToRouter(_) => ("chan->router", 1.0),
                LocalLink::RouterToChan(_) => ("router->chan", 1.0),
                LocalLink::EpToRouter(_) => ("ep->router", 1.0),
                LocalLink::RouterToEp(_) => ("router->ep", 1.0),
            },
        };
        let u = flits as f64 / cycles / cap;
        let e = best.entry(kind).or_insert((0.0, 0.0, 0));
        e.0 = e.0.max(u);
        e.1 += u;
        e.2 += 1;
    }
    println!(
        "completion {} cycles, thr-normalized util by link kind:",
        sim.now()
    );
    for (kind, (mx, sum, n)) in best {
        println!(
            "  {kind:<14} max {:.3} mean {:.3} (n={n})",
            mx,
            sum / n as f64
        );
    }
}
