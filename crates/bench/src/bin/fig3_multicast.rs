//! Figure 3 / Section 2.3: inter-node multicast.
//!
//! Builds halo destination sets (a plane halo like the paper's figure, and
//! the full 3D halo an MD particle broadcast uses), reports the torus-hop
//! bandwidth saved versus unicasts, and shows how alternating between two
//! multicast routes balances the load on the most heavily utilized torus
//! channels. Finishes with a live simulation of a full machine-wide halo
//! exchange through the multicast tables.

use anton_bench::FlagSet;
use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{McGroup, McGroupId};
use anton_core::packet::{Destination, Packet, Payload};
use anton_core::topology::{Dim, NodeCoord, TorusShape};
use anton_sim::params::SimParams;
use anton_sim::sim::{Delivery, Driver, RunOutcome, Sim};
use anton_traffic::md::{alternating_variants, build_halo_groups, halo_dest_set, HaloSpec};

struct Collect {
    want: u64,
    got: u64,
}

impl Driver for Collect {
    fn pre_cycle(&mut self, _sim: &mut Sim) {}
    fn on_delivery(&mut self, _sim: &mut Sim, d: &Delivery) {
        if matches!(d, Delivery::Packet(_)) {
            self.got += 1;
        }
    }
    fn done(&self, _sim: &Sim) -> bool {
        self.got >= self.want
    }
}

fn main() {
    let args = FlagSet::new(
        "fig3_multicast",
        "Figure 3 / Section 2.3: table-based multicast",
    )
    .flag("k", 8u8, "torus dimension for the analytic halo study")
    .flag(
        "sim-k",
        4u8,
        "torus dimension for the live halo-exchange simulation",
    )
    .parse();
    let k: u8 = args.get("k");
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let src = NodeCoord::new(k / 2, k / 2, k / 2);

    println!("## Figure 3 / Section 2.3 — table-based multicast ({k}x{k}x{k})");
    println!();
    for (label, spec) in [
        (
            "plane halo (Figure 3's 2D example)",
            HaloSpec {
                radius: 1,
                plane_normal: Some(Dim::Z),
                endpoints_per_node: 1,
            },
        ),
        ("full 3D halo (26 neighbors)", HaloSpec::default()),
        (
            "full 3D halo, 4 endpoint copies/node",
            HaloSpec {
                radius: 1,
                plane_normal: None,
                endpoints_per_node: 4,
            },
        ),
    ] {
        let dests = halo_dest_set(&cfg, src, spec);
        let group = McGroup::build(
            &cfg.shape,
            McGroupId(0),
            src,
            dests.clone(),
            &alternating_variants(),
        );
        let unicast = dests.unicast_torus_hops(&cfg.shape, src);
        let tree = group.trees[0].torus_hops();
        println!("{label}:");
        println!(
            "  destinations: {} nodes, {} endpoint copies",
            dests.num_nodes(),
            dests.num_endpoints()
        );
        println!(
            "  unicast torus hops: {unicast}; multicast tree hops: {tree}; saved: {}",
            unicast - tree
        );
        let single_max = group.trees[0]
            .link_loads()
            .values()
            .cloned()
            .fold(0.0, f64::max);
        let alt_max = group
            .blended_link_loads()
            .values()
            .cloned()
            .fold(0.0, f64::max);
        println!(
            "  peak channel load per packet: single route {single_max:.2}, alternating {alt_max:.2}"
        );
        println!();
    }

    // Live halo exchange through the simulator's multicast tables.
    let sim_k: u8 = args.get("sim-k");
    let sim_cfg = MachineConfig::new(TorusShape::cube(sim_k));
    println!("Machine-wide halo exchange on {sim_k}x{sim_k}x{sim_k} (one broadcast per node):");
    let groups = build_halo_groups(&sim_cfg, HaloSpec::default(), &alternating_variants());
    let copies_per_group = groups[0].dests.num_endpoints() as u64;
    let unicast_hops_per_group = groups[0]
        .dests
        .unicast_torus_hops(&sim_cfg.shape, groups[0].src);
    let mut sim = Sim::builder()
        .config(sim_cfg.clone())
        .params(SimParams::default())
        .build();
    let num_groups = groups.len() as u64;
    for g in groups {
        sim.add_multicast_group(g);
    }
    for node in sim_cfg.shape.nodes() {
        let src_ep = GlobalEndpoint {
            node: sim_cfg.shape.id(node),
            ep: LocalEndpointId(0),
        };
        for tree in [0u8, 1] {
            let mut pkt = Packet::write(src_ep, src_ep, Payload::zeros(16));
            pkt.dst = Destination::Multicast {
                group: McGroupId(sim_cfg.shape.id(node).0),
                tree,
            };
            sim.inject(src_ep, pkt);
        }
    }
    let want = 2 * num_groups * copies_per_group;
    let mut drv = Collect { want, got: 0 };
    let outcome = sim.run(&mut drv, 50_000_000);
    assert_eq!(outcome, RunOutcome::Completed, "halo exchange stalled");
    let stats = sim.stats();
    println!(
        "  {} broadcasts -> {} deliveries in {} cycles; {} torus flits ({} per broadcast vs {} unicast hops)",
        2 * num_groups,
        stats.delivered_packets,
        sim.now(),
        stats.torus_flits,
        stats.torus_flits / (2 * num_groups),
        unicast_hops_per_group
    );
}
