//! Fault sweep: delivered throughput, latency inflation, and link-layer
//! retransmission overhead under lossy torus channels.
//!
//! Sweeps bit error rate × offered load on a uniform-random open-loop
//! workload ([`LoadDriver`]). Every point installs a uniform
//! [`FaultSchedule`] over the external torus links, so each link runs the
//! go-back-N protocol of Section 2.2 under the injected BER: corrupted
//! frames are dropped by the CRC and rewound, stalling real traffic for the
//! retransmission round-trip. The BER = 0 column doubles as the control —
//! the shim is timing-identical to the ideal wire there.
//!
//! On top of the BER sweep, `--down-window from,until` (on by default)
//! takes one external link fully `Down` for that cycle window on every
//! point: stranded packets are ejected and rerouted over the pre-certified
//! degraded route tables, and the sweep records how many packets rerouted
//! plus the latency inflation the detour cost them relative to
//! same-run traffic that stayed on its original route. Pass an empty
//! string to sweep BER only.
//!
//! Results land in `results/fig_fault_sweep.json` alongside the text table:
//! schema v1 plus a `fault_model` object recording the schedule parameters,
//! bumped to v2 with a `deadlock_reports` section when any point trips the
//! forward-progress watchdog (each report serializes the stalled VCs, their
//! routes, and — when event tracing is on — the last flight-recorder events
//! per stall). Every completed run re-checks the simulator's
//! packet-conservation and credit-balance invariants and says so on stdout —
//! the CI smoke job greps for that line.

use std::sync::Mutex;

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::json::Json;
use anton_bench::{fail_usage, saturation_rate, values, FlagSet};
use anton_core::chip::ChanId;
use anton_core::config::MachineConfig;
use anton_core::topology::{NodeId, TorusShape};
use anton_fault::{FaultKind, FaultSchedule, SHIM_TIMEOUT, SHIM_WINDOW};
use anton_sim::driver::LoadDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;

/// Serializes a fault schedule into the results document so a run can be
/// reproduced from its JSON alone.
fn schedule_json(s: &FaultSchedule) -> Json {
    let faults = s
        .faults
        .iter()
        .map(|f| {
            let (kind, detail) = match f.kind {
                FaultKind::Degraded { ber } => ("degraded", Json::obj([("ber", Json::from(ber))])),
                FaultKind::Down {
                    from_cycle,
                    until_cycle,
                } => (
                    "down",
                    Json::obj([
                        ("from_cycle", Json::from(from_cycle)),
                        ("until_cycle", Json::from(until_cycle)),
                    ]),
                ),
            };
            Json::obj([
                ("node", Json::from(u64::from(f.from.0))),
                ("chan", Json::from(f.chan.index() as u64)),
                ("kind", Json::from(kind)),
                ("detail", detail),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("seed", Json::from(s.seed)),
        ("default_ber", Json::from(s.default_ber)),
        ("gbn_window", Json::from(u64::from(s.gbn.window))),
        ("gbn_timeout", Json::from(s.gbn.timeout)),
        ("faults", Json::Arr(faults)),
    ])
}

fn main() {
    let args = FlagSet::new(
        "fig_fault_sweep",
        "Throughput/latency/retransmission sweep over BER x offered load",
    )
    .flag("k", 4u8, "torus dimension per side")
    .flist(
        "bers",
        &[0.0, 1e-6, 1e-5, 1e-4],
        "per-link bit error rates to sweep",
    )
    .flist(
        "loads",
        &[0.3, 0.6],
        "offered loads as fractions of uniform saturation",
    )
    .flag("packets", 200u64, "packets per endpoint per point")
    .flag(
        "down-window",
        "600,1400".to_string(),
        "cycle window `from,until` during which one external link is fully \
         Down on every point (empty = BER sweep only)",
    )
    .flag("seed", 42u64, "base seed; per-point seeds derive from it")
    .flag("threads", 1usize, "worker threads for the sweep")
    .flag(
        "shards",
        1usize,
        "worker shards per simulation (1 = serial kernel; results identical)",
    )
    .parse();
    let k: u8 = args.get("k");
    let bers = args.flist("bers");
    let loads = args.flist("loads");
    let packets: u64 = args.get("packets");
    let seed: u64 = args.get("seed");
    let threads: usize = args.get("threads");
    let shards: usize = args.get("shards");
    let down_spec: String = args.get("down-window");
    let down_window: Option<(u64, u64)> = if down_spec.is_empty() {
        None
    } else {
        let bad = || -> ! {
            fail_usage(
                &anton_verify::Diagnostic::error(
                    "AV103",
                    format!("bad --down-window `{down_spec}`"),
                )
                .with(
                    "expected",
                    "two cycle numbers `from,until` with from < until",
                ),
            )
        };
        let parts: Vec<&str> = down_spec.split(',').map(str::trim).collect();
        if parts.len() != 2 {
            bad();
        }
        match (parts[0].parse::<u64>(), parts[1].parse::<u64>()) {
            (Ok(from), Ok(until)) if from < until => Some((from, until)),
            _ => bad(),
        }
    };
    // The down link of every point: node 0's x+ channel on slice 0.
    let down_link = (NodeId(0), ChanId::from_index(0));
    let cfg = MachineConfig::new(TorusShape::cube(k));

    println!("## Fault sweep — lossy torus links ({k}x{k}x{k} torus, 16 cores/node)");
    println!();
    let sat = saturation_rate(&cfg, &UniformRandom);
    eprintln!("[fault-sweep] uniform saturation {sat:.5} pkts/cycle/core");

    let mut spec = ExperimentSpec::new("fig_fault_sweep", seed);
    spec.set_shards(shards);
    for &load in &loads {
        for &ber in &bers {
            spec.push_point(values![
                "ber" => ber,
                "load" => load,
            ]);
        }
    }

    let n_points = spec.points().len();
    // Serialized deadlock diagnostics, per tripped point (normally empty).
    let deadlock_reports: Mutex<Vec<(usize, Json)>> = Mutex::new(Vec::new());
    let make_schedule = |seed: u64, ber: f64| {
        let mut s = FaultSchedule::uniform(seed, ber);
        if let Some((from_cycle, until_cycle)) = down_window {
            s = s.with_fault(
                down_link.0,
                down_link.1,
                FaultKind::Down {
                    from_cycle,
                    until_cycle,
                },
            );
        }
        s
    };
    let measurements = spec.run(threads, |point: &SweepPoint| {
        let ber = point.float("ber");
        let load = point.float("load");
        let schedule = make_schedule(point.seed, ber);
        let params = SimParams {
            fault: Some(schedule),
            watchdog_cycles: 200_000,
            ..SimParams::default()
        };
        let mut driver = LoadDriver::for_config(
            &cfg,
            Box::new(UniformRandom),
            load * sat,
            packets,
            point.seed,
        );
        // Either kernel produces identical measurements; `--shards` only
        // changes how many worker threads step the machine.
        let (outcome, m, rerouted, report) = if shards > 1 {
            let mut sim = Sim::builder()
                .config(cfg.clone())
                .params(params)
                .shards(shards)
                .build_sharded();
            let outcome = sim.run(&mut driver, 50_000_000);
            if outcome == RunOutcome::Completed {
                sim.check_invariants()
                    .expect("invariants must hold at quiesce");
            }
            let report = sim.deadlock_report().map(|r| (r.to_string(), r.to_json()));
            (outcome, sim.metrics(), sim.stats().rerouted_packets, report)
        } else {
            let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
            let outcome = sim.run(&mut driver, 50_000_000);
            if outcome == RunOutcome::Completed {
                sim.check_invariants()
                    .expect("invariants must hold at quiesce");
            }
            let report = sim.deadlock_report().map(|r| (r.to_string(), r.to_json()));
            (outcome, sim.metrics(), sim.stats().rerouted_packets, report)
        };
        let deadlocked = outcome == RunOutcome::Deadlocked;
        if deadlocked {
            let (text, json) = report.expect("deadlock outcome carries a report");
            eprintln!("[fault-sweep] point {} deadlocked:\n{text}", point.index);
            deadlock_reports
                .lock()
                .expect("report list poisoned")
                .push((point.index, json));
        } else {
            assert_eq!(
                outcome,
                RunOutcome::Completed,
                "fault-sweep point {} timed out",
                point.index,
            );
        }
        let fault = m.fault.expect("fault schedule installed on every point");
        eprintln!(
            "[fault-sweep] {}/{n_points} ber {ber:.1e} load {load:.2} done ({} cycles)",
            point.index + 1,
            driver.finish_cycle
        );
        values![
            "throughput" => driver.throughput(),
            "mean_latency" => driver.mean_latency(),
            "p50_latency" => driver.latency_percentile(0.50),
            "p99_latency" => driver.latency_percentile(0.99),
            "cycles" => driver.finish_cycle,
            "retransmissions" => fault.totals.retransmissions,
            "data_frames_dropped" => fault.totals.data_frames_dropped,
            "retransmission_overhead" => fault.retransmission_overhead(),
            "rerouted_packets" => rerouted,
            "reroute_latency_inflation" => driver.reroute_latency_inflation(),
            "deadlocked" => deadlocked,
        ]
    });

    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>9} {:>9} {:>9} {:>12} {:>10} {:>9} {:>8}",
        "load",
        "BER",
        "throughput",
        "p50",
        "p50-infl",
        "p99",
        "p99-infl",
        "retransmits",
        "overhead",
        "rerouted",
        "rr-infl"
    );
    for m in &measurements {
        let p = &spec.points()[m.index];
        let (ber, load) = (p.float("ber"), p.float("load"));
        // Latency inflation is relative to the BER = 0 control at the same
        // offered load.
        let base = measurements
            .iter()
            .find(|b| {
                let bp = &spec.points()[b.index];
                bp.float("ber") == 0.0 && bp.float("load") == load
            })
            .expect("ber list must include the 0.0 control");
        println!(
            "{:>6.2} {:>10.1e} {:>12.5} {:>9} {:>8.2}x {:>9} {:>8.2}x {:>12} {:>9.4}% {:>9} {:>7.2}x",
            load,
            ber,
            m.metric_f64("throughput"),
            m.metric_f64("p50_latency") as u64,
            m.metric_f64("p50_latency") / base.metric_f64("p50_latency"),
            m.metric_f64("p99_latency") as u64,
            m.metric_f64("p99_latency") / base.metric_f64("p99_latency"),
            m.metric_f64("retransmissions") as u64,
            100.0 * m.metric_f64("retransmission_overhead"),
            m.metric_f64("rerouted_packets") as u64,
            m.metric_f64("reroute_latency_inflation"),
        );
    }
    let deadlock_reports = deadlock_reports.into_inner().expect("report list poisoned");
    println!();
    println!(
        "invariants ok: packet conservation and credit balance verified on {} points",
        n_points - deadlock_reports.len()
    );

    let fault_model = Json::obj([
        ("kind", Json::from("uniform")),
        ("gbn_window", Json::from(u64::from(SHIM_WINDOW))),
        ("gbn_timeout", Json::from(SHIM_TIMEOUT)),
        (
            "schedules",
            Json::Arr(
                measurements
                    .iter()
                    .map(|m| {
                        let p = &spec.points()[m.index];
                        schedule_json(&make_schedule(p.seed, p.float("ber")))
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut doc = spec.results_json(&measurements);
    if !deadlock_reports.is_empty() {
        let reports = Json::Arr(
            deadlock_reports
                .iter()
                .map(|(index, report)| {
                    Json::obj([
                        ("point", Json::from(*index as u64)),
                        ("report", report.clone()),
                    ])
                })
                .collect(),
        );
        doc = spec.results_json_with(
            &measurements,
            &[("fault_model", fault_model), ("deadlock_reports", reports)],
        );
    } else if let Json::Obj(pairs) = &mut doc {
        // No attachments that change semantics: fault_model alone stays v1,
        // keeping the committed golden results byte-identical.
        pairs.push(("fault_model".to_string(), fault_model));
    }
    match std::fs::create_dir_all("results").and_then(|()| {
        anton_obs::write_atomic("results/fig_fault_sweep.json", &doc.to_pretty_string())
    }) {
        Ok(()) => eprintln!("[fault-sweep] wrote results/fig_fault_sweep.json"),
        Err(e) => eprintln!("[fault-sweep] could not write results JSON: {e}"),
    }
    println!();
    println!("Expected shape: retransmission overhead and latency inflation rise");
    println!("monotonically with BER; throughput holds until the link-layer rewinds");
    println!("eat the torus headroom, then collapses at high BER.");
}
