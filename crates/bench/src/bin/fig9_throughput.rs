//! Figure 9: throughput of 2-hop neighbor and uniform random traffic versus
//! batch size, with round-robin versus inverse-weighted arbitration.
//!
//! As in the paper, a single set of arbiter weights — derived from the
//! channel loads of the *uniform* pattern — is used for all traffic
//! patterns. Throughput is the batch size over the time to receive the last
//! packet, normalized so 1.0 means full utilization of the torus channels.
//!
//! Defaults reproduce the paper's 8×8×8 machine; pass `--k 4` and smaller
//! `--batches` for a quick run.

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_bench::{run_batch, saturation_rate, ArbiterSetup, Args};
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_core::topology::TorusShape;
use anton_traffic::patterns::{NHopNeighbor, UniformRandom};

fn main() {
    let args = Args::capture();
    let k: u8 = args.get("k", 8);
    let batches = args.list("batches", &[64, 256, 1024]);
    let seed: u64 = args.get("seed", 42);
    let cfg = MachineConfig::new(TorusShape::cube(k));

    println!("## Figure 9 — throughput beyond saturation ({k}x{k}x{k} torus, 16 cores/node)");
    println!();
    eprintln!("[fig9] computing uniform loads and arbiter weights...");
    let uniform_analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let weights = ArbiterWeightSet::compute(&cfg, &[&uniform_analysis], 5);
    let setups =
        [ArbiterSetup::RoundRobin, ArbiterSetup::InverseWeighted(weights)];

    let patterns: [(&str, Box<dyn Fn() -> Box<dyn TrafficPattern>>); 2] = [
        ("uniform", Box::new(|| Box::new(UniformRandom))),
        ("2-hop-neighbor", Box::new(|| Box::new(NHopNeighbor::new(2)))),
    ];

    println!(
        "{:<16} {:<18} {:>8} {:>12} {:>10} {:>10}",
        "pattern", "arbiter", "batch", "normalized", "cycles", "peak-util"
    );
    for (name, make) in &patterns {
        let sat = saturation_rate(&cfg, make().as_ref());
        eprintln!("[fig9] {name}: saturation rate {sat:.5} pkts/cycle/core");
        for setup in &setups {
            for &batch in &batches {
                let point = run_batch(
                    &cfg,
                    vec![(make(), 1.0)],
                    batch,
                    setup,
                    sat,
                    seed ^ batch,
                );
                println!(
                    "{:<16} {:<18} {:>8} {:>12.3} {:>10} {:>10.3}",
                    name,
                    setup.label(),
                    point.batch,
                    point.normalized,
                    point.cycles,
                    point.peak_utilization
                );
            }
        }
    }
    println!();
    println!("Paper shape: round-robin falls well below the inverse-weighted curves as");
    println!("batch size grows (uniform below 0.6 at 8x8x8); inverse-weighted saturates");
    println!("near 0.9 and holds it.");
}
