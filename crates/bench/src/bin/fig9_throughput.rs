//! Figure 9: throughput of 2-hop neighbor and uniform random traffic versus
//! batch size, with round-robin versus inverse-weighted arbitration.
//!
//! As in the paper, a single set of arbiter weights — derived from the
//! channel loads of the *uniform* pattern — is used for all traffic
//! patterns. Throughput is the batch size over the time to receive the last
//! packet, normalized so 1.0 means full utilization of the torus channels.
//!
//! Runs on the experiment harness: sweep points execute across `--threads`
//! workers (identical results for any thread count) and the measurements
//! land in `results/fig9_throughput.json` alongside the text table.
//!
//! Defaults reproduce the paper's 8×8×8 machine; pass `--k 4` and smaller
//! `--batches` for a quick run. `--shards N` runs every point on the
//! sharded parallel kernel (N sub-bricks, one worker thread each) —
//! measurements are byte-identical to serial, only wall-clock time changes,
//! and the recorded results note the shard count.

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{
    checked_cube, fail_usage, make_pattern, run_batch_sharded, saturation_rate, values,
    ArbiterSetup, FlagSet,
};
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_traffic::patterns::{NHopNeighbor, UniformRandom};

fn pattern_or_exit(name: &str) -> Box<dyn TrafficPattern> {
    make_pattern(name).unwrap_or_else(|d| fail_usage(&d))
}

fn main() {
    let args = FlagSet::new(
        "fig9_throughput",
        "Figure 9: batch throughput vs arbitration",
    )
    .flag("k", 8u8, "torus dimension per side")
    .list(
        "batches",
        &[64, 256, 1024],
        "batch sizes (packets per core)",
    )
    .flag("seed", 42u64, "base seed; per-point seeds derive from it")
    .flag("threads", 1usize, "worker threads for the sweep")
    .flag(
        "shards",
        1usize,
        "worker shards per simulation (1 = serial kernel; results identical)",
    )
    .parse();
    let k: u8 = args.get("k");
    let batches = args.list("batches");
    let seed: u64 = args.get("seed");
    let threads: usize = args.get("threads");
    let shards: usize = args.get("shards");
    let cfg = MachineConfig::new(checked_cube(k));

    println!("## Figure 9 — throughput beyond saturation ({k}x{k}x{k} torus, 16 cores/node)");
    println!();
    eprintln!("[fig9] computing uniform loads and arbiter weights...");
    let uniform_analysis = LoadAnalysis::compute(&cfg, &UniformRandom);
    let weights = ArbiterWeightSet::compute(&cfg, &[&uniform_analysis], 5);

    let sat_uniform = saturation_rate(&cfg, &UniformRandom);
    let sat_2hop = saturation_rate(&cfg, &NHopNeighbor::new(2));
    eprintln!("[fig9] uniform saturation {sat_uniform:.5}, 2-hop {sat_2hop:.5} pkts/cycle/core");

    let mut spec = ExperimentSpec::new("fig9_throughput", seed);
    spec.set_shards(shards);
    for pattern in ["uniform", "2-hop-neighbor"] {
        for arbiter in ["round-robin", "inverse-weighted"] {
            for &batch in &batches {
                spec.push_point(values![
                    "pattern" => pattern,
                    "arbiter" => arbiter,
                    "batch" => batch,
                ]);
            }
        }
    }

    let n_points = spec.points().len();
    let measurements = spec.run(threads, |point: &SweepPoint| {
        let pattern = point.str("pattern");
        let setup = match point.str("arbiter") {
            "round-robin" => ArbiterSetup::RoundRobin,
            _ => ArbiterSetup::InverseWeighted(weights.clone()),
        };
        let sat = if pattern == "uniform" {
            sat_uniform
        } else {
            sat_2hop
        };
        let batch = point.int("batch") as u64;
        let (p, m) = run_batch_sharded(
            &cfg,
            vec![(pattern_or_exit(pattern), 1.0)],
            batch,
            &setup,
            sat,
            point.seed,
            shards,
        );
        eprintln!(
            "[fig9] {}/{n_points} {pattern} {} batch {batch} done",
            point.index + 1,
            setup.label()
        );
        values![
            "normalized" => p.normalized,
            "cycles" => p.cycles,
            "peak_utilization" => p.peak_utilization,
            "torus_mean_util" => m.link_class(anton_sim::metrics::LinkClass::Torus).mean_util,
            "sa1_grants" => m.grants.sa1,
            "output_grants" => m.grants.output,
            "serializer_grants" => m.grants.serializer,
        ]
    });

    println!(
        "{:<16} {:<18} {:>8} {:>12} {:>10} {:>10}",
        "pattern", "arbiter", "batch", "normalized", "cycles", "peak-util"
    );
    for m in &measurements {
        let p = &spec.points()[m.index];
        println!(
            "{:<16} {:<18} {:>8} {:>12.3} {:>10} {:>10.3}",
            p.str("pattern"),
            p.str("arbiter"),
            p.int("batch"),
            m.metric_f64("normalized"),
            m.metric_f64("cycles") as u64,
            m.metric_f64("peak_utilization"),
        );
    }
    match spec.write_results(&measurements) {
        Ok(path) => eprintln!("[fig9] wrote {}", path.display()),
        Err(e) => eprintln!("[fig9] could not write results JSON: {e}"),
    }
    println!();
    println!("Paper shape: round-robin falls well below the inverse-weighted curves as");
    println!("batch size grows (uniform below 0.6 at 8x8x8); inverse-weighted saturates");
    println!("near 0.9 and holds it.");
}
