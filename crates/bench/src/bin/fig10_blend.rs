//! Figure 10: blending tornado and reverse-tornado traffic under four
//! arbiter-weight configurations — None (round-robin), Forward (tornado
//! weights only), Reverse (reverse-tornado weights only), and Both (two
//! weight sets selected per packet by its pattern tag).
//!
//! Packets are divided between the two patterns with the fraction varying
//! along the horizontal axis; throughput is normalized to the blend's
//! analytic saturation rate. Defaults use a 6×6×6 torus (the tornado offset
//! is then ±2 per dimension) for runtime; pass `--k 8` for the paper's
//! machine size.

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_bench::{run_batch, torus_capacity, ArbiterSetup, Args};
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_core::topology::TorusShape;
use anton_traffic::patterns::{ReverseTornado, Tornado};

fn main() {
    let args = Args::capture();
    let k: u8 = args.get("k", 6);
    let batch: u64 = args.get("batch", 256);
    let seed: u64 = args.get("seed", 42);
    let steps = args.list("fractions-pct", &[0, 25, 50, 75, 100]);
    let cfg = MachineConfig::new(TorusShape::cube(k));

    println!("## Figure 10 — blended tornado / reverse tornado ({k}x{k}x{k}, {batch} pkts/core)");
    println!();
    eprintln!("[fig10] computing per-pattern loads and weights...");
    let fwd = LoadAnalysis::compute(&cfg, &Tornado);
    let rev = LoadAnalysis::compute(&cfg, &ReverseTornado);
    let w_fwd = ArbiterWeightSet::compute(&cfg, &[&fwd], 5);
    let w_rev = ArbiterWeightSet::compute(&cfg, &[&rev], 5);
    let w_both = ArbiterWeightSet::compute(&cfg, &[&fwd, &rev], 5);

    let configs: [(&str, ArbiterSetup); 4] = [
        ("none", ArbiterSetup::RoundRobin),
        ("forward", ArbiterSetup::InverseWeighted(w_fwd)),
        ("reverse", ArbiterSetup::InverseWeighted(w_rev)),
        ("both", ArbiterSetup::InverseWeighted(w_both)),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "weights", "fwd-frac", "normalized", "cycles", "peak-util"
    );
    for &pct in &steps {
        let f = pct as f64 / 100.0;
        // Saturation rate of the blend: the blended load is linear in the
        // mixing coefficients (Section 3.2), so analyze the mixture.
        let blend_analysis = {
            let mut combined = LoadAnalysis::default();
            for (link, load) in &fwd.link_loads {
                *combined.link_loads.entry(*link).or_insert(0.0) += f * load;
            }
            for (link, load) in &rev.link_loads {
                *combined.link_loads.entry(*link).or_insert(0.0) += (1.0 - f) * load;
            }
            combined
        };
        let sat = blend_analysis.saturation_injection_rate(torus_capacity());
        for (name, setup) in &configs {
            let components: Vec<(Box<dyn TrafficPattern>, f64)> = vec![
                (Box::new(Tornado), f),
                (Box::new(ReverseTornado), 1.0 - f),
            ];
            let point = run_batch(&cfg, components, batch, setup, sat, seed ^ pct);
            println!(
                "{:<10} {:>11}% {:>12.3} {:>10} {:>10.3}",
                name, pct, point.normalized, point.cycles, point.peak_utilization
            );
        }
    }
    println!();
    println!("Paper shape: 'both' holds ~0.85 across all blends; 'forward'/'reverse'");
    println!("match it only near their own pattern and fall toward round-robin at the");
    println!("other extreme.");
}
