//! Figure 10: blending tornado and reverse-tornado traffic under four
//! arbiter-weight configurations — None (round-robin), Forward (tornado
//! weights only), Reverse (reverse-tornado weights only), and Both (two
//! weight sets selected per packet by its pattern tag).
//!
//! Packets are divided between the two patterns with the fraction varying
//! along the horizontal axis; throughput is normalized to the blend's
//! analytic saturation rate. Defaults use a 6×6×6 torus (the tornado offset
//! is then ±2 per dimension) for runtime; pass `--k 8` for the paper's
//! machine size.
//!
//! Runs on the experiment harness: `--threads` workers, structured results
//! in `results/fig10_blend.json`.

use anton_analysis::load::LoadAnalysis;
use anton_analysis::weights::ArbiterWeightSet;
use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{run_batch_detailed, torus_capacity, values, ArbiterSetup, FlagSet};
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_core::topology::TorusShape;
use anton_traffic::patterns::{ReverseTornado, Tornado};

fn main() {
    let args = FlagSet::new(
        "fig10_blend",
        "Figure 10: blended tornado / reverse tornado",
    )
    .flag("k", 6u8, "torus dimension per side")
    .flag("batch", 256u64, "packets per core")
    .flag("seed", 42u64, "base seed; per-point seeds derive from it")
    .list(
        "fractions-pct",
        &[0, 25, 50, 75, 100],
        "forward-traffic percentages",
    )
    .flag("threads", 1usize, "worker threads for the sweep")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let seed: u64 = args.get("seed");
    let steps = args.list("fractions-pct");
    let threads: usize = args.get("threads");
    if k < 4 {
        eprintln!(
            "fig10_blend: --k must be at least 4 (the tornado offset k/2-1 vanishes below that)"
        );
        std::process::exit(2);
    }
    let cfg = MachineConfig::new(TorusShape::cube(k));

    println!("## Figure 10 — blended tornado / reverse tornado ({k}x{k}x{k}, {batch} pkts/core)");
    println!();
    eprintln!("[fig10] computing per-pattern loads and weights...");
    let fwd = LoadAnalysis::compute(&cfg, &Tornado);
    let rev = LoadAnalysis::compute(&cfg, &ReverseTornado);
    let w_fwd = ArbiterWeightSet::compute(&cfg, &[&fwd], 5);
    let w_rev = ArbiterWeightSet::compute(&cfg, &[&rev], 5);
    let w_both = ArbiterWeightSet::compute(&cfg, &[&fwd, &rev], 5);

    // Saturation rate of each blend: the blended load is linear in the
    // mixing coefficients (Section 3.2), so analyze the mixture.
    let blend_saturation = |f: f64| {
        let mut combined = LoadAnalysis::default();
        for (link, load) in &fwd.link_loads {
            *combined.link_loads.entry(*link).or_insert(0.0) += f * load;
        }
        for (link, load) in &rev.link_loads {
            *combined.link_loads.entry(*link).or_insert(0.0) += (1.0 - f) * load;
        }
        combined.saturation_injection_rate(torus_capacity())
    };
    let sats: Vec<(u64, f64)> = steps
        .iter()
        .map(|&pct| (pct, blend_saturation(pct as f64 / 100.0)))
        .collect();

    let mut spec = ExperimentSpec::new("fig10_blend", seed);
    for &pct in &steps {
        for name in ["none", "forward", "reverse", "both"] {
            spec.push_point(values!["weights" => name, "fwd_pct" => pct]);
        }
    }

    let n_points = spec.points().len();
    let measurements = spec.run(threads, |point: &SweepPoint| {
        let pct = point.int("fwd_pct") as u64;
        let f = pct as f64 / 100.0;
        let setup = match point.str("weights") {
            "none" => ArbiterSetup::RoundRobin,
            "forward" => ArbiterSetup::InverseWeighted(w_fwd.clone()),
            "reverse" => ArbiterSetup::InverseWeighted(w_rev.clone()),
            _ => ArbiterSetup::InverseWeighted(w_both.clone()),
        };
        let sat = sats.iter().find(|(p, _)| *p == pct).expect("precomputed").1;
        let components: Vec<(Box<dyn TrafficPattern>, f64)> =
            vec![(Box::new(Tornado), f), (Box::new(ReverseTornado), 1.0 - f)];
        let (p, m) = run_batch_detailed(&cfg, components, batch, &setup, sat, point.seed);
        eprintln!(
            "[fig10] {}/{n_points} {} at {pct}% done",
            point.index + 1,
            point.str("weights")
        );
        values![
            "normalized" => p.normalized,
            "cycles" => p.cycles,
            "peak_utilization" => p.peak_utilization,
            "saturation_rate" => sat,
            "sa1_grants" => m.grants.sa1,
            "output_grants" => m.grants.output,
            "serializer_grants" => m.grants.serializer,
        ]
    });

    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "weights", "fwd-frac", "normalized", "cycles", "peak-util"
    );
    for m in &measurements {
        let p = &spec.points()[m.index];
        println!(
            "{:<10} {:>11}% {:>12.3} {:>10} {:>10.3}",
            p.str("weights"),
            p.int("fwd_pct"),
            m.metric_f64("normalized"),
            m.metric_f64("cycles") as u64,
            m.metric_f64("peak_utilization"),
        );
    }
    match spec.write_results(&measurements) {
        Ok(path) => eprintln!("[fig10] wrote {}", path.display()),
        Err(e) => eprintln!("[fig10] could not write results JSON: {e}"),
    }
    println!();
    println!("Paper shape: 'both' holds ~0.85 across all blends; 'forward'/'reverse'");
    println!("match it only near their own pattern and fall toward round-robin at the");
    println!("other extreme.");
}
