//! Simulator-kernel performance benchmark: measures raw cycles/sec of the
//! `anton-sim` hot path over representative workloads and machine sizes,
//! and exports the numbers (with the committed pre-rewrite baseline and the
//! speedup against it) to `BENCH_sim.json`.
//!
//! Workloads:
//!
//! * `uniform` — closed-loop batch of uniform-random traffic (the Figure 9
//!   procedure), saturating the whole machine then draining the straggler
//!   tail;
//! * `neighbor` — closed-loop batch of 1-hop-neighbor traffic (the
//!   MD-shaped locality extreme);
//! * `fault` — open-loop load under a lossy fault schedule (the
//!   fig_fault_sweep procedure), exercising the go-back-N link shims;
//! * `latency` — sparse ping-pong round trips (the Section 4.3 one-way
//!   latency measurement): the network is idle except for a handful of
//!   in-flight packets, so runtime is dominated by cycle bookkeeping
//!   rather than flit movement. This is the regime the event-driven
//!   kernel targets, and `latency/medium` is the headline entry for the
//!   >=3x kernel-speedup acceptance gate.
//!
//! Sizes: `small` is a 2×2×2 machine, `medium` a 4×4×4 machine (the size
//! the ≥3× kernel-speedup acceptance gate is measured on), and `large` the
//! paper's full 8×8×8 machine — measured on `uniform` only, once serially
//! and once on the sharded parallel kernel (`--shards`, default 8), with
//! the sharded entry recording its wall-clock speedup against the serial
//! run of the identical workload (`speedup_vs_serial`). The saturated
//! throughput workloads are kept as honest anchors: at full load both the
//! event-driven and the dirty-scan kernel do the same irreducible per-flit
//! work (~580 router sends/cycle on `uniform/medium`), so their speedup is
//! near 1×; the scan overhead the rewrite removes only shows up when the
//! machine has idle components, as in `latency` and sub-saturation loads.
//!
//! Each measurement runs `--reps` times and keeps the fastest (wall-clock
//! noise only ever slows a run down). `--phases` additionally runs one
//! profiled pass per entry to break the cycle loop into its five phases via
//! `TraceConfig::profile` (the `ANTON_SIM_PROFILE` environment variable
//! still works; see DESIGN.md "Simulator kernel & profiling").
//! `--quick` shrinks everything for the CI smoke job.

use std::hint::black_box;
use std::time::Instant;

use anton_arbiter::{
    AgeArbiter, ArbRequest, BitsetArbiter, FixedPriorityArbiter, InverseWeightedArbiter,
    PortArbiter, RoundRobinArbiter,
};
use anton_bench::{FlagSet, Json};
use anton_core::chip::LocalEndpointId;
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_core::topology::{NodeId, TorusShape};
use anton_core::GlobalEndpoint;
use anton_fault::FaultSchedule;
use anton_sim::driver::{BatchDriver, LoadDriver, PingPongDriver};
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim, PHASE_NS};
use anton_traffic::patterns::{NHopNeighbor, UniformRandom};

/// Pre-rewrite kernel throughput (cycles/sec), measured on the dirty-scan
/// kernel at commit 5177f7c (PR 2 head) with this benchmark's default
/// parameters on the CI-class build host. The speedup column of
/// `BENCH_sim.json` is current/baseline, so the perf trajectory of the
/// kernel is tracked from the event-driven rewrite onward. Absolute numbers
/// are host-dependent; the ratio is the signal.
/// Each value is the best (highest) seed-kernel cycles/sec observed across
/// measurement runs, so the speedup column is a lower bound.
const BASELINE_CPS: &[(&str, &str, f64)] = &[
    ("uniform", "small", 23_700.0),
    ("uniform", "medium", 1_339.0),
    ("neighbor", "small", 24_232.0),
    ("neighbor", "medium", 1_066.0),
    ("fault", "small", 64_010.0),
    ("fault", "medium", 5_097.0),
    ("latency", "small", 1_364_243.0),
    ("latency", "medium", 281_659.0),
];

fn baseline_cps(workload: &str, size: &str) -> Option<f64> {
    BASELINE_CPS
        .iter()
        .find(|(w, s, _)| *w == workload && *s == size)
        .map(|&(_, _, v)| v)
}

/// One finished measurement.
struct Entry {
    workload: &'static str,
    size: &'static str,
    k: u8,
    shards: usize,
    cycles: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    peak_rss_kb: u64,
    speedup_vs_serial: Option<f64>,
    /// The per-phase wall-clock breakdown from one profiled pass: the five
    /// serial kernel phases for `shards == 1` entries, the four sharded
    /// worker phases (summed plus `per_shard`) otherwise.
    phase_ns: Option<Json>,
}

/// One row of the arbitration-core microbenchmark: ns/grant of the
/// monomorphic [`BitsetArbiter`] mask core versus the boxed
/// `dyn PortArbiter` reference implementation, driven by the identical
/// pseudo-random request stream.
struct MicrobenchRow {
    policy: &'static str,
    lanes: usize,
    picks: u64,
    bitset_ns_per_grant: f64,
    reference_ns_per_grant: f64,
    speedup: f64,
}

/// SplitMix64 step: the deterministic request-stream generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Times `picks` grants through the bitset core and through the boxed
/// reference arbiter on the same request stream, asserting that every
/// grant agrees (the proptest equivalence property, re-checked here on the
/// benchmark stream itself).
///
/// Requests are pre-generated so the timed loops measure arbitration, not
/// stream synthesis; the reference loop additionally builds its
/// `ArbRequest` slice per pick, which is exactly the per-grant cost the
/// old hot path paid and the bitset core eliminates.
fn microbench_policy(
    policy: &'static str,
    lanes: usize,
    picks: u64,
    mut bitset: BitsetArbiter,
    mut reference: Box<dyn PortArbiter>,
) -> MicrobenchRow {
    let mask = (1u64 << lanes) - 1;
    let mut rng = 0x5eed_0000_0000_0000u64 ^ picks;
    let reqs: Vec<u64> = (0..picks)
        .map(|_| loop {
            let r = splitmix64(&mut rng) & mask;
            if r != 0 {
                break r;
            }
        })
        .collect();
    // Per-lane attributes as cheap pure functions of (pick, lane), so both
    // implementations observe identical patterns and ages without a
    // gigabyte of pre-generated attribute tables.
    let pattern_of = |i: u64, lane: u32| -> u8 { ((i ^ u64::from(lane)) & 3) as u8 };
    let age_of = |i: u64, lane: u32| -> u64 { (i << 6) ^ u64::from(lane).wrapping_mul(0x9e37) };

    let t = Instant::now();
    let mut bitset_sum = 0u64;
    for (i, &req) in reqs.iter().enumerate() {
        let i = i as u64;
        let w = bitset
            .pick_mask(black_box(req), |l| pattern_of(i, l), |l| age_of(i, l))
            .expect("nonzero request word always grants");
        bitset_sum = bitset_sum.wrapping_mul(31).wrapping_add(u64::from(w));
    }
    // Both grant checksums feed the equivalence assert below, so neither
    // timed loop can be dead-code-eliminated.
    let bitset_ns = t.elapsed().as_nanos() as f64;

    let mut buf: Vec<ArbRequest> = Vec::with_capacity(lanes);
    let t = Instant::now();
    let mut ref_sum = 0u64;
    for (i, &req) in reqs.iter().enumerate() {
        let i = i as u64;
        buf.clear();
        let mut rest = black_box(req);
        while rest != 0 {
            let lane = rest.trailing_zeros();
            rest &= rest - 1;
            buf.push(ArbRequest {
                input: lane as usize,
                pattern: pattern_of(i, lane),
                age: age_of(i, lane),
            });
        }
        let idx = reference
            .pick(&buf)
            .expect("nonempty requests always grant");
        ref_sum = ref_sum.wrapping_mul(31).wrapping_add(buf[idx].input as u64);
    }
    let reference_ns = t.elapsed().as_nanos() as f64;
    assert_eq!(
        bitset_sum, ref_sum,
        "{policy}: bitset grants diverged from the reference arbiter"
    );
    let bitset_ns_per_grant = bitset_ns / picks as f64;
    let reference_ns_per_grant = reference_ns / picks as f64;
    MicrobenchRow {
        policy,
        lanes,
        picks,
        bitset_ns_per_grant,
        reference_ns_per_grant,
        speedup: reference_ns_per_grant / bitset_ns_per_grant,
    }
}

/// Runs the arbitration microbenchmark across every policy at a
/// router-like radix.
fn arbiter_microbench(picks: u64) -> Vec<MicrobenchRow> {
    // 12 lanes ≈ the router radix (4 mesh dirs + skip + chan + endpoint
    // ports); InverseWeighted caps at 32 inputs so this stays comfortably
    // representative for every policy.
    const LANES: usize = 12;
    vec![
        microbench_policy(
            "round_robin",
            LANES,
            picks,
            BitsetArbiter::round_robin(LANES),
            Box::new(RoundRobinArbiter::new(LANES)),
        ),
        microbench_policy(
            "fixed_priority",
            LANES,
            picks,
            BitsetArbiter::fixed_priority(LANES),
            Box::new(FixedPriorityArbiter::new(LANES)),
        ),
        microbench_policy(
            "age",
            LANES,
            picks,
            BitsetArbiter::age(LANES),
            Box::new(AgeArbiter::new(LANES)),
        ),
        microbench_policy(
            "inverse_weighted",
            LANES,
            picks,
            BitsetArbiter::uniform_iw(LANES, 5),
            Box::new(InverseWeightedArbiter::uniform(LANES, 5)),
        ),
    ]
}

/// Peak resident-set high-water mark of this process in kB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
///
/// The high-water mark is process-global and monotone, so each entry calls
/// [`reset_peak_rss`] before its workload runs — the sample taken after
/// them then belongs to that entry alone rather than inheriting the
/// largest machine built so far.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Resets the process RSS high-water mark (writing `5` to
/// `/proc/self/clear_refs`), so the next [`peak_rss_kb`] sample covers only
/// the work that follows. Kernels or sandboxes that refuse the write leave
/// the mark monotone — the pre-fix behavior — which the per-entry sample
/// then degrades to, never worse.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Times one run of a [`ShardableDriver`] workload on either kernel:
/// serial for `shards <= 1`, the sharded parallel kernel otherwise.
fn time_run<D: anton_sim::ShardableDriver>(
    cfg: MachineConfig,
    params: SimParams,
    shards: usize,
    drv: &mut D,
    label: &str,
) -> (u64, f64) {
    if shards > 1 {
        let mut sim = Sim::builder()
            .config(cfg)
            .params(params)
            .shards(shards)
            .build_sharded();
        let t = Instant::now();
        let outcome = sim.run(drv, 600_000_000);
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(outcome, RunOutcome::Completed, "{label} run");
        (sim.now(), wall)
    } else {
        let mut sim = Sim::builder().config(cfg).params(params).build();
        let t = Instant::now();
        let outcome = sim.run(drv, 600_000_000);
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(outcome, RunOutcome::Completed, "{label} run");
        (sim.now(), wall)
    }
}

/// Builds and runs one workload once, returning (cycles, wall seconds).
/// `profile` turns on the per-phase profiler via [`TraceConfig`] (the
/// structured replacement for exporting `ANTON_SIM_PROFILE`). `shards > 1`
/// runs on the sharded parallel kernel (same cycles, different wall clock).
fn run_once(
    workload: &str,
    k: u8,
    packets: u64,
    seed: u64,
    profile: bool,
    shards: usize,
) -> (u64, f64) {
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let base_params = SimParams {
        trace: TraceConfig {
            profile,
            ..TraceConfig::default()
        },
        ..SimParams::default()
    };
    match workload {
        "uniform" | "neighbor" => {
            let pattern: Box<dyn TrafficPattern> = if workload == "uniform" {
                Box::new(UniformRandom)
            } else {
                Box::new(NHopNeighbor::new(1))
            };
            let mut drv = BatchDriver::builder_for(&cfg)
                .pattern(pattern)
                .packets_per_endpoint(packets)
                .seed(seed)
                .build();
            time_run(
                cfg,
                base_params,
                shards,
                &mut drv,
                &format!("{workload} k{k}"),
            )
        }
        "fault" => {
            let params = SimParams {
                fault: Some(FaultSchedule::uniform(7, 1e-4)),
                ..base_params
            };
            let mut drv = LoadDriver::for_config(&cfg, Box::new(UniformRandom), 0.1, packets, seed);
            time_run(cfg, params, shards, &mut drv, &format!("{workload} k{k}"))
        }
        "latency" => {
            assert_eq!(shards, 1, "the ping-pong driver has no sharded split");
            let mut sim = Sim::builder().config(cfg).params(base_params).build();
            let nn = sim.cfg.shape.num_nodes() as u32;
            let pairs: Vec<(GlobalEndpoint, GlobalEndpoint)> = (0..4u32)
                .map(|i| {
                    (
                        GlobalEndpoint {
                            node: NodeId(i % nn),
                            ep: LocalEndpointId(0),
                        },
                        GlobalEndpoint {
                            node: NodeId((nn / 2 + i) % nn),
                            ep: LocalEndpointId(0),
                        },
                    )
                })
                .collect();
            let mut drv = PingPongDriver::new(pairs, packets as u32);
            let t = Instant::now();
            let outcome = sim.run(&mut drv, 600_000_000);
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(outcome, RunOutcome::Completed, "{workload} k{k} run");
            (sim.now(), wall)
        }
        other => anton_bench::fail_usage(
            &anton_verify::Diagnostic::error("AV101", format!("unknown workload `{other}`"))
                .with("known", "uniform, neighbor, fault, latency"),
        ),
    }
}

/// One profiled pass on the sharded parallel kernel, returning the worker
/// phase breakdown (`compute` / `barrier_wait` / `mailbox` / `merge`)
/// summed across shards plus the per-shard split under `per_shard`.
fn run_profiled_sharded(k: u8, packets: u64, seed: u64, shards: usize) -> Json {
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let params = SimParams {
        trace: TraceConfig {
            profile: true,
            ..TraceConfig::default()
        },
        ..SimParams::default()
    };
    let mut drv = BatchDriver::builder_for(&cfg)
        .pattern(Box::new(UniformRandom))
        .packets_per_endpoint(packets)
        .seed(seed)
        .build();
    let mut sim = Sim::builder()
        .config(cfg)
        .params(params)
        .shards(shards)
        .build_sharded();
    assert_eq!(
        sim.run(&mut drv, 600_000_000),
        RunOutcome::Completed,
        "profiled sharded run"
    );
    let per = sim.phase_ns().expect("phase profiler on");
    let mut total = [0u64; anton_obs::NUM_SHARD_PHASES];
    for p in per {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    let Json::Obj(mut obj) = anton_obs::phase::phases_to_json(&total) else {
        unreachable!("phases_to_json returns an object")
    };
    obj.push((
        "per_shard".to_string(),
        Json::Arr(per.iter().map(anton_obs::phase::phases_to_json).collect()),
    ));
    Json::Obj(obj)
}

/// Renders a serial five-phase breakdown as an object keyed by
/// [`PHASE_NAMES`].
fn serial_phases_json(p: [u64; 5]) -> Json {
    Json::Obj(
        PHASE_NAMES
            .iter()
            .zip(p)
            .map(|(n, v)| (n.to_string(), Json::from(v)))
            .collect(),
    )
}

/// One profiled pass, returning the per-phase nanosecond deltas.
fn run_profiled(workload: &str, k: u8, packets: u64, seed: u64) -> [u64; 5] {
    let before: Vec<u64> = PHASE_NS
        .iter()
        .map(|a| a.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    run_once(workload, k, packets, seed, true, 1);
    let mut delta = [0u64; 5];
    for (i, d) in delta.iter_mut().enumerate() {
        *d = PHASE_NS[i].load(std::sync::atomic::Ordering::Relaxed) - before[i];
    }
    delta
}

const PHASE_NAMES: [&str; 5] = [
    "wires",
    "endpoints_inject",
    "adapters",
    "routers",
    "endpoints_recv",
];

fn main() {
    let args = FlagSet::new(
        "bench_kernel",
        "Simulator-kernel cycles/sec benchmark exporting BENCH_sim.json",
    )
    .flag("reps", 3usize, "timed repetitions per entry (fastest kept)")
    .flag("seed", 42u64, "workload seed")
    .flag(
        "out",
        "BENCH_sim.json".to_string(),
        "output path for the JSON report",
    )
    .flag(
        "shards",
        8usize,
        "shard count for the large (k=8) sharded entry",
    )
    .switch("quick", "CI smoke mode: small size only, tiny batches")
    .switch("no-phases", "skip the profiled per-phase pass")
    .switch("no-large", "skip the large (k=8) serial-vs-sharded entries")
    .switch("no-microbench", "skip the arbitration-core microbenchmark")
    .parse();
    let quick = args.on("quick");
    let reps: usize = if quick { 1 } else { args.get("reps") };
    let seed: u64 = args.get("seed");
    let phases = !args.on("no-phases") && !quick;
    let large = !args.on("no-large") && !quick;
    let large_shards: usize = args.get("shards");
    let out_path: String = args.get("out");
    let micro_picks: u64 = if quick { 50_000 } else { 500_000 };
    let microbench = (!args.on("no-microbench")).then(|| arbiter_microbench(micro_picks));

    // (size, k, batch packets/ep, open-loop packets/ep, ping-pong legs)
    let sizes: &[(&str, u8, u64, u64, u64)] = if quick {
        &[("small", 2, 8, 6, 40)]
    } else {
        &[("small", 2, 96, 60, 400), ("medium", 4, 48, 30, 200)]
    };

    let mut entries: Vec<Entry> = Vec::new();
    for workload in ["uniform", "neighbor", "fault", "latency"] {
        for &(size, k, batch, open, legs) in sizes {
            let packets = match workload {
                "fault" => open,
                "latency" => legs,
                _ => batch,
            };
            reset_peak_rss();
            let mut best_wall = f64::INFINITY;
            let mut cycles = 0u64;
            for rep in 0..reps {
                let (c, wall) = run_once(workload, k, packets, seed, false, 1);
                eprintln!(
                    "[bench_kernel] {workload}/{size} rep {}/{reps}: {c} cycles in {:.3}s \
                     ({:.0} cycles/sec)",
                    rep + 1,
                    wall,
                    c as f64 / wall
                );
                cycles = c;
                best_wall = best_wall.min(wall);
            }
            let phase_ns =
                phases.then(|| serial_phases_json(run_profiled(workload, k, packets, seed)));
            entries.push(Entry {
                workload,
                size,
                k,
                shards: 1,
                cycles,
                wall_ms: best_wall * 1e3,
                cycles_per_sec: cycles as f64 / best_wall,
                peak_rss_kb: peak_rss_kb(),
                speedup_vs_serial: None,
                phase_ns,
            });
        }
    }

    // The headline sharded entries: the paper's full 8×8×8 machine, serial
    // versus the sharded parallel kernel, same workload and seed — cycles
    // are byte-identical by construction, so the wall-clock ratio is the
    // whole story. Expensive (512 nodes, 8192 endpoints), hence one rep and
    // a `--no-large` escape hatch.
    if large {
        let (workload, k, packets) = ("uniform", 8u8, 4u64);
        let mut serial_cps = None;
        for shards in [1usize, large_shards.max(2)] {
            reset_peak_rss();
            let (cycles, wall) = run_once(workload, k, packets, seed, false, shards);
            let cps = cycles as f64 / wall;
            eprintln!(
                "[bench_kernel] {workload}/large shards {shards}: {cycles} cycles in {wall:.3}s \
                 ({cps:.0} cycles/sec)"
            );
            let speedup_vs_serial = serial_cps.map(|s: f64| cps / s);
            if shards == 1 {
                serial_cps = Some(cps);
            }
            let rss = peak_rss_kb();
            // Both large entries get a profiled pass, so the phase
            // breakdown is visible at the paper's full 8×8×8 scale: the
            // serial entry reports the kernel's five cycle-loop phases, the
            // sharded entry the four worker phases of the two-barrier
            // window protocol (summed across shards, plus `per_shard`).
            let phase_ns = if shards == 1 {
                phases.then(|| serial_phases_json(run_profiled(workload, k, packets, seed)))
            } else {
                phases.then(|| run_profiled_sharded(k, packets, seed, shards))
            };
            entries.push(Entry {
                workload,
                size: "large",
                k,
                shards,
                cycles,
                wall_ms: wall * 1e3,
                cycles_per_sec: cps,
                peak_rss_kb: rss,
                speedup_vs_serial,
                phase_ns,
            });
        }
    }

    println!(
        "{:<10} {:<8} {:>7} {:>10} {:>10} {:>14} {:>12} {:>9}",
        "workload", "size", "shards", "cycles", "wall-ms", "cycles/sec", "baseline", "speedup"
    );
    let mut rows: Vec<Json> = Vec::new();
    for e in &entries {
        let base = baseline_cps(e.workload, e.size);
        let speedup = base.map(|b| e.cycles_per_sec / b);
        println!(
            "{:<10} {:<8} {:>7} {:>10} {:>10.1} {:>14.0} {:>12} {:>9}",
            e.workload,
            e.size,
            e.shards,
            e.cycles,
            e.wall_ms,
            e.cycles_per_sec,
            base.map_or("-".to_string(), |b| format!("{b:.0}")),
            speedup
                .or(e.speedup_vs_serial)
                .map_or("-".to_string(), |s| format!("{s:.2}x")),
        );
        let mut obj = vec![
            ("workload".to_string(), Json::from(e.workload)),
            ("size".to_string(), Json::from(e.size)),
            ("k".to_string(), Json::from(u64::from(e.k))),
            ("shards".to_string(), Json::from(e.shards)),
            ("cycles".to_string(), Json::from(e.cycles)),
            ("wall_ms".to_string(), Json::from(e.wall_ms)),
            ("cycles_per_sec".to_string(), Json::from(e.cycles_per_sec)),
            ("peak_rss_kb".to_string(), Json::from(e.peak_rss_kb)),
            (
                "baseline_cycles_per_sec".to_string(),
                base.map_or(Json::Null, Json::from),
            ),
            (
                "baseline_note".to_string(),
                if base.is_some() {
                    Json::Null
                } else {
                    // The seed dirty-scan kernel was never benchmarked at
                    // k=8 (it could not finish a k=8 batch in reasonable
                    // wall time), so large entries track speedup_vs_serial
                    // instead of a baseline ratio.
                    Json::from(
                        "seed dirty-scan kernel was never run at k=8; \
                         speedup_vs_serial is the tracked ratio",
                    )
                },
            ),
            (
                "speedup_vs_baseline".to_string(),
                speedup.map_or(Json::Null, Json::from),
            ),
            (
                "speedup_vs_serial".to_string(),
                e.speedup_vs_serial.map_or(Json::Null, Json::from),
            ),
        ];
        obj.push((
            "phase_ns".to_string(),
            e.phase_ns.clone().unwrap_or(Json::Null),
        ));
        rows.push(Json::Obj(obj));
    }
    let headline = entries
        .iter()
        .find(|e| e.workload == "latency" && e.size == if quick { "small" } else { "medium" })
        .map(|e| {
            let base = baseline_cps(e.workload, e.size);
            Json::obj([
                ("workload", Json::from(e.workload)),
                ("size", Json::from(e.size)),
                ("cycles_per_sec", Json::from(e.cycles_per_sec)),
                (
                    "speedup_vs_baseline",
                    base.map_or(Json::Null, |b| Json::from(e.cycles_per_sec / b)),
                ),
            ])
        })
        .unwrap_or(Json::Null);
    let micro_json = match &microbench {
        Some(micro) => {
            println!();
            println!(
                "{:<18} {:>6} {:>9} {:>14} {:>14} {:>9}",
                "arbiter policy", "lanes", "picks", "bitset ns", "boxed ns", "speedup"
            );
            for r in micro {
                println!(
                    "{:<18} {:>6} {:>9} {:>14.1} {:>14.1} {:>8.2}x",
                    r.policy,
                    r.lanes,
                    r.picks,
                    r.bitset_ns_per_grant,
                    r.reference_ns_per_grant,
                    r.speedup
                );
            }
            Json::Arr(
                micro
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("policy", Json::from(r.policy)),
                            ("lanes", Json::from(r.lanes as u64)),
                            ("picks", Json::from(r.picks)),
                            ("bitset_ns_per_grant", Json::from(r.bitset_ns_per_grant)),
                            (
                                "reference_ns_per_grant",
                                Json::from(r.reference_ns_per_grant),
                            ),
                            ("speedup", Json::from(r.speedup)),
                        ])
                    })
                    .collect(),
            )
        }
        None => Json::Null,
    };
    let report = Json::obj([
        ("name", Json::from("bench_sim")),
        ("schema", Json::from(1u64)),
        ("quick", Json::from(quick)),
        ("headline", headline),
        (
            "baseline_kernel",
            Json::from("dirty-scan (pre event-driven rewrite, commit 5177f7c)"),
        ),
        ("arbiter_microbench", micro_json),
        ("entries", Json::Arr(rows)),
    ]);
    anton_bench::write_output(&out_path, &report.to_pretty_string());
    eprintln!("[bench_kernel] wrote {out_path}");
}
