//! Section 2.5: deadlock avoidance.
//!
//! Builds the full unicast VC dependency graph for the Anton n+1-VC
//! promotion algorithm, the prior 2n-VC scheme, and the single-VC negative
//! control, reporting acyclicity and VC budgets — then demonstrates the
//! negative control actually deadlocking (and Anton draining) in live
//! simulation.

use anton_analysis::deadlock::{build_unicast_dep_graph, RouteEnumeration};
use anton_bench::{checked_cube, FlagSet};
use anton_core::chip::LinkGroup;
use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_core::vc::VcPolicy;
use anton_sim::driver::BatchDriver;
use anton_sim::params::{PreflightMode, SimParams};
use anton_sim::sim::Sim;
use anton_traffic::patterns::NodePermutation;

fn main() {
    let args = FlagSet::new(
        "sec25_deadlock",
        "Section 2.5: VC promotion and deadlock freedom",
    )
    .flag("k", 4u8, "torus dimension per side")
    .parse();
    let k: u8 = args.get("k");
    let shape = checked_cube(k);
    println!("## Section 2.5 — VC promotion and deadlock freedom ({k}x{k}x{k})");
    println!();
    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>9}",
        "policy", "M-VCs", "T-VCs", "nodes", "edges", "acyclic"
    );
    for policy in [VcPolicy::Anton, VcPolicy::Baseline2n, VcPolicy::NaiveSingle] {
        let mut cfg = MachineConfig::new(shape);
        cfg.vc_policy = policy;
        let graph = build_unicast_dep_graph(&cfg, &RouteEnumeration::default());
        let cycle = graph.find_cycle();
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>10} {:>9}",
            policy.to_string(),
            policy.num_vcs(LinkGroup::M),
            policy.num_vcs(LinkGroup::T),
            graph.num_nodes(),
            graph.num_edges(),
            if cycle.is_none() { "yes" } else { "NO" }
        );
        if let Some(c) = cycle {
            println!("    cycle of length {} through {} ...", c.len(), c[0].0);
        }
    }
    println!();
    println!("The Anton policy needs n+1 = 4 VCs per class for both groups; the prior");
    println!("approach needs 2n = 6 T-group VCs — one-third more (Section 2.5).");

    // Live demonstration: ring-wrap traffic.
    println!();
    println!("Live check — all nodes send k/2 hops around the X ring:");
    let perm: Vec<u32> = (0..u32::from(k))
        .map(|x| (x + u32::from(k) / 2) % u32::from(k))
        .collect();
    for policy in [VcPolicy::NaiveSingle, VcPolicy::Anton] {
        let mut cfg = MachineConfig::new(TorusShape::new(k, 1, 1));
        cfg.vc_policy = policy;
        // The NaiveSingle leg deliberately runs a config the pre-flight
        // verifier rejects; demote the rejection to a stderr warning.
        let params = SimParams {
            buffer_depth: 2,
            watchdog_cycles: 5_000,
            preflight: PreflightMode::WarnOnly,
            ..SimParams::default()
        };
        let mut sim = Sim::builder().config(cfg).params(params).build();
        let mut drv = BatchDriver::builder(&sim)
            .pattern(Box::new(NodePermutation::new(perm.clone())))
            .packets_per_endpoint(400)
            .seed(7)
            .build();
        let outcome = sim.run(&mut drv, 10_000_000);
        println!(
            "  {:<16} -> {:?} after {} cycles ({} packets stuck)",
            policy.to_string(),
            outcome,
            sim.now(),
            sim.live_packets()
        );
    }
}
