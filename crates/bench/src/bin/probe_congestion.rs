//! Diagnostic: stall attribution and congestion analysis of a saturated
//! uniform-random batch, answering *why* the network is slow rather than
//! just that it is.
//!
//! Runs one closed-loop uniform batch (the Figure 9 saturating procedure)
//! with [`TraceConfig::stalls`] attribution and time-series sampling on,
//! then:
//!
//! * prints the ranked congestion report — stall cycles by link class, by
//!   cause, the top hotspot links, and the root-blocker backpressure
//!   trees;
//! * attaches the same analysis (schema v2, under `congestion`) to
//!   `results/probe_congestion.json`;
//! * exports `results/probe_congestion.trace.json` for Perfetto: one
//!   cumulative counter track per link class (`flits_<class>`), and — when
//!   run with `--shards N` — one named track per shard worker showing its
//!   wall-clock phase split (compute / barrier_wait / mailbox / merge).
//!
//! With `--shards N` the run uses the sharded parallel kernel; the stall
//! counters are byte-identical to the serial run of the same workload, so
//! the attribution itself is shard-invariant.
//!
//! Usage: `probe_congestion --k K --batch B --sample CYCLES --shards N`.

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{checked_cube, values, FlagSet};
use anton_core::config::MachineConfig;
use anton_obs::{ChromeTrace, CongestionReport, TimeSeries, SHARD_PHASE_NAMES};
use anton_sim::driver::BatchDriver;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::UniformRandom;
use std::sync::Mutex;

/// Process id of the per-link-class counter tracks.
const PID_COUNTERS: u64 = 3;
/// Process id of the per-shard phase tracks.
const PID_SHARDS: u64 = 4;

/// What one run hands back to the exporter.
struct Captured {
    report: CongestionReport,
    timeseries: Option<TimeSeries>,
    phase_ns: Option<Vec<[u64; anton_obs::NUM_SHARD_PHASES]>>,
    cycles: u64,
    delivered: u64,
}

fn main() {
    let args = FlagSet::new(
        "probe_congestion",
        "Diagnostic: ranked stall attribution of a saturated uniform batch",
    )
    .flag("k", 4u8, "torus dimension per side")
    .flag(
        "batch",
        24u64,
        "packets per endpoint (closed loop, saturating)",
    )
    .flag("sample", 200u64, "time-series window width in cycles")
    .flag("shards", 1usize, "run on the sharded parallel kernel (> 1)")
    .flag("rows", 12usize, "hotspot rows to print")
    .flag("seed", 42u64, "workload seed")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let sample: u64 = args.get("sample");
    let shards: usize = args.get("shards");
    let rows: usize = args.get("rows");
    let seed: u64 = args.get("seed");
    let cfg = MachineConfig::new(checked_cube(k));

    let mut spec = ExperimentSpec::new("probe_congestion", seed);
    spec.push_point(values![
        "pattern" => "uniform",
        "batch" => batch,
        "shards" => shards as u64,
    ]);

    let captured: Mutex<Option<Captured>> = Mutex::new(None);
    let measurements = spec.run(1, |point: &SweepPoint| {
        let params = SimParams {
            seed: point.seed,
            trace: TraceConfig {
                sample_every: sample,
                stalls: true,
                profile: shards > 1,
                ..TraceConfig::default()
            },
            ..SimParams::default()
        };
        let mut drv = BatchDriver::builder_for(&cfg)
            .pattern(Box::new(UniformRandom))
            .packets_per_endpoint(batch)
            .seed(point.seed)
            .build();
        let cap = if shards > 1 {
            let mut sim = Sim::builder()
                .config(cfg.clone())
                .params(params)
                .shards(shards)
                .build_sharded();
            let outcome = sim.run(&mut drv, 100_000_000);
            assert_eq!(outcome, RunOutcome::Completed, "sharded run did not finish");
            Captured {
                report: sim.congestion_report().expect("stall attribution was on"),
                timeseries: sim.merged_timeseries(),
                phase_ns: sim.phase_ns().map(<[_]>::to_vec),
                cycles: sim.now(),
                delivered: sim.stats().delivered_packets,
            }
        } else {
            let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
            let outcome = sim.run(&mut drv, 100_000_000);
            assert_eq!(outcome, RunOutcome::Completed, "serial run did not finish");
            sim.flush_samples();
            sim.flush_stalls();
            Captured {
                report: sim.congestion_report().expect("stall attribution was on"),
                timeseries: sim.timeseries().cloned(),
                phase_ns: None,
                cycles: sim.now(),
                delivered: sim.stats().delivered_packets,
            }
        };
        // The analyzer's invariant: hotspot totals account for every
        // attributed stall cycle, nothing double-counted or dropped.
        let hotspot_sum: u64 = cap.report.hotspots.iter().map(|h| h.total()).sum();
        assert_eq!(hotspot_sum, cap.report.total_stall_cycles);
        let out = values![
            "cycles" => cap.cycles,
            "delivered" => cap.delivered,
            "total_stall_cycles" => cap.report.total_stall_cycles,
            "stalled_links" => cap.report.hotspots.len(),
            "hottest_class" => cap.report.class_totals.first().map_or("-", |(c, _)| c.as_str()),
        ];
        *captured.lock().expect("capture slot poisoned") = Some(cap);
        out
    });

    let cap = captured
        .into_inner()
        .expect("capture slot poisoned")
        .expect("the single point always runs");
    println!("{}", cap.report.render(rows));

    // Perfetto export: link-class flit counters plus per-shard phase spans.
    let mut trace = ChromeTrace::new();
    trace.process_name(PID_COUNTERS, "link-class flit counters");
    if let Some(ts) = &cap.timeseries {
        trace.counters_from_timeseries(PID_COUNTERS, ts, |name| name.starts_with("flits_"));
    }
    if let Some(per) = &cap.phase_ns {
        trace.process_name(PID_SHARDS, "shard phases (1us = 1ms wall)");
        for (i, p) in per.iter().enumerate() {
            trace.thread_name(PID_SHARDS, i as u64, format!("shard {i}"));
            let mut t = 0u64;
            for (phase, ns) in SHARD_PHASE_NAMES.iter().zip(p) {
                // Lay the phases end to end so each track reads as the
                // worker's wall-clock split (1 trace us per wall ms).
                let dur = (ns / 1_000_000).max(1);
                trace.complete(PID_SHARDS, i as u64, t, dur, *phase, None);
                t += dur;
            }
        }
    }
    let trace_path = std::path::Path::new("results/probe_congestion.trace.json");
    std::fs::create_dir_all("results").expect("create results/");
    anton_bench::write_output(trace_path, &trace.to_json().to_pretty_string());
    eprintln!(
        "[probe_congestion] wrote {} (open in https://ui.perfetto.dev)",
        trace_path.display()
    );

    match spec.write_results_with_under(
        std::path::Path::new("."),
        &measurements,
        &[("congestion", cap.report.to_json())],
    ) {
        Ok(path) => eprintln!("[probe_congestion] wrote {}", path.display()),
        Err(e) => eprintln!("[probe_congestion] could not write results JSON: {e}"),
    }
}
