//! Figure 12: decomposition of the minimum inter-node messaging latency.
//!
//! Runs a nearest-neighbor (single Y hop) ping-pong, reports the measured
//! one-way latency, and breaks it down into the same components the paper
//! shows: software/injection overhead, endpoint adapters (E), routers (R,
//! with the RC/VA/SA1/SA2 stages), channel adapters (C), SerDes + wire, and
//! handler dispatch. The component sum is checked against the end-to-end
//! measurement.

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::topology::{NodeCoord, TorusShape};
use anton_sim::driver::PingPongDriver;
use anton_sim::params::{SimParams, CYCLE_NS, TORUS_TOKEN_COST, TORUS_TOKEN_GAIN};
use anton_sim::sim::{RunOutcome, Sim};

fn main() {
    anton_bench::FlagSet::new(
        "fig12_decomposition",
        "Figure 12: minimum-latency decomposition",
    )
    .parse();
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let params = SimParams::default();

    // Nearest-neighbor in Y: source endpoint on the Y-adapter router so the
    // minimum-latency path is exercised, as in the paper's 99 ns case.
    let a = GlobalEndpoint {
        node: cfg.shape.id(NodeCoord::new(0, 0, 0)),
        ep: LocalEndpointId(8),
    };
    let b = GlobalEndpoint {
        node: cfg.shape.id(NodeCoord::new(0, 1, 0)),
        ep: LocalEndpointId(8),
    };
    let mut sim = Sim::builder()
        .config(cfg.clone())
        .params(params.clone())
        .build();
    let mut drv = PingPongDriver::new(vec![(a, b)], 60);
    let outcome = sim.run(&mut drv, 10_000_000);
    assert_eq!(outcome, RunOutcome::Completed);
    let measured = drv.mean_one_way_ns(0);

    println!("## Figure 12 — minimum one-way latency decomposition");
    println!();
    println!("Measured one-way latency (1 Y hop, 16 B payload): {measured:.1} ns");
    println!("(paper: ~99 ns; the network accounts for ~40% of it)");
    println!();

    // Component accounting in cycles (see anton_sim::params):
    let lat = &params.latency;
    let cyc = |c: f64| c * CYCLE_NS;
    let sw = lat.sw_inject_ns;
    let dispatch = lat.handler_dispatch_ns;
    // Endpoint adapter: wire + no pipeline on rx side; injection side 1
    // cycle of serialization.
    let inject_wire = cyc(1.0);
    // Router pipeline: RC, VA, SA1, SA2 — 4 stages of one cycle.
    let router = cyc(4.0);
    // Mesh hops between the endpoint router and the channel-adapter router.
    // Endpoint 8 sits on R(0,2), which hosts the Y0 adapters: no mesh hops.
    let mesh = cyc(0.0);
    // Channel adapter out: wire 1 + pipeline 2 + serialization of one flit
    // at the effective rate (45/14 cycles).
    let chan_out = cyc(1.0 + 2.0 + f64::from(TORUS_TOKEN_COST) / f64::from(TORUS_TOKEN_GAIN));
    // SerDes + wire flight.
    let serdes_wire = lat.serdes_wire_ns;
    // Channel adapter in: pipeline 2 + forward wire 1.
    let chan_in = cyc(2.0 + 1.0);
    // Destination router and ejection wire.
    let router_dst = cyc(4.0);
    let eject_wire = cyc(1.0);

    let rows: [(&str, f64); 9] = [
        ("software send overhead", sw),
        ("endpoint adapter (E) + injection wire", inject_wire),
        ("router (R): RC+VA+SA1+SA2", router),
        ("mesh hops to channel adapter", mesh),
        ("channel adapter (C) out + serialization", chan_out),
        ("SerDes + wire", serdes_wire),
        ("channel adapter (C) in", chan_in),
        ("destination router (R) + ejection", router_dst + eject_wire),
        ("synchronization + handler dispatch", dispatch),
    ];
    let mut sum = 0.0;
    println!("{:<42} {:>9} {:>7}", "component", "ns", "%");
    for (name, ns) in rows {
        sum += ns;
        println!("{name:<42} {ns:>9.1} {:>6.1}%", 100.0 * ns / measured);
    }
    println!("{:-<60}", "");
    println!("{:<42} {sum:>9.1}", "component sum");
    let network = measured - sw - dispatch;
    println!();
    println!(
        "Network share: {:.1} ns = {:.0}% of total (paper: ~40%)",
        network,
        100.0 * network / measured
    );
    assert!(
        (sum - measured).abs() / measured < 0.15,
        "decomposition drifted from measurement: {sum:.1} vs {measured:.1}"
    );
}
