//! Figure 13: per-flit router energy versus injection rate for three
//! payload patterns (all zeros, all ones, random), with the activation rate
//! maximized (`a = min(r, 1−r)`), and the model fit
//! `E = c₀ + c₁·h + (c₂ + c₃·n)(a/r)` pJ.
//!
//! Runs on the experiment harness: the payload × rate grid executes across
//! `--threads` workers and the measurements land in
//! `results/fig13_energy.json`; the model is then fitted to the collected
//! points.

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{values, FlagSet};
use anton_energy::experiment::{measure_rate, EnergyMeasurement};
use anton_energy::model::EnergyModel;
use anton_sim::driver::PayloadKind;
use anton_sim::params::EnergyParams;

fn main() {
    let args = FlagSet::new("fig13_energy", "Figure 13: router energy vs injection rate")
        .flag("packets", 1500u64, "packets measured per grid point")
        .flag("threads", 1usize, "worker threads for the sweep")
        .parse();
    let packets: u64 = args.get("packets");
    let threads: usize = args.get("threads");
    let energy = EnergyParams::default();

    println!("## Figure 13 — router energy per flit vs injection rate");
    println!();
    let rates: [(u32, u32); 7] = [(1, 8), (1, 4), (3, 8), (1, 2), (5, 8), (3, 4), (1, 1)];
    let payloads = [
        ("zeros", PayloadKind::Zeros),
        ("ones", PayloadKind::Ones),
        ("random", PayloadKind::Random),
    ];

    let mut spec = ExperimentSpec::new("fig13_energy", 0);
    for (name, _) in payloads {
        for (p, q) in rates {
            spec.push_point(values!["payload" => name, "rate_num" => p, "rate_den" => q]);
        }
    }

    let measurements = spec.run(threads, |point: &SweepPoint| {
        let kind = match point.str("payload") {
            "zeros" => PayloadKind::Zeros,
            "ones" => PayloadKind::Ones,
            _ => PayloadKind::Random,
        };
        let rate = (point.int("rate_num") as u32, point.int("rate_den") as u32);
        let m = measure_rate(rate, kind, packets, &energy);
        values![
            "rate" => m.rate,
            "h_mean" => m.h_mean,
            "n_mean" => m.n_mean,
            "a_over_r" => m.a_over_r,
            "energy_pj_per_flit" => m.energy_pj_per_flit,
        ]
    });

    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8} {:>12}",
        "payload", "rate", "h", "n", "a/r", "E (pJ/flit)"
    );
    let mut all = Vec::new();
    for m in &measurements {
        let p = &spec.points()[m.index];
        let em = EnergyMeasurement {
            rate: m.metric_f64("rate"),
            h_mean: m.metric_f64("h_mean"),
            n_mean: m.metric_f64("n_mean"),
            a_over_r: m.metric_f64("a_over_r"),
            energy_pj_per_flit: m.metric_f64("energy_pj_per_flit"),
        };
        println!(
            "{:<8} {:>6.3} {:>8.1} {:>8.1} {:>8.3} {:>12.1}",
            p.str("payload"),
            em.rate,
            em.h_mean,
            em.n_mean,
            em.a_over_r,
            em.energy_pj_per_flit
        );
        all.push(em);
    }
    match spec.write_results(&measurements) {
        Ok(path) => eprintln!("[fig13] wrote {}", path.display()),
        Err(e) => eprintln!("[fig13] could not write results JSON: {e}"),
    }

    let fitted = EnergyModel::fit(&all);
    let paper = EnergyModel::paper();
    println!();
    println!(
        "Fitted model:  E = {:.1} + {:.3}h + ({:.1} + {:.3}n)(a/r) pJ",
        fitted.fixed_pj, fitted.per_flip_pj, fitted.activation_pj, fitted.per_set_bit_pj
    );
    println!(
        "Paper's model: E = {:.1} + {:.3}h + ({:.1} + {:.3}n)(a/r) pJ",
        paper.fixed_pj, paper.per_flip_pj, paper.activation_pj, paper.per_set_bit_pj
    );
    println!("Fit RMS error: {:.2} pJ", fitted.rms_error(&all));
    println!();
    println!("Shape: per-flit energy is flat for r <= 1/2 (a/r = 1) and falls beyond,");
    println!("with the zeros/ones/random payloads separated by their h and n terms.");
}
