//! Figure 13: per-flit router energy versus injection rate for three
//! payload patterns (all zeros, all ones, random), with the activation rate
//! maximized (`a = min(r, 1−r)`), and the model fit
//! `E = c₀ + c₁·h + (c₂ + c₃·n)(a/r)` pJ.

use anton_bench::Args;
use anton_energy::experiment::measure_rate;
use anton_energy::model::EnergyModel;
use anton_sim::driver::PayloadKind;
use anton_sim::params::EnergyParams;

fn main() {
    let args = Args::capture();
    let packets: u64 = args.get("packets", 1500);
    let energy = EnergyParams::default();

    println!("## Figure 13 — router energy per flit vs injection rate");
    println!();
    let rates: [(u32, u32); 7] = [(1, 8), (1, 4), (3, 8), (1, 2), (5, 8), (3, 4), (1, 1)];
    let payloads =
        [("zeros", PayloadKind::Zeros), ("ones", PayloadKind::Ones), ("random", PayloadKind::Random)];

    let mut all = Vec::new();
    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8} {:>12}",
        "payload", "rate", "h", "n", "a/r", "E (pJ/flit)"
    );
    for (name, kind) in payloads {
        for (p, q) in rates {
            let m = measure_rate((p, q), kind, packets, &energy);
            println!(
                "{:<8} {:>6.3} {:>8.1} {:>8.1} {:>8.3} {:>12.1}",
                name, m.rate, m.h_mean, m.n_mean, m.a_over_r, m.energy_pj_per_flit
            );
            all.push(m);
        }
    }

    let fitted = EnergyModel::fit(&all);
    let paper = EnergyModel::paper();
    println!();
    println!("Fitted model:  E = {:.1} + {:.3}h + ({:.1} + {:.3}n)(a/r) pJ",
        fitted.fixed_pj, fitted.per_flip_pj, fitted.activation_pj, fitted.per_set_bit_pj);
    println!("Paper's model: E = {:.1} + {:.3}h + ({:.1} + {:.3}n)(a/r) pJ",
        paper.fixed_pj, paper.per_flip_pj, paper.activation_pj, paper.per_set_bit_pj);
    println!("Fit RMS error: {:.2} pJ", fitted.rms_error(&all));
    println!();
    println!("Shape: per-flit energy is flat for r <= 1/2 (a/r = 1) and falls beyond,");
    println!("with the zeros/ones/random payloads separated by their h and n terms.");
}
