//! Section 2.2: the external-channel link layer.
//!
//! Demonstrates the 112 → 89.6 Gb/s effective-bandwidth derate from framing,
//! and go-back-N behaviour under injected bit errors.
//!
//! Runs on the experiment harness: one sweep point per `--bers` entry, and
//! the measurements land in `results/sec22_link.json` (schema v1) alongside
//! the text table.

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{values, FlagSet};
use anton_link::channel::{LinkParams, LinkSim};
use anton_link::gobackn::GoBackNConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = FlagSet::new("sec22_link", "Section 2.2: torus-channel link layer")
        .flag("slots", 40_000u64, "frame slots simulated per BER point")
        .flist(
            "bers",
            &[0.0, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3],
            "bit error rates to sweep",
        )
        .flag("seed", 7u64, "RNG seed applied to every BER point")
        .parse();
    let slots: u64 = args.get("slots");
    let bers = args.flist("bers");
    let seed: u64 = args.get("seed");
    println!("## Section 2.2 — torus channel link layer (8 x 14 Gb/s SerDes)");
    println!();
    let base = LinkParams::default();
    println!(
        "Raw bandwidth/direction:       {:>7.1} Gb/s",
        base.raw_gbps()
    );
    println!(
        "Effective after framing (24/30): {:>5.1} Gb/s (paper: 89.6)",
        base.effective_gbps()
    );
    println!();

    let mut spec = ExperimentSpec::new("sec22_link", seed);
    for &ber in &bers {
        spec.push_point(values!["ber" => ber]);
    }
    let measurements = spec.run(1, |point: &SweepPoint| {
        let ber = point.float("ber");
        let params = LinkParams {
            bit_error_rate: ber,
            ..LinkParams::default()
        };
        let mut sim = LinkSim::new(
            params,
            GoBackNConfig {
                window: 32,
                timeout: 64,
            },
            // Every point uses the flag seed directly (not the derived
            // per-point seed) so the table matches the pre-harness output.
            StdRng::seed_from_u64(seed),
        );
        let stats = sim.run_saturated(slots);
        values![
            "goodput_fraction" => stats.goodput_fraction(),
            "goodput_gbps" => stats.goodput_gbps(&params),
            "delivered" => stats.delivered,
            "retransmissions" => stats.retransmissions,
            "corrupted" => stats.corrupted,
            "slots" => stats.slots,
        ]
    });

    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>10}",
        "BER", "goodput", "Gb/s", "retransmits", "corrupted"
    );
    for m in &measurements {
        let ber = spec.points()[m.index].float("ber");
        println!(
            "{:>10.0e} {:>11.1}% {:>14.1} {:>12} {:>10}",
            ber,
            100.0 * m.metric_f64("goodput_fraction") / anton_link::frame::EFFICIENCY,
            m.metric_f64("goodput_gbps"),
            m.metric_f64("retransmissions") as u64,
            m.metric_f64("corrupted") as u64
        );
    }
    println!();
    println!("Goodput column is relative to the 89.6 Gb/s framing-limited ceiling.");
    match spec.write_results(&measurements) {
        Ok(path) => eprintln!("[sec22] wrote {}", path.display()),
        Err(e) => eprintln!("[sec22] could not write results JSON: {e}"),
    }
}
