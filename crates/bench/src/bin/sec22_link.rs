//! Section 2.2: the external-channel link layer.
//!
//! Demonstrates the 112 → 89.6 Gb/s effective-bandwidth derate from framing,
//! and go-back-N behaviour under injected bit errors.

use anton_bench::FlagSet;
use anton_link::channel::{LinkParams, LinkSim};
use anton_link::gobackn::GoBackNConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = FlagSet::new("sec22_link", "Section 2.2: torus-channel link layer")
        .flag("slots", 40_000u64, "frame slots simulated per BER point")
        .parse();
    let slots: u64 = args.get("slots");
    println!("## Section 2.2 — torus channel link layer (8 x 14 Gb/s SerDes)");
    println!();
    let base = LinkParams::default();
    println!(
        "Raw bandwidth/direction:       {:>7.1} Gb/s",
        base.raw_gbps()
    );
    println!(
        "Effective after framing (24/30): {:>5.1} Gb/s (paper: 89.6)",
        base.effective_gbps()
    );
    println!();
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>10}",
        "BER", "goodput", "Gb/s", "retransmits", "corrupted"
    );
    for ber in [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3] {
        let params = LinkParams {
            bit_error_rate: ber,
            ..LinkParams::default()
        };
        let mut sim = LinkSim::new(
            params,
            GoBackNConfig {
                window: 32,
                timeout: 64,
            },
            StdRng::seed_from_u64(7),
        );
        let stats = sim.run_saturated(slots);
        println!(
            "{:>10.0e} {:>11.1}% {:>14.1} {:>12} {:>10}",
            ber,
            100.0 * stats.goodput_fraction() / anton_link::frame::EFFICIENCY,
            stats.goodput_gbps(&params),
            stats.retransmissions,
            stats.corrupted
        );
    }
    println!();
    println!("Goodput column is relative to the 89.6 Gb/s framing-limited ceiling.");
}
