//! Table 2: network area by category and component, plus the VC-count
//! ablation (`--baseline-vcs` evaluates the prior 2n-VC scheme the paper's
//! promotion algorithm replaces).

use anton_area::{AreaModel, AreaParams, Category, Component};
use anton_bench::FlagSet;
use anton_core::chip::ChipLayout;
use anton_core::vc::VcPolicy;

fn print_table(model: &AreaModel) {
    println!(
        "{:<16} {:>8} {:>10} {:>9} {:>8}",
        "Category", "Router", "Endpoint", "Channel", "Total"
    );
    for cat in Category::ALL {
        let r = model.network_percent(Component::Router, cat);
        let e = model.network_percent(Component::Endpoint, cat);
        let c = model.network_percent(Component::Channel, cat);
        println!(
            "{:<16} {:>7.1} {:>9.1} {:>8.1} {:>7.1}",
            cat.name(),
            r,
            e,
            c,
            model.category_percent(cat)
        );
    }
}

fn main() {
    let args = FlagSet::new("table2_area", "Table 2: network area by category")
        .switch("baseline-vcs", "also evaluate the prior 2n-VC scheme")
        .parse();
    println!("## Table 2 — network area by category (% of network area)");
    println!();
    let anton = AreaModel::anton();
    print_table(&anton);
    println!();
    println!("Paper totals: Queues 46.6, Reduction 9.6, Link 8.9, Configuration 8.6,");
    println!("Debug 7.8, Miscellaneous 7.3, Multicast 5.7, Arbiters 5.4.");

    if args.on("baseline-vcs") {
        println!();
        println!("## Ablation — 2n-VC baseline [20] instead of the n+1 promotion algorithm");
        println!();
        let baseline = AreaModel::new(
            AreaParams::default(),
            ChipLayout::new(23),
            VcPolicy::Baseline2n,
        );
        print_table(&baseline);
        let growth = 100.0 * (baseline.network_area() / anton.network_area() - 1.0);
        let q_a = anton.category_percent(Category::Queues) * anton.network_area() / 100.0;
        let q_b = baseline.category_percent(Category::Queues) * baseline.network_area() / 100.0;
        println!();
        println!(
            "Network area grows {growth:.1}% (queue area +{:.1}%) without VC promotion —",
            100.0 * (q_b / q_a - 1.0)
        );
        println!("the area motivation for the Section 2.5 algorithm.");
    }
}
