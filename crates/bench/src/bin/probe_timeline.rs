//! Diagnostic: flight-recorder timeline of a fig9-style batch run, exported
//! as a Chrome trace-event file viewable in Perfetto (<https://ui.perfetto.dev>).
//!
//! Sweeps the Figure 9 traffic patterns (uniform random and 2-hop neighbor)
//! with the flight recorder and time-series sampler enabled. The uniform
//! point's recorder becomes `results/probe_timeline.trace.json` — per-link
//! spans on one process track, per-packet lifetime spans on another — and
//! its sampled windows are attached to `results/probe_timeline.json`
//! (schema v2).
//!
//! Usage: `probe_timeline --k K --batch B --sample CYCLES --ring EVENTS`.

use std::sync::Mutex;

use anton_bench::harness::{ExperimentSpec, SweepPoint};
use anton_bench::{checked_cube, fail_usage, values, FlagSet};
use anton_core::config::MachineConfig;
use anton_core::pattern::TrafficPattern;
use anton_obs::{ChromeTrace, Json};
use anton_sim::driver::BatchDriver;
use anton_sim::params::{SimParams, TraceConfig};
use anton_sim::sim::{RunOutcome, Sim};

fn make_pattern(name: &str) -> Box<dyn TrafficPattern> {
    anton_bench::make_pattern(name).unwrap_or_else(|d| fail_usage(&d))
}

fn main() {
    let args = FlagSet::new(
        "probe_timeline",
        "Diagnostic: Perfetto-viewable flight-recorder timeline",
    )
    .flag("k", 2u8, "torus dimension per side")
    .flag("batch", 32u64, "packets per core")
    .flag("sample", 250u64, "time-series window width in cycles")
    .flag("ring", 1024usize, "flight-recorder ring capacity per wire")
    .flag("seed", 42u64, "base seed; per-point seeds derive from it")
    .parse();
    let k: u8 = args.get("k");
    let batch: u64 = args.get("batch");
    let sample: u64 = args.get("sample");
    let ring: usize = args.get("ring");
    let seed: u64 = args.get("seed");
    let cfg = MachineConfig::new(checked_cube(k));

    let mut spec = ExperimentSpec::new("probe_timeline", seed);
    for pattern in ["uniform", "2-hop-neighbor"] {
        spec.push_point(values!["pattern" => pattern, "batch" => batch]);
    }

    // The uniform point's recorder and sampler become the exported trace.
    let captured: Mutex<Option<(Json, Json)>> = Mutex::new(None);
    let measurements = spec.run(1, |point: &SweepPoint| {
        let pattern = point.str("pattern");
        let params = SimParams {
            seed: point.seed,
            trace: TraceConfig {
                events: true,
                ring_capacity: ring,
                sample_every: sample,
                ..TraceConfig::default()
            },
            ..SimParams::default()
        };
        let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
        let mut drv = BatchDriver::builder(&sim)
            .pattern(make_pattern(pattern))
            .packets_per_endpoint(batch)
            .seed(point.seed)
            .build();
        let outcome = sim.run(&mut drv, 100_000_000);
        assert_eq!(
            outcome,
            RunOutcome::Completed,
            "{pattern} run did not finish"
        );
        sim.flush_samples();
        let rec = sim.recorder().expect("event recording was enabled");
        let ts = sim.timeseries().expect("sampling was enabled");
        eprintln!(
            "[probe_timeline] {pattern}: {} cycles, {} events, {} windows",
            sim.now(),
            rec.total_recorded(),
            ts.windows().len()
        );
        if pattern == "uniform" {
            let trace = ChromeTrace::from_recorder(rec);
            *captured.lock().expect("capture slot poisoned") =
                Some((trace.to_json(), ts.to_json()));
        }
        values![
            "cycles" => sim.now(),
            "delivered" => sim.stats().delivered_packets,
            "events_recorded" => rec.total_recorded(),
            "windows" => ts.windows().len(),
        ]
    });

    let (trace_doc, windows) = captured
        .into_inner()
        .expect("capture slot poisoned")
        .expect("uniform point always runs");
    let trace_path = std::path::Path::new("results/probe_timeline.trace.json");
    std::fs::create_dir_all("results").expect("create results/");
    anton_bench::write_output(trace_path, &trace_doc.to_pretty_string());
    eprintln!(
        "[probe_timeline] wrote {} (open in https://ui.perfetto.dev)",
        trace_path.display()
    );
    match spec.write_results_with_under(
        std::path::Path::new("."),
        &measurements,
        &[("windows", windows)],
    ) {
        Ok(path) => eprintln!("[probe_timeline] wrote {}", path.display()),
        Err(e) => eprintln!("[probe_timeline] could not write results JSON: {e}"),
    }
}
