//! Parallel experiment harness: typed sweep specifications executed across a
//! scoped worker pool, with structured results export.
//!
//! An experiment is described once as an [`ExperimentSpec`] — a named list of
//! [`SweepPoint`]s, each carrying typed parameters and a deterministic
//! per-point seed derived from the spec's base seed and the point index.
//! [`ExperimentSpec::run`] executes the points across `--threads` workers
//! (each point builds its own independent `Sim`) and returns
//! [`Measurement`] records in enumeration order, so parallel execution is
//! bit-identical to serial: seeds depend only on `(base_seed, index)`, points
//! never share state, and results land in index-addressed slots.
//!
//! ```
//! use anton_bench::harness::{ExperimentSpec, Value};
//! use anton_bench::values;
//!
//! let mut spec = ExperimentSpec::new("doc_example", 42);
//! for k in [2u64, 4] {
//!     spec.push_point(values!["k" => k]);
//! }
//! let out = spec.run(2, |point| {
//!     let k = point.int("k");
//!     values!["k_squared" => k * k]
//! });
//! assert_eq!(out[1].metric("k_squared"), Some(&Value::Int(16)));
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// A typed parameter or metric value.
///
/// One enum serves both sides of a [`Measurement`]: sweep parameters (what
/// was configured) and metrics (what was observed).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer parameter or counter.
    Int(i64),
    /// A real-valued measurement.
    Float(f64),
    /// A label (pattern name, arbiter setup, payload kind…).
    Str(String),
    /// A boolean switch.
    Bool(bool),
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&Value> for Json {
    fn from(v: &Value) -> Json {
        match v {
            Value::Int(i) => Json::Int(*i),
            Value::Float(x) => Json::Float(*x),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Builds a `Vec<(String, Value)>` — the parameter/metric list shape used
/// throughout the harness — from `key => value` pairs of mixed types.
///
/// ```
/// use anton_bench::values;
/// let params = values!["pattern" => "uniform", "batch" => 64u64, "rate" => 0.5];
/// assert_eq!(params.len(), 3);
/// ```
#[macro_export]
macro_rules! values {
    ($($k:expr => $v:expr),* $(,)?) => {
        vec![$(($k.to_string(), $crate::harness::Value::from($v))),*]
    };
}

/// One configuration in a sweep: typed parameters plus the deterministic
/// seed assigned from `(base_seed, index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in the spec's enumeration order.
    pub index: usize,
    /// Per-point RNG seed; a function of the spec's base seed and `index`
    /// only, never of thread scheduling.
    pub seed: u64,
    /// Typed sweep parameters, in declaration order.
    pub params: Vec<(String, Value)>,
}

impl SweepPoint {
    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Integer parameter accessor; panics with the point context if the
    /// parameter is missing or not an integer.
    pub fn int(&self, name: &str) -> i64 {
        match self.param(name) {
            Some(Value::Int(i)) => *i,
            other => panic!(
                "point {}: expected int param `{name}`, got {other:?}",
                self.index
            ),
        }
    }

    /// Float parameter accessor; integer parameters promote to float.
    pub fn float(&self, name: &str) -> f64 {
        match self.param(name) {
            Some(Value::Float(x)) => *x,
            Some(Value::Int(i)) => *i as f64,
            other => panic!(
                "point {}: expected float param `{name}`, got {other:?}",
                self.index
            ),
        }
    }

    /// String parameter accessor.
    pub fn str(&self, name: &str) -> &str {
        match self.param(name) {
            Some(Value::Str(s)) => s,
            other => panic!(
                "point {}: expected string param `{name}`, got {other:?}",
                self.index
            ),
        }
    }
}

/// The outcome of executing one [`SweepPoint`]: the point's identity plus
/// the metrics the experiment body reported for it.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Enumeration index of the point this measurement came from.
    pub index: usize,
    /// The seed the point ran with.
    pub seed: u64,
    /// The point's parameters (copied so a measurement is self-describing).
    pub params: Vec<(String, Value)>,
    /// Observed metrics, in the order the experiment body reported them.
    pub metrics: Vec<(String, Value)>,
}

impl Measurement {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Value> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Float metric accessor; integer metrics promote to float. Panics if
    /// the metric is missing or non-numeric.
    pub fn metric_f64(&self, name: &str) -> f64 {
        match self.metric(name) {
            Some(Value::Float(x)) => *x,
            Some(Value::Int(i)) => *i as f64,
            other => panic!(
                "measurement {}: expected numeric metric `{name}`, got {other:?}",
                self.index
            ),
        }
    }
}

/// Schema version stamped into results files with no attachments; files at
/// this version are exactly the PR-1 shape.
pub const RESULTS_SCHEMA_VERSION: u64 = 1;

/// Schema version stamped when observability attachments (sampled `windows`,
/// `deadlock_reports`, …) are appended after `points`. A v2 document is a v1
/// document plus extra top-level sections — v1 readers that ignore unknown
/// keys keep working, and [`read_results`] accepts both.
pub const RESULTS_SCHEMA_VERSION_V2: u64 = 2;

/// Parses and validates a results document at schema version 1 or 2.
///
/// Checks the envelope (`experiment`, `schema_version`, `points`) and
/// rejects versions this build does not know how to read; the attachments of
/// a v2 file ride along untouched.
pub fn read_results(text: &str) -> Result<Json, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let ver = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("results: missing `schema_version`")?;
    if ver == 0 || ver > RESULTS_SCHEMA_VERSION_V2 {
        return Err(format!("results: unsupported schema_version {ver}"));
    }
    doc.get("experiment")
        .and_then(Json::as_str)
        .ok_or("results: missing `experiment`")?;
    doc.get("points")
        .and_then(Json::as_arr)
        .ok_or("results: missing `points`")?;
    if let Some(shards) = doc.get("shards") {
        let n = shards.as_u64().ok_or("results: `shards` is not a count")?;
        if n == 0 {
            return Err("results: `shards` must be at least 1".to_string());
        }
    }
    Ok(doc)
}

/// Worker-shard count recorded in a results document.
///
/// Documents written before the sharded kernel existed have no `shards` key
/// and read back as `1` (serial) — the same tolerant-default treatment
/// `static_verdict` received in deadlock reports.
pub fn results_shards(doc: &Json) -> u64 {
    doc.get("shards").and_then(Json::as_u64).unwrap_or(1)
}

/// A named sweep: the typed front door of the experiment harness.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    name: String,
    base_seed: u64,
    shards: usize,
    points: Vec<SweepPoint>,
}

impl ExperimentSpec {
    /// Creates an empty spec. `base_seed` is the only entropy source: every
    /// point's seed is derived from it and the point index.
    pub fn new(name: impl Into<String>, base_seed: u64) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            base_seed,
            shards: 1,
            points: Vec::new(),
        }
    }

    /// The experiment name (also the stem of the results file).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base seed the point seeds are derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Declares that every point of this sweep runs on the sharded kernel
    /// with `shards` worker shards (`1` = serial kernel). Recorded in the
    /// results document; the sharded kernel is byte-identical to serial, so
    /// this — like the thread count — must never change measurements.
    pub fn set_shards(&mut self, shards: usize) -> &mut Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker shards each point's simulation runs on (`1` = serial kernel).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Appends a sweep point, assigning its index and derived seed.
    pub fn push_point(&mut self, params: Vec<(String, Value)>) -> &mut Self {
        let index = self.points.len();
        let seed = derive_seed(self.base_seed, index as u64);
        self.points.push(SweepPoint {
            index,
            seed,
            params,
        });
        self
    }

    /// The enumerated points, in declaration order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Executes every point and collects measurements in enumeration order.
    ///
    /// `threads` workers (clamped to `1..=points`) pull point indices from a
    /// shared atomic counter; each invocation of `body` receives one point
    /// and returns that point's metrics. Results are written to
    /// index-addressed slots, so the returned vector is identical for any
    /// thread count — parallelism changes wall-clock time, never output.
    ///
    /// A panic in `body` propagates to the caller once the scope unwinds.
    pub fn run<F>(&self, threads: usize, body: F) -> Vec<Measurement>
    where
        F: Fn(&SweepPoint) -> Vec<(String, Value)> + Sync,
    {
        let n = self.points.len();
        let workers = threads.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        type ResultSlot = Mutex<Option<Vec<(String, Value)>>>;
        let slots: Vec<ResultSlot> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let metrics = body(&self.points[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(metrics);
                });
            }
        });

        self.points
            .iter()
            .zip(slots)
            .map(|(p, slot)| Measurement {
                index: p.index,
                seed: p.seed,
                params: p.params.clone(),
                metrics: slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("worker pool finished every point"),
            })
            .collect()
    }

    /// Renders measurements as the structured results document.
    ///
    /// Schema: `{ experiment, schema_version, base_seed, shards, points:
    /// [ { index, seed, params: {..}, metrics: {..} } ] }`. Thread count is
    /// deliberately absent — it must not influence results. `shards` records
    /// which kernel produced the numbers (serial at `1`); the sharded kernel
    /// is measurement-identical, so the field is provenance, not a parameter
    /// ([`read_results`] defaults it to `1` for documents written before it
    /// existed).
    pub fn results_json(&self, measurements: &[Measurement]) -> Json {
        let points = measurements
            .iter()
            .map(|m| {
                Json::obj([
                    ("index", Json::from(m.index)),
                    ("seed", Json::from(m.seed)),
                    (
                        "params",
                        Json::Obj(
                            m.params
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::from(v)))
                                .collect(),
                        ),
                    ),
                    (
                        "metrics",
                        Json::Obj(
                            m.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::from(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("experiment", Json::from(self.name.as_str())),
            ("schema_version", Json::from(RESULTS_SCHEMA_VERSION)),
            ("base_seed", Json::from(self.base_seed)),
            ("shards", Json::from(self.shards as u64)),
            ("points", Json::Arr(points)),
        ])
    }

    /// Renders measurements plus observability attachments. With an empty
    /// attachment list this is byte-identical to [`results_json`]
    /// (schema version 1); any attachment bumps the document to
    /// [`RESULTS_SCHEMA_VERSION_V2`] and appends the sections after `points`.
    ///
    /// [`results_json`]: ExperimentSpec::results_json
    pub fn results_json_with(
        &self,
        measurements: &[Measurement],
        attachments: &[(&str, Json)],
    ) -> Json {
        let mut doc = self.results_json(measurements);
        if attachments.is_empty() {
            return doc;
        }
        let Json::Obj(fields) = &mut doc else {
            unreachable!("results_json returns an object")
        };
        for (k, v) in fields.iter_mut() {
            if k == "schema_version" {
                *v = Json::from(RESULTS_SCHEMA_VERSION_V2);
            }
        }
        for (k, v) in attachments {
            fields.push(((*k).to_string(), v.clone()));
        }
        doc
    }

    /// Writes `results/<name>.json` under `dir` (creating `results/` if
    /// needed) and returns the path written. The write is atomic
    /// (temp-file-then-rename), so a crashed or interrupted run never leaves
    /// a truncated results file behind.
    pub fn write_results_under(
        &self,
        dir: &Path,
        measurements: &[Measurement],
    ) -> io::Result<PathBuf> {
        self.write_results_with_under(dir, measurements, &[])
    }

    /// [`write_results_under`], plus observability attachments (see
    /// [`results_json_with`]).
    ///
    /// [`write_results_under`]: ExperimentSpec::write_results_under
    /// [`results_json_with`]: ExperimentSpec::results_json_with
    pub fn write_results_with_under(
        &self,
        dir: &Path,
        measurements: &[Measurement],
        attachments: &[(&str, Json)],
    ) -> io::Result<PathBuf> {
        let results_dir = dir.join("results");
        std::fs::create_dir_all(&results_dir)?;
        let path = results_dir.join(format!("{}.json", self.name));
        let doc = self.results_json_with(measurements, attachments);
        anton_obs::write_atomic(&path, &doc.to_pretty_string())?;
        Ok(path)
    }

    /// Writes `results/<name>.json` relative to the current directory.
    pub fn write_results(&self, measurements: &[Measurement]) -> io::Result<PathBuf> {
        self.write_results_under(Path::new("."), measurements)
    }
}

/// Derives the RNG seed for sweep-point `index` of a spec seeded with
/// `base`. Pure function of its arguments, so any execution schedule assigns
/// identical seeds. This is the same splitmix64 derivation that backs every
/// other stream seed in the simulator ([`anton_core::seed`]), so committed
/// results keep their seeds across harness versions.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    anton_core::seed::derive_stream_seed(base, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new("demo", 7);
        for batch in [8u64, 16, 32] {
            for pattern in ["uniform", "tornado"] {
                spec.push_point(values!["batch" => batch, "pattern" => pattern]);
            }
        }
        spec
    }

    #[test]
    fn seeds_depend_only_on_base_and_index() {
        let a = demo_spec();
        let b = demo_spec();
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert_eq!(pa.seed, pb.seed);
            assert_eq!(pa.seed, derive_seed(7, pa.index as u64));
        }
        // Distinct indices and distinct bases give distinct seeds.
        let seeds: std::collections::HashSet<u64> = a.points().iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), a.points().len());
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let spec = demo_spec();
        let body = |p: &SweepPoint| {
            values![
                "echo_batch" => p.int("batch"),
                "seeded" => p.seed % 97,
                "label" => format!("{}-{}", p.str("pattern"), p.index),
            ]
        };
        let serial = spec.run(1, body);
        let parallel = spec.run(4, body);
        let oversubscribed = spec.run(64, body);
        assert_eq!(serial, parallel);
        assert_eq!(serial, oversubscribed);
        assert_eq!(serial.len(), 6);
        for (i, m) in serial.iter().enumerate() {
            assert_eq!(m.index, i);
        }
        // Identical JSON bytes, the strongest form of the guarantee.
        assert_eq!(
            spec.results_json(&serial).to_pretty_string(),
            spec.results_json(&parallel).to_pretty_string()
        );
    }

    #[test]
    fn typed_accessors_promote_and_panic() {
        let mut spec = ExperimentSpec::new("acc", 0);
        spec.push_point(values!["n" => 3u64, "f" => 0.25, "tag" => "x"]);
        let p = &spec.points()[0];
        assert_eq!(p.int("n"), 3);
        assert_eq!(p.float("n"), 3.0);
        assert_eq!(p.float("f"), 0.25);
        assert_eq!(p.str("tag"), "x");
        assert!(std::panic::catch_unwind(|| p.int("missing")).is_err());
        assert!(std::panic::catch_unwind(|| p.str("n")).is_err());
    }

    #[test]
    fn results_json_has_declared_schema() {
        let mut spec = ExperimentSpec::new("schema_check", 5);
        spec.push_point(values!["k" => 4u64]);
        let out = spec.run(1, |_| values!["metric" => 1.5]);
        let doc = spec.results_json(&out).to_pretty_string();
        assert!(doc.contains("\"experiment\": \"schema_check\""));
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.contains("\"base_seed\": 5"));
        assert!(doc.contains("\"shards\": 1"));
        assert!(doc.contains("\"metric\": 1.5"));
        assert!(
            !doc.contains("threads"),
            "thread count must not leak into results"
        );
    }

    #[test]
    fn shards_are_recorded_and_read_back_tolerantly() {
        let mut spec = ExperimentSpec::new("shard_check", 5);
        spec.set_shards(4);
        assert_eq!(spec.shards(), 4);
        spec.push_point(values!["k" => 2u64]);
        let out = spec.run(1, |_| values!["m" => 1u64]);
        let text = spec.results_json(&out).to_pretty_string();
        assert!(text.contains("\"shards\": 4"));
        let doc = read_results(&text).expect("valid results document");
        assert_eq!(results_shards(&doc), 4);

        // Documents from before the sharded kernel carry no `shards` key and
        // read back as serial, exactly like `static_verdict` defaults in old
        // deadlock reports.
        let old = "{\"experiment\": \"x\", \"schema_version\": 1, \"points\": []}";
        let doc = read_results(old).expect("pre-shard document stays readable");
        assert_eq!(results_shards(&doc), 1);

        // A present-but-nonsensical count is rejected, and `set_shards`
        // itself clamps zero to serial.
        let zero = "{\"experiment\": \"x\", \"schema_version\": 1, \"shards\": 0, \"points\": []}";
        assert!(read_results(zero).unwrap_err().contains("shards"));
        assert_eq!(ExperimentSpec::new("z", 0).set_shards(0).shards(), 1);
    }

    #[test]
    fn attachments_bump_schema_to_v2_and_empty_list_is_byte_identical_v1() {
        let mut spec = ExperimentSpec::new("v2_check", 3);
        spec.push_point(values!["k" => 1u64]);
        let out = spec.run(1, |_| values!["m" => 2u64]);
        let v1 = spec.results_json(&out).to_pretty_string();
        assert_eq!(spec.results_json_with(&out, &[]).to_pretty_string(), v1);
        let windows = Json::obj([("every", Json::from(100u64))]);
        let v2 = spec
            .results_json_with(&out, &[("windows", windows)])
            .to_pretty_string();
        assert!(v2.contains("\"schema_version\": 2"));
        assert!(v2.contains("\"windows\""));
        // Both versions parse and validate through the back-compat reader.
        for text in [&v1, &v2] {
            let doc = read_results(text).expect("valid results document");
            assert_eq!(
                doc.get("experiment").and_then(Json::as_str),
                Some("v2_check")
            );
        }
    }

    #[test]
    fn read_results_rejects_bad_envelopes() {
        assert!(read_results("not json").is_err());
        assert!(read_results("{\"experiment\": \"x\"}").is_err());
        let future = "{\"experiment\": \"x\", \"schema_version\": 99, \"points\": []}";
        assert!(read_results(future).unwrap_err().contains("unsupported"));
    }

    #[test]
    fn write_results_creates_the_results_directory() {
        let mut spec = ExperimentSpec::new("write_check", 1);
        spec.push_point(values!["k" => 2u64]);
        let out = spec.run(1, |_| values!["ok" => true]);
        let dir = std::env::temp_dir().join(format!("anton_harness_test_{}", std::process::id()));
        let path = spec.write_results_under(&dir, &out).expect("write results");
        assert_eq!(path, dir.join("results").join("write_check.json"));
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, spec.results_json(&out).to_pretty_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
