//! Criterion benchmarks over the simulator kernel hot path: one benchmark
//! per (workload, machine size) pair, mirroring the `bench_kernel` binary's
//! suite (uniform batch, nearest-neighbor batch, fault-sweep open loop,
//! ping-pong latency) at small (2×2×2) and medium (4×4×4) sizes.
//!
//! Workload sizes here are trimmed relative to `bench_kernel` so the
//! `cargo test` smoke pass (each body runs once) stays fast; for the
//! acceptance-gate numbers use `bench_kernel --reps 3`, which exports
//! `BENCH_sim.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anton_core::chip::LocalEndpointId;
use anton_core::config::MachineConfig;
use anton_core::topology::{NodeId, TorusShape};
use anton_core::GlobalEndpoint;
use anton_fault::FaultSchedule;
use anton_sim::driver::{BatchDriver, LoadDriver, PingPongDriver};
use anton_sim::params::SimParams;
use anton_sim::sim::{RunOutcome, Sim};
use anton_traffic::patterns::{NHopNeighbor, UniformRandom};

const SEED: u64 = 42;

fn run_batch(k: u8, uniform: bool, packets: u64) -> u64 {
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let mut sim = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
    let mut drv = BatchDriver::builder(&sim)
        .pattern(if uniform {
            Box::new(UniformRandom)
        } else {
            Box::new(NHopNeighbor::new(1))
        })
        .packets_per_endpoint(packets)
        .seed(SEED)
        .build();
    assert_eq!(sim.run(&mut drv, 600_000_000), RunOutcome::Completed);
    sim.now()
}

fn run_fault(k: u8, packets: u64) -> u64 {
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let params = SimParams {
        fault: Some(FaultSchedule::uniform(7, 1e-4)),
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg).params(params).build();
    let mut drv = LoadDriver::new(&sim, Box::new(UniformRandom), 0.1, packets, SEED);
    assert_eq!(sim.run(&mut drv, 600_000_000), RunOutcome::Completed);
    sim.now()
}

fn run_latency(k: u8, legs: u32) -> u64 {
    let cfg = MachineConfig::new(TorusShape::cube(k));
    let mut sim = Sim::builder()
        .config(cfg)
        .params(SimParams::default())
        .build();
    let nn = sim.cfg.shape.num_nodes() as u32;
    let pairs: Vec<(GlobalEndpoint, GlobalEndpoint)> = (0..4u32)
        .map(|i| {
            (
                GlobalEndpoint {
                    node: NodeId(i % nn),
                    ep: LocalEndpointId(0),
                },
                GlobalEndpoint {
                    node: NodeId((nn / 2 + i) % nn),
                    ep: LocalEndpointId(0),
                },
            )
        })
        .collect();
    let mut drv = PingPongDriver::new(pairs, legs);
    assert_eq!(sim.run(&mut drv, 600_000_000), RunOutcome::Completed);
    sim.now()
}

fn bench_kernel_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/small");
    g.sample_size(10);
    g.bench_function("uniform", |b| b.iter(|| black_box(run_batch(2, true, 24))));
    g.bench_function("neighbor", |b| {
        b.iter(|| black_box(run_batch(2, false, 24)))
    });
    g.bench_function("fault", |b| b.iter(|| black_box(run_fault(2, 16))));
    g.bench_function("latency", |b| b.iter(|| black_box(run_latency(2, 100))));
    g.finish();
}

fn bench_kernel_medium(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/medium");
    g.sample_size(10);
    g.bench_function("uniform", |b| b.iter(|| black_box(run_batch(4, true, 8))));
    g.bench_function("neighbor", |b| b.iter(|| black_box(run_batch(4, false, 8))));
    g.bench_function("fault", |b| b.iter(|| black_box(run_fault(4, 6))));
    g.bench_function("latency", |b| b.iter(|| black_box(run_latency(4, 60))));
    g.finish();
}

criterion_group!(kernel_benches, bench_kernel_small, bench_kernel_medium);
criterion_main!(kernel_benches);
