//! Criterion micro-benchmarks over the core subsystems: arbiter decision
//! latency (RTL-faithful vs constant-time form), the Section 2.4 worst-case
//! search, expected-load analysis, multicast tree construction, go-back-N
//! link slots, and simulator cycle throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anton_analysis::load::LoadAnalysis;
use anton_analysis::worstcase;
use anton_arbiter::priority::{priority_arb_fast2, priority_arb_rtl};
use anton_arbiter::{ArbRequest, InverseWeightedArbiter, PortArbiter};
use anton_core::chip::ChipLayout;
use anton_core::config::MachineConfig;
use anton_core::multicast::McTree;
use anton_core::routing::DimOrder;
use anton_core::topology::{NodeCoord, Slice, TorusShape};
use anton_link::channel::{LinkParams, LinkSim};
use anton_link::gobackn::GoBackNConfig;
use anton_sim::driver::BatchDriver;
use anton_sim::params::SimParams;
use anton_sim::sim::Sim;
use anton_traffic::md::{halo_dest_set, HaloSpec};
use anton_traffic::patterns::UniformRandom;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_arbiters(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter");
    let pri = [1u8, 0, 1, 0, 1, 0];
    g.bench_function("priority_arb_rtl_k6", |b| {
        b.iter(|| priority_arb_rtl(black_box(0b101101), &pri, 0b000111, 6, 2))
    });
    g.bench_function("priority_arb_fast2_k6", |b| {
        b.iter(|| priority_arb_fast2(black_box(0b101101), 0b010101, 0b000111))
    });
    let mut iw = InverseWeightedArbiter::new(vec![vec![10, 20]; 6], 5);
    let reqs: Vec<ArbRequest> = (0..6)
        .map(|i| ArbRequest {
            input: i,
            pattern: (i % 2) as u8,
            age: 0,
        })
        .collect();
    g.bench_function("inverse_weighted_pick_k6", |b| {
        b.iter(|| iw.pick(black_box(&reqs)))
    });
    g.finish();
}

fn bench_worstcase(c: &mut Criterion) {
    let chip = ChipLayout::default();
    let mut g = c.benchmark_group("worstcase");
    g.sample_size(10);
    g.bench_function("sec24_full_search", |b| {
        b.iter(|| worstcase::search(black_box(&chip)))
    });
    g.finish();
}

fn bench_loads(c: &mut Criterion) {
    let cfg = MachineConfig::new(TorusShape::cube(2));
    let mut g = c.benchmark_group("loads");
    g.sample_size(10);
    g.bench_function("load_analysis_uniform_k2", |b| {
        b.iter(|| LoadAnalysis::compute(black_box(&cfg), &UniformRandom))
    });
    g.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let cfg = MachineConfig::new(TorusShape::cube(8));
    let src = NodeCoord::new(4, 4, 4);
    let dests = halo_dest_set(&cfg, src, HaloSpec::default());
    c.bench_function("multicast_tree_build_26halo", |b| {
        b.iter(|| McTree::build(&cfg.shape, src, black_box(&dests), DimOrder::XYZ, Slice(0)))
    });
}

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    g.sample_size(20);
    g.bench_function("gobackn_1k_slots_ber1e4", |b| {
        b.iter(|| {
            let params = LinkParams {
                bit_error_rate: 1e-4,
                ..LinkParams::default()
            };
            let mut sim = LinkSim::new(params, GoBackNConfig::default(), StdRng::seed_from_u64(1));
            sim.run_saturated(1_000)
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("sim_uniform_batch8_k2", |b| {
        b.iter(|| {
            let cfg = MachineConfig::new(TorusShape::cube(2));
            let mut sim = Sim::builder()
                .config(cfg)
                .params(SimParams::default())
                .build();
            let mut drv = BatchDriver::builder(&sim)
                .pattern(Box::new(UniformRandom))
                .packets_per_endpoint(8)
                .seed(1)
                .build();
            sim.run(&mut drv, 1_000_000)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arbiters,
    bench_worstcase,
    bench_loads,
    bench_multicast,
    bench_link,
    bench_sim
);
criterion_main!(benches);
