//! Property-based tests over the core invariants: minimal routing, VC
//! promotion budgets, trace well-formedness, and multicast tree validity on
//! randomized machine shapes and destination sets.

use proptest::prelude::*;

use anton_core::chip::{LinkGroup, LocalEndpointId, LocalLink};
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::multicast::{DestSet, McTree};
use anton_core::routing::{DimOrder, RouteSpec};
use anton_core::topology::{NodeCoord, Slice, TorusShape};
use anton_core::trace::{trace_unicast, GlobalLink};
use anton_core::vc::VcPolicy;

fn arb_shape() -> impl Strategy<Value = TorusShape> {
    (1u8..=6, 1u8..=6, 1u8..=6).prop_map(|(x, y, z)| TorusShape::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every randomized route spec reaches its destination in the minimal
    /// number of hops, regardless of shape, order, and slice.
    #[test]
    fn route_specs_are_minimal_and_correct(
        shape in arb_shape(),
        src_pick in any::<u32>(),
        dst_pick in any::<u32>(),
        seed in any::<u64>(),
        order_idx in 0usize..6,
        slice in 0u8..2,
    ) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let n = shape.num_nodes() as u32;
        let src = shape.coord(anton_core::topology::NodeId(src_pick % n));
        let dst = shape.coord(anton_core::topology::NodeId(dst_pick % n));
        let spec = RouteSpec::randomized_with(
            &shape, src, dst, DimOrder::ALL[order_idx], Slice(slice), &mut rng,
        );
        prop_assert_eq!(spec.remaining_hops(), shape.min_hops(src, dst));
        let mut cur = src;
        for hop in spec.hops() {
            cur = shape.neighbor(cur, hop);
        }
        prop_assert_eq!(cur, dst);
    }

    /// Traced routes never exceed the VC budget of their policy, begin and
    /// end with injection/ejection links, and alternate coherently between
    /// the M- and T-groups.
    #[test]
    fn traces_are_well_formed(
        shape in arb_shape(),
        src_pick in any::<u32>(),
        dst_pick in any::<u32>(),
        order_idx in 0usize..6,
        slice in 0u8..2,
        policy_pick in 0u8..2,
        src_ep in 0u8..16,
        dst_ep in 0u8..16,
    ) {
        let mut cfg = MachineConfig::new(shape);
        cfg.vc_policy = if policy_pick == 0 { VcPolicy::Anton } else { VcPolicy::Baseline2n };
        let n = shape.num_nodes() as u32;
        let src_n = shape.coord(anton_core::topology::NodeId(src_pick % n));
        let dst_n = shape.coord(anton_core::topology::NodeId(dst_pick % n));
        let spec = RouteSpec::deterministic(
            &shape, src_n, dst_n, DimOrder::ALL[order_idx], Slice(slice),
        );
        let src = GlobalEndpoint { node: shape.id(src_n), ep: LocalEndpointId(src_ep) };
        let dst = GlobalEndpoint { node: shape.id(dst_n), ep: LocalEndpointId(dst_ep) };
        let steps = trace_unicast(&cfg, src, dst, &spec);
        prop_assert!(!steps.is_empty());
        let starts_at_ep = matches!(
            steps.first().unwrap().0,
            GlobalLink::Local { link: LocalLink::EpToRouter(_), .. }
        );
        let ends_at_ep = matches!(
            steps.last().unwrap().0,
            GlobalLink::Local { link: LocalLink::RouterToEp(_), .. }
        );
        prop_assert!(starts_at_ep, "route must start with an injection link");
        prop_assert!(ends_at_ep, "route must end with an ejection link");
        // VC budgets per group.
        for (link, vc) in &steps {
            prop_assert!(vc.0 < cfg.vc_policy.num_vcs(link.group()), "{link} vc{}", vc.0);
        }
        // Torus links appear exactly min-hops times.
        let torus_hops = steps
            .iter()
            .filter(|(l, _)| matches!(l, GlobalLink::Torus { .. }))
            .count() as u32;
        prop_assert_eq!(torus_hops, shape.min_hops(src_n, dst_n));
        // VCs never decrease along the route under either policy's M-group
        // numbering (promotion is monotone).
        let m_vcs: Vec<u8> = steps
            .iter()
            .filter(|(l, _)| l.group() == LinkGroup::M)
            .map(|(_, vc)| vc.0)
            .collect();
        for w in m_vcs.windows(2) {
            prop_assert!(w[0] <= w[1], "M-group VC decreased: {m_vcs:?}");
        }
    }

    /// Multicast trees over random destination sets reach exactly the set,
    /// by minimal dimension-order paths, with strictly fewer (or equal)
    /// torus hops than unicasting.
    #[test]
    fn multicast_trees_cover_random_sets(
        shape in arb_shape(),
        src_pick in any::<u32>(),
        dest_picks in proptest::collection::vec(any::<u32>(), 1..12),
        order_idx in 0usize..6,
    ) {
        let n = shape.num_nodes() as u32;
        let src = shape.coord(anton_core::topology::NodeId(src_pick % n));
        let mut dests = DestSet::new();
        let mut any = false;
        for d in &dest_picks {
            let c = shape.coord(anton_core::topology::NodeId(d % n));
            dests.add(c, LocalEndpointId((d % 16) as u8));
            any = true;
        }
        prop_assume!(any);
        let tree = McTree::build(&shape, src, &dests, DimOrder::ALL[order_idx], Slice(0));
        let walk = tree.traverse(&shape);
        // Exactly the destination set is delivered.
        let mut reached = DestSet::new();
        for (node, eps) in &walk.deliveries {
            for e in eps {
                reached.add(*node, *e);
            }
        }
        prop_assert_eq!(&reached, &dests);
        // Every leaf path is minimal.
        for (leaf, path) in &walk.paths {
            prop_assert_eq!(path.len() as u32, shape.min_hops(src, *leaf));
        }
        // Tree never uses more torus hops than unicasts.
        prop_assert!(tree.torus_hops() <= dests.unicast_torus_hops(&shape, src));
    }

    /// Dateline crossings: any minimal route crosses each dimension's
    /// dateline at most once.
    #[test]
    fn minimal_routes_cross_datelines_at_most_once(
        shape in arb_shape(),
        src_pick in any::<u32>(),
        dst_pick in any::<u32>(),
        order_idx in 0usize..6,
    ) {
        let n = shape.num_nodes() as u32;
        let src = shape.coord(anton_core::topology::NodeId(src_pick % n));
        let dst = shape.coord(anton_core::topology::NodeId(dst_pick % n));
        let spec = RouteSpec::deterministic(&shape, src, dst, DimOrder::ALL[order_idx], Slice(0));
        let mut crossings = [0u32; 3];
        let mut cur = src;
        for hop in spec.hops() {
            if shape.hop_crosses_dateline(cur, hop) {
                crossings[hop.dim.index()] += 1;
            }
            cur = shape.neighbor(cur, hop);
        }
        for (d, c) in crossings.iter().enumerate() {
            prop_assert!(*c <= 1, "dimension {d} crossed {c} times");
        }
    }
}

/// Exhaustive (not property) check on a small machine: the number of
/// distinct link-level routes between two endpoints equals orders × slices
/// when all offsets are nonzero.
#[test]
fn route_diversity_matches_order_slice_product() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let src_n = NodeCoord::new(0, 0, 0);
    let dst_n = NodeCoord::new(1, 1, 1);
    let src = GlobalEndpoint {
        node: cfg.shape.id(src_n),
        ep: LocalEndpointId(0),
    };
    let dst = GlobalEndpoint {
        node: cfg.shape.id(dst_n),
        ep: LocalEndpointId(0),
    };
    let mut routes = std::collections::HashSet::new();
    for order in DimOrder::ALL {
        for slice in Slice::ALL {
            let spec = RouteSpec::deterministic(&cfg.shape, src_n, dst_n, order, slice);
            routes.insert(trace_unicast(&cfg, src, dst, &spec));
        }
    }
    assert_eq!(
        routes.len(),
        12,
        "oblivious routing should spread over 12 distinct routes"
    );
}
