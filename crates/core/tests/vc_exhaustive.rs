//! Exhaustive sweep of the `VcState` transition system: every policy ×
//! every dimension-traversal order × every per-dimension hop count and
//! dateline-crossing pattern. Asserts the two safety properties the
//! static verifier's abstraction rests on:
//!
//! 1. every VC the state machine assigns fits the policy's per-group
//!    budget (`vc < num_vcs(group)` on every link the route would request);
//! 2. promotion is monotone per dimension: within one dimension the T-VC
//!    never decreases, and across dimensions the M-VC never decreases;
//! 3. after `i` completed dimensions the M-VC is exactly the value the
//!    policy guarantees regardless of crossing history (`i` for Anton and
//!    Baseline2n, `0` for NaiveSingle) — the invariant that makes the
//!    symbolic verifier's `(m_vc, mask)` state abstraction exact.

use anton_core::chip::LinkGroup;
use anton_core::vc::VcPolicy;

const POLICIES: [VcPolicy; 3] = [VcPolicy::Anton, VcPolicy::Baseline2n, VcPolicy::NaiveSingle];

/// All dimension subsets in all traversal orders: the routes a minimal
/// dimension-order path can take (0 to 3 dimensions, order mattering).
fn dim_sequences() -> Vec<Vec<u8>> {
    let mut out = vec![vec![]];
    for a in 0..3u8 {
        out.push(vec![a]);
        for b in 0..3u8 {
            if b == a {
                continue;
            }
            out.push(vec![a, b]);
            for c in 0..3u8 {
                if c == a || c == b {
                    continue;
                }
                out.push(vec![a, b, c]);
            }
        }
    }
    assert_eq!(out.len(), 1 + 3 + 6 + 6);
    out
}

/// Per-dimension arcs: (hops, crossing position). Hop counts cover a
/// 1..=8-ary torus's minimal arcs (up to 4 hops); a minimal arc crosses
/// the dateline at most once, at any position or not at all.
fn arcs() -> Vec<(u8, Option<u8>)> {
    let mut out = Vec::new();
    for hops in 1..=4u8 {
        out.push((hops, None));
        for at in 0..hops {
            out.push((hops, Some(at)));
        }
    }
    out
}

#[test]
fn every_reachable_vc_fits_the_policy_budget() {
    let seqs = dim_sequences();
    let arcs = arcs();
    let mut checked = 0u64;
    for policy in POLICIES {
        let m_budget = policy.num_vcs(LinkGroup::M);
        let t_budget = policy.num_vcs(LinkGroup::T);
        // Expected m_vc after i completed dimensions, independent of
        // crossing pattern (the m_i = i invariant; NaiveSingle pins 0).
        let m_after = |i: u8| match policy {
            VcPolicy::NaiveSingle => 0,
            _ => i,
        };
        for seq in &seqs {
            // Choose each dimension's arc independently; iterate the cross
            // product via mixed-radix counting.
            let mut pick = vec![0usize; seq.len()];
            loop {
                let mut vc = policy.start();
                assert!(vc.vc_for(LinkGroup::M).0 < m_budget, "{policy} injection");
                let mut prev_m = vc.vc_for(LinkGroup::M).0;
                for (di, _dim) in seq.iter().enumerate() {
                    let (hops, cross_at) = arcs[pick[di]];
                    vc.begin_dim();
                    let mut prev_t = vc.vc_for(LinkGroup::T).0;
                    assert!(prev_t < t_budget, "{policy} t_vc at dim start");
                    for h in 0..hops {
                        let t = vc.torus_hop(cross_at == Some(h));
                        assert!(t.0 < t_budget, "{policy}: torus hop VC {t:?}");
                        assert!(t.0 >= prev_t, "{policy}: T-VC demoted within a dimension");
                        prev_t = t.0;
                    }
                    let m = vc.end_dim();
                    assert!(m.0 < m_budget, "{policy}: mesh VC {m:?} after dim");
                    assert!(m.0 >= prev_m, "{policy}: M-VC demoted across dimensions");
                    prev_m = m.0;
                    assert_eq!(
                        vc.vc_for(LinkGroup::M).0,
                        m_after(di as u8 + 1),
                        "{policy}: m_vc after {} dims with arc {:?}",
                        di + 1,
                        arcs[pick[di]]
                    );
                    checked += 1;
                }
                // Delivery mesh segment uses the final M-VC.
                assert!(vc.vc_for(LinkGroup::M).0 < m_budget);

                // Advance the mixed-radix counter over arc choices.
                let mut i = 0;
                loop {
                    if i == pick.len() {
                        break;
                    }
                    pick[i] += 1;
                    if pick[i] < arcs.len() {
                        break;
                    }
                    pick[i] = 0;
                    i += 1;
                }
                if pick.iter().all(|&p| p == 0) || seq.is_empty() {
                    break;
                }
            }
        }
    }
    // 3 policies x (6 three-dim orders x 14^3 + 6 two-dim x 14^2 + 3 one-dim x 14)
    // dimension legs each contribute at least one check.
    assert!(checked > 100_000, "swept only {checked} legs");
}

/// The promotion ceiling: a packet that crosses a dateline in every
/// dimension still fits the budget, and one that never crosses uses the
/// most VCs (promotion-on-no-cross for Anton).
#[test]
fn extreme_crossing_patterns_hit_but_never_exceed_the_ceiling() {
    for policy in [VcPolicy::Anton, VcPolicy::Baseline2n] {
        let t_budget = policy.num_vcs(LinkGroup::T);
        // Never crossing: Anton promotes at every end_dim.
        let mut vc = policy.start();
        for _ in 0..3 {
            vc.begin_dim();
            let t = vc.torus_hop(false);
            assert!(t.0 < t_budget);
            vc.end_dim();
        }
        assert_eq!(vc.vc_for(LinkGroup::M).0, 3);
        // Crossing every dimension: the T-VC bump happens mid-arc instead.
        let mut vc = policy.start();
        for _ in 0..3 {
            vc.begin_dim();
            let t = vc.torus_hop(true);
            assert!(t.0 < t_budget, "{policy}: crossed-arc VC {t:?}");
            vc.end_dim();
        }
        assert_eq!(vc.vc_for(LinkGroup::M).0, 3);
    }
}
