//! # anton-core
//!
//! Core model of the Anton 2 unified network, reproducing *"Unifying on-chip
//! and inter-node switching within the Anton 2 network"* (ISCA 2014).
//!
//! The Anton 2 supercomputer connects its ASICs in a channel-sliced 3D torus
//! and reuses each chip's 4×4 on-chip mesh as the switch for inter-node
//! traffic. This crate models everything structural about that network:
//!
//! * [`topology`] — the torus, its coordinates, slices, and datelines;
//! * [`chip`] — the on-chip mesh, skip channels, and adapter floorplan;
//! * [`routing`] — oblivious minimal dimension-order inter-node routing;
//! * [`route_table`] — fault-aware next-hop tables for degraded tori;
//! * [`onchip`] — direction-order on-chip routing (V⁻, U⁺, U⁻, V⁺);
//! * [`vc`] — the n+1-VC promotion algorithm for deadlock avoidance, plus
//!   the 2n baseline;
//! * [`multicast`] — table-based multicast trees;
//! * [`packet`] — fine-grained packets and flits;
//! * [`trace`] — the reference link-level route semantics;
//! * [`pattern`] — the traffic-pattern abstraction;
//! * [`config`] — machine-level configuration;
//! * [`net`] — the [`net::Topology`]/[`net::RoutingFunction`] trait layer
//!   that the symbolic deadlock certifier consumes;
//! * [`dimorder`] — the paper's dimension-order torus routing as a
//!   [`net::RoutingFunction`] transition system;
//! * [`table_routing`] — explicit [`route_table::RouteTable`] routes as a
//!   [`net::RoutingFunction`];
//! * [`mesh`] — a full-mesh topology with VC-free routing, the first
//!   non-torus instance.
//!
//! # Examples
//!
//! Trace a packet across a 512-node machine:
//!
//! ```
//! use anton_core::config::{GlobalEndpoint, MachineConfig};
//! use anton_core::chip::LocalEndpointId;
//! use anton_core::routing::{DimOrder, RouteSpec};
//! use anton_core::topology::{NodeCoord, Slice, TorusShape};
//! use anton_core::trace::trace_unicast;
//!
//! let cfg = MachineConfig::new(TorusShape::cube(8));
//! let src = GlobalEndpoint { node: cfg.shape.id(NodeCoord::new(0, 0, 0)), ep: LocalEndpointId(0) };
//! let dst = GlobalEndpoint { node: cfg.shape.id(NodeCoord::new(3, 5, 1)), ep: LocalEndpointId(9) };
//! let spec = RouteSpec::deterministic(
//!     &cfg.shape,
//!     NodeCoord::new(0, 0, 0),
//!     NodeCoord::new(3, 5, 1),
//!     DimOrder::XYZ,
//!     Slice(0),
//! );
//! let steps = trace_unicast(&cfg, src, dst, &spec);
//! assert!(!steps.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod config;
pub mod dimorder;
pub mod mesh;
pub mod multicast;
pub mod net;
pub mod onchip;
pub mod packet;
pub mod pattern;
pub mod route_table;
pub mod routing;
pub mod seed;
pub mod table_routing;
pub mod topology;
pub mod trace;
pub mod vc;

pub use chip::{ChanId, ChipLayout, LocalEndpointId, MeshCoord, MeshDir};
pub use config::{GlobalEndpoint, MachineConfig};
pub use dimorder::DimOrderRouting;
pub use mesh::{FullMesh, MeshRouting, MeshRule};
pub use net::{
    Arrival, ConcreteRoute, DepEdge, Progress, RoutePath, RouteState, RoutingFunction, Topology,
    TorusTopology,
};
pub use onchip::DirOrder;
pub use packet::{Packet, Payload};
pub use pattern::{Flow, TrafficPattern};
pub use route_table::{build_route_table, DownLinkSet, RouteTable, RouteTableError, TableMethod};
pub use routing::{DimOrder, RouteSpec};
pub use seed::derive_stream_seed;
pub use table_routing::TableRouting;
pub use topology::{Dim, NodeCoord, NodeId, Sign, Slice, TorusDir, TorusShape};
pub use vc::{TrafficClass, Vc, VcPolicy, VcState};
