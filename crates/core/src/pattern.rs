//! The traffic-pattern abstraction.
//!
//! A traffic pattern describes the expected communication demand of an
//! application phase, as in Section 3.1's traffic matrix: for each source,
//! the expected number of packets per unit time sent to each destination.
//! Patterns serve two roles:
//!
//! * **offline**, [`TrafficPattern::flows_from`] enumerates a source's
//!   expected flows so `anton-analysis` can compute channel loads and
//!   inverse arbiter weights;
//! * **online**, [`TrafficPattern::sample_dst`] draws destinations for the
//!   packets a workload driver injects into the simulator.
//!
//! Concrete patterns (uniform random, n-hop neighbor, tornado, ...) live in
//! the `anton-traffic` crate.

use rand::RngCore;

use crate::config::{GlobalEndpoint, MachineConfig};

/// One expected flow from a source: destination and rate (packets per unit
/// time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Destination endpoint.
    pub dst: GlobalEndpoint,
    /// Expected packets per unit time.
    pub rate: f64,
}

/// A traffic pattern: a distribution of destinations per source endpoint.
///
/// Implementations must keep `flows_from` and `sample_dst` consistent: the
/// sampling distribution of `sample_dst` must be proportional to the rates
/// returned by `flows_from`.
///
/// Patterns are `Send + Sync`: workload drivers share one pattern object
/// across the sharded kernel's worker threads (all randomness lives in the
/// per-endpoint RNG streams passed to `sample_dst`, never in the pattern).
pub trait TrafficPattern: Send + Sync {
    /// Human-readable pattern name (used in experiment output).
    fn name(&self) -> String;

    /// The expected flows out of `src`, with rates normalized so they sum to
    /// 1 (each source injects one packet per unit time in expectation).
    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow>;

    /// Samples a destination for one packet from `src`.
    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        rng: &mut dyn RngCore,
    ) -> GlobalEndpoint;

    /// Whether the pattern is invariant under torus translation (every node
    /// sees the same relative demand). Node-symmetric patterns let analyses
    /// compute loads for a single source node and replicate by translation.
    fn node_symmetric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TorusShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A minimal pattern for trait-object sanity: everyone sends to endpoint
    /// 0 of node 0.
    struct ToZero;

    impl TrafficPattern for ToZero {
        fn name(&self) -> String {
            "to-zero".into()
        }

        fn flows_from(&self, cfg: &MachineConfig, _src: GlobalEndpoint) -> Vec<Flow> {
            vec![Flow {
                dst: cfg.endpoint_at(0),
                rate: 1.0,
            }]
        }

        fn sample_dst(
            &self,
            cfg: &MachineConfig,
            _src: GlobalEndpoint,
            _rng: &mut dyn RngCore,
        ) -> GlobalEndpoint {
            cfg.endpoint_at(0)
        }

        fn node_symmetric(&self) -> bool {
            false
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let pat: Box<dyn TrafficPattern> = Box::new(ToZero);
        let mut rng = StdRng::seed_from_u64(0);
        let src = cfg.endpoint_at(5);
        assert_eq!(pat.sample_dst(&cfg, src, &mut rng), cfg.endpoint_at(0));
        let flows = pat.flows_from(&cfg, src);
        assert_eq!(flows.len(), 1);
        assert!((flows[0].rate - 1.0).abs() < 1e-12);
    }
}
