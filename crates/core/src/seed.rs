//! Deterministic seed derivation for independent RNG streams.
//!
//! Every randomized element of the simulator (per-endpoint route
//! randomization, per-endpoint traffic draws, per-point experiment seeds)
//! derives its own stream seed from a base seed and a stable index through
//! one splitmix64 step. Streams are therefore independent of *how many*
//! other streams exist and of the order they are consumed in — the property
//! the sharded kernel's determinism rests on: endpoint `i` draws the same
//! sequence whether the machine is simulated serially or split across any
//! number of shards.

/// Derives the seed of stream `index` from `base` (one splitmix64 step).
///
/// The same derivation backs `ExperimentSpec` point seeds in `anton-bench`,
/// so a sweep point's seed is stable across harness versions.
#[must_use]
pub fn derive_stream_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_and_are_stable() {
        let a = derive_stream_seed(42, 0);
        let b = derive_stream_seed(42, 1);
        let c = derive_stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_stream_seed(42, 0), "derivation must be pure");
    }

    #[test]
    fn index_zero_differs_from_base() {
        // The +1 in the derivation keeps index 0 from collapsing to a
        // plain splitmix of the base (which other call sites may use).
        assert_ne!(derive_stream_seed(0, 0), 0);
    }
}
