//! Explicit [`RouteTable`] routes as a [`RoutingFunction`].
//!
//! A degraded-torus route table pins down one concrete path per `(src, dst)`
//! pair on one slice. This adapter exposes exactly the channel-dependency
//! edges those paths produce — the full link-level trace of every pair
//! (endpoint 0 standing in for the endpoint-independent torus portion), plus
//! the injection / delivery mesh fans of every other endpoint at each node,
//! and the node-local endpoint-pair deliveries. It reproduces, edge for
//! edge, what the degraded certifier's hand-rolled path walker used to
//! overlay on the healthy graph; the certifier now consumes it through the
//! same engine as every other routing function.
//!
//! Every transition here is a complete route (no successor state): the
//! abstract state space is just an enumeration of the route set.

use std::collections::HashSet;

use crate::chip::{ChanId, LinkGroup, LocalEndpointId, LocalLink, MeshCoord};
use crate::config::{GlobalEndpoint, MachineConfig};
use crate::net::{
    Arrival, ConcreteRoute, DepEdge, Progress, RoutePath, RouteState, RoutingFunction,
};
use crate::route_table::RouteTable;
use crate::topology::NodeId;
use crate::trace::{trace_table_hops, GlobalLink};
use crate::vc::Vc;

const TAG_PATH: u64 = 0;
const TAG_INJ: u64 = 1;
const TAG_DELIVER: u64 = 2;
const TAG_LOCAL: u64 = 3;

/// One route table's dependency edges, exposed as a [`RoutingFunction`]
/// over the torus topology it was built for.
#[derive(Debug, Clone)]
pub struct TableRouting {
    cfg: MachineConfig,
    table: RouteTable,
    /// Per source node: the first-departure adapters its table paths use,
    /// with the VC requested there.
    departs: Vec<Vec<(ChanId, Vc)>>,
    /// Per destination node: the terminal arrival adapters, with the T-VC
    /// of the arrival and the M-VC the delivery runs at.
    arrivals: Vec<Vec<(ChanId, Vc, Vc)>>,
}

impl TableRouting {
    /// Wraps `table` (built for `cfg.shape`) as a routing function.
    ///
    /// Construction walks every `(src, dst)` pair once through the
    /// reference tracer to learn the adapter fan-in/fan-out of each node;
    /// the per-pair traces themselves are re-derived on demand.
    pub fn new(cfg: MachineConfig, table: RouteTable) -> TableRouting {
        let shape = cfg.shape;
        let slice = table.slice();
        let ep0 = LocalEndpointId(0);
        let n = shape.num_nodes();
        let mut departs: Vec<HashSet<(ChanId, Vc)>> = vec![HashSet::new(); n];
        let mut arrivals: Vec<HashSet<(ChanId, Vc, Vc)>> = vec![HashSet::new(); n];
        let mut crosses = |c, d| shape.hop_crosses_dateline(c, d);
        for src in shape.nodes() {
            for dst in shape.nodes() {
                if src == dst {
                    continue;
                }
                let Some(hops) = table.path(shape.id(src), shape.id(dst)) else {
                    continue;
                };
                let steps =
                    trace_table_hops(&cfg, src, Some(ep0), &hops, slice, Some(ep0), &mut crosses);
                for (link, vc) in &steps {
                    if let GlobalLink::Local {
                        link: LocalLink::RouterToChan(c),
                        ..
                    } = link
                    {
                        departs[shape.id(src).0 as usize].insert((*c, *vc));
                        break;
                    }
                }
                let m_final = steps.last().expect("trace is never empty").1;
                for (link, vc) in steps.iter().rev() {
                    if let GlobalLink::Local {
                        link: LocalLink::ChanToRouter(c),
                        ..
                    } = link
                    {
                        arrivals[shape.id(dst).0 as usize].insert((*c, *vc, m_final));
                        break;
                    }
                }
            }
        }
        let sort = |s: HashSet<(ChanId, Vc)>| {
            let mut v: Vec<_> = s.into_iter().collect();
            v.sort_by_key(|(c, vc)| (c.index(), vc.0));
            v
        };
        let sort3 = |s: HashSet<(ChanId, Vc, Vc)>| {
            let mut v: Vec<_> = s.into_iter().collect();
            v.sort_by_key(|(c, vc, m)| (c.index(), vc.0, m.0));
            v
        };
        TableRouting {
            cfg,
            table,
            departs: departs.into_iter().map(sort).collect(),
            arrivals: arrivals.into_iter().map(sort3).collect(),
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    fn m0(&self) -> Vc {
        self.cfg.vc_policy.start().vc_for(LinkGroup::M)
    }

    fn ep_in(&self, node: NodeId, ep: LocalEndpointId) -> GlobalLink {
        GlobalLink::Local {
            node,
            link: LocalLink::EpToRouter(ep),
        }
    }

    /// The reference trace of the table path `src → dst` (endpoint 0 both
    /// ends), or `None` for a pair the table cannot reach.
    fn pair_trace(&self, src: NodeId, dst: NodeId) -> Option<Vec<(GlobalLink, Vc)>> {
        let shape = self.cfg.shape;
        let hops = self.table.path(src, dst)?;
        let ep0 = LocalEndpointId(0);
        let mut crosses = |c, d| shape.hop_crosses_dateline(c, d);
        Some(trace_table_hops(
            &self.cfg,
            shape.coord(src),
            Some(ep0),
            &hops,
            self.table.slice(),
            Some(ep0),
            &mut crosses,
        ))
    }

    /// On-chip mesh hops from `from` to `to` (direction-order), all at `m`.
    fn mesh_steps(
        &self,
        node: NodeId,
        from: MeshCoord,
        to: MeshCoord,
        m: Vc,
    ) -> Vec<(GlobalLink, Vc)> {
        let mut steps = Vec::new();
        let mut cur = from;
        while let Some(d) = self.cfg.dir_order.next_dir(cur, to) {
            steps.push((
                GlobalLink::Local {
                    node,
                    link: LocalLink::Mesh { from: cur, dir: d },
                },
                m,
            ));
            cur = cur.step(d).expect("direction-order route stays on chip");
        }
        steps
    }
}

fn pack(tag: u64, a: u64, b: u64, c: u64) -> RouteState {
    RouteState(tag | (a << 2) | (b << 22) | (c << 30))
}

impl RoutingFunction for TableRouting {
    fn describe(&self) -> String {
        format!(
            "explicit {} route table, {}",
            self.table.method(),
            self.table.slice()
        )
    }

    fn num_vcs(&self) -> usize {
        let p = self.cfg.vc_policy;
        usize::from(p.num_vcs(LinkGroup::M).max(p.num_vcs(LinkGroup::T)))
    }

    fn roots(&self) -> Vec<Arrival> {
        let cfg = &self.cfg;
        let m0 = self.m0();
        let ep0 = LocalEndpointId(0);
        let n = cfg.shape.num_nodes();
        let mut out = Vec::new();
        // Every (src, dst) table path, traced end to end.
        for src in 0..n {
            for dst in 0..n {
                if src == dst
                    || self
                        .table
                        .path(NodeId(src as u32), NodeId(dst as u32))
                        .is_none()
                {
                    continue;
                }
                let node = NodeId(src as u32);
                out.push(Arrival {
                    node,
                    link: self.ep_in(node, ep0),
                    vc: m0,
                    state: RouteState(TAG_PATH | ((src as u64) << 2) | ((dst as u64) << 22)),
                });
            }
        }
        // Injection / delivery mesh fans of every other endpoint, plus
        // node-local endpoint-pair deliveries.
        for nid in 0..n {
            let node = NodeId(nid as u32);
            for ep in cfg.chip.endpoints() {
                for idx in 0..self.departs[nid].len() {
                    out.push(Arrival {
                        node,
                        link: self.ep_in(node, ep),
                        vc: m0,
                        state: pack(TAG_INJ, nid as u64, u64::from(ep.0), idx as u64),
                    });
                }
                for idx in 0..self.arrivals[nid].len() {
                    let (arrive, tvc, _) = self.arrivals[nid][idx];
                    out.push(Arrival {
                        node,
                        link: GlobalLink::Local {
                            node,
                            link: LocalLink::ChanToRouter(arrive),
                        },
                        vc: tvc,
                        state: pack(TAG_DELIVER, nid as u64, u64::from(ep.0), idx as u64),
                    });
                }
                for ep2 in cfg.chip.endpoints() {
                    out.push(Arrival {
                        node,
                        link: self.ep_in(node, ep),
                        vc: m0,
                        state: pack(TAG_LOCAL, nid as u64, u64::from(ep.0), u64::from(ep2.0)),
                    });
                }
            }
        }
        out
    }

    fn transitions(&self, arrival: &Arrival) -> Vec<Progress> {
        let s = arrival.state.0;
        let chip = &self.cfg.chip;
        match s & 3 {
            TAG_PATH => {
                let src = NodeId(((s >> 2) & 0xfffff) as u32);
                let dst = NodeId(((s >> 22) & 0xfffff) as u32);
                let Some(steps) = self.pair_trace(src, dst) else {
                    return Vec::new();
                };
                // steps[0] is the injection buffer — the arrival itself.
                vec![Progress {
                    steps: steps[1..].to_vec(),
                    next: None,
                }]
            }
            TAG_INJ => {
                let nid = ((s >> 2) & 0xfffff) as usize;
                let ep = LocalEndpointId(((s >> 22) & 0xff) as u8);
                let (depart, tvc) = self.departs[nid][((s >> 30) & 0x3ff) as usize];
                let node = NodeId(nid as u32);
                let m0 = self.m0();
                let mut steps =
                    self.mesh_steps(node, chip.endpoint_router(ep), chip.chan_router(depart), m0);
                steps.push((
                    GlobalLink::Local {
                        node,
                        link: LocalLink::RouterToChan(depart),
                    },
                    tvc,
                ));
                vec![Progress { steps, next: None }]
            }
            TAG_DELIVER => {
                let nid = ((s >> 2) & 0xfffff) as usize;
                let ep = LocalEndpointId(((s >> 22) & 0xff) as u8);
                let (arrive, _tvc, m) = self.arrivals[nid][((s >> 30) & 0x3ff) as usize];
                let node = NodeId(nid as u32);
                let mut steps =
                    self.mesh_steps(node, chip.chan_router(arrive), chip.endpoint_router(ep), m);
                steps.push((
                    GlobalLink::Local {
                        node,
                        link: LocalLink::RouterToEp(ep),
                    },
                    m,
                ));
                vec![Progress { steps, next: None }]
            }
            _ => {
                let nid = ((s >> 2) & 0xfffff) as usize;
                let ep = LocalEndpointId(((s >> 22) & 0xff) as u8);
                let ep2 = LocalEndpointId(((s >> 30) & 0xff) as u8);
                let node = NodeId(nid as u32);
                let m0 = self.m0();
                let mut steps = self.mesh_steps(
                    node,
                    chip.endpoint_router(ep),
                    chip.endpoint_router(ep2),
                    m0,
                );
                steps.push((
                    GlobalLink::Local {
                        node,
                        link: LocalLink::RouterToEp(ep2),
                    },
                    m0,
                ));
                vec![Progress { steps, next: None }]
            }
        }
    }

    fn witnesses(&self, wanted: &[DepEdge], max: usize) -> Vec<Option<ConcreteRoute>> {
        let mut out: Vec<Option<ConcreteRoute>> = vec![None; wanted.len()];
        if wanted.is_empty() || max == 0 {
            return out;
        }
        let shape = self.cfg.shape;
        let ep0 = LocalEndpointId(0);
        let mut found = 0usize;
        let budget = max.min(wanted.len());
        'pairs: for src in shape.nodes() {
            for dst in shape.nodes() {
                if src == dst {
                    continue;
                }
                let (s, d) = (shape.id(src), shape.id(dst));
                let Some(steps) = self.pair_trace(s, d) else {
                    continue;
                };
                let Some(hops) = self.table.path(s, d) else {
                    continue;
                };
                for w in steps.windows(2) {
                    let edge = (w[0], w[1]);
                    for (i, want) in wanted.iter().enumerate() {
                        if out[i].is_none() && *want == edge {
                            out[i] = Some(ConcreteRoute {
                                src: GlobalEndpoint { node: s, ep: ep0 },
                                dst: GlobalEndpoint { node: d, ep: ep0 },
                                path: RoutePath::Torus {
                                    hops: hops.clone(),
                                    slice: self.table.slice(),
                                },
                                holds: edge.0,
                                waits_for: edge.1,
                            });
                            found += 1;
                            if found >= budget {
                                break 'pairs;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_table::{build_route_table, DownLinkSet};
    use crate::topology::{Slice, TorusShape};

    #[test]
    fn healthy_table_roots_cover_all_pairs_and_fans() {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let shape = cfg.shape;
        let table =
            build_route_table(&shape, Slice(0), &DownLinkSet::empty(shape)).expect("healthy");
        let rf = TableRouting::new(cfg.clone(), table);
        let n = shape.num_nodes();
        let eps = cfg.endpoints_per_node();
        let pair_roots = n * (n - 1);
        let local_roots = n * eps * eps;
        assert!(rf.roots().len() >= pair_roots + local_roots);
        // Every root's transitions terminate (no successor states).
        for root in rf.roots() {
            for prog in rf.transitions(&root) {
                assert!(prog.next.is_none());
                assert!(!prog.steps.is_empty());
            }
        }
    }
}
