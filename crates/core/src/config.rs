//! Machine-level configuration: torus shape, chip layout, routing policies.

use std::fmt;

use crate::chip::{ChanId, ChipLayout, LocalEndpointId, NUM_CHAN_ADAPTERS};
use crate::onchip::DirOrder;
use crate::topology::{NodeCoord, NodeId, TorusShape};
use crate::vc::VcPolicy;

/// A compute endpoint anywhere in the machine: a node plus a local endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalEndpoint {
    /// The node hosting the endpoint.
    pub node: NodeId,
    /// The endpoint within the node.
    pub ep: LocalEndpointId,
}

impl fmt::Display for GlobalEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.ep)
    }
}

/// Static configuration of an Anton 2 machine's network.
///
/// # Examples
///
/// ```
/// use anton_core::config::MachineConfig;
/// use anton_core::topology::TorusShape;
///
/// let cfg = MachineConfig::new(TorusShape::cube(8));
/// assert_eq!(cfg.num_endpoints(), 512 * 16);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Shape of the inter-node torus.
    pub shape: TorusShape,
    /// Per-node chip layout (identical on every node).
    pub chip: ChipLayout,
    /// Virtual-channel allocation policy.
    pub vc_policy: VcPolicy,
    /// On-chip direction-order routing algorithm.
    pub dir_order: DirOrder,
}

impl MachineConfig {
    /// Creates a configuration with the paper's defaults: one endpoint per
    /// router, the Anton VC promotion policy, and the (V⁻, U⁺, U⁻, V⁺)
    /// direction order.
    pub fn new(shape: TorusShape) -> MachineConfig {
        MachineConfig {
            shape,
            chip: ChipLayout::default(),
            vc_policy: VcPolicy::Anton,
            dir_order: DirOrder::ANTON,
        }
    }

    /// Endpoints per node.
    #[inline]
    pub fn endpoints_per_node(&self) -> usize {
        self.chip.num_endpoints() as usize
    }

    /// Total endpoints in the machine.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.shape.num_nodes() * self.endpoints_per_node()
    }

    /// Dense linear index of a global endpoint.
    #[inline]
    pub fn endpoint_index(&self, ep: GlobalEndpoint) -> usize {
        ep.node.0 as usize * self.endpoints_per_node() + ep.ep.0 as usize
    }

    /// Global endpoint with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn endpoint_at(&self, idx: usize) -> GlobalEndpoint {
        assert!(
            idx < self.num_endpoints(),
            "endpoint index {idx} out of range"
        );
        let per = self.endpoints_per_node();
        GlobalEndpoint {
            node: NodeId((idx / per) as u32),
            ep: LocalEndpointId((idx % per) as u8),
        }
    }

    /// Iterates over every global endpoint in index order.
    pub fn endpoints(&self) -> impl Iterator<Item = GlobalEndpoint> + '_ {
        (0..self.num_endpoints()).map(move |i| self.endpoint_at(i))
    }

    /// Coordinate of an endpoint's node.
    #[inline]
    pub fn node_coord(&self, ep: GlobalEndpoint) -> NodeCoord {
        self.shape.coord(ep.node)
    }

    /// Number of directed external torus links: every node drives one link
    /// per channel adapter (6 directions × 2 slices).
    #[inline]
    pub fn num_torus_links(&self) -> usize {
        self.shape.num_nodes() * NUM_CHAN_ADAPTERS
    }

    /// Dense linear index of the directed torus link departing `from`
    /// through channel adapter `chan` — the canonical link numbering used
    /// by fault schedules.
    #[inline]
    pub fn torus_link_index(&self, from: NodeId, chan: ChanId) -> usize {
        from.0 as usize * NUM_CHAN_ADAPTERS + chan.index()
    }

    /// Directed torus link with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn torus_link_at(&self, idx: usize) -> (NodeId, ChanId) {
        assert!(
            idx < self.num_torus_links(),
            "torus link index {idx} out of range"
        );
        (
            NodeId((idx / NUM_CHAN_ADAPTERS) as u32),
            ChanId::from_index(idx % NUM_CHAN_ADAPTERS),
        )
    }

    /// Iterates over every directed torus link in index order.
    pub fn torus_links(&self) -> impl Iterator<Item = (NodeId, ChanId)> + '_ {
        (0..self.num_torus_links()).map(move |i| self.torus_link_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_index_roundtrip() {
        let cfg = MachineConfig::new(TorusShape::new(4, 2, 2));
        for (i, ep) in cfg.endpoints().enumerate() {
            assert_eq!(cfg.endpoint_index(ep), i);
            assert_eq!(cfg.endpoint_at(i), ep);
        }
        assert_eq!(cfg.num_endpoints(), 16 * 16);
    }

    #[test]
    fn torus_link_index_roundtrip() {
        let cfg = MachineConfig::new(TorusShape::new(4, 2, 2));
        for (i, (node, chan)) in cfg.torus_links().enumerate() {
            assert_eq!(cfg.torus_link_index(node, chan), i);
            assert_eq!(cfg.torus_link_at(i), (node, chan));
        }
        assert_eq!(cfg.num_torus_links(), 16 * 12);
    }

    #[test]
    fn defaults_match_paper() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        assert_eq!(cfg.vc_policy, VcPolicy::Anton);
        assert_eq!(cfg.dir_order, DirOrder::ANTON);
        assert_eq!(cfg.endpoints_per_node(), 16);
    }
}
