//! Virtual-channel allocation and the Anton 2 VC promotion algorithm
//! (Section 2.5).
//!
//! The network avoids deadlock by keeping the dependency graph between
//! virtual channels acyclic within each traffic class. Channels are divided
//! into an M-group (mesh and endpoint links) and a T-group (skip channels,
//! channel-adapter links, and torus channels); see
//! [`crate::chip::LinkGroup`].
//!
//! Prior approaches ([20] in the paper) use `2n` T-group VCs for an
//! n-dimensional torus: a fresh pair of dateline VCs per routed dimension.
//! The Anton 2 algorithm instead increments a packet's VC only when it
//! (1) crosses a dateline, or (2) finishes routing a torus dimension in which
//! it did not cross a dateline — at most once per dimension — which needs
//! only `n + 1` VCs and is deadlock-free given minimal routing and aligned
//! `+`/`−` datelines.

use std::fmt;

use crate::chip::LinkGroup;

/// Traffic class (Section 2.1): separate request and reply classes avoid
/// protocol deadlock. Each class has its own full set of VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum TrafficClass {
    /// Request traffic (remote writes, read requests).
    #[default]
    Request,
    /// Reply traffic (read responses, acknowledgements).
    Reply,
}

impl TrafficClass {
    /// Both traffic classes.
    pub const ALL: [TrafficClass; 2] = [TrafficClass::Request, TrafficClass::Reply];

    /// Class index (Request → 0, Reply → 1).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Request => 0,
            TrafficClass::Reply => 1,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Request => write!(f, "req"),
            TrafficClass::Reply => write!(f, "rsp"),
        }
    }
}

/// A virtual channel index within one traffic class and link group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vc(pub u8);

impl fmt::Display for Vc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// Which VC allocation policy the network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VcPolicy {
    /// The Anton 2 promotion algorithm: n+1 = 4 VCs for each of the M- and
    /// T-groups on a 3-dimensional torus.
    #[default]
    Anton,
    /// The prior approach [20]: a fresh dateline VC pair per dimension.
    /// 2n = 6 T-group VCs and n+1 = 4 M-group VCs.
    Baseline2n,
    /// Negative control: a single VC everywhere. The T-group ring cycles are
    /// not broken, so this policy deadlocks; it exists to validate the
    /// deadlock detectors.
    NaiveSingle,
}

impl VcPolicy {
    /// Number of VCs this policy requires per traffic class on links of the
    /// given group (for a 3-dimensional torus).
    pub fn num_vcs(self, group: LinkGroup) -> u8 {
        match (self, group) {
            (VcPolicy::Anton, _) => 4,
            (VcPolicy::Baseline2n, LinkGroup::M) => 4,
            (VcPolicy::Baseline2n, LinkGroup::T) => 6,
            (VcPolicy::NaiveSingle, _) => 1,
        }
    }

    /// Initial VC tracking state for a freshly injected packet.
    pub fn start(self) -> VcState {
        VcState {
            policy: self,
            m_vc: 0,
            t_vc: 0,
            crossed: false,
            dims_done: 0,
            in_dim: false,
        }
    }
}

impl fmt::Display for VcPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcPolicy::Anton => write!(f, "anton(n+1)"),
            VcPolicy::Baseline2n => write!(f, "baseline(2n)"),
            VcPolicy::NaiveSingle => write!(f, "naive(1)"),
        }
    }
}

/// Per-packet VC tracking state.
///
/// A packet's route alternates between the M-group (mesh hops to/from
/// adapters) and the T-group (torus hops along one dimension). Callers drive
/// the state machine with [`VcState::begin_dim`], [`VcState::torus_hop`], and
/// [`VcState::end_dim`], and read the VC to request on each link with
/// [`VcState::vc_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcState {
    policy: VcPolicy,
    m_vc: u8,
    t_vc: u8,
    crossed: bool,
    dims_done: u8,
    in_dim: bool,
}

impl VcState {
    /// The VC a packet in this state requests on a link of the given group.
    #[inline]
    pub fn vc_for(&self, group: LinkGroup) -> Vc {
        match group {
            LinkGroup::M => Vc(self.m_vc),
            LinkGroup::T => Vc(self.t_vc),
        }
    }

    /// Marks the start of torus routing in a new dimension.
    ///
    /// Called when the packet commits to its next torus dimension (as it
    /// heads for the departure channel adapter).
    ///
    /// # Panics
    ///
    /// Panics if a previous dimension was begun but never ended, or if more
    /// than three dimensions are routed.
    pub fn begin_dim(&mut self) {
        assert!(!self.in_dim, "begin_dim called twice without end_dim");
        assert!(
            self.dims_done < 3,
            "a minimal 3D route visits at most 3 dimensions"
        );
        self.in_dim = true;
        self.crossed = false;
        match self.policy {
            VcPolicy::Anton => self.t_vc = self.m_vc,
            VcPolicy::Baseline2n => self.t_vc = 2 * self.dims_done,
            VcPolicy::NaiveSingle => self.t_vc = 0,
        }
    }

    /// Records one torus hop; `crosses_dateline` is whether this hop crosses
    /// the dimension's dateline. The hop's torus link (and all subsequent
    /// T-group links in this dimension) use the returned VC.
    ///
    /// # Panics
    ///
    /// Panics if called outside a dimension, or if the dateline is crossed
    /// twice in one dimension (impossible under minimal routing).
    pub fn torus_hop(&mut self, crosses_dateline: bool) -> Vc {
        assert!(self.in_dim, "torus_hop outside begin_dim/end_dim");
        if crosses_dateline {
            assert!(
                !self.crossed,
                "minimal route crossed a dateline twice in one dimension"
            );
            self.crossed = true;
            match self.policy {
                VcPolicy::Anton | VcPolicy::Baseline2n => self.t_vc += 1,
                VcPolicy::NaiveSingle => {}
            }
        }
        Vc(self.t_vc)
    }

    /// Marks the end of routing in the current dimension. Subsequent M-group
    /// links use the returned VC.
    ///
    /// Under the Anton policy the packet's VC is incremented here only if it
    /// did not cross the dateline in this dimension, so the VC advances by
    /// exactly one per dimension.
    ///
    /// # Panics
    ///
    /// Panics if called outside a dimension.
    pub fn end_dim(&mut self) -> Vc {
        assert!(self.in_dim, "end_dim without begin_dim");
        self.in_dim = false;
        self.dims_done += 1;
        match self.policy {
            VcPolicy::Anton => {
                self.m_vc = if self.crossed {
                    self.t_vc
                } else {
                    self.t_vc + 1
                };
            }
            VcPolicy::Baseline2n => self.m_vc = self.dims_done,
            VcPolicy::NaiveSingle => {}
        }
        Vc(self.m_vc)
    }

    /// Number of torus dimensions completed so far.
    #[inline]
    pub fn dims_done(&self) -> u8 {
        self.dims_done
    }

    /// Whether the packet is currently between `begin_dim` and `end_dim`.
    #[inline]
    pub fn in_dim(&self) -> bool {
        self.in_dim
    }

    /// The M-group VC currently held (static-analysis introspection).
    #[inline]
    pub fn m_vc(&self) -> u8 {
        self.m_vc
    }

    /// The T-group VC currently held (static-analysis introspection).
    #[inline]
    pub fn t_vc(&self) -> u8 {
        self.t_vc
    }

    /// Whether the dateline was crossed in the current (or, between
    /// dimensions, the most recent) dimension.
    #[inline]
    pub fn crossed(&self) -> bool {
        self.crossed
    }

    /// The policy this state machine runs.
    #[inline]
    pub fn policy(&self) -> VcPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(policy: VcPolicy, dims: &[(u32, Option<u32>)]) -> VcState {
        // dims: (hops, Some(hop index that crosses dateline) or None)
        let mut st = policy.start();
        for &(hops, crossing) in dims {
            st.begin_dim();
            for h in 0..hops {
                st.torus_hop(Some(h) == crossing);
            }
            st.end_dim();
        }
        st
    }

    #[test]
    fn anton_increments_once_per_dim() {
        // No dateline crossings: increment at each dimension end.
        let st = drive(VcPolicy::Anton, &[(2, None), (1, None), (3, None)]);
        assert_eq!(st.vc_for(LinkGroup::M), Vc(3));

        // All dimensions cross: increment at each crossing, not at the end.
        let st = drive(VcPolicy::Anton, &[(2, Some(0)), (1, Some(0)), (3, Some(2))]);
        assert_eq!(st.vc_for(LinkGroup::M), Vc(3));

        // Mixed.
        let st = drive(VcPolicy::Anton, &[(2, Some(1)), (4, None)]);
        assert_eq!(st.vc_for(LinkGroup::M), Vc(2));
    }

    #[test]
    fn anton_max_vc_is_three() {
        // Worst case: 3 dimensions, any crossing combination -> final VC 3.
        for crossings in 0u8..8 {
            let dims: Vec<(u32, Option<u32>)> = (0..3)
                .map(|i| {
                    (
                        2,
                        if crossings & (1 << i) != 0 {
                            Some(0)
                        } else {
                            None
                        },
                    )
                })
                .collect();
            let st = drive(VcPolicy::Anton, &dims);
            assert_eq!(
                st.vc_for(LinkGroup::M),
                Vc(3),
                "crossings mask {crossings:03b}"
            );
        }
        assert_eq!(VcPolicy::Anton.num_vcs(LinkGroup::T), 4);
        assert_eq!(VcPolicy::Anton.num_vcs(LinkGroup::M), 4);
    }

    #[test]
    fn anton_t_vc_within_bounds_mid_route() {
        let mut st = VcPolicy::Anton.start();
        for dim in 0..3 {
            st.begin_dim();
            let vc = st.torus_hop(false);
            assert!(vc.0 <= 3, "dim {dim}");
            let vc = st.torus_hop(true);
            assert!(vc.0 <= 3, "dim {dim} post-crossing");
            st.end_dim();
        }
    }

    #[test]
    fn baseline_uses_fresh_pair_per_dim() {
        let mut st = VcPolicy::Baseline2n.start();
        st.begin_dim();
        assert_eq!(st.torus_hop(false), Vc(0));
        assert_eq!(st.torus_hop(true), Vc(1));
        assert_eq!(st.end_dim(), Vc(1));
        st.begin_dim();
        assert_eq!(st.torus_hop(false), Vc(2));
        assert_eq!(st.end_dim(), Vc(2));
        st.begin_dim();
        assert_eq!(st.torus_hop(true), Vc(5));
        assert_eq!(st.end_dim(), Vc(3));
        assert_eq!(VcPolicy::Baseline2n.num_vcs(LinkGroup::T), 6);
    }

    #[test]
    fn naive_never_increments() {
        let st = drive(
            VcPolicy::NaiveSingle,
            &[(4, Some(1)), (4, Some(0)), (4, None)],
        );
        assert_eq!(st.vc_for(LinkGroup::M), Vc(0));
        assert_eq!(st.vc_for(LinkGroup::T), Vc(0));
    }

    #[test]
    #[should_panic(expected = "crossed a dateline twice")]
    fn double_crossing_rejected() {
        let mut st = VcPolicy::Anton.start();
        st.begin_dim();
        st.torus_hop(true);
        st.torus_hop(true);
    }

    #[test]
    #[should_panic(expected = "at most 3 dimensions")]
    fn four_dims_rejected() {
        drive(
            VcPolicy::Anton,
            &[(1, None), (1, None), (1, None), (1, None)],
        );
    }
}
