//! Full-mesh topology with VC-free routing — the first non-torus instance
//! of the [`Topology`]/[`RoutingFunction`] trait layer.
//!
//! Every node has one endpoint and a dedicated point-to-point channel
//! ([`GlobalLink::Direct`]) to every other node. With single-hop routing
//! ([`MeshRule::Direct`]) no channel dependency ever chains through a second
//! inter-node channel, so the route set is provably deadlock-free with **zero
//! virtual channels** (a single VC 0 and an acyclic dependency graph) — the
//! HOTI'25-style result the certifier must reproduce. [`MeshRule::Ring`]
//! deliberately forwards every packet the long way around a logical ring of
//! direct channels, creating an N-edge dependency cycle the certifier must
//! catch and witness.

use crate::chip::{LocalEndpointId, LocalLink};
use crate::config::GlobalEndpoint;
use crate::net::{
    Arrival, ConcreteRoute, DepEdge, Progress, RoutePath, RouteState, RoutingFunction, Topology,
};
use crate::topology::NodeId;
use crate::trace::GlobalLink;
use crate::vc::Vc;

/// A fully connected topology: `nodes` nodes, one endpoint each, and a
/// dedicated [`GlobalLink::Direct`] channel per ordered node pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullMesh {
    nodes: usize,
}

/// Per-node slot layout: injection buffer, delivery buffer, then one slot
/// per outgoing direct channel (indexed by destination node).
const MESH_EP_IN: usize = 0;
const MESH_EP_OUT: usize = 1;
const MESH_DIRECT_BASE: usize = 2;

impl FullMesh {
    /// A full mesh over `nodes` nodes. Panics if `nodes < 2`.
    pub fn new(nodes: usize) -> FullMesh {
        assert!(nodes >= 2, "a mesh needs at least two nodes");
        FullMesh { nodes }
    }
}

impl Topology for FullMesh {
    fn describe(&self) -> String {
        format!("{}-node full mesh", self.nodes)
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn slots_per_node(&self) -> usize {
        MESH_DIRECT_BASE + self.nodes
    }

    fn slot(&self, link: &GlobalLink) -> Option<(usize, usize)> {
        match link {
            GlobalLink::Local { node, link } => {
                let n = node.0 as usize;
                if n >= self.nodes {
                    return None;
                }
                match link {
                    LocalLink::EpToRouter(e) if e.0 == 0 => Some((n, MESH_EP_IN)),
                    LocalLink::RouterToEp(e) if e.0 == 0 => Some((n, MESH_EP_OUT)),
                    _ => None,
                }
            }
            GlobalLink::Direct { from, to } => {
                let (f, t) = (from.0 as usize, to.0 as usize);
                if f < self.nodes && t < self.nodes && f != t {
                    Some((f, MESH_DIRECT_BASE + t))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn link_at(&self, node: usize, slot: usize) -> Option<GlobalLink> {
        if node >= self.nodes {
            return None;
        }
        let nid = NodeId(node as u32);
        match slot {
            MESH_EP_IN => Some(GlobalLink::Local {
                node: nid,
                link: LocalLink::EpToRouter(LocalEndpointId(0)),
            }),
            MESH_EP_OUT => Some(GlobalLink::Local {
                node: nid,
                link: LocalLink::RouterToEp(LocalEndpointId(0)),
            }),
            s if s >= MESH_DIRECT_BASE && s < MESH_DIRECT_BASE + self.nodes => {
                let to = s - MESH_DIRECT_BASE;
                if to == node {
                    None
                } else {
                    Some(GlobalLink::Direct {
                        from: nid,
                        to: NodeId(to as u32),
                    })
                }
            }
            _ => None,
        }
    }
}

/// How [`MeshRouting`] forwards a packet between mesh nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshRule {
    /// One hop on the dedicated source→destination channel. Deadlock-free
    /// with zero VCs: no inter-node channel ever waits on another.
    Direct,
    /// Forward around the logical ring `0 → 1 → … → N−1 → 0` until the
    /// destination is reached. Deliberately cyclic: the direct channels
    /// `i → i+1` form an N-edge dependency cycle.
    Ring,
}

impl std::fmt::Display for MeshRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshRule::Direct => write!(f, "direct"),
            MeshRule::Ring => write!(f, "ring"),
        }
    }
}

/// VC-free routing over a [`FullMesh`]: every route runs entirely on VC 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshRouting {
    nodes: usize,
    rule: MeshRule,
}

impl MeshRouting {
    /// Routing over an `nodes`-node full mesh under `rule`.
    pub fn new(nodes: usize, rule: MeshRule) -> MeshRouting {
        assert!(nodes >= 2, "a mesh needs at least two nodes");
        MeshRouting { nodes, rule }
    }

    fn pair_state(src: usize, dst: usize) -> RouteState {
        RouteState(((src as u64) << 32) | dst as u64)
    }

    /// The ordered node sequence of the route `src → dst` under this rule.
    fn route_nodes(&self, src: usize, dst: usize) -> Vec<NodeId> {
        let mut nodes = vec![NodeId(src as u32)];
        match self.rule {
            MeshRule::Direct => nodes.push(NodeId(dst as u32)),
            MeshRule::Ring => {
                let mut cur = src;
                while cur != dst {
                    cur = (cur + 1) % self.nodes;
                    nodes.push(NodeId(cur as u32));
                }
            }
        }
        nodes
    }

    /// The full link chain of the route `src → dst`, all at VC 0.
    fn route_steps(&self, src: usize, dst: usize) -> Vec<(GlobalLink, Vc)> {
        let path = self.route_nodes(src, dst);
        let mut steps = Vec::with_capacity(path.len() + 1);
        for w in path.windows(2) {
            steps.push((
                GlobalLink::Direct {
                    from: w[0],
                    to: w[1],
                },
                Vc(0),
            ));
        }
        steps.push((
            GlobalLink::Local {
                node: NodeId(dst as u32),
                link: LocalLink::RouterToEp(LocalEndpointId(0)),
            },
            Vc(0),
        ));
        steps
    }
}

impl RoutingFunction for MeshRouting {
    fn describe(&self) -> String {
        format!("{} mesh routing, zero VCs", self.rule)
    }

    fn num_vcs(&self) -> usize {
        1
    }

    fn roots(&self) -> Vec<Arrival> {
        let mut out = Vec::new();
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                if src == dst {
                    continue;
                }
                out.push(Arrival {
                    node: NodeId(src as u32),
                    link: GlobalLink::Local {
                        node: NodeId(src as u32),
                        link: LocalLink::EpToRouter(LocalEndpointId(0)),
                    },
                    vc: Vc(0),
                    state: Self::pair_state(src, dst),
                });
            }
        }
        out
    }

    fn transitions(&self, arrival: &Arrival) -> Vec<Progress> {
        let src = (arrival.state.0 >> 32) as usize;
        let dst = (arrival.state.0 & 0xffff_ffff) as usize;
        if src >= self.nodes || dst >= self.nodes || src == dst {
            return Vec::new();
        }
        vec![Progress {
            steps: self.route_steps(src, dst),
            next: None,
        }]
    }

    fn witnesses(&self, wanted: &[DepEdge], max: usize) -> Vec<Option<ConcreteRoute>> {
        let mut out: Vec<Option<ConcreteRoute>> = vec![None; wanted.len()];
        let mut found = 0usize;
        let budget = max.min(wanted.len());
        'pairs: for src in 0..self.nodes {
            for dst in 0..self.nodes {
                if src == dst {
                    continue;
                }
                let inj = (
                    GlobalLink::Local {
                        node: NodeId(src as u32),
                        link: LocalLink::EpToRouter(LocalEndpointId(0)),
                    },
                    Vc(0),
                );
                let mut chain = vec![inj];
                chain.extend(self.route_steps(src, dst));
                for w in chain.windows(2) {
                    let edge = (w[0], w[1]);
                    for (i, want) in wanted.iter().enumerate() {
                        if out[i].is_none() && *want == edge {
                            out[i] = Some(ConcreteRoute {
                                src: GlobalEndpoint {
                                    node: NodeId(src as u32),
                                    ep: LocalEndpointId(0),
                                },
                                dst: GlobalEndpoint {
                                    node: NodeId(dst as u32),
                                    ep: LocalEndpointId(0),
                                },
                                path: RoutePath::Nodes(self.route_nodes(src, dst)),
                                holds: edge.0,
                                waits_for: edge.1,
                            });
                            found += 1;
                            if found >= budget {
                                break 'pairs;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_slots_round_trip() {
        let topo = FullMesh::new(5);
        for node in 0..5 {
            for slot in 0..topo.slots_per_node() {
                if let Some(link) = topo.link_at(node, slot) {
                    assert_eq!(topo.slot(&link), Some((node, slot)));
                }
            }
        }
        // The self-channel slot is the only hole.
        assert!(topo.link_at(2, MESH_DIRECT_BASE + 2).is_none());
    }

    #[test]
    fn direct_routes_are_single_hop() {
        let rf = MeshRouting::new(4, MeshRule::Direct);
        assert_eq!(rf.roots().len(), 12);
        for root in rf.roots() {
            let progs = rf.transitions(&root);
            assert_eq!(progs.len(), 1);
            // one direct channel + delivery, all VC 0
            assert_eq!(progs[0].steps.len(), 2);
            assert!(progs[0].steps.iter().all(|(_, vc)| *vc == Vc(0)));
            assert!(progs[0].next.is_none());
        }
    }

    #[test]
    fn ring_routes_walk_the_ring() {
        let rf = MeshRouting::new(4, MeshRule::Ring);
        let nodes = rf.route_nodes(3, 1);
        assert_eq!(nodes, vec![NodeId(3), NodeId(0), NodeId(1)]);
    }
}
