//! Dimension-order torus routing as a [`RoutingFunction`] transition system.
//!
//! This is the paper's routing scheme — minimal dimension-order runs over
//! the channel-sliced 3D torus with the n+1-VC promotion ladder — expressed
//! in the abstract form the topology-agnostic certifier consumes. A packet's
//! abstract state is either:
//!
//! * an **M-phase entry**: the packet sits in an injection buffer
//!   (`EpToRouter`) or an arrival adapter (`ChanToRouter`) with some set of
//!   dimensions already routed and its VC ladder at the canonical M-phase
//!   position for that set, about to be delivered locally or to depart on a
//!   fresh dimension; or
//! * **mid-arc**: the packet is `hops` links deep into a single-dimension
//!   run, sitting in the arrival adapter of an intermediate node, able to
//!   continue the run (up to the arc-length bound) or end the dimension in
//!   place.
//!
//! Because `VcState::begin_dim` derives the T-phase position solely from the
//! M-phase VC (and resets the crossing flag), M-phase states are canonical
//! in `(m_vc, dims_routed)` — the whole state space is a handful of entries
//! closed over eagerly at construction. The certifier's breadth-first
//! exploration over `(link, VC, state)` then reproduces, edge for edge, the
//! channel-dependency graph of the previous hard-wired generator (pinned by
//! the cross-check suite in `anton-verify`).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::chip::{ChanId, LinkGroup, LocalEndpointId, LocalLink, MeshCoord};
use crate::config::{GlobalEndpoint, MachineConfig};
use crate::net::{
    Arrival, ConcreteRoute, DepEdge, Progress, RoutePath, RouteState, RoutingFunction,
};
use crate::topology::{Dim, NodeCoord, NodeId, Sign, Slice, TorusDir};
use crate::trace::{trace_hops_with, GlobalLink};
use crate::vc::{Vc, VcState};

fn dim_bit(d: Dim) -> u8 {
    1 << d.index()
}

/// Dimension-order routing over the torus, parameterized by the dateline and
/// arc-length knobs of the verification model.
#[derive(Debug, Clone)]
pub struct DimOrderRouting {
    cfg: MachineConfig,
    datelines: bool,
    long_arcs: bool,
    /// Canonical M-phase states: `(representative VC state, dims-routed mask)`.
    mentries: Vec<(VcState, u8)>,
    /// Mid-arc states: `(VC state inside the run, mask before this dim)`.
    inarcs: Vec<(VcState, u8)>,
    inarc_idx: HashMap<(VcState, u8), u32>,
}

impl DimOrderRouting {
    /// Builds the transition system for `cfg`.
    ///
    /// `datelines` disables dateline VC promotion when false (the deliberate
    /// counterexample model); `long_arcs` raises the arc-length bound from
    /// minimal (`k/2`) to the worst case a degraded route table may take
    /// (`k − 1`).
    pub fn new(cfg: MachineConfig, datelines: bool, long_arcs: bool) -> DimOrderRouting {
        let start = cfg.vc_policy.start();
        let mut mentries: Vec<(VcState, u8)> = vec![(start, 0)];
        let mut mentry_idx: HashMap<(u8, u8), u32> = HashMap::new();
        mentry_idx.insert((start.m_vc(), 0), 0);
        let mut inarcs: Vec<(VcState, u8)> = Vec::new();
        let mut inarc_idx: HashMap<(VcState, u8), u32> = HashMap::new();
        let mut queue: VecDeque<u32> = VecDeque::from([0]);
        while let Some(mi) = queue.pop_front() {
            let (st0, mask) = mentries[mi as usize];
            for dim in Dim::ALL {
                if cfg.shape.k(dim) <= 1 || mask & dim_bit(dim) != 0 {
                    continue;
                }
                let mut entered = st0;
                entered.begin_dim();
                // The two VC states a run in this dimension can occupy: the
                // dateline not yet crossed (a non-crossing hop leaves the
                // state untouched) and crossed (when datelines are active).
                let mut variants = Vec::with_capacity(2);
                let mut nc = entered;
                let _ = nc.torus_hop(false);
                variants.push(nc);
                if datelines {
                    let mut cr = entered;
                    let _ = cr.torus_hop(true);
                    variants.push(cr);
                }
                for v in variants {
                    inarc_idx.entry((v, mask)).or_insert_with(|| {
                        inarcs.push((v, mask));
                        (inarcs.len() - 1) as u32
                    });
                    let mut ended = v;
                    let _ = ended.end_dim();
                    let key = (ended.m_vc(), mask | dim_bit(dim));
                    if let std::collections::hash_map::Entry::Vacant(e) = mentry_idx.entry(key) {
                        e.insert(mentries.len() as u32);
                        queue.push_back(mentries.len() as u32);
                        mentries.push((ended, mask | dim_bit(dim)));
                    }
                }
            }
        }
        DimOrderRouting {
            cfg,
            datelines,
            long_arcs,
            mentries,
            inarcs,
            inarc_idx,
        }
    }

    /// The machine configuration this routing function was built for.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn mentry_state(idx: u32) -> RouteState {
        RouteState(u64::from(idx) << 1)
    }

    fn inarc_state(idx: u32, hops: u32) -> RouteState {
        RouteState((u64::from(idx) << 1) | 1 | (u64::from(hops) << 32))
    }

    fn signs_for(&self, dim: Dim) -> &'static [Sign] {
        if self.cfg.shape.k(dim) == 2 && !self.long_arcs {
            &[Sign::Plus]
        } else {
            &[Sign::Plus, Sign::Minus]
        }
    }

    fn max_arc_len(&self, dim: Dim) -> u32 {
        let k = u32::from(self.cfg.shape.k(dim));
        if self.long_arcs {
            k - 1
        } else {
            k / 2
        }
    }

    fn crosses(&self, at: NodeCoord, dir: TorusDir) -> bool {
        self.datelines && self.cfg.shape.hop_crosses_dateline(at, dir)
    }

    /// M-phase exits shared by injections and dimension-boundary entries:
    /// deliver to every local endpoint, or depart on any unrouted dimension.
    fn phase_exits(
        &self,
        node: NodeId,
        entry_router: MeshCoord,
        state: VcState,
        mask: u8,
        slices: &[Slice],
    ) -> Vec<Progress> {
        let cfg = &self.cfg;
        let coord = cfg.shape.coord(node);
        let m = state.vc_for(LinkGroup::M);
        let mut out = Vec::new();
        for ep in cfg.chip.endpoints() {
            let mut steps = self.mesh_steps(node, entry_router, cfg.chip.endpoint_router(ep), m);
            steps.push((
                GlobalLink::Local {
                    node,
                    link: LocalLink::RouterToEp(ep),
                },
                m,
            ));
            out.push(Progress { steps, next: None });
        }
        for dim in Dim::ALL {
            if cfg.shape.k(dim) <= 1 || mask & dim_bit(dim) != 0 {
                continue;
            }
            for &sign in self.signs_for(dim) {
                let dir = TorusDir::new(dim, sign);
                for &slice in slices {
                    let depart = ChanId { dir, slice };
                    let mut st = state;
                    st.begin_dim();
                    let t_dep = st.vc_for(LinkGroup::T);
                    let mut steps =
                        self.mesh_steps(node, entry_router, cfg.chip.chan_router(depart), m);
                    steps.push((
                        GlobalLink::Local {
                            node,
                            link: LocalLink::RouterToChan(depart),
                        },
                        t_dep,
                    ));
                    let tvc = st.torus_hop(self.crosses(coord, dir));
                    steps.push((
                        GlobalLink::Torus {
                            from: node,
                            dir,
                            slice,
                        },
                        tvc,
                    ));
                    let nbr = cfg.shape.id(cfg.shape.neighbor(coord, dir));
                    steps.push((
                        GlobalLink::Local {
                            node: nbr,
                            link: LocalLink::ChanToRouter(ChanId {
                                dir: dir.opposite(),
                                slice,
                            }),
                        },
                        tvc,
                    ));
                    let ii = self.inarc_idx[&(st, mask)];
                    out.push(Progress {
                        steps,
                        next: Some((nbr, Self::inarc_state(ii, 1))),
                    });
                }
            }
        }
        out
    }

    /// On-chip mesh hops from `from` to `to` (direction-order), all at `m`.
    fn mesh_steps(
        &self,
        node: NodeId,
        from: MeshCoord,
        to: MeshCoord,
        m: Vc,
    ) -> Vec<(GlobalLink, Vc)> {
        let mut steps = Vec::new();
        let mut cur = from;
        while let Some(d) = self.cfg.dir_order.next_dir(cur, to) {
            steps.push((
                GlobalLink::Local {
                    node,
                    link: LocalLink::Mesh { from: cur, dir: d },
                },
                m,
            ));
            cur = cur.step(d).expect("direction-order route stays on chip");
        }
        steps
    }

    /// Validates a candidate witness by re-tracing it through the reference
    /// route semantics and checking the dependency edge appears verbatim.
    fn validated_witness(
        &self,
        src: NodeCoord,
        src_ep: LocalEndpointId,
        dst_ep: LocalEndpointId,
        hops: &[TorusDir],
        slice: Slice,
        edge: &DepEdge,
    ) -> Option<ConcreteRoute> {
        let steps = trace_hops_with(
            &self.cfg,
            src,
            Some(src_ep),
            hops,
            slice,
            Some(dst_ep),
            &mut |c, d| self.crosses(c, d),
        );
        if !steps.windows(2).any(|w| w[0] == edge.0 && w[1] == edge.1) {
            return None;
        }
        let mut dst = src;
        for &h in hops {
            dst = self.cfg.shape.neighbor(dst, h);
        }
        Some(ConcreteRoute {
            src: GlobalEndpoint {
                node: self.cfg.shape.id(src),
                ep: src_ep,
            },
            dst: GlobalEndpoint {
                node: self.cfg.shape.id(dst),
                ep: dst_ep,
            },
            path: RoutePath::Torus {
                hops: hops.to_vec(),
                slice,
            },
            holds: edge.0,
            waits_for: edge.1,
        })
    }
}

/// Concrete realization of an abstract arrival, carried through the witness
/// search: the injection point and torus hops that reach the arrival state.
#[derive(Debug, Clone)]
struct WitnessPrefix {
    src: NodeCoord,
    src_ep: LocalEndpointId,
    slice: Option<Slice>,
    hops: Vec<TorusDir>,
}

impl RoutingFunction for DimOrderRouting {
    fn describe(&self) -> String {
        format!(
            "dimension-order, {} policy, datelines {}{}",
            self.cfg.vc_policy,
            if self.datelines { "on" } else { "off" },
            if self.long_arcs { ", long arcs" } else { "" },
        )
    }

    fn num_vcs(&self) -> usize {
        let p = self.cfg.vc_policy;
        usize::from(p.num_vcs(LinkGroup::M).max(p.num_vcs(LinkGroup::T)))
    }

    fn roots(&self) -> Vec<Arrival> {
        let m0 = self.cfg.vc_policy.start().vc_for(LinkGroup::M);
        let mut out = Vec::new();
        for coord in self.cfg.shape.nodes() {
            let node = self.cfg.shape.id(coord);
            for ep in self.cfg.chip.endpoints() {
                out.push(Arrival {
                    node,
                    link: GlobalLink::Local {
                        node,
                        link: LocalLink::EpToRouter(ep),
                    },
                    vc: m0,
                    state: Self::mentry_state(0),
                });
            }
        }
        out
    }

    fn transitions(&self, arrival: &Arrival) -> Vec<Progress> {
        if arrival.state.0 & 1 == 0 {
            // M-phase entry: the slice constraint and entry router come from
            // the arrival link (injections may use either slice; a packet
            // arriving from the torus is pinned to its channel's slice).
            let (st, mask) = self.mentries[(arrival.state.0 >> 1) as usize];
            let (entry_router, slices): (MeshCoord, &[Slice]) = match &arrival.link {
                GlobalLink::Local {
                    link: LocalLink::EpToRouter(e),
                    ..
                } => (self.cfg.chip.endpoint_router(*e), &Slice::ALL),
                GlobalLink::Local {
                    link: LocalLink::ChanToRouter(c),
                    ..
                } => (
                    self.cfg.chip.chan_router(*c),
                    if c.slice.0 == 0 {
                        &Slice::ALL[0..1]
                    } else {
                        &Slice::ALL[1..2]
                    },
                ),
                _ => return Vec::new(),
            };
            self.phase_exits(arrival.node, entry_router, st, mask, slices)
        } else {
            // Mid-arc: continue the run or end the dimension in place.
            let (st, pre_mask) = self.inarcs[((arrival.state.0 >> 1) & 0x7fff_ffff) as usize];
            let hops = (arrival.state.0 >> 32) as u32;
            let arrive = match &arrival.link {
                GlobalLink::Local {
                    link: LocalLink::ChanToRouter(c),
                    ..
                } => *c,
                _ => return Vec::new(),
            };
            let dir = arrive.dir.opposite();
            let node = arrival.node;
            let coord = self.cfg.shape.coord(node);
            let mut out = Vec::new();
            // End the dimension: reinterpret the same buffer as an M-phase
            // entry (no new links are acquired at a dimension boundary).
            {
                let mut ended = st;
                let _ = ended.end_dim();
                let key = (ended.m_vc(), pre_mask | dim_bit(dir.dim));
                let mi = self
                    .mentries
                    .iter()
                    .position(|&(s, m)| (s.m_vc(), m) == key)
                    .expect("M-entry closure covers every arc exit");
                out.push(Progress {
                    steps: Vec::new(),
                    next: Some((node, Self::mentry_state(mi as u32))),
                });
            }
            if hops < self.max_arc_len(dir.dim) {
                let crosses = self.crosses(coord, dir);
                if !(crosses && st.crossed()) {
                    let t = st.vc_for(LinkGroup::T);
                    let mut st2 = st;
                    let mut steps = Vec::new();
                    if dir.dim == Dim::X {
                        // X through-traffic bypasses the chip via the skip
                        // channel; Y/Z adapters share a router.
                        steps.push((
                            GlobalLink::Local {
                                node,
                                link: LocalLink::Skip {
                                    from: self.cfg.chip.chan_router(arrive),
                                },
                            },
                            t,
                        ));
                    }
                    let depart = ChanId {
                        dir,
                        slice: arrive.slice,
                    };
                    steps.push((
                        GlobalLink::Local {
                            node,
                            link: LocalLink::RouterToChan(depart),
                        },
                        t,
                    ));
                    let tvc = st2.torus_hop(crosses);
                    steps.push((
                        GlobalLink::Torus {
                            from: node,
                            dir,
                            slice: arrive.slice,
                        },
                        tvc,
                    ));
                    let nbr = self.cfg.shape.id(self.cfg.shape.neighbor(coord, dir));
                    steps.push((
                        GlobalLink::Local {
                            node: nbr,
                            link: LocalLink::ChanToRouter(arrive),
                        },
                        tvc,
                    ));
                    let ii = self.inarc_idx[&(st2, pre_mask)];
                    out.push(Progress {
                        steps,
                        next: Some((nbr, Self::inarc_state(ii, hops + 1))),
                    });
                }
            }
            out
        }
    }

    /// Witness synthesis: re-run the abstract exploration carrying a concrete
    /// realization (source endpoint + torus hops) for every reached state;
    /// when an emitted dependency edge is wanted, complete the realization
    /// into a full route and validate it against the reference tracer.
    fn witnesses(&self, wanted: &[DepEdge], max: usize) -> Vec<Option<ConcreteRoute>> {
        let mut out: Vec<Option<ConcreteRoute>> = vec![None; wanted.len()];
        if wanted.is_empty() || max == 0 {
            return out;
        }
        let mut wanted_at: HashMap<DepEdge, Vec<usize>> = HashMap::new();
        for (i, e) in wanted.iter().enumerate() {
            wanted_at.entry(*e).or_default().push(i);
        }
        let mut found = 0usize;
        let budget = max.min(wanted.len());
        let mut seen: HashSet<(GlobalLink, Vc, u64)> = HashSet::new();
        let mut queue: VecDeque<(Arrival, WitnessPrefix)> = VecDeque::new();
        for root in self.roots() {
            let ep = match root.link {
                GlobalLink::Local {
                    link: LocalLink::EpToRouter(e),
                    ..
                } => e,
                _ => continue,
            };
            if seen.insert((root.link, root.vc, root.state.0)) {
                let prefix = WitnessPrefix {
                    src: self.cfg.shape.coord(root.node),
                    src_ep: ep,
                    slice: None,
                    hops: Vec::new(),
                };
                queue.push_back((root, prefix));
            }
        }
        'search: while let Some((arrival, prefix)) = queue.pop_front() {
            for prog in self.transitions(&arrival) {
                // The concrete completion of this transition: either a local
                // delivery of the prefix route, or the prefix extended by the
                // torus hop this transition takes (delivered at the far end).
                let torus_hop = prog.steps.iter().find_map(|(l, _)| match l {
                    GlobalLink::Torus { dir, slice, .. } => Some((*dir, *slice)),
                    _ => None,
                });
                let candidate: Option<(Vec<TorusDir>, Slice, LocalEndpointId)> =
                    if let Some((dir, slice)) = torus_hop {
                        let mut hops = prefix.hops.clone();
                        hops.push(dir);
                        Some((hops, prefix.slice.unwrap_or(slice), LocalEndpointId(0)))
                    } else {
                        prog.steps.last().and_then(|(l, _)| match l {
                            GlobalLink::Local {
                                link: LocalLink::RouterToEp(e),
                                ..
                            } => Some((prefix.hops.clone(), prefix.slice.unwrap_or(Slice(0)), *e)),
                            _ => None,
                        })
                    };
                let mut prev = (arrival.link, arrival.vc);
                for step in &prog.steps {
                    let edge = (prev, *step);
                    if let Some(idxs) = wanted_at.get(&edge) {
                        if idxs.iter().any(|&i| out[i].is_none()) {
                            if let Some((hops, slice, dst_ep)) = &candidate {
                                if let Some(w) = self.validated_witness(
                                    prefix.src,
                                    prefix.src_ep,
                                    *dst_ep,
                                    hops,
                                    *slice,
                                    &edge,
                                ) {
                                    for &i in idxs {
                                        if out[i].is_none() {
                                            out[i] = Some(w.clone());
                                            found += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    prev = *step;
                }
                if found >= budget {
                    break 'search;
                }
                if let Some((node, state)) = prog.next {
                    let next = Arrival {
                        node,
                        link: prev.0,
                        vc: prev.1,
                        state,
                    };
                    if seen.insert((next.link, next.vc, next.state.0)) {
                        let next_prefix = if let Some((dir, slice)) = torus_hop {
                            WitnessPrefix {
                                src: prefix.src,
                                src_ep: prefix.src_ep,
                                slice: Some(prefix.slice.unwrap_or(slice)),
                                hops: {
                                    let mut h = prefix.hops.clone();
                                    h.push(dir);
                                    h
                                },
                            }
                        } else {
                            prefix.clone()
                        };
                        queue.push_back((next, next_prefix));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TorusShape;
    use crate::vc::VcPolicy;

    #[test]
    fn state_closure_is_small_and_complete() {
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let rf = DimOrderRouting::new(cfg, true, false);
        // Anton policy: one canonical M-entry per dims-routed mask.
        assert_eq!(rf.mentries.len(), 8);
        // Per (entry, unrouted dim): crossed and uncrossed arc states.
        assert!(!rf.inarcs.is_empty());
        for &(st, mask) in &rf.inarcs {
            assert!(st.in_dim());
            assert!(mask < 8);
        }
    }

    #[test]
    fn roots_cover_every_injection_buffer() {
        let cfg = MachineConfig::new(TorusShape::new(2, 2, 1));
        let eps = cfg.endpoints_per_node();
        let nodes = cfg.shape.num_nodes();
        let rf = DimOrderRouting::new(cfg, true, false);
        assert_eq!(rf.roots().len(), nodes * eps);
    }

    #[test]
    fn naive_policy_stays_on_vc0() {
        let mut cfg = MachineConfig::new(TorusShape::cube(2));
        cfg.vc_policy = VcPolicy::NaiveSingle;
        let rf = DimOrderRouting::new(cfg, true, false);
        assert_eq!(rf.num_vcs(), 1);
        for root in rf.roots().iter().take(1) {
            for prog in rf.transitions(root) {
                for (_, vc) in &prog.steps {
                    assert_eq!(*vc, Vc(0));
                }
            }
        }
    }
}
