//! On-chip direction-order routing (Section 2.4).
//!
//! Local routes through the mesh use *direction-order* routing: a packet must
//! traverse the four mesh directions (U⁺, U⁻, V⁺, V⁻) in a fixed order.
//! Direction-order algorithms are deterministic and deadlock-free with a
//! single virtual channel, which keeps the routers simple. The paper's
//! optimization search (reproduced in `anton-analysis`) found that routing
//! V⁻, U⁺, U⁻, then V⁺ outperforms all other direction orders for the
//! worst-case inter-node switching demands.

use std::fmt;

use crate::chip::{MeshCoord, MeshDir};

/// A direction-order on-chip routing algorithm: a permutation of the four
/// mesh directions.
///
/// # Examples
///
/// ```
/// use anton_core::chip::{MeshCoord, MeshDir};
/// use anton_core::onchip::DirOrder;
///
/// let route = DirOrder::ANTON.route(MeshCoord::new(3, 0), MeshCoord::new(0, 2));
/// // All U− hops happen before the V+ hops under the Anton order.
/// assert_eq!(
///     route,
///     vec![MeshDir::UMinus, MeshDir::UMinus, MeshDir::UMinus, MeshDir::VPlus, MeshDir::VPlus]
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirOrder([MeshDir; 4]);

impl DirOrder {
    /// The order selected by the Anton 2 design: V⁻, U⁺, U⁻, V⁺.
    pub const ANTON: DirOrder = DirOrder([
        MeshDir::VMinus,
        MeshDir::UPlus,
        MeshDir::UMinus,
        MeshDir::VPlus,
    ]);

    /// Dimension-order (U then V) routing, a special case of direction order.
    pub const UV: DirOrder = DirOrder([
        MeshDir::UPlus,
        MeshDir::UMinus,
        MeshDir::VPlus,
        MeshDir::VMinus,
    ]);

    /// Creates a direction order from a permutation of the four directions.
    ///
    /// # Panics
    ///
    /// Panics if `dirs` is not a permutation of all four mesh directions.
    pub fn new(dirs: [MeshDir; 4]) -> DirOrder {
        for d in MeshDir::ALL {
            assert!(dirs.contains(&d), "direction order missing {d}");
        }
        DirOrder(dirs)
    }

    /// The ordered directions.
    #[inline]
    pub fn dirs(&self) -> [MeshDir; 4] {
        self.0
    }

    /// All 24 direction-order algorithms.
    pub fn all() -> Vec<DirOrder> {
        let mut out = Vec::with_capacity(24);
        let d = MeshDir::ALL;
        for i in 0..4 {
            for j in 0..4 {
                if j == i {
                    continue;
                }
                for k in 0..4 {
                    if k == i || k == j {
                        continue;
                    }
                    let l = 6 - i - j - k;
                    out.push(DirOrder([d[i], d[j], d[k], d[l]]));
                }
            }
        }
        out
    }

    /// The next hop from `from` toward `to`, or `None` if already there.
    ///
    /// A direction is *needed* when the displacement toward `to` has a
    /// component in it; the earliest needed direction in the order is taken,
    /// and all hops in that direction complete before the next direction
    /// starts (which this greedy rule guarantees, since at most one U and one
    /// V direction are ever needed on a mesh).
    pub fn next_dir(&self, from: MeshCoord, to: MeshCoord) -> Option<MeshDir> {
        if from == to {
            return None;
        }
        let du = to.u as i8 - from.u as i8;
        let dv = to.v as i8 - from.v as i8;
        for d in self.0 {
            let needed = match d {
                MeshDir::UPlus => du > 0,
                MeshDir::UMinus => du < 0,
                MeshDir::VPlus => dv > 0,
                MeshDir::VMinus => dv < 0,
            };
            if needed {
                return Some(d);
            }
        }
        unreachable!("nonzero displacement must need some direction")
    }

    /// The full hop sequence from `from` to `to` (empty if equal).
    pub fn route(&self, from: MeshCoord, to: MeshCoord) -> Vec<MeshDir> {
        let mut hops = Vec::new();
        let mut cur = from;
        while let Some(d) = self.next_dir(cur, to) {
            hops.push(d);
            cur = cur.step(d).expect("direction-order route left the mesh");
        }
        hops
    }

    /// The sequence of routers visited from `from` to `to`, inclusive.
    pub fn router_path(&self, from: MeshCoord, to: MeshCoord) -> Vec<MeshCoord> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(d) = self.next_dir(cur, to) {
            cur = cur.step(d).expect("direction-order route left the mesh");
            path.push(cur);
        }
        path
    }
}

impl fmt::Display for DirOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {})",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_orders_count() {
        let all = DirOrder::all();
        assert_eq!(all.len(), 24);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 24);
        assert!(all.contains(&DirOrder::ANTON));
    }

    #[test]
    fn routes_are_minimal() {
        for order in DirOrder::all() {
            for a in MeshCoord::all() {
                for b in MeshCoord::all() {
                    let route = order.route(a, b);
                    let min = (a.u as i8 - b.u as i8).unsigned_abs()
                        + (a.v as i8 - b.v as i8).unsigned_abs();
                    assert_eq!(route.len(), min as usize, "{order} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn directions_traversed_in_order() {
        for order in DirOrder::all() {
            for a in MeshCoord::all() {
                for b in MeshCoord::all() {
                    let route = order.route(a, b);
                    let rank = |d: MeshDir| order.dirs().iter().position(|&x| x == d).unwrap();
                    for w in route.windows(2) {
                        assert!(rank(w[0]) <= rank(w[1]), "{order}: {a}->{b} violates order");
                    }
                }
            }
        }
    }

    #[test]
    fn anton_order_is_v_minus_first() {
        assert_eq!(
            DirOrder::ANTON.dirs(),
            [
                MeshDir::VMinus,
                MeshDir::UPlus,
                MeshDir::UMinus,
                MeshDir::VPlus
            ]
        );
        // A route needing V- and U+ takes V- first under the Anton order.
        let route = DirOrder::ANTON.route(MeshCoord::new(0, 2), MeshCoord::new(2, 0));
        assert_eq!(route[0], MeshDir::VMinus);
        assert_eq!(route[1], MeshDir::VMinus);
        assert_eq!(route[2], MeshDir::UPlus);
    }

    #[test]
    fn router_path_endpoints() {
        let p = DirOrder::ANTON.router_path(MeshCoord::new(1, 1), MeshCoord::new(3, 3));
        assert_eq!(p.first(), Some(&MeshCoord::new(1, 1)));
        assert_eq!(p.last(), Some(&MeshCoord::new(3, 3)));
        assert_eq!(p.len(), 5);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn new_rejects_non_permutation() {
        DirOrder::new([
            MeshDir::UPlus,
            MeshDir::UPlus,
            MeshDir::VPlus,
            MeshDir::VMinus,
        ]);
    }
}
