//! Table-based multicast (Section 2.3, Figure 3).
//!
//! The network supports multicast to an arbitrary set of destinations. A
//! multicast route is a tree of torus hops in which every path from the
//! source to a leaf is a valid (minimal, dimension-order) unicast route, so
//! multicast introduces no new VC dependencies. Destination sets are computed
//! at initialization and loaded into tables at the endpoint and channel
//! adapters; a group may hold several alternative trees (e.g. two different
//! dimension orders) and alternate between them to balance channel load.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::chip::LocalEndpointId;
use crate::routing::DimOrder;
use crate::topology::{Dim, NodeCoord, NodeId, Sign, Slice, TorusDir, TorusShape};

/// Identifier of a multicast group (an index into the multicast tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct McGroupId(pub u32);

impl fmt::Display for McGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// A multicast destination set: nodes and, per node, the endpoints that
/// receive a copy (separate copies minimize retrieval latency, Section 2.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DestSet {
    dests: BTreeMap<NodeCoord, BTreeSet<LocalEndpointId>>,
}

impl DestSet {
    /// An empty destination set.
    pub fn new() -> DestSet {
        DestSet::default()
    }

    /// Adds an endpoint to the set (duplicates are merged).
    pub fn add(&mut self, node: NodeCoord, ep: LocalEndpointId) -> &mut DestSet {
        self.dests.entry(node).or_default().insert(ep);
        self
    }

    /// Builds a set delivering to endpoint 0 of each listed node.
    pub fn from_nodes<I: IntoIterator<Item = NodeCoord>>(nodes: I) -> DestSet {
        let mut set = DestSet::new();
        for n in nodes {
            set.add(n, LocalEndpointId(0));
        }
        set
    }

    /// Number of destination nodes.
    pub fn num_nodes(&self) -> usize {
        self.dests.len()
    }

    /// Total endpoint copies delivered.
    pub fn num_endpoints(&self) -> usize {
        self.dests.values().map(|e| e.len()).sum()
    }

    /// Iterates over `(node, endpoints)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeCoord, &BTreeSet<LocalEndpointId>)> {
        self.dests.iter().map(|(n, e)| (*n, e))
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Total torus hops needed to reach every node by separate unicasts.
    pub fn unicast_torus_hops(&self, shape: &TorusShape, src: NodeCoord) -> u32 {
        self.dests.keys().map(|d| shape.min_hops(src, *d)).sum()
    }
}

/// A node's multicast-table entry for one tree: which torus directions to
/// forward a copy on, and which local endpoints receive a copy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct McEntry {
    /// Torus directions to forward copies on (on this tree's slice).
    pub forward: Vec<TorusDir>,
    /// Local endpoints that receive a copy at this node.
    pub local: Vec<LocalEndpointId>,
}

/// One multicast routing tree.
///
/// Every path from the source to a destination is a valid minimal
/// dimension-order unicast route in the tree's order, so the deadlock
/// analysis of Section 2.5 carries over unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McTree {
    /// Source node of the tree.
    pub src: NodeCoord,
    /// Dimension order every root→leaf path follows.
    pub order: DimOrder,
    /// Torus slice all of the tree's hops use.
    pub slice: Slice,
    /// Per-node table entries, keyed by node id.
    pub entries: BTreeMap<NodeId, McEntry>,
}

impl McTree {
    /// Builds the multicast tree for `dests` rooted at `src`.
    ///
    /// The tree routes each dimension of `order` in turn: it walks chains of
    /// hops along the current dimension, dropping off sub-trees at every node
    /// where destinations turn to the next dimension. Minimal-distance ties
    /// (`k/2` with `k` even) resolve to the positive direction so the two
    /// chains of a dimension can never meet.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty.
    pub fn build(
        shape: &TorusShape,
        src: NodeCoord,
        dests: &DestSet,
        order: DimOrder,
        slice: Slice,
    ) -> McTree {
        assert!(
            !dests.is_empty(),
            "multicast tree needs at least one destination"
        );
        let mut tree = McTree {
            src,
            order,
            slice,
            entries: BTreeMap::new(),
        };
        let all: Vec<(NodeCoord, Vec<LocalEndpointId>)> = dests
            .iter()
            .map(|(n, e)| (n, e.iter().copied().collect()))
            .collect();
        tree.place(shape, src, &order.dims(), &all);
        tree
    }

    fn place(
        &mut self,
        shape: &TorusShape,
        node: NodeCoord,
        dims: &[Dim],
        dests: &[(NodeCoord, Vec<LocalEndpointId>)],
    ) {
        if dests.is_empty() {
            return;
        }
        let Some((&dim, rest)) = dims.split_first() else {
            // All dimensions routed: every destination must be this node.
            let entry = self.entries.entry(shape.id(node)).or_default();
            for (d, eps) in dests {
                assert_eq!(*d, node, "destination unreachable in dimension order");
                entry.local.extend(eps.iter().copied());
            }
            return;
        };
        // Group destinations by minimal signed offset along `dim`
        // (ties resolve toward +).
        let mut stay = Vec::new();
        let mut plus: BTreeMap<u32, Vec<(NodeCoord, Vec<LocalEndpointId>)>> = BTreeMap::new();
        let mut minus: BTreeMap<u32, Vec<(NodeCoord, Vec<LocalEndpointId>)>> = BTreeMap::new();
        for (d, eps) in dests {
            let off = shape.minimal_offset_choices(dim, node, *d)[0];
            match off.signum() {
                0 => stay.push((*d, eps.clone())),
                1 => plus.entry(off as u32).or_default().push((*d, eps.clone())),
                _ => minus
                    .entry((-off) as u32)
                    .or_default()
                    .push((*d, eps.clone())),
            }
        }
        self.place(shape, node, rest, &stay);
        for (sign, chain) in [(Sign::Plus, plus), (Sign::Minus, minus)] {
            let Some((&max_hops, _)) = chain.iter().next_back() else {
                continue;
            };
            let dir = TorusDir::new(dim, sign);
            let mut cur = node;
            for step in 1..=max_hops {
                let entry = self.entries.entry(shape.id(cur)).or_default();
                debug_assert!(!entry.forward.contains(&dir), "duplicate tree edge");
                entry.forward.push(dir);
                cur = shape.neighbor(cur, dir);
                if let Some(turning) = chain.get(&step) {
                    self.place(shape, cur, rest, turning);
                }
            }
        }
    }

    /// Table entry for a node, if the tree touches it.
    pub fn entry(&self, node: NodeId) -> Option<&McEntry> {
        self.entries.get(&node)
    }

    /// Total torus hops (tree edges) the multicast consumes.
    pub fn torus_hops(&self) -> u32 {
        self.entries.values().map(|e| e.forward.len() as u32).sum()
    }

    /// Load placed on each directed torus channel `(from-node, dir)` by one
    /// packet routed through this tree (1.0 per tree edge, on this tree's
    /// slice).
    pub fn link_loads(&self) -> BTreeMap<(NodeId, TorusDir), f64> {
        let mut loads = BTreeMap::new();
        for (node, entry) in &self.entries {
            for dir in &entry.forward {
                *loads.entry((*node, *dir)).or_insert(0.0) += 1.0;
            }
        }
        loads
    }

    /// Walks the tree from the source, returning every `(node, endpoints)`
    /// delivery and the per-leaf hop sequences.
    ///
    /// Used by tests and the Figure 3 runner to validate that the tree
    /// reaches exactly the destination set by valid dimension-order routes.
    pub fn traverse(&self, shape: &TorusShape) -> McTraversal {
        let mut deliveries: BTreeMap<NodeCoord, Vec<LocalEndpointId>> = BTreeMap::new();
        let mut paths = Vec::new();
        let mut stack = vec![(self.src, Vec::<TorusDir>::new())];
        while let Some((node, path)) = stack.pop() {
            if let Some(entry) = self.entry(shape.id(node)) {
                if !entry.local.is_empty() {
                    deliveries
                        .entry(node)
                        .or_default()
                        .extend(entry.local.iter().copied());
                    paths.push((node, path.clone()));
                }
                for dir in &entry.forward {
                    let mut p = path.clone();
                    p.push(*dir);
                    stack.push((shape.neighbor(node, *dir), p));
                }
            } else if path.is_empty() {
                // Source node with no entry: tree delivers nothing here.
            }
        }
        McTraversal { deliveries, paths }
    }
}

/// Result of walking a multicast tree.
#[derive(Debug, Clone, PartialEq)]
pub struct McTraversal {
    /// Every delivery the tree makes: node → endpoint copies.
    pub deliveries: BTreeMap<NodeCoord, Vec<LocalEndpointId>>,
    /// For each delivering node, the hop sequence from the source.
    pub paths: Vec<(NodeCoord, Vec<TorusDir>)>,
}

/// A multicast group: a destination set plus one or more alternative trees.
#[derive(Debug, Clone, PartialEq)]
pub struct McGroup {
    /// Group id used in packet headers.
    pub id: McGroupId,
    /// Source node the group's trees are rooted at.
    pub src: NodeCoord,
    /// The destination set.
    pub dests: DestSet,
    /// Alternative routing trees; packets select one by index.
    pub trees: Vec<McTree>,
}

impl McGroup {
    /// Builds a group with one tree per `(order, slice)` variant.
    ///
    /// # Panics
    ///
    /// Panics if `variants` or `dests` is empty.
    pub fn build(
        shape: &TorusShape,
        id: McGroupId,
        src: NodeCoord,
        dests: DestSet,
        variants: &[(DimOrder, Slice)],
    ) -> McGroup {
        assert!(
            !variants.is_empty(),
            "multicast group needs at least one tree"
        );
        let trees = variants
            .iter()
            .map(|(order, slice)| McTree::build(shape, src, &dests, *order, *slice))
            .collect();
        McGroup {
            id,
            src,
            dests,
            trees,
        }
    }

    /// Torus hops saved per packet versus unicasting to every destination
    /// node (averaged over the group's trees).
    pub fn hops_saved(&self, shape: &TorusShape) -> f64 {
        let unicast = self.dests.unicast_torus_hops(shape, self.src) as f64;
        let tree_avg = self
            .trees
            .iter()
            .map(|t| t.torus_hops() as f64)
            .sum::<f64>()
            / self.trees.len() as f64;
        unicast - tree_avg
    }

    /// Per-channel load of one packet, averaged over the group's trees
    /// (alternating trees per packet realizes this average).
    pub fn blended_link_loads(&self) -> BTreeMap<(NodeId, TorusDir, Slice), f64> {
        let mut loads = BTreeMap::new();
        let w = 1.0 / self.trees.len() as f64;
        for tree in &self.trees {
            for ((node, dir), l) in tree.link_loads() {
                *loads.entry((node, dir, tree.slice)).or_insert(0.0) += l * w;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_halo(shape: &TorusShape, src: NodeCoord) -> DestSet {
        // The 8 surrounding nodes in the XY plane.
        let mut set = DestSet::new();
        for dx in [-1i32, 0, 1] {
            for dy in [-1i32, 0, 1] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let k = shape.k(Dim::X) as i32;
                let ky = shape.k(Dim::Y) as i32;
                let n = NodeCoord::new(
                    ((src.x as i32 + dx).rem_euclid(k)) as u8,
                    ((src.y as i32 + dy).rem_euclid(ky)) as u8,
                    src.z,
                );
                set.add(n, LocalEndpointId(0));
            }
        }
        set
    }

    #[test]
    fn tree_reaches_exactly_the_destinations() {
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(3, 3, 3);
        let dests = plane_halo(&shape, src);
        for order in DimOrder::ALL {
            let tree = McTree::build(&shape, src, &dests, order, Slice(0));
            let walk = tree.traverse(&shape);
            let reached: DestSet = {
                let mut s = DestSet::new();
                for (n, eps) in &walk.deliveries {
                    for e in eps {
                        s.add(*n, *e);
                    }
                }
                s
            };
            assert_eq!(reached, dests, "order {order}");
        }
    }

    #[test]
    fn tree_paths_are_minimal_dimension_order_routes() {
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(1, 6, 0);
        let dests = plane_halo(&shape, src);
        for order in DimOrder::ALL {
            let tree = McTree::build(&shape, src, &dests, order, Slice(1));
            for (leaf, path) in tree.traverse(&shape).paths {
                assert_eq!(
                    path.len() as u32,
                    shape.min_hops(src, leaf),
                    "minimal to {leaf}"
                );
                // Dimensions appear in tree order, contiguously.
                let mut rank = 0;
                let mut last: Option<Dim> = None;
                for hop in &path {
                    if last != Some(hop.dim) {
                        let p = order.position(hop.dim);
                        assert!(p >= rank, "order violated toward {leaf}");
                        rank = p;
                        last = Some(hop.dim);
                    }
                }
            }
        }
    }

    #[test]
    fn halo_multicast_saves_hops() {
        // 3x3 plane halo: 12 unicast hops, 8 tree edges -> saves 4
        // (the paper's Figure 3 set, drawn from a larger import region,
        // saves 12; the mechanism is identical).
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(4, 4, 4);
        let dests = plane_halo(&shape, src);
        assert_eq!(dests.unicast_torus_hops(&shape, src), 12);
        let tree = McTree::build(&shape, src, &dests, DimOrder::XYZ, Slice(0));
        assert_eq!(tree.torus_hops(), 8);
    }

    #[test]
    fn alternating_trees_balance_load() {
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(4, 4, 4);
        let dests = plane_halo(&shape, src);
        let single = McGroup::build(
            &shape,
            McGroupId(0),
            src,
            dests.clone(),
            &[(DimOrder::XYZ, Slice(0))],
        );
        let alternating = McGroup::build(
            &shape,
            McGroupId(1),
            src,
            dests,
            &[
                (DimOrder::XYZ, Slice(0)),
                (DimOrder::new([Dim::Y, Dim::X, Dim::Z]), Slice(1)),
            ],
        );
        let max_single = single
            .blended_link_loads()
            .values()
            .cloned()
            .fold(0.0, f64::max);
        let max_alt = alternating
            .blended_link_loads()
            .values()
            .cloned()
            .fold(0.0, f64::max);
        assert!(
            max_alt < max_single,
            "alternating trees should lower the peak channel load ({max_alt} vs {max_single})"
        );
    }

    #[test]
    fn local_delivery_at_source() {
        let shape = TorusShape::cube(4);
        let src = NodeCoord::new(0, 0, 0);
        let mut dests = DestSet::new();
        dests
            .add(src, LocalEndpointId(3))
            .add(NodeCoord::new(1, 0, 0), LocalEndpointId(0));
        let tree = McTree::build(&shape, src, &dests, DimOrder::XYZ, Slice(0));
        let entry = tree.entry(shape.id(src)).unwrap();
        assert_eq!(entry.local, vec![LocalEndpointId(3)]);
        assert_eq!(tree.torus_hops(), 1);
    }

    #[test]
    fn tie_break_chains_cannot_meet() {
        // k = 4, destinations straight across the torus in X.
        let shape = TorusShape::cube(4);
        let src = NodeCoord::new(0, 0, 0);
        let mut dests = DestSet::new();
        dests.add(NodeCoord::new(2, 0, 0), LocalEndpointId(0)); // distance k/2 both ways
        dests.add(NodeCoord::new(3, 0, 0), LocalEndpointId(0));
        let tree = McTree::build(&shape, src, &dests, DimOrder::XYZ, Slice(0));
        let walk = tree.traverse(&shape);
        assert_eq!(walk.deliveries.len(), 2);
        // 2 hops (+) for the tie node, 1 hop (-) for node 3.
        assert_eq!(tree.torus_hops(), 3);
    }

    #[test]
    fn multi_endpoint_copies() {
        let shape = TorusShape::cube(4);
        let src = NodeCoord::new(0, 0, 0);
        let mut dests = DestSet::new();
        dests
            .add(NodeCoord::new(1, 0, 0), LocalEndpointId(0))
            .add(NodeCoord::new(1, 0, 0), LocalEndpointId(5));
        assert_eq!(dests.num_nodes(), 1);
        assert_eq!(dests.num_endpoints(), 2);
        let tree = McTree::build(&shape, src, &dests, DimOrder::XYZ, Slice(0));
        let entry = tree.entry(shape.id(NodeCoord::new(1, 0, 0))).unwrap();
        assert_eq!(entry.local.len(), 2);
    }
}
