//! Packets and flits (Section 2.1).
//!
//! The Anton 2 network is optimized for fine-grained packets: a typical
//! packet carries 16 bytes of payload and 8 bytes of header (24 bytes — one
//! flit), and the largest packet carries 32 bytes of payload and 16 bytes of
//! header (48 bytes — two flits). Mesh channels are 192 bits wide, so the
//! common-case packet crosses a channel in a single cycle.

use std::fmt;

use rand::Rng;

use crate::config::GlobalEndpoint;
use crate::multicast::McGroupId;
use crate::vc::TrafficClass;

/// Bytes per flit (192-bit mesh channels).
pub const FLIT_BYTES: usize = 24;
/// Header bytes carried per flit.
pub const HEADER_BYTES_PER_FLIT: usize = 8;
/// Payload bytes per flit.
pub const PAYLOAD_BYTES_PER_FLIT: usize = FLIT_BYTES - HEADER_BYTES_PER_FLIT;
/// Maximum payload bytes in one packet.
pub const MAX_PAYLOAD_BYTES: usize = 2 * PAYLOAD_BYTES_PER_FLIT;

/// Tag naming which pre-characterized traffic pattern a packet belongs to.
///
/// The inverse-weighted arbiters look this field up to select the weight to
/// charge (Section 3.3; the Anton 2 implementation supports two patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PatternId(pub u8);

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a counted-write synchronization counter at an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CounterId(pub u16);

/// Where a packet is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// A single endpoint.
    Unicast(GlobalEndpoint),
    /// A multicast group; the tree index selects among the group's
    /// alternative routing trees (Figure 3 alternates between two).
    Multicast {
        /// The multicast group whose tables route this packet.
        group: McGroupId,
        /// Which of the group's trees to follow.
        tree: u8,
    },
}

/// Packet payload: up to 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Payload {
    bytes: [u8; MAX_PAYLOAD_BYTES],
    len: u8,
}

impl Payload {
    /// An empty payload (header-only packet, still one flit).
    pub fn empty() -> Payload {
        Payload {
            bytes: [0; MAX_PAYLOAD_BYTES],
            len: 0,
        }
    }

    /// A payload of `len` zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn zeros(len: usize) -> Payload {
        assert!(
            len <= MAX_PAYLOAD_BYTES,
            "payload of {len} bytes exceeds maximum"
        );
        Payload {
            bytes: [0; MAX_PAYLOAD_BYTES],
            len: len as u8,
        }
    }

    /// A payload of `len` bytes of `0xFF`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn ones(len: usize) -> Payload {
        assert!(
            len <= MAX_PAYLOAD_BYTES,
            "payload of {len} bytes exceeds maximum"
        );
        let mut bytes = [0u8; MAX_PAYLOAD_BYTES];
        bytes[..len].fill(0xFF);
        Payload {
            bytes,
            len: len as u8,
        }
    }

    /// A payload of `len` uniformly random bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Payload {
        assert!(
            len <= MAX_PAYLOAD_BYTES,
            "payload of {len} bytes exceeds maximum"
        );
        let mut bytes = [0u8; MAX_PAYLOAD_BYTES];
        rng.fill(&mut bytes[..len]);
        Payload {
            bytes,
            len: len as u8,
        }
    }

    /// A payload copied from a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds 32 bytes.
    pub fn from_bytes(data: &[u8]) -> Payload {
        assert!(data.len() <= MAX_PAYLOAD_BYTES, "payload exceeds maximum");
        let mut bytes = [0u8; MAX_PAYLOAD_BYTES];
        bytes[..data.len()].copy_from_slice(data);
        Payload {
            bytes,
            len: data.len() as u8,
        }
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Number of set bits in the payload (the `n` of the energy model).
    pub fn set_bits(&self) -> u32 {
        self.as_bytes().iter().map(|b| b.count_ones()).sum()
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

/// A network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Injecting endpoint.
    pub src: GlobalEndpoint,
    /// Destination (unicast endpoint or multicast group).
    pub dst: Destination,
    /// Traffic class.
    pub class: TrafficClass,
    /// Traffic-pattern tag for inverse-weighted arbitration.
    pub pattern: PatternId,
    /// Counted-write counter to decrement at the destination, if any.
    pub counter: Option<CounterId>,
    /// Payload bytes.
    pub payload: Payload,
}

impl Packet {
    /// A remote write of `payload` from `src` to `dst`.
    pub fn write(src: GlobalEndpoint, dst: GlobalEndpoint, payload: Payload) -> Packet {
        Packet {
            src,
            dst: Destination::Unicast(dst),
            class: TrafficClass::Request,
            pattern: PatternId(0),
            counter: None,
            payload,
        }
    }

    /// Number of flits this packet occupies on a channel.
    #[inline]
    pub fn num_flits(&self) -> usize {
        if self.payload.len() <= PAYLOAD_BYTES_PER_FLIT {
            1
        } else {
            2
        }
    }

    /// The 192-bit image of flit `idx` as three 64-bit words, used by the
    /// energy model to count bit transitions on the router datapath.
    ///
    /// Word 0 is a deterministic encoding of the header fields; words 1–2
    /// are the payload bytes carried by this flit.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_flits()`.
    pub fn flit_words(&self, idx: usize) -> [u64; 3] {
        assert!(idx < self.num_flits(), "flit index {idx} out of range");
        let dst_word = match self.dst {
            Destination::Unicast(ep) => (u64::from(ep.node.0) << 8) | u64::from(ep.ep.0),
            Destination::Multicast { group, tree } => {
                (1u64 << 63) | (u64::from(group.0) << 8) | u64::from(tree)
            }
        };
        let header = dst_word
            ^ (u64::from(self.src.node.0) << 40)
            ^ (u64::from(self.src.ep.0) << 56)
            ^ ((self.class.index() as u64) << 33)
            ^ ((u64::from(self.pattern.0)) << 34)
            ^ ((idx as u64) << 32);
        let mut words = [header, 0, 0];
        let base = idx * PAYLOAD_BYTES_PER_FLIT;
        for w in 0..2 {
            let mut word = 0u64;
            for b in 0..8 {
                let off = base + w * 8 + b;
                if off < self.payload.len() {
                    word |= u64::from(self.payload.as_bytes()[off]) << (8 * b);
                }
            }
            words[1 + w] = word;
        }
        words
    }
}

/// Hamming distance between two flit images (bit flips on a 192-bit channel).
pub fn flit_hamming(a: &[u64; 3], b: &[u64; 3]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::LocalEndpointId;
    use crate::topology::NodeId;

    fn ep(node: u32, e: u8) -> GlobalEndpoint {
        GlobalEndpoint {
            node: NodeId(node),
            ep: LocalEndpointId(e),
        }
    }

    #[test]
    fn common_case_packet_is_one_flit() {
        let p = Packet::write(ep(0, 0), ep(5, 3), Payload::zeros(16));
        assert_eq!(p.num_flits(), 1);
        let p = Packet::write(ep(0, 0), ep(5, 3), Payload::zeros(17));
        assert_eq!(p.num_flits(), 2);
        let p = Packet::write(ep(0, 0), ep(5, 3), Payload::zeros(32));
        assert_eq!(p.num_flits(), 2);
    }

    #[test]
    fn payload_bit_counts() {
        assert_eq!(Payload::zeros(16).set_bits(), 0);
        assert_eq!(Payload::ones(16).set_bits(), 128);
        assert_eq!(Payload::from_bytes(&[0x0F, 0xF0]).set_bits(), 8);
    }

    #[test]
    fn flit_words_differ_between_flits() {
        let p = Packet::write(ep(1, 2), ep(3, 4), Payload::ones(32));
        let w0 = p.flit_words(0);
        let w1 = p.flit_words(1);
        assert_ne!(w0, w1);
        assert_eq!(w0[1], u64::MAX);
        assert_eq!(w1[1], u64::MAX);
    }

    #[test]
    fn hamming_counts_flips() {
        let a = [0u64, 0, 0];
        let b = [0b1011u64, 1, 0];
        assert_eq!(flit_hamming(&a, &b), 4);
        assert_eq!(flit_hamming(&b, &b), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn oversized_payload_rejected() {
        Payload::zeros(33);
    }
}
